#!/usr/bin/env python3
"""Cycletree routing: build the network, route messages, verify transforms.

Cycletrees (Veanes & Barklund) are interconnect topologies: a binary tree
plus a Hamiltonian cycle.  Broadcast runs over the tree; point-to-point
traffic follows the cycle using per-node routing intervals.  When links
fail, the cyclic numbering and routing tables must be recomputed — so the
paper asks (§5): can the two recomputation traversals be fused?  Can they
run in parallel?

1. build a cycletree: cyclic numbering + routing intervals; route messages;
2. verify the fusion of the numbering and routing traversals (the paper's
   hardest query — 490.55 s in MONA);
3. try to parallelize them instead — the framework finds the ``n.num``
   race, and the counterexample replays as a real dynamic race.

Run:  python examples/cycletree_routing.py [--engine bounded|mso|auto]
"""

import argparse

from repro import check_data_race, check_equivalence
from repro.casestudies import cycletree as ct_case
from repro.trees.cycletree import (
    CycletreeRouter,
    compute_routing,
    cycle_edges,
    number_cyclic,
)
from repro.trees.generators import full_tree, random_tree


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--engine", default="bounded",
                    choices=["mso", "bounded", "auto"])
    args = ap.parse_args()

    print("=" * 72)
    print("1. Build a cycletree network and route messages")
    print("=" * 72)
    net = random_tree(15, seed=3)
    number_cyclic(net)
    compute_routing(net)
    print(f"network: {net.size} nodes; cycle closes through "
          f"{len(cycle_edges(net))} hops")
    router = CycletreeRouter(net)
    total_hops = 0
    pairs = [(0, net.size - 1), (3, 7), (12, 1), (5, 14)]
    for src, dst in pairs:
        steps = router.route(src, dst)
        total_hops += len(steps) - 1
        print(f"  route {src:>2} -> {dst:>2}: {len(steps) - 1} hops "
              f"({' '.join(s.direction for s in steps[:-1]) or 'direct'})")
    print(f"average hops: {total_hops / len(pairs):.1f}")

    print("=" * 72)
    print(f"2. Fuse numbering + routing   [{args.engine}]")
    print("=" * 72)
    seq = ct_case.sequential_program()
    fused = ct_case.fused_program()
    res = check_equivalence(
        seq, fused, ct_case.fusion_correspondence(), engine=args.engine
    )
    print(res)
    assert res.verdict == "equivalent"
    print("fusion verified: one pass re-numbers and re-routes after a "
          "link failure")

    print("=" * 72)
    print(f"3. Parallelize instead?   [{args.engine}]")
    print("=" * 72)
    par = ct_case.parallel_program()
    race = check_data_race(par, engine=args.engine)
    print(race)
    assert race.verdict == "race"
    if race.replay is not None:
        print("  replay:", race.replay.detail)
    print(
        "\nRootMode writes n.num while ComputeRouting reads it — the "
        "read-after-write dependence the paper's counterexample exhibits "
        "(a true positive, confirmed automatically here)."
    )


if __name__ == "__main__":
    main()
