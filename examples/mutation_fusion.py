#!/usr/bin/env python3
"""Tree mutation: simulate pointer swaps with flag fields, then fuse.

The paper's §5 tree-mutation case study (Fig. 7): ``Swap`` recursively
swaps every node's children; ``IncrmLeft`` then updates ``n.v`` from the
(post-swap) left child.  Retreet forbids real pointer mutation, so the swap
is *simulated* with mutable flag fields (``n.ll``/``n.lr``/…), reads through
possibly-swapped pointers become flag-guarded conditionals, and a simple
static analysis simplifies branches that are statically decided.

1. run the converted original (Swap; IncrmLeft) and the fused traversal on
   random trees — same final heap;
2. verify the fusion with the framework;
3. peek at the dependences that make the fusion order-sensitive.

Run:  python examples/mutation_fusion.py [--engine bounded|mso|auto]
"""

import argparse

from repro import check_equivalence
from repro.casestudies import treemutation as tm
from repro.core.configurations import ProgramModel
from repro.interp import run
from repro.trees.generators import assign_fields, full_tree, random_tree


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--engine", default="bounded",
                    choices=["mso", "bounded", "auto"])
    args = ap.parse_args()

    orig = tm.original_program()
    fused = tm.fused_program()

    print("=" * 72)
    print("1. Concrete runs: original two-phase vs fused one-phase")
    print("=" * 72)
    for seed in (1, 2, 3):
        tree = random_tree(12, seed=seed, field_names=("v",))
        a = run(orig, tree)
        b = run(fused, tree)
        same = a.field_snapshot(tm.FIELDS) == b.field_snapshot(tm.FIELDS)
        print(f"  seed {seed}: heaps {'match' if same else 'DIFFER'} "
              f"({tree.size} nodes)")
        assert same

    print("=" * 72)
    print(f"2. Verify the fusion   [{args.engine}]")
    print("=" * 72)
    res = check_equivalence(
        orig, fused, tm.fusion_correspondence(), engine=args.engine
    )
    print(res)
    assert res.verdict == "equivalent"

    print("=" * 72)
    print("3. Why order matters: the dependences the framework tracks")
    print("=" * 72)
    model = ProgramModel(orig)
    shown = 0
    for q1 in model.table.all_noncalls:
        for q2 in model.table.all_noncalls:
            for d1, d2, kind, name in model.rw.conflict_offsets(q1, q2):
                if kind != "field" or shown >= 6:
                    continue
                at1 = "n" + "".join("." + c for c in d1)
                at2 = "n" + "".join("." + c for c in d2)
                print(f"  {q1.sid}@{at1}  <->  {q2.sid}@{at2}   on field {name!r}")
                shown += 1
    print(
        "\nThe flag writes (Swap) must stay before the flag-guarded n.v "
        "updates (IncrmLeft) at every node, and each n.v write must stay "
        "after the child's — the fused post-order preserves both."
    )


if __name__ == "__main__":
    main()
