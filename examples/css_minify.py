#!/usr/bin/env python3
"""CSS minification: run a real minifier, then verify its fused pipeline.

The scenario the paper's §5 motivates: a CSS minifier traverses the style
sheet's AST once per optimization pass; fusing the passes into one traversal
saves walks, but is it *correct*?

1. minify an actual style sheet with three separate passes
   (``ConvertValues``, ``MinifyFont``, ``ReduceInit``) and with the fused
   single pass — outputs must match;
2. model the passes as Retreet traversals over the LCRS-converted AST
   (string conditions arithmetized, per the paper's preprocessing);
3. verify the fusion with the Retreet framework;
4. show the coarse traversal-summary baseline *cannot* justify this fusion.

Run:  python examples/css_minify.py [--engine bounded|mso|auto]
"""

import argparse

from repro import check_equivalence
from repro.baselines import CoarseAnalysis
from repro.casestudies import css as css_case
from repro.interp import run
from repro.trees.css import css_to_binary_tree, minify, minify_fused

STYLESHEET = """
.header {
  transition-duration: 100ms;
  font-weight: normal;
  min-width: initial;
}
.nav a {
  width: 0px;
  font-weight: bold;
  letter-spacing: initial;
}
.footer {
  max-width: initial;
  animation-duration: 2000ms;
  font-weight: 400;
}
"""


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--engine", default="bounded",
                    choices=["mso", "bounded", "auto"])
    args = ap.parse_args()

    print("=" * 72)
    print("1. Real minification (three passes vs fused)")
    print("=" * 72)
    out_separate = minify(STYLESHEET)
    out_fused = minify_fused(STYLESHEET)
    print("input bytes:  ", len(STYLESHEET))
    print("minified bytes:", len(out_separate))
    print("output:       ", out_separate)
    assert out_separate == out_fused
    print("three-pass output == fused output  (on this input)")

    print("=" * 72)
    print("2. The Retreet model of the passes")
    print("=" * 72)
    prog = css_case.original_program()
    fused = css_case.fused_program()
    tree = css_to_binary_tree(STYLESHEET)
    print(f"LCRS-converted AST: {tree.size} nodes, height {tree.height}")
    ra = run(prog, tree)
    rb = run(fused, tree)
    same = ra.field_snapshot(css_case.FIELDS) == rb.field_snapshot(css_case.FIELDS)
    print("modelled passes agree on the encoded AST:", same)
    assert same

    print("=" * 72)
    print(f"3. Verify the fusion for ALL inputs   [{args.engine}]")
    print("=" * 72)
    res = check_equivalence(
        prog, fused, css_case.fusion_correspondence(), engine=args.engine
    )
    print(res)
    assert res.verdict == "equivalent"

    print("=" * 72)
    print("4. What the coarse (TreeFuser-style) baseline says")
    print("=" * 72)
    coarse = CoarseAnalysis(prog)
    for f, g in (
        ("ConvertValues", "MinifyFont"),
        ("MinifyFont", "ReduceInit"),
    ):
        ok, reasons = coarse.can_fuse(f, g)
        print(f"fuse {f} + {g}: {'ACCEPT' if ok else 'REJECT'}")
        for r in reasons[:3]:
            print(f"    - {r}")
    print()
    print(
        "The traversal-summary baseline rejects the fusion (the passes "
        "touch the same fields); Retreet proves it safe because the "
        "per-node schedule keeps every dependence in order."
    )


if __name__ == "__main__":
    main()
