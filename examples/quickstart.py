#!/usr/bin/env python3
"""Quickstart: write a traversal, check races, verify a fusion.

Walks the full Fig. 1 pipeline on the paper's running example — the
mutually recursive Odd/Even size-counting traversals:

1. parse and validate a Retreet program;
2. execute it concretely on a tree;
3. prove `Odd(n) || Even(n)` data-race-free;
4. verify the fusion of Fig. 6a and catch the broken fusion of Fig. 6b,
   with the counterexample replayed on the interpreter.

Run:  python examples/quickstart.py [--engine mso|bounded|auto]
"""

import argparse

from repro import (
    check_data_race,
    check_equivalence,
    parse_program,
    program_source,
    run,
    validate,
)
from repro.casestudies import sizecount
from repro.trees.generators import full_tree, random_tree

SOURCE = """
Odd(n) {
  if (n == nil) { return 0 }
  else {
    ls = Even(n.l);
    rs = Even(n.r);
    return ls + rs + 1
  }
}

Even(n) {
  if (n == nil) { return 0 }
  else {
    ls = Odd(n.l);
    rs = Odd(n.r);
    return ls + rs
  }
}

Main(n) {
  { o = Odd(n) || e = Even(n) };
  return o, e
}
"""


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--engine",
        default="bounded",
        choices=["mso", "bounded", "auto"],
        help="verification engine (bounded is instant; mso decides over "
        "all trees but takes minutes in pure Python)",
    )
    args = ap.parse_args()

    print("=" * 72)
    print("1. Parse and validate")
    print("=" * 72)
    prog = parse_program(SOURCE, name="sizecount")
    warnings = validate(prog)
    print(program_source(prog))
    print(f"validated, {len(warnings)} warnings")

    print("=" * 72)
    print("2. Run it")
    print("=" * 72)
    for tree in (full_tree(3), random_tree(10, seed=42)):
        result = run(prog, tree)
        odd, even = result.returns
        print(
            f"tree with {tree.size:>2} nodes: odd-layer nodes = {odd}, "
            f"even-layer nodes = {even} (total {odd + even})"
        )
        assert odd + even == tree.size

    print("=" * 72)
    print(f"3. Data-race-freeness of Odd(n) || Even(n)   [{args.engine}]")
    print("=" * 72)
    race = check_data_race(prog, engine=args.engine)
    print(race)
    assert race.verdict == "race-free"

    print("=" * 72)
    print(f"4. Fusion verification (Fig. 6a valid, Fig. 6b broken)")
    print("=" * 72)
    seq = sizecount.sequential_program()
    good = check_equivalence(
        seq,
        sizecount.fused_valid(),
        sizecount.fusion_correspondence(),
        engine=args.engine,
    )
    print("Fig. 6a:", good)
    assert good.verdict == "equivalent"

    bad = check_equivalence(
        seq,
        sizecount.fused_invalid(),
        sizecount.invalid_fusion_correspondence(),
        engine=args.engine,
    )
    print("Fig. 6b:", bad)
    assert bad.verdict == "not-equivalent"
    if bad.replay is not None:
        print("  counterexample replay:", bad.replay.detail)
    print()
    print("All verdicts match the paper. Done.")


if __name__ == "__main__":
    main()
