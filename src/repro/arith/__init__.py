"""A small QF_LIA decision procedure (the paper's SMT substrate)."""

from .cases import NonLinearError, bexpr_to_dnf, linearize_aexpr
from .linexpr import EQ, GE, GT, Constraint, LinTerm
from .solver import SatResult, check_sat, is_satisfiable

__all__ = [
    "NonLinearError", "bexpr_to_dnf", "linearize_aexpr",
    "EQ", "GE", "GT", "Constraint", "LinTerm",
    "SatResult", "check_sat", "is_satisfiable",
]
