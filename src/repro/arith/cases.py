"""Lowering Retreet expressions to linear-arithmetic case splits.

``Max``/``Min`` and boolean structure are eliminated disjunctively: the
result is a DNF whose disjuncts are conjunctions of :class:`Constraint`.
Satisfiability of the original condition is then "some disjunct satisfiable",
which composes with the conjunctive LIA solver.

Variable naming is delegated to the caller through ``name_of``: it flattens
Retreet Int variables and field reads (``('field', directions, fieldname)``)
into solver variable names, letting the core layer implement the paper's
scoping (per-record parameters, shared per-node fields).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..lang import ast as A
from .linexpr import EQ, GE, GT, Constraint, LinTerm

__all__ = ["linearize_aexpr", "bexpr_to_dnf", "NonLinearError"]

NameOf = Callable[[object], str]
ResolveNil = Callable[[A.LExpr], Optional[bool]]


class NonLinearError(ValueError):
    """Raised when an expression falls outside the linear fragment."""


def linearize_aexpr(
    e: A.AExpr, name_of: NameOf
) -> List[Tuple[LinTerm, List[Constraint]]]:
    """All linear cases of ``e``: pairs ``(term, side_conditions)`` such that
    ``e == term`` whenever the side conditions hold, and the side conditions
    cover all of Z^n."""
    if isinstance(e, A.Const):
        return [(LinTerm.constant(e.value), [])]
    if isinstance(e, A.Var):
        return [(LinTerm.var(name_of(e.name)), [])]
    if isinstance(e, A.FieldRead):
        key = ("field", e.loc.directions(), e.fieldname)
        return [(LinTerm.var(name_of(key)), [])]
    if isinstance(e, (A.Add, A.Sub)):
        out = []
        for lt, lc in linearize_aexpr(e.left, name_of):
            for rt, rc in linearize_aexpr(e.right, name_of):
                term = lt + rt if isinstance(e, A.Add) else lt - rt
                out.append((term, lc + rc))
        return out
    if isinstance(e, A.Neg):
        return [
            (t.scale(-1), c) for t, c in linearize_aexpr(e.expr, name_of)
        ]
    if isinstance(e, (A.Max, A.Min)):
        arg_cases = [linearize_aexpr(a, name_of) for a in e.args]
        out = []
        # Case: argument i is the extremum.
        for i in range(len(e.args)):
            for ti, ci in arg_cases[i]:
                combos: List[Tuple[List[Constraint], List[LinTerm]]] = [
                    (list(ci), [])
                ]
                for j in range(len(e.args)):
                    if j == i:
                        continue
                    nxt = []
                    for conds, _ in combos:
                        for tj, cj in arg_cases[j]:
                            gap = (
                                ti - tj if isinstance(e, A.Max) else tj - ti
                            )
                            nxt.append((conds + cj + [Constraint(gap, GE)], []))
                    combos = nxt
                for conds, _ in combos:
                    out.append((ti, conds))
        return out
    raise NonLinearError(f"cannot linearize {e!r}")


def bexpr_to_dnf(
    b: A.BExpr,
    polarity: bool,
    name_of: NameOf,
    resolve_nil: Optional[ResolveNil] = None,
) -> List[List[Constraint]]:
    """DNF of ``b == polarity`` as constraint conjunctions.

    ``resolve_nil`` decides structural nil-atoms; if unset (or it returns
    ``None``) a nil atom raises :class:`NonLinearError` — callers must
    pre-split structural conditions.
    """
    if isinstance(b, A.BTrue):
        return [[]] if polarity else []
    if isinstance(b, A.IsNil):
        val = resolve_nil(b.loc) if resolve_nil else None
        if val is None:
            raise NonLinearError(f"unresolved nil test {b}")
        return [[]] if val == polarity else []
    if isinstance(b, A.Gt):
        out = []
        for t, side in linearize_aexpr(b.expr, name_of):
            atom = Constraint(t, GT) if polarity else Constraint(t.scale(-1), GE)
            out.append(side + [atom])
        return out
    if isinstance(b, A.Eq0):
        out = []
        for t, side in linearize_aexpr(b.expr, name_of):
            if polarity:
                out.append(side + [Constraint(t, EQ)])
            else:
                out.append(side + [Constraint(t, GT)])
                out.append(side + [Constraint(t.scale(-1), GT)])
        return out
    if isinstance(b, A.Not):
        return bexpr_to_dnf(b.expr, not polarity, name_of, resolve_nil)
    if isinstance(b, A.BAnd):
        if polarity:
            return _cross(
                bexpr_to_dnf(b.left, True, name_of, resolve_nil),
                bexpr_to_dnf(b.right, True, name_of, resolve_nil),
            )
        return bexpr_to_dnf(b.left, False, name_of, resolve_nil) + bexpr_to_dnf(
            b.right, False, name_of, resolve_nil
        )
    if isinstance(b, A.BOr):
        if polarity:
            return bexpr_to_dnf(b.left, True, name_of, resolve_nil) + bexpr_to_dnf(
                b.right, True, name_of, resolve_nil
            )
        return _cross(
            bexpr_to_dnf(b.left, False, name_of, resolve_nil),
            bexpr_to_dnf(b.right, False, name_of, resolve_nil),
        )
    raise TypeError(f"unknown BExpr {b!r}")


def _cross(
    a: List[List[Constraint]], b: List[List[Constraint]]
) -> List[List[Constraint]]:
    return [x + y for x in a for y in b]
