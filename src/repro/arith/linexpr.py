"""Linear expressions and constraints over named integer variables.

This is the arithmetic substrate for path-condition feasibility and the
``ConsistentCondSet`` computation (paper §4): conjunctions of linear
(in)equalities over Int parameters, speculative return ghosts and field
reads.  ``Max``/``Min`` terms are eliminated upstream by disjunctive case
splitting (:func:`repro.arith.cases.linearize_aexpr`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple

__all__ = ["LinTerm", "Constraint", "GE", "GT", "EQ"]


@dataclass(frozen=True)
class LinTerm:
    """``sum(coeffs[v] * v) + const`` with exact rational coefficients."""

    coeffs: Tuple[Tuple[str, Fraction], ...] = ()
    const: Fraction = Fraction(0)

    # -- constructors --------------------------------------------------------
    @staticmethod
    def of(coeffs: Mapping[str, object] = (), const: object = 0) -> "LinTerm":
        items = tuple(
            sorted(
                (v, Fraction(c))
                for v, c in (coeffs.items() if hasattr(coeffs, "items") else coeffs)
                if Fraction(c) != 0
            )
        )
        return LinTerm(items, Fraction(const))

    @staticmethod
    def var(name: str) -> "LinTerm":
        return LinTerm(((name, Fraction(1)),), Fraction(0))

    @staticmethod
    def constant(v: object) -> "LinTerm":
        return LinTerm((), Fraction(v))

    # -- views ----------------------------------------------------------------
    def coeff(self, name: str) -> Fraction:
        for v, c in self.coeffs:
            if v == name:
                return c
        return Fraction(0)

    @property
    def variables(self) -> Tuple[str, ...]:
        return tuple(v for v, _ in self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    # -- arithmetic -------------------------------------------------------------
    def __add__(self, other: "LinTerm") -> "LinTerm":
        d: Dict[str, Fraction] = dict(self.coeffs)
        for v, c in other.coeffs:
            d[v] = d.get(v, Fraction(0)) + c
        return LinTerm.of(d, self.const + other.const)

    def __sub__(self, other: "LinTerm") -> "LinTerm":
        return self + other.scale(-1)

    def scale(self, k: object) -> "LinTerm":
        kf = Fraction(k)
        if kf == 0:
            return LinTerm.constant(0)
        return LinTerm(
            tuple((v, c * kf) for v, c in self.coeffs), self.const * kf
        )

    def substitute(self, name: str, replacement: "LinTerm") -> "LinTerm":
        """Replace variable ``name`` with a linear term."""
        c = self.coeff(name)
        if c == 0:
            return self
        rest = LinTerm(
            tuple((v, k) for v, k in self.coeffs if v != name), self.const
        )
        return rest + replacement.scale(c)

    def evaluate(self, model: Mapping[str, object]) -> Fraction:
        total = self.const
        for v, c in self.coeffs:
            total += c * Fraction(model[v])
        return total

    def __str__(self) -> str:
        parts = [f"{c}*{v}" for v, c in self.coeffs]
        parts.append(str(self.const))
        return " + ".join(parts)


GE, GT, EQ = ">=", ">", "=="


@dataclass(frozen=True)
class Constraint:
    """``term op 0`` with op in {>=, >, ==}."""

    term: LinTerm
    op: str = GE

    def __post_init__(self) -> None:
        if self.op not in (GE, GT, EQ):
            raise ValueError(f"bad op {self.op!r}")

    def negated(self) -> Tuple["Constraint", ...]:
        """The negation as a disjunction of constraints.

        * ``!(t >= 0)``  ->  ``-t > 0``
        * ``!(t > 0)``   ->  ``-t >= 0``
        * ``!(t == 0)``  ->  ``t > 0`` or ``-t > 0``
        """
        if self.op == GE:
            return (Constraint(self.term.scale(-1), GT),)
        if self.op == GT:
            return (Constraint(self.term.scale(-1), GE),)
        return (
            Constraint(self.term, GT),
            Constraint(self.term.scale(-1), GT),
        )

    def holds(self, model: Mapping[str, object]) -> bool:
        v = self.term.evaluate(model)
        if self.op == GE:
            return v >= 0
        if self.op == GT:
            return v > 0
        return v == 0

    def __str__(self) -> str:
        return f"{self.term} {self.op} 0"
