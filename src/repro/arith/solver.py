"""Satisfiability of conjunctions of linear integer constraints.

Decision procedure:

1. normalize (over integers, ``t > 0`` becomes ``t - 1 >= 0``; equalities
   become two inequalities);
2. Fourier–Motzkin elimination decides *rational* feasibility and yields a
   rational sample point by back-substitution;
3. branch-and-bound on fractional coordinates restores integer completeness
   (bounded by ``max_branch_depth``; on exhaustion the verdict is the sound
   over-approximation ``SAT_UNKNOWN``, treated as satisfiable by clients —
   extra consistent condition sets can only *add* behaviours, never mask a
   race or conflict).

The systems arising from Retreet path conditions are tiny (a handful of
variables, unit-like coefficients), so this pure-Python procedure is
effectively instant; the branch depth limit exists for pathological inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .linexpr import EQ, GE, GT, Constraint, LinTerm

__all__ = ["SatResult", "check_sat", "is_satisfiable"]

SAT, UNSAT, SAT_UNKNOWN = "sat", "unsat", "unknown"


@dataclass
class SatResult:
    status: str  # sat | unsat | unknown
    model: Optional[Dict[str, int]] = None

    @property
    def possibly_sat(self) -> bool:
        """Sound over-approximation used by consistency computations."""
        return self.status != UNSAT


def _normalize(constraints: Iterable[Constraint]) -> Optional[List[LinTerm]]:
    """To a list of ``t >= 0`` over integer coefficients; None if trivially
    UNSAT on a constant constraint."""
    out: List[LinTerm] = []

    def push(term: LinTerm) -> bool:
        # Scale to integer coefficients.
        denoms = [c.denominator for _, c in term.coeffs] + [term.const.denominator]
        lcm = math.lcm(*denoms) if denoms else 1
        term = term.scale(lcm)
        if term.is_constant:
            return term.const >= 0
        out.append(term)
        return True

    for c in constraints:
        if c.op == GE:
            ok = push(c.term)
        elif c.op == GT:
            # over integers t > 0  <=>  t - 1 >= 0 (after integer scaling the
            # strictness gap of 1 is valid because t takes integer values).
            denoms = [k.denominator for _, k in c.term.coeffs] + [
                c.term.const.denominator
            ]
            lcm = math.lcm(*denoms) if denoms else 1
            t = c.term.scale(lcm)
            ok = push(t - LinTerm.constant(1))
        else:  # EQ
            ok = push(c.term) and push(c.term.scale(-1))
        if not ok:
            return None
    return out


def _fm_eliminate(
    rows: List[LinTerm], order: Sequence[str]
) -> Optional[List[Tuple[str, List[LinTerm], List[LinTerm]]]]:
    """Fourier–Motzkin elimination.

    Returns, per eliminated variable, its lower-bound and upper-bound rows
    (in terms of later variables) for back-substitution — or ``None`` when a
    constant contradiction appears (rationally UNSAT).
    """
    bounds: List[Tuple[str, List[LinTerm], List[LinTerm]]] = []
    current = list(rows)
    for v in order:
        lowers: List[LinTerm] = []  # v >= expr   (from c*v + rest >= 0, c>0)
        uppers: List[LinTerm] = []  # v <= expr
        rest: List[LinTerm] = []
        for t in current:
            c = t.coeff(v)
            if c == 0:
                rest.append(t)
            elif c > 0:
                # v >= -(rest)/c
                lowers.append(
                    LinTerm(
                        tuple((w, -k / c) for w, k in t.coeffs if w != v),
                        -t.const / c,
                    )
                )
            else:
                uppers.append(
                    LinTerm(
                        tuple((w, -k / c) for w, k in t.coeffs if w != v),
                        -t.const / c,
                    )
                )
        # Cross products: lower <= upper.
        for lo in lowers:
            for hi in uppers:
                diff = hi - lo
                if diff.is_constant:
                    if diff.const < 0:
                        return None
                else:
                    rest.append(diff)
        bounds.append((v, lowers, uppers))
        current = rest
    # Remaining rows are constant.
    for t in current:
        if t.is_constant and t.const < 0:
            return None
        if not t.is_constant:  # pragma: no cover - order covers all vars
            raise AssertionError("unexpected residual variables")
    return bounds


def _back_substitute(
    bounds: List[Tuple[str, List[LinTerm], List[LinTerm]]]
) -> Dict[str, Fraction]:
    """Pick a rational point satisfying the eliminated system, preferring
    integral coordinates."""
    model: Dict[str, Fraction] = {}
    for v, lowers, uppers in reversed(bounds):
        lo = max((t.evaluate(model) for t in lowers), default=None)
        hi = min((t.evaluate(model) for t in uppers), default=None)
        if lo is None and hi is None:
            model[v] = Fraction(0)
        elif lo is None:
            model[v] = Fraction(math.floor(hi))
        elif hi is None:
            model[v] = Fraction(math.ceil(lo))
        else:
            # Prefer an integer point in [lo, hi] when one exists.
            k = math.ceil(lo)
            model[v] = Fraction(k) if k <= hi else (lo + hi) / 2
    return model


def check_sat(
    constraints: Sequence[Constraint],
    max_branch_depth: int = 24,
) -> SatResult:
    """Decide integer satisfiability of a conjunction of constraints."""
    rows = _normalize(constraints)
    if rows is None:
        return SatResult(UNSAT)
    variables = sorted({v for t in rows for v in t.variables})
    if not variables:
        return SatResult(SAT, {})
    return _solve(rows, variables, max_branch_depth)


def _solve(
    rows: List[LinTerm], variables: List[str], depth: int
) -> SatResult:
    bounds = _fm_eliminate(rows, variables)
    if bounds is None:
        return SatResult(UNSAT)
    model = _back_substitute(bounds)
    frac = [(v, val) for v, val in model.items() if val.denominator != 1]
    if not frac:
        return SatResult(SAT, {v: int(val) for v, val in model.items()})
    if depth <= 0:
        return SatResult(SAT_UNKNOWN)
    # Branch on the first fractional coordinate.
    v, val = frac[0]
    lo_branch = rows + [
        LinTerm(((v, Fraction(-1)),), Fraction(math.floor(val)))  # floor(val) - v >= 0
    ]
    r = _solve(lo_branch, variables, depth - 1)
    if r.status == SAT:
        return r
    hi_branch = rows + [
        LinTerm(((v, Fraction(1)),), -Fraction(math.ceil(val)))  # v - ceil(val) >= 0
    ]
    r2 = _solve(hi_branch, variables, depth - 1)
    if r2.status == SAT:
        return r2
    if r.status == SAT_UNKNOWN or r2.status == SAT_UNKNOWN:
        return SatResult(SAT_UNKNOWN)
    return SatResult(UNSAT)


def is_satisfiable(constraints: Sequence[Constraint]) -> bool:
    """Sound boolean view: unknown counts as satisfiable."""
    return check_sat(constraints).possibly_sat
