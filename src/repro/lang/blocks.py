"""The block model: numbering, relations, paths (paper §3 and Appendix B).

Code blocks (function calls and straight-line assignment sequences) are the
atomic units of Retreet.  This module numbers every block (``s0``, ``s1``,
...) and branch condition (``c0``, ...), and computes:

* the sets ``AllCalls``, ``AllNonCalls``, ``Blocks(f)``, ``Params(f)``;
* the syntactic relations of Fig. 11: ``s ◁ t`` (s calls t's function),
  ``s ∼ t`` (same function), ``s ≺ t`` (sequenced), ``s ↑ t`` (conditional
  branches), ``s ‖ t`` (parallel) — via least common ancestors in the
  function's syntax tree;
* ``Path(t)`` — the branch conditions (with polarity) guarding ``t``; and
* ``straightline_paths(t)`` — every straight-line path from the function
  entry to ``t`` (code blocks interleaved with assumes), the input to the
  weakest-precondition computation of Appendix C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from . import ast as A

__all__ = ["Block", "CondInfo", "PathItem", "StraightPath", "BlockTable", "Relation"]

# A position inside a function-body syntax tree: a sequence of steps.
# Each step is ("seq", i) | ("if", 0|1) | ("par", i).
Pos = Tuple[Tuple[str, int], ...]


@dataclass(eq=False)
class Block:
    """A numbered code block."""

    sid: str
    index: int
    kind: str  # "call" | "noncall"
    func: str  # name of the function this block belongs to
    stmt: Union[A.CallStmt, A.AssignBlock]
    pos: Pos

    @property
    def is_call(self) -> bool:
        return self.kind == "call"

    @property
    def callee(self) -> str:
        assert isinstance(self.stmt, A.CallStmt)
        return self.stmt.func

    @property
    def has_return(self) -> bool:
        return isinstance(self.stmt, A.AssignBlock) and any(
            isinstance(a, A.Return) for a in self.stmt.assigns
        )

    def __repr__(self) -> str:
        return f"<{self.sid}:{self.kind} in {self.func}: {self.stmt}>"


@dataclass(eq=False)
class CondInfo:
    """A numbered branch condition (one per ``if`` statement)."""

    cid: str
    index: int
    func: str
    cond: A.BExpr
    if_node: A.If
    pos: Pos

    def __repr__(self) -> str:
        return f"<{self.cid} in {self.func}: {self.cond}>"


# Items of a straight-line path: executed blocks and assumed conditions.
@dataclass(frozen=True)
class PathItem:
    kind: str  # "block" | "assume"
    block: Optional[Block] = None
    cond: Optional[CondInfo] = None
    polarity: bool = True


StraightPath = Tuple[PathItem, ...]


class Relation:
    """Symbolic names for the block relations of Fig. 11."""

    CALLS = "calls"  # s ◁ t
    SEQ_BEFORE = "seq_before"  # s ≺ t
    SEQ_AFTER = "seq_after"  # t ≺ s
    CONDITIONAL = "conditional"  # s ↑ t
    PARALLEL = "parallel"  # s ‖ t
    UNRELATED = "unrelated"  # different functions


class BlockTable:
    """Numbered blocks/conditions and their relations for one program."""

    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.blocks: List[Block] = []
        self.conds: List[CondInfo] = []
        self._block_of_stmt: Dict[int, Block] = {}
        self._cond_of_if: Dict[int, CondInfo] = {}
        self._blocks_of_func: Dict[str, List[Block]] = {}
        self._conds_of_func: Dict[str, List[CondInfo]] = {}
        for fname, func in program.funcs.items():
            self._blocks_of_func[fname] = []
            self._conds_of_func[fname] = []
            self._walk(fname, func.body, ())
        self._by_sid = {b.sid: b for b in self.blocks}
        self._by_cid = {c.cid: c for c in self.conds}

    # -- construction --------------------------------------------------------
    def _walk(self, fname: str, stmt: A.Stmt, pos: Pos) -> None:
        if isinstance(stmt, (A.CallStmt, A.AssignBlock)):
            kind = "call" if isinstance(stmt, A.CallStmt) else "noncall"
            b = Block(f"s{len(self.blocks)}", len(self.blocks), kind, fname, stmt, pos)
            self.blocks.append(b)
            self._block_of_stmt[id(stmt)] = b
            self._blocks_of_func[fname].append(b)
        elif isinstance(stmt, A.If):
            c = CondInfo(
                f"c{len(self.conds)}", len(self.conds), fname, stmt.cond, stmt, pos
            )
            self.conds.append(c)
            self._cond_of_if[id(stmt)] = c
            self._conds_of_func[fname].append(c)
            self._walk(fname, stmt.then, pos + (("if", 0),))
            if stmt.els is not None:
                self._walk(fname, stmt.els, pos + (("if", 1),))
        elif isinstance(stmt, A.Seq):
            for i, s in enumerate(stmt.stmts):
                self._walk(fname, s, pos + (("seq", i),))
        elif isinstance(stmt, A.Par):
            for i, s in enumerate(stmt.stmts):
                self._walk(fname, s, pos + (("par", i),))
        elif isinstance(stmt, A.Skip):
            pass
        else:
            raise TypeError(f"unknown statement {stmt!r}")

    # -- lookups --------------------------------------------------------------
    def block(self, sid: str) -> Block:
        return self._by_sid[sid]

    def cond(self, cid: str) -> CondInfo:
        return self._by_cid[cid]

    def of_stmt(self, stmt: A.Stmt) -> Block:
        return self._block_of_stmt[id(stmt)]

    def of_if(self, if_node: A.If) -> CondInfo:
        return self._cond_of_if[id(if_node)]

    def blocks_of(self, fname: str) -> List[Block]:
        return list(self._blocks_of_func[fname])

    def conds_of(self, fname: str) -> List[CondInfo]:
        return list(self._conds_of_func[fname])

    @property
    def all_calls(self) -> List[Block]:
        return [b for b in self.blocks if b.is_call]

    @property
    def all_noncalls(self) -> List[Block]:
        return [b for b in self.blocks if not b.is_call]

    def params(self, fname: str) -> Tuple[str, ...]:
        return self.program.funcs[fname].int_params

    # -- Fig. 11 relations -----------------------------------------------------
    def calls_into(self, s: Block, t: Block) -> bool:
        """``s ◁ t``: s is a call to the function t belongs to.

        ``main`` entry is handled by :meth:`entry_calls` (the pseudo-call)."""
        return s.is_call and t.func == s.callee

    def same_func(self, s: Block, t: Block) -> bool:
        return s.func == t.func

    def relation(self, s: Block, t: Block) -> str:
        """The Fig. 11 relation between two distinct same-function blocks."""
        if s.func != t.func:
            return Relation.UNRELATED
        if s is t:
            raise ValueError("relation of a block with itself is undefined")
        k = 0
        while k < len(s.pos) and k < len(t.pos) and s.pos[k] == t.pos[k]:
            k += 1
        # Distinct leaf blocks cannot have prefix-related positions.
        assert k < len(s.pos) and k < len(t.pos), (s, t)
        kind_s, i = s.pos[k]
        kind_t, j = t.pos[k]
        assert kind_s == kind_t and i != j
        if kind_s == "seq":
            return Relation.SEQ_BEFORE if i < j else Relation.SEQ_AFTER
        if kind_s == "if":
            return Relation.CONDITIONAL
        return Relation.PARALLEL

    def precedes(self, s: Block, t: Block) -> bool:
        """``s ≺ t``"""
        return self.relation(s, t) == Relation.SEQ_BEFORE

    def conditional(self, s: Block, t: Block) -> bool:
        """``s ↑ t``"""
        return self.relation(s, t) == Relation.CONDITIONAL

    def parallel(self, s: Block, t: Block) -> bool:
        """``s ‖ t``"""
        return self.relation(s, t) == Relation.PARALLEL

    # -- paths -----------------------------------------------------------------
    def path_conditions(self, t: Block) -> Tuple[Tuple[CondInfo, bool], ...]:
        """``Path(t)``: the if-conditions guarding ``t``, with polarity."""
        out: List[Tuple[CondInfo, bool]] = []
        node: A.Stmt = self.program.funcs[t.func].body
        for kind, i in t.pos:
            if kind == "if":
                assert isinstance(node, A.If)
                out.append((self.of_if(node), i == 0))
                node = node.then if i == 0 else node.els  # type: ignore[assignment]
            elif kind == "seq":
                assert isinstance(node, A.Seq)
                node = node.stmts[i]
            else:
                assert isinstance(node, A.Par)
                node = node.stmts[i]
        return tuple(out)

    def straightline_paths(self, t: Block) -> List[StraightPath]:
        """All straight-line paths from the entry of ``t``'s function to ``t``.

        Each path lists the blocks executed before ``t`` and the branch
        conditions assumed (with polarity), in order — the code sequence
        ``l1; assume(c1); ...; ln; t`` of Appendix C.  When a preceding
        sibling contains branching, one path per feasible branch choice is
        returned (a mild generalization of the paper, which assumes a unique
        path).  Statements in sibling *parallel* branches are excluded: their
        effects are unordered with respect to ``t`` and the paper's
        speculative execution does not model them.
        """
        body = self.program.funcs[t.func].body
        return [tuple(p) for p in self._paths_to(body, t)]

    def _paths_through(self, stmt: A.Stmt) -> List[List[PathItem]]:
        """Complete straight-line executions of ``stmt`` (for preceding
        siblings).  Paths that hit a ``return`` are marked terminal by a
        sentinel None... instead we drop them: execution cannot continue past
        a return, so such a path cannot precede a later sibling."""
        if isinstance(stmt, (A.CallStmt, A.AssignBlock)):
            b = self.of_stmt(stmt)
            if b.has_return:
                return []  # execution exits the function here
            return [[PathItem("block", block=b)]]
        if isinstance(stmt, A.Skip):
            return [[]]
        if isinstance(stmt, A.Seq):
            acc: List[List[PathItem]] = [[]]
            for s in stmt.stmts:
                nxt: List[List[PathItem]] = []
                for prefix in acc:
                    for cont in self._paths_through(s):
                        nxt.append(prefix + cont)
                acc = nxt
            return acc
        if isinstance(stmt, A.If):
            c = self.of_if(stmt)
            out: List[List[PathItem]] = []
            for p in self._paths_through(stmt.then):
                out.append([PathItem("assume", cond=c, polarity=True)] + p)
            els = stmt.els if stmt.els is not None else A.Skip()
            for p in self._paths_through(els):
                out.append([PathItem("assume", cond=c, polarity=False)] + p)
            return out
        if isinstance(stmt, A.Par):
            # Approximate a completed parallel region by the left-to-right
            # sequentialization; the validator flags programs where parallel
            # siblings write Int variables read later (none of the paper's
            # case studies do).
            acc = [[]]
            for s in stmt.stmts:
                nxt = []
                for prefix in acc:
                    for cont in self._paths_through(s):
                        nxt.append(prefix + cont)
                acc = nxt
            return acc
        raise TypeError(f"unknown statement {stmt!r}")

    def _paths_to(self, stmt: A.Stmt, target: Block) -> List[List[PathItem]]:
        if isinstance(stmt, (A.CallStmt, A.AssignBlock)):
            return [[]] if self.of_stmt(stmt) is target else []
        if isinstance(stmt, A.Skip):
            return []
        if isinstance(stmt, A.Seq):
            out: List[List[PathItem]] = []
            for i, s in enumerate(stmt.stmts):
                tails = self._paths_to(s, target)
                if not tails:
                    continue
                prefixes: List[List[PathItem]] = [[]]
                for prev in stmt.stmts[:i]:
                    nxt: List[List[PathItem]] = []
                    for p in prefixes:
                        for cont in self._paths_through(prev):
                            nxt.append(p + cont)
                    prefixes = nxt
                for p in prefixes:
                    for tail in tails:
                        out.append(p + tail)
            return out
        if isinstance(stmt, A.If):
            c = self.of_if(stmt)
            out = []
            for tail in self._paths_to(stmt.then, target):
                out.append([PathItem("assume", cond=c, polarity=True)] + tail)
            if stmt.els is not None:
                for tail in self._paths_to(stmt.els, target):
                    out.append([PathItem("assume", cond=c, polarity=False)] + tail)
            return out
        if isinstance(stmt, A.Par):
            out = []
            for s in stmt.stmts:
                out.extend(self._paths_to(s, target))
            return out
        raise TypeError(f"unknown statement {stmt!r}")

    # -- summaries ----------------------------------------------------------
    def summary(self) -> str:
        """Human-readable table of blocks and conditions (for docs/tests)."""
        lines = []
        for b in self.blocks:
            lines.append(f"{b.sid:>4} [{b.kind:7}] {b.func}: {b.stmt}")
        for c in self.conds:
            lines.append(f"{c.cid:>4} [cond   ] {c.func}: {c.cond}")
        return "\n".join(lines)
