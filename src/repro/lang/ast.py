"""Abstract syntax for the Retreet tree-traversal language (paper §2, Fig. 2).

The AST mirrors the paper's grammar with two pragmatic generalizations that
the paper itself uses in its figures:

* calls may return a *vector* of Int values (Fig. 6's ``Fused`` returns a
  pair), so ``Return`` and ``CallStmt`` carry tuples;
* arithmetic includes ``Max``/``Min`` (Fig. 9's ``ComputeRouting`` uses
  ``MAX``/``MIN`` of three arguments).  Both are pure expressions, so weakest
  preconditions still work by substitution; the LIA layer eliminates them by
  case splitting.

AST nodes use *identity* equality (``eq=False``) — two textually identical
``return 0`` blocks in different functions are different blocks, exactly as
the paper requires ("two different call sites of the same function are
considered two different statements").  Structural comparison, when needed
(bisimulation), goes through :mod:`repro.lang.printer` canonical strings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = [
    "LExpr", "LocVar", "LocField",
    "AExpr", "Const", "Var", "FieldRead", "Add", "Sub", "Neg", "Max", "Min",
    "BExpr", "BTrue", "IsNil", "Gt", "Eq0", "Not", "BAnd", "BOr",
    "Assign", "FieldAssign", "VarAssign", "Return",
    "Stmt", "CallStmt", "AssignBlock", "If", "Seq", "Par", "Skip",
    "Func", "Program",
    "loc_l", "loc_r", "loc_n",
]


# ---------------------------------------------------------------------------
# Location expressions
# ---------------------------------------------------------------------------

class LExpr:
    """A location expression: the Loc parameter or a chain of child fields."""

    __slots__ = ()

    def directions(self) -> str:
        """The chain of child directions below the Loc variable, e.g. 'lr'."""
        raise NotImplementedError


@dataclass(frozen=True)
class LocVar(LExpr):
    """The (single) Loc parameter of the enclosing function."""

    name: str = "n"

    def directions(self) -> str:
        return ""

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class LocField(LExpr):
    """``base.l`` or ``base.r``."""

    base: LExpr
    direction: str  # 'l' or 'r'

    def __post_init__(self) -> None:
        if self.direction not in ("l", "r"):
            raise ValueError(f"bad direction {self.direction!r}")

    def directions(self) -> str:
        return self.base.directions() + self.direction

    def __str__(self) -> str:
        return f"{self.base}.{self.direction}"


def loc_n(name: str = "n") -> LocVar:
    return LocVar(name)


def loc_l(base: Optional[LExpr] = None) -> LocField:
    return LocField(base or LocVar(), "l")


def loc_r(base: Optional[LExpr] = None) -> LocField:
    return LocField(base or LocVar(), "r")


# ---------------------------------------------------------------------------
# Arithmetic expressions
# ---------------------------------------------------------------------------

class AExpr:
    __slots__ = ()


@dataclass(frozen=True)
class Const(AExpr):
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Var(AExpr):
    """An Int parameter, local variable, or call-return ghost."""

    name: str

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FieldRead(AExpr):
    """``loc.f`` — read local Int field ``f`` of the node at ``loc``."""

    loc: LExpr
    fieldname: str

    def __str__(self) -> str:
        return f"{self.loc}.{self.fieldname}"


@dataclass(frozen=True)
class Add(AExpr):
    left: AExpr
    right: AExpr

    def __str__(self) -> str:
        return f"({self.left} + {self.right})"


@dataclass(frozen=True)
class Sub(AExpr):
    left: AExpr
    right: AExpr

    def __str__(self) -> str:
        return f"({self.left} - {self.right})"


@dataclass(frozen=True)
class Neg(AExpr):
    expr: AExpr

    def __str__(self) -> str:
        return f"(-{self.expr})"


@dataclass(frozen=True)
class Max(AExpr):
    args: Tuple[AExpr, ...]

    def __str__(self) -> str:
        return "max(" + ", ".join(map(str, self.args)) + ")"


@dataclass(frozen=True)
class Min(AExpr):
    args: Tuple[AExpr, ...]

    def __str__(self) -> str:
        return "min(" + ", ".join(map(str, self.args)) + ")"


# ---------------------------------------------------------------------------
# Boolean expressions
# ---------------------------------------------------------------------------

class BExpr:
    __slots__ = ()


@dataclass(frozen=True)
class BTrue(BExpr):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class IsNil(BExpr):
    """``loc == nil`` — a *structural* condition."""

    loc: LExpr

    def __str__(self) -> str:
        return f"{self.loc} == nil"


@dataclass(frozen=True)
class Gt(BExpr):
    """``expr > 0`` — the paper's atomic arithmetic condition."""

    expr: AExpr

    def __str__(self) -> str:
        return f"{self.expr} > 0"


@dataclass(frozen=True)
class Eq0(BExpr):
    """``expr == 0`` — convenience atom (sugar for !(e>0) && !(-e>0))."""

    expr: AExpr

    def __str__(self) -> str:
        return f"{self.expr} == 0"


@dataclass(frozen=True)
class Not(BExpr):
    expr: BExpr

    def __str__(self) -> str:
        return f"!({self.expr})"


@dataclass(frozen=True)
class BAnd(BExpr):
    left: BExpr
    right: BExpr

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


@dataclass(frozen=True)
class BOr(BExpr):
    left: BExpr
    right: BExpr

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    __slots__ = ()


class Assign:
    __slots__ = ()


@dataclass(eq=False)
class FieldAssign(Assign):
    """``loc.f = expr``"""

    loc: LExpr
    fieldname: str
    expr: AExpr

    def __str__(self) -> str:
        return f"{self.loc}.{self.fieldname} = {self.expr}"


@dataclass(eq=False)
class VarAssign(Assign):
    """``v = expr``"""

    name: str
    expr: AExpr

    def __str__(self) -> str:
        return f"{self.name} = {self.expr}"


@dataclass(eq=False)
class Return(Assign):
    """``return e1, ..., ek`` — terminates the enclosing function."""

    exprs: Tuple[AExpr, ...]

    def __str__(self) -> str:
        return "return " + ", ".join(map(str, self.exprs))


@dataclass(eq=False)
class CallStmt(Stmt):
    """``t1, ..., tk = g(loc, a1, ..., am)`` — a call *block*."""

    targets: Tuple[str, ...]
    func: str
    loc: LExpr
    args: Tuple[AExpr, ...] = ()

    def __str__(self) -> str:
        lhs = ", ".join(self.targets) + " = " if self.targets else ""
        argstr = ", ".join([str(self.loc)] + [str(a) for a in self.args])
        return f"{lhs}{self.func}({argstr})"


@dataclass(eq=False)
class AssignBlock(Stmt):
    """A straight-line sequence of non-call assignments — a non-call *block*."""

    assigns: Tuple[Assign, ...]

    def __str__(self) -> str:
        return "; ".join(map(str, self.assigns))


@dataclass(eq=False)
class If(Stmt):
    cond: BExpr
    then: Stmt
    els: Optional[Stmt] = None

    def __str__(self) -> str:
        s = f"if ({self.cond}) {{ {self.then} }}"
        if self.els is not None:
            s += f" else {{ {self.els} }}"
        return s


@dataclass(eq=False)
class Seq(Stmt):
    stmts: Tuple[Stmt, ...]

    def __str__(self) -> str:
        return "; ".join(map(str, self.stmts))


@dataclass(eq=False)
class Par(Stmt):
    """``{ A || B || ... }`` — statement-level interleaving semantics."""

    stmts: Tuple[Stmt, ...]

    def __str__(self) -> str:
        return "{ " + " || ".join(map(str, self.stmts)) + " }"


@dataclass(eq=False)
class Skip(Stmt):
    """Empty statement (used by rewrites; not a block)."""

    def __str__(self) -> str:
        return "skip"


# ---------------------------------------------------------------------------
# Functions and programs
# ---------------------------------------------------------------------------

@dataclass(eq=False)
class Func:
    """``g(n, v1, ..., vk) { body }`` — single Loc parameter, Int params."""

    name: str
    loc_param: str
    int_params: Tuple[str, ...]
    body: Stmt
    n_returns: int = 1

    def __str__(self) -> str:
        params = ", ".join([self.loc_param] + list(self.int_params))
        return f"{self.name}({params}) {{ {self.body} }}"


@dataclass(eq=False)
class Program:
    """A Retreet program: a set of functions with a designated entry point."""

    funcs: Dict[str, Func]
    entry: str = "Main"
    name: str = "program"

    def __post_init__(self) -> None:
        if self.entry not in self.funcs:
            raise ValueError(f"entry function {self.entry!r} not defined")

    @property
    def main(self) -> Func:
        return self.funcs[self.entry]

    def func(self, name: str) -> Func:
        return self.funcs[name]

    def __str__(self) -> str:
        return "\n".join(str(f) for f in self.funcs.values())
