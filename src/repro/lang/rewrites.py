"""Mechanical program rewrites: mutation simulation and helpers (paper §5).

Retreet forbids tree mutation, but §5 shows a limited class of mutations can
be *simulated* with mutable local flag fields: for each node,

* ``ll`` = "n.l is unchanged",  ``lr`` = "n.l points to the original right
  child",
* ``rl``/``rr`` symmetrically for ``n.r``,

initialized (implicitly) to ``ll=1, lr=0, rl=0, rr=1``; the swap statement
``tmp = n.l; n.l = n.r; n.r = tmp`` becomes the four flag writes, and reads
through possibly-swapped pointers become flag-guarded conditionals.

This module mechanizes the conversion the paper performed by hand:

* :func:`parse_with_mutation` parses extended Retreet in which ``n.l = …``
  pointer assignments are allowed (as :class:`PtrAssign` pseudo-statements);
* :func:`simulate_mutation` rewrites the child-swap idiom into flag writes;
* :func:`flag_guard_reads` rewrites call sites and field reads through
  ``n.l``/``n.r`` in *other* traversals into flag-guarded conditionals —
  optionally simplified under the "swap already ran everywhere" facts the
  paper's simple program analysis provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import ast as A
from .parser import normalize_program, parse_program

__all__ = [
    "PtrAssign",
    "parse_with_mutation",
    "simulate_mutation",
    "flag_guard_reads",
    "FLAG_FIELDS",
]

FLAG_FIELDS = ("ll", "lr", "rl", "rr")

# Flag meaning: (child slot, points-to-original) -> flag name.
_FLAG = {("l", "l"): "ll", ("l", "r"): "lr", ("r", "l"): "rl", ("r", "r"): "rr"}


@dataclass(eq=False)
class PtrAssign(A.Assign):
    """Extended-syntax pointer assignment ``n.<slot> = <rhs loc>`` — only
    legal in pre-conversion ASTs; :func:`simulate_mutation` removes it."""

    slot: str  # 'l' or 'r'
    rhs: A.LExpr

    def __str__(self) -> str:
        return f"n.{self.slot} = {self.rhs}"


def parse_with_mutation(src: str, name: str = "program", entry: str = "Main") -> A.Program:
    """Parse extended Retreet where ``n.l = n.r``-style statements appear.

    Implemented as a pre-pass replacing pointer assignments with marker
    field assignments, then swapping the markers for :class:`PtrAssign`."""
    import re

    marked = re.sub(
        r"\bn\s*\.\s*([lr])\s*=\s*(n(?:\s*\.\s*[lr]){0,3}|tmp)\b",
        lambda m: f"n.@ptr_{m.group(1)} = @@{m.group(2).replace(' ', '').replace('.', '_')}",
        src,
    )
    # The marker RHS tokens must lex as identifiers:
    marked = marked.replace("@@", "PTRRHS_").replace("@ptr_", "PTRSLOT_")
    prog = parse_program(marked, name=name, entry=entry)
    _restore_ptr_assigns(prog)
    return normalize_program(prog)


def _restore_ptr_assigns(prog: A.Program) -> None:
    def fix_block(stmt: A.AssignBlock) -> A.AssignBlock:
        out: List[A.Assign] = []
        for a in stmt.assigns:
            if (
                isinstance(a, A.FieldAssign)
                and a.fieldname.startswith("PTRSLOT_")
                and isinstance(a.expr, A.Var)
                and a.expr.name.startswith("PTRRHS_")
            ):
                slot = a.fieldname[len("PTRSLOT_"):]
                rhs_txt = a.expr.name[len("PTRRHS_"):]
                loc: A.LExpr = A.LocVar("n")
                for d in rhs_txt.split("_")[1:]:
                    loc = A.LocField(loc, d)
                if rhs_txt == "tmp":
                    loc = A.LocVar("tmp")  # resolved by the swap idiom
                out.append(PtrAssign(slot, loc))
            else:
                out.append(a)
        return A.AssignBlock(tuple(out))

    def walk(stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.AssignBlock):
            return fix_block(stmt)
        if isinstance(stmt, A.If):
            return A.If(stmt.cond, walk(stmt.then),
                        walk(stmt.els) if stmt.els else None)
        if isinstance(stmt, (A.Seq, A.Par)):
            return type(stmt)(tuple(walk(s) for s in stmt.stmts))
        return stmt

    for f in prog.funcs.values():
        f.body = walk(f.body)


def simulate_mutation(prog: A.Program) -> A.Program:
    """Replace pointer-mutation idioms with flag-field writes.

    Recognized inside a single block:

    * the full swap ``tmp = n.l; n.l = n.r; n.r = tmp`` → ``ll=0; lr=1;
      rl=1; rr=0``;
    * a single redirect ``n.l = n.r`` → ``ll=0; lr=1`` (and symmetrically).

    Any remaining :class:`PtrAssign` raises ``ValueError`` (general topology
    mutation is outside the simulable class, per the paper)."""

    def convert_block(stmt: A.AssignBlock) -> A.AssignBlock:
        assigns = list(stmt.assigns)
        out: List[A.Assign] = []
        i = 0
        tmp_binding: Dict[str, str] = {}  # tmp var -> original slot
        while i < len(assigns):
            a = assigns[i]
            if (
                isinstance(a, A.VarAssign)
                and isinstance(a.expr, A.FieldRead)
                and a.expr.fieldname in ("l", "r")
                and not a.expr.loc.directions()
            ):
                # ``tmp = n.l`` — remember; emitted only if unused by a swap.
                tmp_binding[a.name] = a.expr.fieldname
                i += 1
                continue
            if isinstance(a, PtrAssign):
                if isinstance(a.rhs, A.LocVar) and a.rhs.name in tmp_binding:
                    src_slot = tmp_binding[a.rhs.name]
                elif isinstance(a.rhs, A.LocField) and not a.rhs.base.directions():  # type: ignore[union-attr]
                    src_slot = a.rhs.direction
                else:
                    raise ValueError(f"unsimulable pointer assignment: {a}")
                same = _FLAG[(a.slot, a.slot)]
                cross = _FLAG[(a.slot, "l" if a.slot == "r" else "r")]
                if src_slot == a.slot:
                    values = {same: 1, cross: 0}
                else:
                    values = {same: 0, cross: 1}
                for fname, v in values.items():
                    out.append(
                        A.FieldAssign(A.LocVar("n"), fname, A.Const(v))
                    )
                i += 1
                continue
            out.append(a)
            i += 1
        return A.AssignBlock(tuple(out))

    def walk(stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.AssignBlock):
            return convert_block(stmt)
        if isinstance(stmt, A.If):
            return A.If(stmt.cond, walk(stmt.then),
                        walk(stmt.els) if stmt.els else None)
        if isinstance(stmt, (A.Seq, A.Par)):
            return type(stmt)(tuple(walk(s) for s in stmt.stmts))
        return stmt

    for f in prog.funcs.values():
        f.body = walk(f.body)

    # Verify nothing unsimulable remains.
    def scan(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.AssignBlock):
            for a in stmt.assigns:
                if isinstance(a, PtrAssign):
                    raise ValueError(f"unsimulable pointer assignment: {a}")
        elif isinstance(stmt, A.If):
            scan(stmt.then)
            if stmt.els:
                scan(stmt.els)
        elif isinstance(stmt, (A.Seq, A.Par)):
            for s in stmt.stmts:
                scan(s)

    for f in prog.funcs.values():
        scan(f.body)
    return normalize_program(prog)


def flag_guard_reads(
    prog: A.Program,
    funcs: Optional[List[str]] = None,
    assume_swapped: Optional[bool] = None,
) -> A.Program:
    """Rewrite reads through ``n.l``/``n.r`` into flag-aware form.

    * calls ``g(n.l, …)`` become ``if (n.ll > 0) g(n.l, …) else g(n.r, …)``;
    * field assignments whose RHS reads ``n.l.f`` become the corresponding
      conditional statement (symmetrically for ``n.r``).

    With ``assume_swapped=True`` the paper's post-analysis simplification is
    applied instead: every ``n.l`` read is redirected to ``n.r`` (and vice
    versa) without conditionals — valid when the swap traversal is known to
    have run on every node.  ``assume_swapped=False`` leaves reads as-is.
    """
    targets = funcs if funcs is not None else list(prog.funcs)

    def redirect_loc(loc: A.LExpr) -> A.LExpr:
        if isinstance(loc, A.LocField) and not loc.base.directions():  # type: ignore[union-attr]
            other = "r" if loc.direction == "l" else "l"
            return A.LocField(loc.base, other)
        return loc

    def redirect_aexpr(e: A.AExpr) -> A.AExpr:
        from .exprs import subst_aexpr

        # Swap l<->r prefixes in field reads one level below n.
        if isinstance(e, A.FieldRead):
            return A.FieldRead(redirect_loc(e.loc), e.fieldname)
        if isinstance(e, (A.Add, A.Sub)):
            return type(e)(redirect_aexpr(e.left), redirect_aexpr(e.right))
        if isinstance(e, A.Neg):
            return A.Neg(redirect_aexpr(e.expr))
        if isinstance(e, (A.Max, A.Min)):
            return type(e)(tuple(redirect_aexpr(a) for a in e.args))
        return e

    def guard(stmt_l: A.Stmt, stmt_r: A.Stmt) -> A.Stmt:
        return A.If(
            A.Gt(A.FieldRead(A.LocVar("n"), "ll")), stmt_l, stmt_r
        )

    def walk(stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.CallStmt):
            dirs = stmt.loc.directions()
            if len(dirs) == 1:
                if assume_swapped is True:
                    return A.CallStmt(
                        stmt.targets, stmt.func, redirect_loc(stmt.loc),
                        stmt.args,
                    )
                if assume_swapped is None:
                    other = A.CallStmt(
                        stmt.targets, stmt.func, redirect_loc(stmt.loc),
                        stmt.args,
                    )
                    return guard(stmt, other)
            return stmt
        if isinstance(stmt, A.AssignBlock):
            if assume_swapped is True:
                return A.AssignBlock(
                    tuple(
                        A.FieldAssign(a.loc, a.fieldname, redirect_aexpr(a.expr))
                        if isinstance(a, A.FieldAssign)
                        else (
                            A.VarAssign(a.name, redirect_aexpr(a.expr))
                            if isinstance(a, A.VarAssign)
                            else A.Return(tuple(redirect_aexpr(e) for e in a.exprs))
                        )
                        for a in stmt.assigns
                    )
                )
            if assume_swapped is None:
                reads_child = any(
                    isinstance(a, (A.FieldAssign, A.VarAssign))
                    and _reads_one_level(a.expr)
                    for a in stmt.assigns
                )
                if reads_child:
                    swapped = A.AssignBlock(
                        tuple(
                            A.FieldAssign(a.loc, a.fieldname, redirect_aexpr(a.expr))
                            if isinstance(a, A.FieldAssign)
                            else (
                                A.VarAssign(a.name, redirect_aexpr(a.expr))
                                if isinstance(a, A.VarAssign)
                                else a
                            )
                            for a in stmt.assigns
                        )
                    )
                    return guard(stmt, swapped)
            return stmt
        if isinstance(stmt, A.If):
            cond = redirect_bexpr(stmt.cond) if assume_swapped is True else stmt.cond
            return A.If(cond, walk(stmt.then),
                        walk(stmt.els) if stmt.els else None)
        if isinstance(stmt, (A.Seq, A.Par)):
            return type(stmt)(tuple(walk(s) for s in stmt.stmts))
        return stmt

    def redirect_bexpr(b: A.BExpr) -> A.BExpr:
        if isinstance(b, A.IsNil):
            return A.IsNil(redirect_loc(b.loc))
        if isinstance(b, A.Gt):
            return A.Gt(redirect_aexpr(b.expr))
        if isinstance(b, A.Eq0):
            return A.Eq0(redirect_aexpr(b.expr))
        if isinstance(b, A.Not):
            return A.Not(redirect_bexpr(b.expr))
        if isinstance(b, (A.BAnd, A.BOr)):
            return type(b)(redirect_bexpr(b.left), redirect_bexpr(b.right))
        return b

    def _reads_one_level(e: A.AExpr) -> bool:
        from .exprs import aexpr_field_reads

        return any(len(d) == 1 for d, _ in aexpr_field_reads(e))

    for fname in targets:
        prog.funcs[fname].body = walk(prog.funcs[fname].body)
    return normalize_program(prog)
