"""Expression utilities shared by the interpreter, analyses and encoders.

Evaluation is parameterized by how location expressions resolve to concrete
tree nodes, so the same code serves the concrete interpreter (real heap),
speculative execution (Def. 1 — heap reads may be symbolic) and witness
replay.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Mapping, Set, Tuple

from . import ast as A

__all__ = [
    "eval_aexpr",
    "eval_bexpr",
    "aexpr_vars",
    "bexpr_vars",
    "aexpr_field_reads",
    "bexpr_field_reads",
    "subst_aexpr",
    "subst_bexpr",
    "iter_aexprs",
]


class SymbolicValueError(Exception):
    """Raised when evaluation needs a value the environment cannot provide."""


def eval_aexpr(
    e: A.AExpr,
    env: Mapping[str, int],
    read_field: Callable[[A.LExpr, str], int],
) -> int:
    """Evaluate an arithmetic expression.

    ``env`` supplies Int variables; ``read_field`` resolves ``loc.f`` reads.
    """
    if isinstance(e, A.Const):
        return e.value
    if isinstance(e, A.Var):
        try:
            return env[e.name]
        except KeyError:
            raise SymbolicValueError(f"unbound variable {e.name!r}") from None
    if isinstance(e, A.FieldRead):
        return read_field(e.loc, e.fieldname)
    if isinstance(e, A.Add):
        return eval_aexpr(e.left, env, read_field) + eval_aexpr(e.right, env, read_field)
    if isinstance(e, A.Sub):
        return eval_aexpr(e.left, env, read_field) - eval_aexpr(e.right, env, read_field)
    if isinstance(e, A.Neg):
        return -eval_aexpr(e.expr, env, read_field)
    if isinstance(e, A.Max):
        return max(eval_aexpr(a, env, read_field) for a in e.args)
    if isinstance(e, A.Min):
        return min(eval_aexpr(a, env, read_field) for a in e.args)
    raise TypeError(f"unknown AExpr {e!r}")


def eval_bexpr(
    b: A.BExpr,
    env: Mapping[str, int],
    read_field: Callable[[A.LExpr, str], int],
    is_nil: Callable[[A.LExpr], bool],
) -> bool:
    """Evaluate a boolean expression; ``is_nil`` resolves nil tests."""
    if isinstance(b, A.BTrue):
        return True
    if isinstance(b, A.IsNil):
        return is_nil(b.loc)
    if isinstance(b, A.Gt):
        return eval_aexpr(b.expr, env, read_field) > 0
    if isinstance(b, A.Eq0):
        return eval_aexpr(b.expr, env, read_field) == 0
    if isinstance(b, A.Not):
        return not eval_bexpr(b.expr, env, read_field, is_nil)
    if isinstance(b, A.BAnd):
        return eval_bexpr(b.left, env, read_field, is_nil) and eval_bexpr(
            b.right, env, read_field, is_nil
        )
    if isinstance(b, A.BOr):
        return eval_bexpr(b.left, env, read_field, is_nil) or eval_bexpr(
            b.right, env, read_field, is_nil
        )
    raise TypeError(f"unknown BExpr {b!r}")


def iter_aexprs(e: A.AExpr) -> Iterator[A.AExpr]:
    """Preorder iteration over sub-expressions."""
    yield e
    if isinstance(e, (A.Add, A.Sub)):
        yield from iter_aexprs(e.left)
        yield from iter_aexprs(e.right)
    elif isinstance(e, A.Neg):
        yield from iter_aexprs(e.expr)
    elif isinstance(e, (A.Max, A.Min)):
        for a in e.args:
            yield from iter_aexprs(a)


def aexpr_vars(e: A.AExpr) -> Set[str]:
    return {x.name for x in iter_aexprs(e) if isinstance(x, A.Var)}


def aexpr_field_reads(e: A.AExpr) -> Set[Tuple[str, str]]:
    """Field reads as ``(directions, fieldname)`` pairs, e.g. ('l', 'v')."""
    return {
        (x.loc.directions(), x.fieldname)
        for x in iter_aexprs(e)
        if isinstance(x, A.FieldRead)
    }


def _iter_batoms(b: A.BExpr) -> Iterator[A.BExpr]:
    if isinstance(b, A.Not):
        yield from _iter_batoms(b.expr)
    elif isinstance(b, (A.BAnd, A.BOr)):
        yield from _iter_batoms(b.left)
        yield from _iter_batoms(b.right)
    else:
        yield b


def bexpr_vars(b: A.BExpr) -> Set[str]:
    out: Set[str] = set()
    for atom in _iter_batoms(b):
        if isinstance(atom, (A.Gt, A.Eq0)):
            out |= aexpr_vars(atom.expr)
    return out


def bexpr_field_reads(b: A.BExpr) -> Set[Tuple[str, str]]:
    out: Set[Tuple[str, str]] = set()
    for atom in _iter_batoms(b):
        if isinstance(atom, (A.Gt, A.Eq0)):
            out |= aexpr_field_reads(atom.expr)
    return out


def subst_aexpr(e: A.AExpr, sub: Dict[object, A.AExpr]) -> A.AExpr:
    """Substitute variables and field reads in an arithmetic expression.

    Keys of ``sub`` may be variable names (str) or ``(directions, field)``
    pairs matching :func:`aexpr_field_reads`.  This implements the textual
    substitution underlying the weakest-precondition rules (paper Fig. 12).
    """
    if isinstance(e, A.Const):
        return e
    if isinstance(e, A.Var):
        return sub.get(e.name, e)
    if isinstance(e, A.FieldRead):
        key = (e.loc.directions(), e.fieldname)
        return sub.get(key, e)
    if isinstance(e, A.Add):
        return A.Add(subst_aexpr(e.left, sub), subst_aexpr(e.right, sub))
    if isinstance(e, A.Sub):
        return A.Sub(subst_aexpr(e.left, sub), subst_aexpr(e.right, sub))
    if isinstance(e, A.Neg):
        return A.Neg(subst_aexpr(e.expr, sub))
    if isinstance(e, A.Max):
        return A.Max(tuple(subst_aexpr(a, sub) for a in e.args))
    if isinstance(e, A.Min):
        return A.Min(tuple(subst_aexpr(a, sub) for a in e.args))
    raise TypeError(f"unknown AExpr {e!r}")


def subst_bexpr(b: A.BExpr, sub: Dict[object, A.AExpr]) -> A.BExpr:
    if isinstance(b, (A.BTrue, A.IsNil)):
        return b
    if isinstance(b, A.Gt):
        return A.Gt(subst_aexpr(b.expr, sub))
    if isinstance(b, A.Eq0):
        return A.Eq0(subst_aexpr(b.expr, sub))
    if isinstance(b, A.Not):
        return A.Not(subst_bexpr(b.expr, sub))
    if isinstance(b, A.BAnd):
        return A.BAnd(subst_bexpr(b.left, sub), subst_bexpr(b.right, sub))
    if isinstance(b, A.BOr):
        return A.BOr(subst_bexpr(b.left, sub), subst_bexpr(b.right, sub))
    raise TypeError(f"unknown BExpr {b!r}")
