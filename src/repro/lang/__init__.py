"""The Retreet tree-traversal language (paper §2)."""

from . import ast
from .blocks import Block, BlockTable, CondInfo, PathItem, Relation
from .parser import ParseError, normalize_program, parse_program
from .printer import block_key, program_source
from .rewrites import (
    flag_guard_reads,
    parse_with_mutation,
    simulate_mutation,
)
from .validate import ValidationError, validate

__all__ = [
    "ast",
    "Block",
    "BlockTable",
    "CondInfo",
    "PathItem",
    "Relation",
    "ParseError",
    "normalize_program",
    "parse_program",
    "block_key",
    "program_source",
    "ValidationError",
    "validate",
    "flag_guard_reads",
    "parse_with_mutation",
    "simulate_mutation",
]
