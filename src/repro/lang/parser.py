"""Recursive-descent parser for the ``.retreet`` concrete syntax.

Syntax sketch (see ``examples/`` and the case-study sources for full
programs)::

    Odd(n) {
      if (n == nil) { return 0 }
      else {
        ls = Even(n.l);
        rs = Even(n.r);
        return ls + rs + 1
      }
    }

    Main(n) {
      { o = Odd(n) || e = Even(n) };
      return o, e
    }

Notes:

* ``{ A || B }`` is parallel composition; a plain ``{ ... }`` groups.
* consecutive non-call assignments are coalesced into a single *block*
  (the paper's ``Assgn+``) by :func:`normalize_program`;
* comparison sugar ``a < b``, ``a >= b``, ``a == b`` … is normalized onto the
  paper's atoms ``AExpr > 0`` / ``== 0``;
* tree mutation (``n.l = …``) is rejected at parse time with a pointer to the
  mutation-simulation rewrite (paper §5, `repro.lang.rewrites`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import ast as A
from .lexer import Token, tokenize

__all__ = ["ParseError", "parse_program", "parse_expr", "normalize_program"]


class ParseError(SyntaxError):
    pass


class _Parser:
    def __init__(self, toks: List[Token]) -> None:
        self.toks = toks
        self.i = 0

    # -- token plumbing ------------------------------------------------------
    @property
    def cur(self) -> Token:
        return self.toks[self.i]

    def at(self, kind: str, text: Optional[str] = None) -> bool:
        t = self.cur
        return t.kind == kind and (text is None or t.text == text)

    def eat(self, kind: str, text: Optional[str] = None) -> Token:
        if not self.at(kind, text):
            want = text or kind
            raise ParseError(
                f"expected {want!r}, found {self.cur.text!r} "
                f"at line {self.cur.line}, col {self.cur.col}"
            )
        t = self.cur
        self.i += 1
        return t

    def try_eat(self, kind: str, text: Optional[str] = None) -> bool:
        if self.at(kind, text):
            self.i += 1
            return True
        return False

    # -- program / functions --------------------------------------------------
    def program(self, name: str, entry: str) -> A.Program:
        funcs: Dict[str, A.Func] = {}
        while not self.at("eof"):
            f = self.func()
            if f.name in funcs:
                raise ParseError(f"duplicate function {f.name!r}")
            funcs[f.name] = f
        if not funcs:
            raise ParseError("empty program")
        if entry not in funcs:
            entry = next(iter(funcs))
        prog = A.Program(funcs, entry=entry, name=name)
        _infer_return_arities(prog)
        return prog

    def func(self) -> A.Func:
        fname = self.eat("id").text
        self.eat("sym", "(")
        params: List[str] = [self.eat("id").text]
        while self.try_eat("sym", ","):
            params.append(self.eat("id").text)
        self.eat("sym", ")")
        body = self.braced_stmt()
        return A.Func(fname, params[0], tuple(params[1:]), body)

    # -- statements -------------------------------------------------------------
    def braced_stmt(self) -> A.Stmt:
        """Parse ``{ ... }``: a sequence, or a parallel composition."""
        self.eat("sym", "{")
        branches: List[A.Stmt] = [self.stmt_seq(stop={"}", "||"})]
        while self.try_eat("sym", "||"):
            branches.append(self.stmt_seq(stop={"}", "||"}))
        self.eat("sym", "}")
        if len(branches) > 1:
            return A.Par(tuple(branches))
        return branches[0]

    def stmt_seq(self, stop: set) -> A.Stmt:
        stmts: List[A.Stmt] = []
        while True:
            if self.cur.kind == "sym" and self.cur.text in stop:
                break
            if self.at("eof"):
                break
            stmts.append(self.stmt())
            while self.try_eat("sym", ";"):
                pass
        if not stmts:
            return A.Skip()
        if len(stmts) == 1:
            return stmts[0]
        return A.Seq(tuple(stmts))

    def stmt(self) -> A.Stmt:
        if self.at("kw", "if"):
            return self.if_stmt()
        if self.at("sym", "{"):
            return self.braced_stmt()
        if self.at("kw", "skip"):
            self.eat("kw", "skip")
            return A.Skip()
        if self.at("kw", "return"):
            self.eat("kw", "return")
            exprs = [self.aexpr()]
            while self.try_eat("sym", ","):
                exprs.append(self.aexpr())
            return A.AssignBlock((A.Return(tuple(exprs)),))
        return self.assign_or_call()

    def if_stmt(self) -> A.If:
        self.eat("kw", "if")
        self.eat("sym", "(")
        cond = self.bexpr()
        self.eat("sym", ")")
        then = self.stmt() if not self.at("sym", "{") else self.braced_stmt()
        els: Optional[A.Stmt] = None
        if self.try_eat("kw", "else"):
            if self.at("kw", "if"):
                els = self.if_stmt()
            elif self.at("sym", "{"):
                els = self.braced_stmt()
            else:
                els = self.stmt()
        return A.If(cond, then, els)

    def assign_or_call(self) -> A.Stmt:
        """Parse ``targets = call(...)``, ``v = e``, ``loc.f = e`` or a bare
        call ``g(loc, ...)``."""
        # Optional parenthesized target tuple: (a, b) = ...
        if self.at("sym", "("):
            save = self.i
            try:
                self.eat("sym", "(")
                targets = [self.eat("id").text]
                while self.try_eat("sym", ","):
                    targets.append(self.eat("id").text)
                self.eat("sym", ")")
                self.eat("sym", "=")
            except ParseError:
                self.i = save
                raise
            return self.rhs_after_targets(tuple(targets))

        first = self.eat("id").text
        # Dotted lhs: location step(s) and/or a field name.
        if self.at("sym", "."):
            loc: A.LExpr = A.LocVar(first)
            segs: List[str] = []
            while self.try_eat("sym", "."):
                segs.append(self.eat_any_name())
            # All but the last segment must be directions.
            for s in segs[:-1]:
                if s not in ("l", "r"):
                    raise ParseError(f"bad location path segment {s!r}")
                loc = A.LocField(loc, s)
            last = segs[-1]
            if self.at("sym", "="):
                self.eat("sym", "=")
                if last in ("l", "r"):
                    raise ParseError(
                        f"tree mutation '{loc}.{last} = ...' is not allowed in "
                        "Retreet; simulate it with mutable local fields "
                        "(see repro.lang.rewrites.simulate_mutation)"
                    )
                return A.AssignBlock((A.FieldAssign(loc, last, self.aexpr()),))
            raise ParseError(f"expected '=' after field l-value at line {self.cur.line}")
        if self.at("sym", "("):
            # bare call: g(loc, args)
            return self.call_tail((), first)
        if self.try_eat("sym", ","):
            targets = [first, self.eat("id").text]
            while self.try_eat("sym", ","):
                targets.append(self.eat("id").text)
            self.eat("sym", "=")
            return self.rhs_after_targets(tuple(targets))
        self.eat("sym", "=")
        return self.rhs_after_targets((first,))

    def eat_any_name(self) -> str:
        if self.cur.kind in ("id", "kw"):
            t = self.cur
            self.i += 1
            return t.text
        raise ParseError(f"expected name at line {self.cur.line}")

    def rhs_after_targets(self, targets: Tuple[str, ...]) -> A.Stmt:
        # Call if an identifier followed by '(' comes next.
        if self.cur.kind == "id" and self.toks[self.i + 1].text == "(":
            fname = self.eat("id").text
            return self.call_tail(targets, fname)
        # Tuple rhs: e1, e2, ... assigned pointwise.
        exprs = [self.aexpr()]
        while self.try_eat("sym", ","):
            exprs.append(self.aexpr())
        if len(exprs) != len(targets):
            raise ParseError(
                f"assignment arity mismatch: {len(targets)} targets, "
                f"{len(exprs)} expressions at line {self.cur.line}"
            )
        return A.AssignBlock(
            tuple(A.VarAssign(t, e) for t, e in zip(targets, exprs))
        )

    def call_tail(self, targets: Tuple[str, ...], fname: str) -> A.CallStmt:
        self.eat("sym", "(")
        loc = self.loc_expr()
        args: List[A.AExpr] = []
        while self.try_eat("sym", ","):
            args.append(self.aexpr())
        self.eat("sym", ")")
        return A.CallStmt(targets, fname, loc, tuple(args))

    # -- expressions --------------------------------------------------------------
    def loc_expr(self) -> A.LExpr:
        name = self.eat("id").text
        loc: A.LExpr = A.LocVar(name)
        while self.at("sym", ".") and self.toks[self.i + 1].text in ("l", "r"):
            # Only consume .l/.r as location steps when not a field read
            # followed by '='... in expression context l/r are directions.
            self.eat("sym", ".")
            loc = A.LocField(loc, self.eat_any_name())
        return loc

    def bexpr(self) -> A.BExpr:
        return self.b_or()

    def b_or(self) -> A.BExpr:
        left = self.b_and()
        while self.try_eat("sym", "||"):
            left = A.BOr(left, self.b_and())
        return left

    def b_and(self) -> A.BExpr:
        left = self.b_atom()
        while self.try_eat("sym", "&&"):
            left = A.BAnd(left, self.b_atom())
        return left

    def b_atom(self) -> A.BExpr:
        if self.try_eat("sym", "!"):
            return A.Not(self.b_atom())
        if self.at("kw", "true"):
            self.eat("kw", "true")
            return A.BTrue()
        if self.at("sym", "("):
            # Could be parenthesized bexpr or an aexpr comparison; try bexpr.
            save = self.i
            try:
                self.eat("sym", "(")
                inner = self.bexpr()
                self.eat("sym", ")")
                return inner
            except ParseError:
                self.i = save
        # aexpr cmp (aexpr | nil)
        left = self.aexpr()
        if self.cur.kind == "sym" and self.cur.text in ("==", "!=", ">", "<", ">=", "<="):
            op = self.eat("sym").text
            if self.at("kw", "nil"):
                self.eat("kw", "nil")
                loc = _as_loc(left)
                if loc is None:
                    raise ParseError("nil comparison requires a location expression")
                return A.IsNil(loc) if op == "==" else A.Not(A.IsNil(loc))
            right = self.aexpr()
            return _compare(left, op, right)
        raise ParseError(
            f"expected comparison operator at line {self.cur.line}, "
            f"found {self.cur.text!r}"
        )

    def aexpr(self) -> A.AExpr:
        left = self.term()
        while self.cur.kind == "sym" and self.cur.text in ("+", "-"):
            op = self.eat("sym").text
            right = self.term()
            left = A.Add(left, right) if op == "+" else A.Sub(left, right)
        return left

    def term(self) -> A.AExpr:
        if self.try_eat("sym", "-"):
            return A.Neg(self.term())
        if self.at("int"):
            return A.Const(int(self.eat("int").text))
        if self.at("kw", "max") or self.at("kw", "min"):
            kw = self.eat("kw").text
            self.eat("sym", "(")
            args = [self.aexpr()]
            while self.try_eat("sym", ","):
                args.append(self.aexpr())
            self.eat("sym", ")")
            return A.Max(tuple(args)) if kw == "max" else A.Min(tuple(args))
        if self.try_eat("sym", "("):
            e = self.aexpr()
            self.eat("sym", ")")
            return e
        name = self.eat("id").text
        # Dotted: location steps then a field read.
        if self.at("sym", "."):
            loc: A.LExpr = A.LocVar(name)
            segs: List[str] = []
            while self.at("sym", ".") :
                self.eat("sym", ".")
                segs.append(self.eat_any_name())
            for s in segs[:-1]:
                if s not in ("l", "r"):
                    raise ParseError(f"bad location path segment {s!r}")
                loc = A.LocField(loc, s)
            last = segs[-1]
            # A trailing .l/.r is a location (legal only in nil comparisons;
            # `_as_loc` reinterprets it there, and the validator rejects a
            # genuine integer use of a location).
            return A.FieldRead(loc, last)
        return A.Var(name)


def _as_loc(e: A.AExpr) -> Optional[A.LExpr]:
    """Reinterpret an arithmetic parse as a location (for nil comparisons)."""
    if isinstance(e, A.Var):
        return A.LocVar(e.name)
    if isinstance(e, A.FieldRead) and e.fieldname in ("l", "r"):
        return A.LocField(e.loc, e.fieldname)
    return None


def _compare(a: A.AExpr, op: str, b: A.AExpr) -> A.BExpr:
    """Normalize comparisons onto the paper's ``> 0`` / ``== 0`` atoms.

    Comparisons against literal 0 avoid the redundant subtraction so the
    printer/parser round-trip is a fixpoint."""
    zero_a = isinstance(a, A.Const) and a.value == 0
    zero_b = isinstance(b, A.Const) and b.value == 0
    diff_ab = a if zero_b else A.Sub(a, b)
    diff_ba = b if zero_a else A.Sub(b, a)
    if op == ">":
        return A.Gt(diff_ab)
    if op == "<":
        return A.Gt(diff_ba)
    if op == ">=":
        return A.Not(A.Gt(diff_ba))
    if op == "<=":
        return A.Not(A.Gt(diff_ab))
    if op == "==":
        return A.Eq0(diff_ab)
    if op == "!=":
        return A.Not(A.Eq0(diff_ab))
    raise AssertionError(op)


def _infer_return_arities(prog: A.Program) -> None:
    """Set ``Func.n_returns`` from return statements (0 if none)."""

    def returns_in(stmt: A.Stmt) -> List[int]:
        if isinstance(stmt, A.AssignBlock):
            return [
                len(a.exprs) for a in stmt.assigns if isinstance(a, A.Return)
            ]
        if isinstance(stmt, A.If):
            out = returns_in(stmt.then)
            if stmt.els is not None:
                out += returns_in(stmt.els)
            return out
        if isinstance(stmt, (A.Seq, A.Par)):
            out = []
            for s in stmt.stmts:
                out += returns_in(s)
            return out
        return []

    for f in prog.funcs.values():
        arities = set(returns_in(f.body))
        if len(arities) > 1:
            raise ParseError(
                f"function {f.name!r} returns inconsistent arities {arities}"
            )
        f.n_returns = arities.pop() if arities else 0


def normalize_program(prog: A.Program) -> A.Program:
    """Coalesce adjacent non-call assignments into single blocks (``Assgn+``)
    and flatten nested sequences.  Mutates and returns ``prog``."""

    def norm(stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.Seq):
            flat: List[A.Stmt] = []
            for s in stmt.stmts:
                s = norm(s)
                if isinstance(s, A.Skip):
                    continue
                if isinstance(s, A.Seq):
                    flat.extend(s.stmts)
                else:
                    flat.append(s)
            merged: List[A.Stmt] = []
            for s in flat:
                if (
                    merged
                    and isinstance(s, A.AssignBlock)
                    and isinstance(merged[-1], A.AssignBlock)
                ):
                    merged[-1] = A.AssignBlock(merged[-1].assigns + s.assigns)
                else:
                    merged.append(s)
            if not merged:
                return A.Skip()
            if len(merged) == 1:
                return merged[0]
            return A.Seq(tuple(merged))
        if isinstance(stmt, A.If):
            return A.If(
                stmt.cond, norm(stmt.then), norm(stmt.els) if stmt.els else None
            )
        if isinstance(stmt, A.Par):
            return A.Par(tuple(norm(s) for s in stmt.stmts))
        return stmt

    for f in prog.funcs.values():
        f.body = norm(f.body)
    return prog


def parse_program(src: str, name: str = "program", entry: str = "Main") -> A.Program:
    """Parse and normalize a Retreet program from source text."""
    prog = _Parser(tokenize(src)).program(name, entry)
    return normalize_program(prog)


def parse_expr(src: str) -> A.AExpr:
    """Parse a standalone arithmetic expression (testing helper)."""
    p = _Parser(tokenize(src))
    e = p.aexpr()
    p.eat("eof")
    return e
