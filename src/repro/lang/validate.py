"""Static validation of the §2.1 Retreet restrictions.

Checks, per the paper:

* **No self-call on the same node** — the call graph, with edges labelled by
  whether the call descends (``n.l``/``n.r``) or stays on ``n``, must contain
  no cycle of all same-node edges.  This is the paper's termination
  restriction: "any function g(n, v̄) should not contain recursive calls to
  g(n, ...), directly or indirectly through inlining".
* **Single node traversal** — one ``Loc`` parameter per function; calls only
  on ``n``, ``n.l`` or ``n.r``.
* **No tree mutation** — enforced by the parser (no ``n.l = …`` l-values);
  re-checked here for programmatically built ASTs.
* **Return/target arities** agree with callee signatures.
* **Guarded dereference** — every ``le.dir`` use appears under a path
  condition implying ``le != nil`` (best-effort syntactic check; violations
  are reported as warnings because rewritten programs sometimes guard via
  arithmetic flags, cf. the tree-mutation case study).

``validate`` raises :class:`ValidationError` for hard violations and returns
a list of warning strings.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple

from . import ast as A
from .blocks import BlockTable

__all__ = ["ValidationError", "validate"]


class ValidationError(ValueError):
    pass


def _iter_stmts(stmt: A.Stmt) -> Iterator[A.Stmt]:
    yield stmt
    if isinstance(stmt, A.If):
        yield from _iter_stmts(stmt.then)
        if stmt.els is not None:
            yield from _iter_stmts(stmt.els)
    elif isinstance(stmt, (A.Seq, A.Par)):
        for s in stmt.stmts:
            yield from _iter_stmts(s)


def _call_edges(prog: A.Program) -> List[Tuple[str, str, bool]]:
    """(caller, callee, descends) for every call block."""
    out = []
    for f in prog.funcs.values():
        for s in _iter_stmts(f.body):
            if isinstance(s, A.CallStmt):
                out.append((f.name, s.func, len(s.loc.directions()) > 0))
    return out


def _has_same_node_cycle(prog: A.Program) -> List[str]:
    """Detect a cycle using only same-node (non-descending) call edges."""
    graph: Dict[str, Set[str]] = {f: set() for f in prog.funcs}
    for caller, callee, descends in _call_edges(prog):
        if not descends and callee in graph:
            graph[caller].add(callee)
    # Iterative DFS cycle detection.
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {f: WHITE for f in graph}
    for start in graph:
        if color[start] != WHITE:
            continue
        stack: List[Tuple[str, Iterator[str]]] = [(start, iter(graph[start]))]
        color[start] = GRAY
        trail = [start]
        while stack:
            node, it = stack[-1]
            adv = next(it, None)
            if adv is None:
                stack.pop()
                trail.pop()
                color[node] = BLACK
                continue
            if color[adv] == GRAY:
                return trail[trail.index(adv):] + [adv]
            if color[adv] == WHITE:
                color[adv] = GRAY
                trail.append(adv)
                stack.append((adv, iter(graph[adv])))
    return []


def validate(prog: A.Program) -> List[str]:
    """Validate; raises :class:`ValidationError`, returns warnings."""
    warnings: List[str] = []

    for f in prog.funcs.values():
        # Single Loc parameter is structural (Func has one loc_param).
        for s in _iter_stmts(f.body):
            if isinstance(s, A.CallStmt):
                if s.func not in prog.funcs:
                    raise ValidationError(
                        f"{f.name}: call to undefined function {s.func!r}"
                    )
                dirs = s.loc.directions()
                if len(dirs) > 1:
                    raise ValidationError(
                        f"{f.name}: call {s} descends more than one level; "
                        "Retreet calls must target n, n.l or n.r"
                    )
                if isinstance(_loc_base(s.loc), A.LocVar) and (
                    _loc_base(s.loc).name != f.loc_param
                ):
                    raise ValidationError(
                        f"{f.name}: call location {s.loc} does not start at "
                        f"the Loc parameter {f.loc_param!r}"
                    )
                callee = prog.funcs[s.func]
                if len(s.targets) not in (0, callee.n_returns):
                    raise ValidationError(
                        f"{f.name}: call {s} expects {callee.n_returns} "
                        f"return values, binds {len(s.targets)}"
                    )
            elif isinstance(s, A.AssignBlock):
                for a in s.assigns:
                    if isinstance(a, A.Return) and len(a.exprs) != f.n_returns:
                        raise ValidationError(
                            f"{f.name}: inconsistent return arity in {s}"
                        )

    cycle = _has_same_node_cycle(prog)
    if cycle:
        raise ValidationError(
            "same-node recursion cycle (violates the paper's termination "
            f"restriction): {' -> '.join(cycle)}"
        )

    warnings += _check_guarded_derefs(prog)
    warnings += _check_parallel_locals(prog)
    return warnings


def _loc_base(loc: A.LExpr) -> A.LocVar:
    while isinstance(loc, A.LocField):
        loc = loc.base
    assert isinstance(loc, A.LocVar)
    return loc


def _locs_used_in_aexpr(e: A.AExpr) -> Set[str]:
    from .exprs import iter_aexprs

    return {
        x.loc.directions()
        for x in iter_aexprs(e)
        if isinstance(x, A.FieldRead) and x.loc.directions()
    }


def _check_guarded_derefs(prog: A.Program) -> List[str]:
    """Best-effort check that child dereferences sit under non-nil guards."""
    warnings: List[str] = []
    table = BlockTable(prog)
    for b in table.blocks:
        # ``required`` collects directions strings of nodes that must be
        # non-nil for this block to execute safely.  Reading/writing a field
        # at directions d requires every prefix of d (including d itself and
        # the root "") to be non-nil; calling on n.l/n.r only requires the
        # prefixes *strictly above* the callee node.
        required: Set[str] = set()

        def need_field(dirs: str) -> None:
            for k in range(len(dirs) + 1):
                required.add(dirs[:k])

        def need_loc(dirs: str) -> None:
            for k in range(len(dirs)):
                required.add(dirs[:k])

        if isinstance(b.stmt, A.CallStmt):
            need_loc(b.stmt.loc.directions())
            for a in b.stmt.args:
                for d in _locs_used_in_aexpr(a):
                    need_field(d)
        else:
            for a in b.stmt.assigns:
                if isinstance(a, A.FieldAssign):
                    need_field(a.loc.directions())
                    exprs = [a.expr]
                elif isinstance(a, A.VarAssign):
                    exprs = [a.expr]
                else:
                    exprs = list(a.exprs)
                for e in exprs:
                    for d in _locs_used_in_aexpr(e):
                        need_field(d)
            # Reading fields of n itself also requires n non-nil.
            from .exprs import aexpr_field_reads

            for a in b.stmt.assigns:
                if isinstance(a, A.Return):
                    srcs = list(a.exprs)
                else:
                    srcs = [a.expr]
                for e in srcs:
                    if any(d == "" for d, _ in aexpr_field_reads(e)):
                        required.add("")
        if not required:
            continue
        guarded: Set[str] = set()
        for cond, pol in table.path_conditions(b):
            for loc_dirs, is_not_nil in _nil_facts(cond.cond, pol):
                if is_not_nil:
                    guarded.add(loc_dirs)
        for d in sorted(required):
            if d not in guarded:
                warnings.append(
                    f"{b.sid} ({b.func}): access through "
                    f"n{''.join('.' + c for c in d)} not syntactically "
                    "guarded by a non-nil test"
                )
                break
    return warnings


def _nil_facts(cond: A.BExpr, polarity: bool) -> List[Tuple[str, bool]]:
    """Extract (directions, is_not_nil) facts implied by cond==polarity."""
    if isinstance(cond, A.IsNil):
        # cond true -> loc is nil; false -> loc non-nil.
        return [(cond.loc.directions(), not polarity)]
    if isinstance(cond, A.Not):
        return _nil_facts(cond.expr, not polarity)
    if isinstance(cond, A.BAnd) and polarity:
        return _nil_facts(cond.left, True) + _nil_facts(cond.right, True)
    if isinstance(cond, A.BOr) and not polarity:
        return _nil_facts(cond.left, False) + _nil_facts(cond.right, False)
    return []


def _check_parallel_locals(prog: A.Program) -> List[str]:
    """Warn when parallel siblings write the same Int variable (the paper's
    speculative execution would be schedule-dependent)."""
    from .exprs import aexpr_vars

    warnings: List[str] = []

    def writes_of(stmt: A.Stmt) -> Set[str]:
        out: Set[str] = set()
        for s in _iter_stmts(stmt):
            if isinstance(s, A.CallStmt):
                out |= set(s.targets)
            elif isinstance(s, A.AssignBlock):
                for a in s.assigns:
                    if isinstance(a, A.VarAssign):
                        out.add(a.name)
        return out

    for f in prog.funcs.values():
        for s in _iter_stmts(f.body):
            if isinstance(s, A.Par):
                sets = [writes_of(br) for br in s.stmts]
                for i in range(len(sets)):
                    for j in range(i + 1, len(sets)):
                        shared = sets[i] & sets[j]
                        if shared:
                            warnings.append(
                                f"{f.name}: parallel branches both write "
                                f"{sorted(shared)}"
                            )
    return warnings
