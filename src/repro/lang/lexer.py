"""Tokenizer for the ``.retreet`` concrete syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

__all__ = ["Token", "LexError", "tokenize"]

KEYWORDS = {"if", "else", "return", "nil", "true", "max", "min", "skip"}

# Multi-character operators first so maximal munch works.
SYMBOLS = [
    "||", "&&", "==", "!=", ">=", "<=",
    "(", ")", "{", "}", ",", ";", ".", "=", ">", "<", "!", "+", "-",
]


@dataclass(frozen=True)
class Token:
    kind: str  # "id" | "int" | "kw" | "sym" | "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.text!r}@{self.line}:{self.col}"


class LexError(SyntaxError):
    pass


def tokenize(src: str) -> List[Token]:
    """Tokenize; comments run from ``//`` or ``#`` to end of line."""
    toks: List[Token] = []
    i, line, col = 0, 1, 1
    n = len(src)
    while i < n:
        ch = src[i]
        if ch == "\n":
            i, line, col = i + 1, line + 1, 1
            continue
        if ch in " \t\r":
            i += 1
            col += 1
            continue
        if src.startswith("//", i) or ch == "#":
            while i < n and src[i] != "\n":
                i += 1
            continue
        if ch.isdigit():
            j = i
            while j < n and src[j].isdigit():
                j += 1
            toks.append(Token("int", src[i:j], line, col))
            col += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (src[j].isalnum() or src[j] == "_"):
                j += 1
            word = src[i:j]
            toks.append(Token("kw" if word in KEYWORDS else "id", word, line, col))
            col += j - i
            i = j
            continue
        for sym in SYMBOLS:
            if src.startswith(sym, i):
                toks.append(Token("sym", sym, line, col))
                i += len(sym)
                col += len(sym)
                break
        else:
            raise LexError(f"unexpected character {ch!r} at line {line}, col {col}")
    toks.append(Token("eof", "", line, col))
    return toks
