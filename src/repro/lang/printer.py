"""Pretty-printer: AST → parseable ``.retreet`` source, plus canonical keys.

``program_source`` round-trips through :func:`repro.lang.parser.parse_program`
(tested property-style).  ``block_key`` produces a canonical structural string
for a code block, used by the bisimulation search to match ``AllNonCalls(P)``
with ``AllNonCalls(P')`` (paper Def. 3 requires the two programs to be built
from the same straight-line blocks).
"""

from __future__ import annotations

from typing import List

from . import ast as A

__all__ = ["program_source", "stmt_source", "block_key", "expr_source"]

_INDENT = "  "


def expr_source(e: A.AExpr) -> str:
    if isinstance(e, A.Const):
        return str(e.value)
    if isinstance(e, A.Var):
        return e.name
    if isinstance(e, A.FieldRead):
        return f"{e.loc}.{e.fieldname}"
    if isinstance(e, A.Add):
        return f"({expr_source(e.left)} + {expr_source(e.right)})"
    if isinstance(e, A.Sub):
        return f"({expr_source(e.left)} - {expr_source(e.right)})"
    if isinstance(e, A.Neg):
        return f"(0 - {expr_source(e.expr)})"
    if isinstance(e, A.Max):
        return "max(" + ", ".join(expr_source(a) for a in e.args) + ")"
    if isinstance(e, A.Min):
        return "min(" + ", ".join(expr_source(a) for a in e.args) + ")"
    raise TypeError(f"unknown AExpr {e!r}")


def bexpr_source(b: A.BExpr) -> str:
    if isinstance(b, A.BTrue):
        return "true"
    if isinstance(b, A.IsNil):
        return f"{b.loc} == nil"
    if isinstance(b, A.Gt):
        return f"{expr_source(b.expr)} > 0"
    if isinstance(b, A.Eq0):
        return f"{expr_source(b.expr)} == 0"
    if isinstance(b, A.Not):
        return f"!({bexpr_source(b.expr)})"
    if isinstance(b, A.BAnd):
        return f"({bexpr_source(b.left)} && {bexpr_source(b.right)})"
    if isinstance(b, A.BOr):
        return f"({bexpr_source(b.left)} || {bexpr_source(b.right)})"
    raise TypeError(f"unknown BExpr {b!r}")


def _assign_source(a: A.Assign) -> str:
    if isinstance(a, A.FieldAssign):
        return f"{a.loc}.{a.fieldname} = {expr_source(a.expr)}"
    if isinstance(a, A.VarAssign):
        return f"{a.name} = {expr_source(a.expr)}"
    if isinstance(a, A.Return):
        return "return " + ", ".join(expr_source(e) for e in a.exprs)
    raise TypeError(f"unknown Assign {a!r}")


def stmt_source(stmt: A.Stmt, depth: int = 1) -> List[str]:
    pad = _INDENT * depth
    if isinstance(stmt, A.CallStmt):
        lhs = ", ".join(stmt.targets) + " = " if stmt.targets else ""
        args = ", ".join([str(stmt.loc)] + [expr_source(a) for a in stmt.args])
        return [f"{pad}{lhs}{stmt.func}({args})"]
    if isinstance(stmt, A.AssignBlock):
        return [pad + _assign_source(a) for a in stmt.assigns]
    if isinstance(stmt, A.If):
        out = [f"{pad}if ({bexpr_source(stmt.cond)}) {{"]
        out += stmt_source(stmt.then, depth + 1)
        if stmt.els is not None:
            out.append(f"{pad}}} else {{")
            out += stmt_source(stmt.els, depth + 1)
        out.append(f"{pad}}}")
        return out
    if isinstance(stmt, A.Seq):
        out = []
        for i, s in enumerate(stmt.stmts):
            lines = stmt_source(s, depth)
            if i < len(stmt.stmts) - 1 and lines:
                lines[-1] += ";"
            out += lines
        return out
    if isinstance(stmt, A.Par):
        out = [f"{pad}{{"]
        for i, s in enumerate(stmt.stmts):
            out += stmt_source(s, depth + 1)
            if i < len(stmt.stmts) - 1:
                out.append(f"{pad}||")
        out.append(f"{pad}}}")
        return out
    if isinstance(stmt, A.Skip):
        return [f"{pad}skip"]
    raise TypeError(f"unknown Stmt {stmt!r}")


def program_source(prog: A.Program) -> str:
    """Emit parseable source for the whole program."""
    chunks: List[str] = []
    for f in prog.funcs.values():
        params = ", ".join([f.loc_param] + list(f.int_params))
        lines = [f"{f.name}({params}) {{"]
        lines += stmt_source(f.body, 1)
        lines.append("}")
        chunks.append("\n".join(lines))
    return "\n\n".join(chunks) + "\n"


def block_key(stmt: A.Stmt) -> str:
    """Canonical structural key for a block (identity-free).

    Two blocks with the same key run the same straight-line code; used for
    matching non-call blocks across programs in the bisimulation check.
    """
    if isinstance(stmt, A.AssignBlock):
        return "; ".join(_assign_source(a) for a in stmt.assigns)
    if isinstance(stmt, A.CallStmt):
        lhs = ", ".join(stmt.targets)
        args = ", ".join([str(stmt.loc)] + [expr_source(a) for a in stmt.args])
        return f"{lhs} = {stmt.func}({args})"
    raise TypeError(f"not a block: {stmt!r}")
