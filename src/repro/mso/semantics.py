"""Direct model-checking semantics for MSO formulas on labelled trees.

This evaluator defines the *meaning* the automata compiler must match; the
two are differentially tested against each other.  It enumerates quantifier
instantiations explicitly, so it is only usable on small trees — exactly its
job as a reference implementation.

Conventions shared with the compiler:

* first-order variables denote nodes of the tree **including nil leaves**;
* a child term ``x.d`` of a nil node denotes a (virtual) nil node: its
  ``isNil`` is true, it is in no set, it is not the root, and it equals
  another term only if that term is the same virtual node (same path);
* ``reach`` is proper ancestry over represented nodes.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional

from ..trees.heap import Tree
from . import syntax as S

__all__ = ["evaluate", "Assignment"]

# FO vars map to node paths; SO vars map to frozensets of node paths.
Assignment = Dict[str, object]


def _term_path(t: S.NodeTerm, env: Mapping[str, object]) -> str:
    base = env[t.var]
    assert isinstance(base, str), f"{t.var} is not first-order"
    return base + t.dirs


def _exists_in_tree(tree: Tree, path: str) -> bool:
    return path in tree


def evaluate(f: S.Formula, tree: Tree, env: Optional[Assignment] = None) -> bool:
    env = env or {}
    return _eval(f, tree, env)


def _all_paths(tree: Tree) -> List[str]:
    return tree.paths(include_nil=True)


def _eval(f: S.Formula, tree: Tree, env: Assignment) -> bool:
    if isinstance(f, S.TrueF):
        return True
    if isinstance(f, S.FalseF):
        return False
    if isinstance(f, S.In):
        p = _term_path(f.term, env)
        if not _exists_in_tree(tree, p):
            return False  # virtual nil nodes belong to no set
        s = env[f.setvar]
        assert isinstance(s, frozenset)
        return p in s
    if isinstance(f, S.IsNilT):
        p = _term_path(f.term, env)
        if not _exists_in_tree(tree, p):
            return True  # children of nil are nil
        return tree.node_at(p).is_nil
    if isinstance(f, S.RootT):
        p = _term_path(f.term, env)
        return p == ""
    if isinstance(f, S.EqT):
        return _term_path(f.a, env) == _term_path(f.b, env)
    if isinstance(f, S.Reach):
        pa, pb = env[f.a], env[f.b]
        assert isinstance(pa, str) and isinstance(pb, str)
        return len(pa) < len(pb) and pb.startswith(pa)
    if isinstance(f, S.LeftOf):
        pp, pc = env[f.parent], env[f.child]
        assert isinstance(pp, str) and isinstance(pc, str)
        if not _exists_in_tree(tree, pp) or tree.node_at(pp).is_nil:
            return False
        return pc == pp + "l"
    if isinstance(f, S.RightOf):
        pp, pc = env[f.parent], env[f.child]
        assert isinstance(pp, str) and isinstance(pc, str)
        if not _exists_in_tree(tree, pp) or tree.node_at(pp).is_nil:
            return False
        return pc == pp + "r"
    if isinstance(f, S.Subset):
        a, b = env[f.a], env[f.b]
        assert isinstance(a, frozenset) and isinstance(b, frozenset)
        return a <= b
    if isinstance(f, S.Sing):
        s = env[f.setvar]
        assert isinstance(s, frozenset)
        return len(s) == 1
    if isinstance(f, S.Empty):
        s = env[f.setvar]
        assert isinstance(s, frozenset)
        return not s
    if isinstance(f, S.ChildIs):
        px = env[f.xvar]
        pz = env[f.zvar]
        assert isinstance(px, str) and isinstance(pz, str)
        # z must be an actual (represented) node equal to x.dirs.
        return _exists_in_tree(tree, pz) and px + f.dirs == pz
    if isinstance(f, S.ParentRelIn):
        pu = env[f.uvar]
        assert isinstance(pu, str)
        if not pu or pu[-1] != f.d:
            return False
        parent = pu[:-1]
        target = parent + f.dirs
        if not _exists_in_tree(tree, target):
            return False
        s = env[f.setvar]
        assert isinstance(s, frozenset)
        return target in s
    if isinstance(f, S.ParentRelNil):
        pu = env[f.uvar]
        assert isinstance(pu, str)
        if not pu or pu[-1] != f.d:
            return False
        parent = pu[:-1]
        target = parent + f.dirs
        if not _exists_in_tree(tree, target):
            return True
        return tree.node_at(target).is_nil
    if isinstance(f, S.AgreeUpTo):
        pz = env[f.zvar]
        assert isinstance(pz, str)
        for k in range(len(pz) + 1):
            v = pz[:k]
            groups = (f.pairs,) if v == pz else (f.pairs, f.strict_pairs)
            for group in groups:
                for a, b in group:
                    sa, sb = env[a], env[b]
                    assert isinstance(sa, frozenset) and isinstance(sb, frozenset)
                    if (v in sa) != (v in sb):
                        return False
        return True
    if isinstance(f, S.Not):
        return not _eval(f.body, tree, env)
    if isinstance(f, S.And):
        return all(_eval(p, tree, env) for p in f.parts)
    if isinstance(f, S.Or):
        return any(_eval(p, tree, env) for p in f.parts)
    if isinstance(f, (S.Exists1, S.Forall1)):
        domain = _all_paths(tree)
        want_all = isinstance(f, S.Forall1)
        for values in _product(domain, len(f.names)):
            env2 = dict(env)
            env2.update(zip(f.names, values))
            r = _eval(f.body, tree, env2)
            if r and not want_all:
                return True
            if not r and want_all:
                return False
        return want_all
    if isinstance(f, (S.Exists2, S.Forall2)):
        domain = _all_paths(tree)
        want_all = isinstance(f, S.Forall2)
        for values in _product_sets(domain, len(f.names)):
            env2 = dict(env)
            env2.update(zip(f.names, values))
            r = _eval(f.body, tree, env2)
            if r and not want_all:
                return True
            if not r and want_all:
                return False
        return want_all
    raise TypeError(f"unknown formula {f!r}")


def _product(domain: List[str], k: int):
    if k == 0:
        yield ()
        return
    for v in domain:
        for rest in _product(domain, k - 1):
            yield (v,) + rest


def _powerset(domain: List[str]) -> Iterable[FrozenSet[str]]:
    return (
        frozenset(c)
        for c in chain.from_iterable(
            combinations(domain, r) for r in range(len(domain) + 1)
        )
    )


def _product_sets(domain: List[str], k: int):
    if k == 0:
        yield ()
        return
    for v in _powerset(domain):
        for rest in _product_sets(domain, k - 1):
            yield (v,) + rest
