"""Formula simplification and miniscoping.

Rewrites applied before compilation:

* flattening of nested ``And``/``Or``, constant folding, double-negation
  and De-Morgan pushing (negation normal form on demand);
* **miniscoping** — ``∀x (φ ∧ ψ)`` splits into ``∀x φ ∧ ∀x ψ`` and
  quantifiers drop over subformulas not mentioning the variable; this is
  the classical lever for automata-based procedures, since it turns one
  complement of a large product into several complements of small automata.

The Retreet encoder emits per-constraint quantifiers already (manual
miniscoping); this module provides the same transformation for arbitrary
user formulas, and the ablation benchmark measures its effect.
"""

from __future__ import annotations

from typing import List, Tuple

from . import syntax as S

__all__ = ["simplify", "miniscope", "nnf"]


def simplify(f: S.Formula) -> S.Formula:
    """Flatten, fold constants, drop trivial quantifiers, miniscope."""
    return miniscope(_flatten(f))


# ---------------------------------------------------------------------------
# Flattening and constant folding
# ---------------------------------------------------------------------------

def _flatten(f: S.Formula) -> S.Formula:
    if isinstance(f, S.Not):
        body = _flatten(f.body)
        if isinstance(body, S.Not):
            return body.body
        if isinstance(body, S.TrueF):
            return S.FalseF()
        if isinstance(body, S.FalseF):
            return S.TrueF()
        return S.Not(body)
    if isinstance(f, S.And):
        parts: List[S.Formula] = []
        for p in f.parts:
            p = _flatten(p)
            if isinstance(p, S.TrueF):
                continue
            if isinstance(p, S.FalseF):
                return S.FalseF()
            if isinstance(p, S.And):
                parts.extend(p.parts)
            else:
                parts.append(p)
        parts = _dedupe(parts)
        if not parts:
            return S.TrueF()
        return parts[0] if len(parts) == 1 else S.And(tuple(parts))
    if isinstance(f, S.Or):
        parts = []
        for p in f.parts:
            p = _flatten(p)
            if isinstance(p, S.FalseF):
                continue
            if isinstance(p, S.TrueF):
                return S.TrueF()
            if isinstance(p, S.Or):
                parts.extend(p.parts)
            else:
                parts.append(p)
        parts = _dedupe(parts)
        if not parts:
            return S.FalseF()
        return parts[0] if len(parts) == 1 else S.Or(tuple(parts))
    if isinstance(f, (S.Exists1, S.Forall1, S.Exists2, S.Forall2)):
        body = _flatten(f.body)
        used = S.free_vars(body)
        names = tuple(n for n in f.names if n in used)
        if isinstance(body, (S.TrueF, S.FalseF)) or not names:
            return body
        return type(f)(names, body)
    return f


def _dedupe(parts: List[S.Formula]) -> List[S.Formula]:
    seen = set()
    out = []
    for p in parts:
        k = str(p)
        if k not in seen:
            seen.add(k)
            out.append(p)
    return out


# ---------------------------------------------------------------------------
# Negation normal form
# ---------------------------------------------------------------------------

def nnf(f: S.Formula) -> S.Formula:
    """Push negations to the atoms (quantifiers dualized)."""

    def pos(g: S.Formula) -> S.Formula:
        if isinstance(g, S.Not):
            return neg(g.body)
        if isinstance(g, S.And):
            return S.And(tuple(pos(p) for p in g.parts))
        if isinstance(g, S.Or):
            return S.Or(tuple(pos(p) for p in g.parts))
        if isinstance(g, (S.Exists1, S.Forall1, S.Exists2, S.Forall2)):
            return type(g)(g.names, pos(g.body))
        return g

    def neg(g: S.Formula) -> S.Formula:
        if isinstance(g, S.Not):
            return pos(g.body)
        if isinstance(g, S.TrueF):
            return S.FalseF()
        if isinstance(g, S.FalseF):
            return S.TrueF()
        if isinstance(g, S.And):
            return S.Or(tuple(neg(p) for p in g.parts))
        if isinstance(g, S.Or):
            return S.And(tuple(neg(p) for p in g.parts))
        if isinstance(g, S.Exists1):
            return S.Forall1(g.names, neg(g.body))
        if isinstance(g, S.Forall1):
            return S.Exists1(g.names, neg(g.body))
        if isinstance(g, S.Exists2):
            return S.Forall2(g.names, neg(g.body))
        if isinstance(g, S.Forall2):
            return S.Exists2(g.names, neg(g.body))
        return S.Not(g)

    return pos(f)


# ---------------------------------------------------------------------------
# Miniscoping
# ---------------------------------------------------------------------------

def miniscope(f: S.Formula) -> S.Formula:
    """Narrow quantifier scopes.

    * ``∀x (φ ∧ ψ)``  →  ``∀x φ ∧ ∀x ψ``
    * ``∃x (φ ∨ ψ)``  →  ``∃x φ ∨ ∃x ψ``
    * ``Qx (φ ∘ ρ)`` with x ∉ free(ρ)  →  ``(Qx φ) ∘ ρ``
    """
    if isinstance(f, S.Not):
        return S.Not(miniscope(f.body))
    if isinstance(f, S.And):
        return S.And(tuple(miniscope(p) for p in f.parts))
    if isinstance(f, S.Or):
        return S.Or(tuple(miniscope(p) for p in f.parts))
    if isinstance(f, (S.Exists1, S.Forall1, S.Exists2, S.Forall2)):
        body = miniscope(f.body)
        universal = isinstance(f, (S.Forall1, S.Forall2))
        distributes = S.And if universal else S.Or
        if isinstance(body, distributes):
            return distributes(
                tuple(
                    miniscope(type(f)(f.names, p)) for p in body.parts
                )
            )
        if isinstance(body, (S.And, S.Or)):
            inside: List[S.Formula] = []
            outside: List[S.Formula] = []
            for p in body.parts:
                if S.free_vars(p) & set(f.names):
                    inside.append(p)
                else:
                    outside.append(p)
            if outside and inside:
                inner = (
                    inside[0] if len(inside) == 1 else type(body)(tuple(inside))
                )
                return _flatten(
                    type(body)(
                        tuple(outside) + (miniscope(type(f)(f.names, inner)),)
                    )
                )
            if outside and not inside:
                return body
        # Per-variable narrowing: drop names unused in the body.
        used = S.free_vars(body)
        names = tuple(n for n in f.names if n in used)
        if not names:
            return body
        return type(f)(names, body)
    return f
