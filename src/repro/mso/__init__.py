"""Monadic second-order logic over labelled binary trees."""

from . import syntax
from .compile import Compiler, freshen
from .semantics import evaluate
from .simplify import miniscope, nnf, simplify

__all__ = ["syntax", "Compiler", "freshen", "evaluate", "miniscope", "nnf", "simplify"]
