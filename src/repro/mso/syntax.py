"""Monadic second-order logic over labelled binary trees (paper §4).

The logic of the paper: a unique ``root``, ``left``/``right`` successors,
``reach`` as their transitive closure, and an ``isNil`` predicate closed
under successors (our models make nil nodes explicit leaves).  First-order
variables range over nodes (including nils), second-order variables over
node sets.

Beyond the textbook atoms we provide *child terms* — ``NodeTerm(x, "lr")``
denotes ``x.l.r`` — with direct atom automata.  The Retreet encoder uses
them to express ``Next``/``PathCond`` without inner quantifiers, which is
the main reason the symbolic pipeline stays tractable (the same rewriting a
MONA user performs by hand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Sequence, Tuple

__all__ = [
    "NodeTerm",
    "Formula",
    "In", "IsNilT", "RootT", "EqT", "Reach", "Subset", "Sing", "Empty",
    "LeftOf", "RightOf", "TrueF", "FalseF",
    "ChildIs", "ParentRelIn", "ParentRelNil", "AgreeUpTo",
    "Not", "And", "Or", "Implies", "Iff",
    "Exists1", "Forall1", "Exists2", "Forall2",
    "free_vars", "rename_formula",
]


@dataclass(frozen=True)
class NodeTerm:
    """A first-order node term: variable ``var`` descended through
    ``dirs`` ('' = the variable itself)."""

    var: str
    dirs: str = ""

    def __post_init__(self) -> None:
        if any(d not in "lr" for d in self.dirs):
            raise ValueError(f"bad dirs {self.dirs!r}")

    def __str__(self) -> str:
        return self.var + "".join("." + d for d in self.dirs)


class Formula:
    __slots__ = ()

    # Convenience combinators.
    def __and__(self, other: "Formula") -> "Formula":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Formula":
        return Or((self, other))

    def __invert__(self) -> "Formula":
        return Not(self)


# -- atoms -------------------------------------------------------------------

@dataclass(frozen=True)
class TrueF(Formula):
    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class FalseF(Formula):
    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class In(Formula):
    """``term ∈ X``"""

    term: NodeTerm
    setvar: str

    def __str__(self) -> str:
        return f"{self.term} in {self.setvar}"


@dataclass(frozen=True)
class IsNilT(Formula):
    """``isNil(term)`` — term denotes a nil node (children of nil are nil)."""

    term: NodeTerm

    def __str__(self) -> str:
        return f"isNil({self.term})"


@dataclass(frozen=True)
class RootT(Formula):
    """``term == root``"""

    term: NodeTerm

    def __str__(self) -> str:
        return f"root({self.term})"


@dataclass(frozen=True)
class EqT(Formula):
    """``term1 == term2`` (same node)."""

    a: NodeTerm
    b: NodeTerm

    def __str__(self) -> str:
        return f"{self.a} == {self.b}"


@dataclass(frozen=True)
class Reach(Formula):
    """``reach(x, y)``: x is a *proper* ancestor of y."""

    a: str
    b: str

    def __str__(self) -> str:
        return f"reach({self.a}, {self.b})"


@dataclass(frozen=True)
class LeftOf(Formula):
    """``left(x) == y``"""

    parent: str
    child: str

    def __str__(self) -> str:
        return f"left({self.parent}) == {self.child}"


@dataclass(frozen=True)
class RightOf(Formula):
    parent: str
    child: str

    def __str__(self) -> str:
        return f"right({self.parent}) == {self.child}"


@dataclass(frozen=True)
class Subset(Formula):
    a: str
    b: str

    def __str__(self) -> str:
        return f"{self.a} sub {self.b}"


@dataclass(frozen=True)
class Sing(Formula):
    """``X`` is a singleton (used to encode first-order variables)."""

    setvar: str

    def __str__(self) -> str:
        return f"sing({self.setvar})"


@dataclass(frozen=True)
class Empty(Formula):
    setvar: str

    def __str__(self) -> str:
        return f"empty({self.setvar})"


# -- encoder atoms -----------------------------------------------------------------
#
# These quantifier-free atoms exist so the Retreet encoder can express
# ``Next``/``Prev``/``Consistent`` without inner quantifier alternations.
# Each is definable in plain MSO (the test suite checks the equivalences);
# the direct automata keep the pipeline tractable.


@dataclass(frozen=True)
class ChildIs(Formula):
    """``x.dirs == z`` (z first-order)."""

    xvar: str
    dirs: str
    zvar: str

    def __str__(self) -> str:
        return f"{self.xvar}.{self.dirs} == {self.zvar}"


@dataclass(frozen=True)
class ParentRelIn(Formula):
    """``u`` is the ``d``-child of its parent ``p`` and ``p.dirs ∈ X`` —
    the quantifier-free shape of the paper's ``Prev``."""

    uvar: str
    d: str
    dirs: str
    setvar: str

    def __str__(self) -> str:
        return f"parent[{self.d}]({self.uvar}).{self.dirs} in {self.setvar}"


@dataclass(frozen=True)
class ParentRelNil(Formula):
    """``u`` is the ``d``-child of its parent ``p`` and ``p.dirs`` is nil."""

    uvar: str
    d: str
    dirs: str

    def __str__(self) -> str:
        return f"isNil(parent[{self.d}]({self.uvar}).{self.dirs})"


@dataclass(frozen=True)
class AgreeUpTo(Formula):
    """Prefix agreement — the core of the paper's ``Consistent`` predicate.

    Track pairs in ``pairs`` must agree on every ancestor of ``z``
    *including* ``z`` itself (condition labels: the diverging steps fire
    under the same conditions); pairs in ``strict_pairs`` must agree only
    on ancestors *strictly above* ``z`` (record labels: the configurations
    legitimately diverge at ``z``)."""

    zvar: str
    pairs: Tuple[Tuple[str, str], ...]
    strict_pairs: Tuple[Tuple[str, str], ...] = ()

    def __str__(self) -> str:
        ps = ",".join(f"{a}~{b}" for a, b in self.pairs)
        sp = ",".join(f"{a}~{b}" for a, b in self.strict_pairs)
        return f"agree_upto({self.zvar}; incl[{ps}]; strict[{sp}])"


# -- connectives ------------------------------------------------------------------

@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def __str__(self) -> str:
        return f"~({self.body})"


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " & ".join(map(str, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " | ".join(map(str, self.parts)) + ")"


def Implies(a: Formula, b: Formula) -> Formula:
    return Or((Not(a), b))


def Iff(a: Formula, b: Formula) -> Formula:
    return And((Implies(a, b), Implies(b, a)))


# -- quantifiers -----------------------------------------------------------------

@dataclass(frozen=True)
class Exists1(Formula):
    names: Tuple[str, ...]
    body: Formula

    def __str__(self) -> str:
        return f"ex1 {', '.join(self.names)}. ({self.body})"


@dataclass(frozen=True)
class Forall1(Formula):
    names: Tuple[str, ...]
    body: Formula

    def __str__(self) -> str:
        return f"all1 {', '.join(self.names)}. ({self.body})"


@dataclass(frozen=True)
class Exists2(Formula):
    names: Tuple[str, ...]
    body: Formula

    def __str__(self) -> str:
        return f"ex2 {', '.join(self.names)}. ({self.body})"


@dataclass(frozen=True)
class Forall2(Formula):
    names: Tuple[str, ...]
    body: Formula

    def __str__(self) -> str:
        return f"all2 {', '.join(self.names)}. ({self.body})"


# -- variable bookkeeping ------------------------------------------------------------

def free_vars(f: Formula) -> FrozenSet[str]:
    """Free variable names (first- and second-order share a namespace)."""
    if isinstance(f, (TrueF, FalseF)):
        return frozenset()
    if isinstance(f, In):
        return frozenset({f.term.var, f.setvar})
    if isinstance(f, (IsNilT, RootT)):
        return frozenset({f.term.var})
    if isinstance(f, EqT):
        return frozenset({f.a.var, f.b.var})
    if isinstance(f, (Reach, Subset)):
        return frozenset({f.a, f.b})
    if isinstance(f, (LeftOf, RightOf)):
        return frozenset({f.parent, f.child})
    if isinstance(f, (Sing, Empty)):
        return frozenset({f.setvar})
    if isinstance(f, ChildIs):
        return frozenset({f.xvar, f.zvar})
    if isinstance(f, ParentRelIn):
        return frozenset({f.uvar, f.setvar})
    if isinstance(f, ParentRelNil):
        return frozenset({f.uvar})
    if isinstance(f, AgreeUpTo):
        return (
            frozenset({f.zvar})
            | frozenset(t for p in f.pairs for t in p)
            | frozenset(t for p in f.strict_pairs for t in p)
        )
    if isinstance(f, Not):
        return free_vars(f.body)
    if isinstance(f, (And, Or)):
        out: FrozenSet[str] = frozenset()
        for p in f.parts:
            out |= free_vars(p)
        return out
    if isinstance(f, (Exists1, Forall1, Exists2, Forall2)):
        return free_vars(f.body) - frozenset(f.names)
    raise TypeError(f"unknown formula {f!r}")


def rename_formula(f: Formula, sub: dict) -> Formula:
    """Capture-avoiding-enough rename: substitute *free* variable names.

    Callers must ensure substituted names do not collide with bound names
    (the compiler freshens bound variables first)."""

    def r(name: str) -> str:
        return sub.get(name, name)

    if isinstance(f, (TrueF, FalseF)):
        return f
    if isinstance(f, In):
        return In(NodeTerm(r(f.term.var), f.term.dirs), r(f.setvar))
    if isinstance(f, IsNilT):
        return IsNilT(NodeTerm(r(f.term.var), f.term.dirs))
    if isinstance(f, RootT):
        return RootT(NodeTerm(r(f.term.var), f.term.dirs))
    if isinstance(f, EqT):
        return EqT(
            NodeTerm(r(f.a.var), f.a.dirs), NodeTerm(r(f.b.var), f.b.dirs)
        )
    if isinstance(f, Reach):
        return Reach(r(f.a), r(f.b))
    if isinstance(f, LeftOf):
        return LeftOf(r(f.parent), r(f.child))
    if isinstance(f, RightOf):
        return RightOf(r(f.parent), r(f.child))
    if isinstance(f, Subset):
        return Subset(r(f.a), r(f.b))
    if isinstance(f, Sing):
        return Sing(r(f.setvar))
    if isinstance(f, Empty):
        return Empty(r(f.setvar))
    if isinstance(f, ChildIs):
        return ChildIs(r(f.xvar), f.dirs, r(f.zvar))
    if isinstance(f, ParentRelIn):
        return ParentRelIn(r(f.uvar), f.d, f.dirs, r(f.setvar))
    if isinstance(f, ParentRelNil):
        return ParentRelNil(r(f.uvar), f.d, f.dirs)
    if isinstance(f, AgreeUpTo):
        return AgreeUpTo(
            r(f.zvar),
            tuple((r(a), r(b)) for a, b in f.pairs),
            tuple((r(a), r(b)) for a, b in f.strict_pairs),
        )
    if isinstance(f, Not):
        return Not(rename_formula(f.body, sub))
    if isinstance(f, And):
        return And(tuple(rename_formula(p, sub) for p in f.parts))
    if isinstance(f, Or):
        return Or(tuple(rename_formula(p, sub) for p in f.parts))
    if isinstance(f, (Exists1, Forall1, Exists2, Forall2)):
        inner = {k: v for k, v in sub.items() if k not in f.names}
        return type(f)(f.names, rename_formula(f.body, inner))
    raise TypeError(f"unknown formula {f!r}")
