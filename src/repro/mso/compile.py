"""Compilation of MSO formulas to bottom-up tree automata.

The classical WS2S decision procedure (Thatcher–Wright, as engineered in
MONA): every variable owns a label track; atoms become small deterministic
automata; conjunction/disjunction become products; negation complements
(determinizing if needed); quantification projects the variable's track.
First-order variables are singleton tracks — ``Sing`` is conjoined at their
quantifier.

Two engineering choices keep the pipeline tractable in pure Python:

* **child-term atoms** (``x.l ∈ X``, ``isNil(x.r)``, ``y == x.l``) have
  direct automata, so the Retreet encoder emits no inner quantifiers for
  ``Next``/``PathCond``;
* automata are minimized after every complement (and large product), and
  determinization carries a state budget that converts blow-ups into a
  clean :class:`~repro.automata.determinize.StateBudgetExceeded` for the
  caller's fallback logic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..automata.determinize import determinize
from ..automata.minimize import minimize, prune_unreachable
from ..automata.tta import TrackRegistry, TreeAutomaton
from ..runtime import ResourceGuard, as_guard
from . import syntax as S

__all__ = ["Compiler", "freshen", "structural_key"]


# ---------------------------------------------------------------------------
# Bound-variable freshening
# ---------------------------------------------------------------------------

def freshen(f: S.Formula, counter: Optional[List[int]] = None, env=None) -> S.Formula:
    """Rename bound variables to globally unique names."""
    counter = counter if counter is not None else [0]
    env = env or {}

    def rn(name: str) -> str:
        return env.get(name, name)

    if isinstance(f, (S.TrueF, S.FalseF)):
        return f
    if isinstance(f, S.In):
        return S.In(S.NodeTerm(rn(f.term.var), f.term.dirs), rn(f.setvar))
    if isinstance(f, S.IsNilT):
        return S.IsNilT(S.NodeTerm(rn(f.term.var), f.term.dirs))
    if isinstance(f, S.RootT):
        return S.RootT(S.NodeTerm(rn(f.term.var), f.term.dirs))
    if isinstance(f, S.EqT):
        return S.EqT(
            S.NodeTerm(rn(f.a.var), f.a.dirs), S.NodeTerm(rn(f.b.var), f.b.dirs)
        )
    if isinstance(f, S.Reach):
        return S.Reach(rn(f.a), rn(f.b))
    if isinstance(f, S.LeftOf):
        return S.LeftOf(rn(f.parent), rn(f.child))
    if isinstance(f, S.RightOf):
        return S.RightOf(rn(f.parent), rn(f.child))
    if isinstance(f, S.Subset):
        return S.Subset(rn(f.a), rn(f.b))
    if isinstance(f, S.Sing):
        return S.Sing(rn(f.setvar))
    if isinstance(f, S.Empty):
        return S.Empty(rn(f.setvar))
    if isinstance(f, S.ChildIs):
        return S.ChildIs(rn(f.xvar), f.dirs, rn(f.zvar))
    if isinstance(f, S.ParentRelIn):
        return S.ParentRelIn(rn(f.uvar), f.d, f.dirs, rn(f.setvar))
    if isinstance(f, S.ParentRelNil):
        return S.ParentRelNil(rn(f.uvar), f.d, f.dirs)
    if isinstance(f, S.AgreeUpTo):
        return S.AgreeUpTo(
            rn(f.zvar),
            tuple((rn(a), rn(b)) for a, b in f.pairs),
            tuple((rn(a), rn(b)) for a, b in f.strict_pairs),
        )
    if isinstance(f, S.Not):
        return S.Not(freshen(f.body, counter, env))
    if isinstance(f, S.And):
        return S.And(tuple(freshen(p, counter, env) for p in f.parts))
    if isinstance(f, S.Or):
        return S.Or(tuple(freshen(p, counter, env) for p in f.parts))
    if isinstance(f, (S.Exists1, S.Forall1, S.Exists2, S.Forall2)):
        env2 = dict(env)
        fresh_names = []
        for n in f.names:
            counter[0] += 1
            fn = f"{n}#{counter[0]}"
            env2[n] = fn
            fresh_names.append(fn)
        return type(f)(tuple(fresh_names), freshen(f.body, counter, env2))
    raise TypeError(f"unknown formula {f!r}")


def structural_key(f: S.Formula) -> str:
    """Cache key invariant under the *global* freshening offsets.

    ``freshen`` numbers bound variables with one counter per top-level
    formula, so the same shared predicate (``Configuration``,
    ``Consistent``, …) embedded in two different queries gets two
    different bound-name suffixes — and a ``str``-keyed memo table
    recompiles it from scratch for every query.  Re-freshening the
    subformula with a *local* counter renames its bound variables by
    traversal position, which depends only on the subformula's own
    structure: alpha-variants that differ only in freshening offsets map
    to one key, while free variables (including an enclosing
    quantifier's freshened binders) stay verbatim.

    Sharing across alpha-variants is sound because a compiled
    automaton's tracks are exactly the formula's *free* variables —
    quantifier compilation projects the bound tracks away — and the key
    keeps free variables distinct.
    """
    return str(freshen(f))


# ---------------------------------------------------------------------------
# The compiler
# ---------------------------------------------------------------------------

@dataclass
class CompileStats:
    products: int = 0
    complements: int = 0
    projections: int = 0
    minimizations: int = 0
    max_states: int = 0

    def note(self, a: TreeAutomaton) -> TreeAutomaton:
        self.max_states = max(self.max_states, a.n_states)
        return a


class Compiler:
    """Stateful formula -> automaton compiler with memoization."""

    def __init__(
        self,
        registry: Optional[TrackRegistry] = None,
        minimize_always: bool = True,
        det_budget: int = 200_000,
    ) -> None:
        self.registry = registry or TrackRegistry()
        self.minimize_always = minimize_always
        self.det_budget = det_budget
        # Optional wall-clock deadline (time.perf_counter() value) checked
        # inside long-running constructions; superseded by ``guard`` when
        # a ResourceGuard is installed (the solver sets both).
        self.deadline: Optional[float] = None
        self.guard: Optional[ResourceGuard] = None
        self.stats = CompileStats()
        self._cache: Dict[str, TreeAutomaton] = {}

    def _guard(self) -> Optional[ResourceGuard]:
        return as_guard(self.guard, self.deadline)

    # -- public API ---------------------------------------------------------
    def compile(self, formula: S.Formula, already_fresh: bool = False) -> TreeAutomaton:
        f = formula if already_fresh else freshen(formula)
        return self._compile(f)

    def compile_product(self, formula: S.Formula, already_fresh: bool = False):
        """Compile keeping a top-level conjunction *symbolic*.

        Returns a :class:`~repro.automata.product.ProductAutomaton` of
        the conjuncts' automata (each still compiled and minimized
        eagerly) instead of multiplying them out, so emptiness can run
        lazily on the implicit product.  Non-conjunctions compile as
        usual.
        """
        from ..automata.product import ProductAutomaton

        f = formula if already_fresh else freshen(formula)
        if isinstance(f, S.And):
            return ProductAutomaton([self._compile(p) for p in f.parts])
        return self._compile(f)

    # -- guard helpers --------------------------------------------------------
    def _bit(self, name: str, value: bool = True) -> int:
        return self.registry.bit(name, value)

    @property
    def _mgr(self):
        return self.registry.manager

    # -- main dispatch ------------------------------------------------------------
    def _compile(self, f: S.Formula) -> TreeAutomaton:
        key = structural_key(f)
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        a = self._build(f)
        a = self.stats.note(a)
        self._cache[key] = a
        return a

    def _build(self, f: S.Formula) -> TreeAutomaton:
        if isinstance(f, S.TrueF):
            return self._const(True)
        if isinstance(f, S.FalseF):
            return self._const(False)
        if isinstance(f, S.In):
            return self._atom_in(f.term, f.setvar)
        if isinstance(f, S.IsNilT):
            return self._atom_isnil(f.term)
        if isinstance(f, S.RootT):
            return self._atom_root(f.term)
        if isinstance(f, S.EqT):
            return self._atom_eq(f)
        if isinstance(f, S.Reach):
            return self._atom_reach(f.a, f.b)
        if isinstance(f, S.LeftOf):
            return self._atom_childis(f.parent, "l", f.child)
        if isinstance(f, S.RightOf):
            return self._atom_childis(f.parent, "r", f.child)
        if isinstance(f, S.Subset):
            return self._atom_subset(f.a, f.b)
        if isinstance(f, S.Sing):
            return self._atom_sing(f.setvar)
        if isinstance(f, S.Empty):
            return self._atom_empty(f.setvar)
        if isinstance(f, S.Not):
            inner = self._compile(f.body)
            self.stats.complements += 1
            out = inner.complemented(guard=self._guard())
            return self._maybe_min(out)
        if isinstance(f, S.And):
            return self._combine(f.parts, union=False)
        if isinstance(f, S.Or):
            return self._combine(f.parts, union=True)
        if isinstance(f, S.Exists2):
            inner = self._compile(f.body)
            self.stats.projections += 1
            out = inner.projected(f.names)
            return prune_unreachable(out)
        if isinstance(f, S.Exists1):
            body = S.And(
                tuple(S.Sing(n) for n in f.names) + (f.body,)
            )
            inner = self._compile(body)
            self.stats.projections += 1
            return prune_unreachable(inner.projected(f.names))
        if isinstance(f, S.Forall1):
            return self._compile(
                S.Not(S.Exists1(f.names, S.Not(f.body)))
            )
        if isinstance(f, S.Forall2):
            return self._compile(
                S.Not(S.Exists2(f.names, S.Not(f.body)))
            )
        raise TypeError(f"unknown formula {f!r}")

    def _maybe_min(self, a: TreeAutomaton) -> TreeAutomaton:
        if self.minimize_always and a.deterministic:
            self.stats.minimizations += 1
            return minimize(a, guard=self._guard())
        return prune_unreachable(a)

    def _combine(self, parts: Tuple[S.Formula, ...], union: bool) -> TreeAutomaton:
        autos = [self._compile(p) for p in parts]
        # Combine smallest-first to keep intermediate products small.
        autos.sort(key=lambda a: a.n_states)
        if union:
            return self._union(autos)
        guard = self._guard()
        acc = autos[0]
        for nxt in autos[1:]:
            self.stats.products += 1
            acc = acc.product(nxt, lambda x, y: x and y, guard=guard)
            acc = prune_unreachable(acc)
            if (
                acc.deterministic
                and acc.n_states > 8
                and self.minimize_always
            ):
                self.stats.minimizations += 1
                acc = minimize(acc.completed(), guard=guard)
        return acc

    # Unions of small deterministic automata go through the product (the
    # minimized DFTA keeps later complements cheap); anything larger uses
    # the linear disjoint sum (nondeterministic, and intersection products
    # against it still prune well).
    _UNION_PRODUCT_LIMIT = 24

    def _union(self, autos) -> TreeAutomaton:
        acc = autos[0]
        for nxt in autos[1:]:
            small = (
                acc.deterministic
                and nxt.deterministic
                and acc.n_states * nxt.n_states <= self._UNION_PRODUCT_LIMIT**2
            )
            if small:
                self.stats.products += 1
                acc = acc.completed().product(
                    nxt.completed(), lambda x, y: x or y
                )
                acc = prune_unreachable(acc)
                if acc.n_states > 8 and self.minimize_always:
                    self.stats.minimizations += 1
                    acc = minimize(acc.completed())
            else:
                acc = acc.union_sum(nxt)
        return prune_unreachable(acc)

    # ------------------------------------------------------------------
    # Atom automata.  State meanings documented per atom.
    # ------------------------------------------------------------------

    def _const(self, value: bool) -> TreeAutomaton:
        t = self._mgr.true
        return TreeAutomaton(
            registry=self.registry,
            tracks=frozenset(),
            n_states=1,
            leaf=[(t, 0)],
            delta={(0, 0): [(t, 0)]},
            accepting=frozenset({0}) if value else frozenset(),
            deterministic=True,
            complete=True,
        )

    def _atom_subset(self, a: str, b: str) -> TreeAutomaton:
        """States: 0 ok so far, 1 violation seen."""
        mgr = self._mgr
        viol = mgr.apply_and(self._bit(a), self._bit(b, False))
        ok = mgr.apply_not(viol)
        delta = {}
        for l in (0, 1):
            for r in (0, 1):
                if l or r:
                    delta[(l, r)] = [(mgr.true, 1)]
                else:
                    delta[(l, r)] = [(ok, 0), (viol, 1)]
        return TreeAutomaton(
            registry=self.registry,
            tracks=frozenset({a, b}),
            n_states=2,
            leaf=[(ok, 0), (viol, 1)],
            delta=delta,
            accepting=frozenset({0}),
            deterministic=True,
            complete=True,
        )

    def _atom_empty(self, x: str) -> TreeAutomaton:
        mgr = self._mgr
        has = self._bit(x)
        not_has = self._bit(x, False)
        delta = {}
        for l in (0, 1):
            for r in (0, 1):
                if l or r:
                    delta[(l, r)] = [(mgr.true, 1)]
                else:
                    delta[(l, r)] = [(not_has, 0), (has, 1)]
        return TreeAutomaton(
            registry=self.registry,
            tracks=frozenset({x}),
            n_states=2,
            leaf=[(not_has, 0), (has, 1)],
            delta=delta,
            accepting=frozenset({0}),
            deterministic=True,
            complete=True,
        )

    def _atom_sing(self, x: str) -> TreeAutomaton:
        """States count occurrences of the x bit: 0, 1, 2+ (=2)."""
        mgr = self._mgr
        has = self._bit(x)
        not_has = self._bit(x, False)
        delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for l in (0, 1, 2):
            for r in (0, 1, 2):
                base = min(l + r, 2)
                delta[(l, r)] = [
                    (not_has, base),
                    (has, min(base + 1, 2)),
                ]
        return TreeAutomaton(
            registry=self.registry,
            tracks=frozenset({x}),
            n_states=3,
            leaf=[(not_has, 0), (has, 1)],
            delta=delta,
            accepting=frozenset({1}),
            deterministic=True,
            complete=True,
        )

    # -- generic descendant-tracking machinery ------------------------------------
    #
    # For a term x.dirs we track, per subtree, a boolean vector v of length
    # len(dirs)+1 where v[k] answers a per-node property P at the node
    # root.dirs[k:] (v[-1] = P at the subtree root itself, taken from the
    # label).  v[k] = v_child(dirs[k])[k+1]; at a leaf the descendant slots
    # take P's value on virtual nil nodes.
    #
    # Combined with an x-status {0 unseen, 1 seen-true, 2 seen-false,
    # 3 multiple}, this yields the In/IsNil/ChildIs atoms uniformly.

    def _descendant_atom(
        self,
        xvar: str,
        dirs: str,
        tracks: FrozenSet[str],
        leaf_prop,  # label-guard pairs: list of (guard, bool) partition for P on a leaf
        node_prop,  # same for an internal node
        virtual_value: bool,  # P on virtual nil nodes below the frontier
    ) -> TreeAutomaton:
        mgr = self._mgr
        k = len(dirs)
        xb = self._bit(xvar)
        nxb = self._bit(xvar, False)

        # State encoding: (xstat, v) with v a tuple of k+1 bools.
        states: Dict[Tuple[int, Tuple[bool, ...]], int] = {}

        def mk(xstat: int, v: Tuple[bool, ...]) -> int:
            key = (xstat, v)
            if key not in states:
                states[key] = len(states)
            return states[key]

        leaf: List[Tuple[int, int]] = []
        for guard, pval in leaf_prop:
            v = tuple([virtual_value] * k + [pval])
            # x on a leaf: the target is k below -> virtual; truth = v[0].
            res_true = 1 if (v[0] if k > 0 else pval) else 2
            leaf.append((mgr.apply_and(guard, nxb), mk(0, v)))
            leaf.append((mgr.apply_and(guard, xb), mk(res_true, v)))
        leaf = [(g, q) for g, q in leaf if g != mgr.false]

        # Build transitions over discovered states until closure.
        delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        done = set()
        while True:
            snapshot = list(states.items())
            new = False
            for (xl, vl), il in snapshot:
                for (xr, vr), ir in snapshot:
                    keypair = (il, ir)
                    if keypair in done:
                        continue
                    done.add(keypair)
                    entries: List[Tuple[int, int]] = []
                    for guard, pval in node_prop:
                        v = tuple(
                            (vl if dirs[i] == "l" else vr)[i + 1]
                            for i in range(k)
                        ) + (pval,)
                        # x-status merge of children.
                        if xl == 3 or xr == 3 or (xl and xr):
                            base = 3
                        else:
                            base = xl or xr
                        # without x here:
                        g0 = mgr.apply_and(guard, nxb)
                        if g0 != mgr.false:
                            entries.append((g0, mk(base, v)))
                        # with x here:
                        g1 = mgr.apply_and(guard, xb)
                        if g1 != mgr.false:
                            if base != 0:
                                xs = 3
                            else:
                                target_val = v[0] if k > 0 else pval
                                xs = 1 if target_val else 2
                            entries.append((g1, mk(xs, v)))
                    delta[keypair] = entries
            if len(states) == len(snapshot) and not new:
                if all(
                    (i, j) in done
                    for i in states.values()
                    for j in states.values()
                ):
                    break
        accepting = frozenset(i for (xs, _v), i in states.items() if xs == 1)
        return TreeAutomaton(
            registry=self.registry,
            tracks=tracks | frozenset({xvar}),
            n_states=len(states),
            leaf=leaf,
            delta=delta,
            accepting=accepting,
            deterministic=True,
            complete=True,
        )

    def _atom_in(self, term: S.NodeTerm, setvar: str) -> TreeAutomaton:
        inb = self._bit(setvar)
        ninb = self._bit(setvar, False)
        prop = [(inb, True), (ninb, False)]
        return self._descendant_atom(
            term.var,
            term.dirs,
            frozenset({setvar}),
            leaf_prop=prop,
            node_prop=prop,
            virtual_value=False,  # virtual nil nodes belong to no set
        )

    def _atom_isnil(self, term: S.NodeTerm) -> TreeAutomaton:
        t = self._mgr.true
        return self._descendant_atom(
            term.var,
            term.dirs,
            frozenset(),
            leaf_prop=[(t, True)],
            node_prop=[(t, False)],
            virtual_value=True,  # children of nil are nil
        )

    def _atom_childis(self, xvar: str, dirs: str, zvar: str) -> TreeAutomaton:
        """``x.dirs == z`` — implemented as In(x.dirs, {z}); singleton-ness
        of z is enforced by conjoining Sing at the quantifier level."""
        zb = self._bit(zvar)
        nzb = self._bit(zvar, False)
        prop = [(zb, True), (nzb, False)]
        return self._descendant_atom(
            xvar,
            dirs,
            frozenset({zvar}),
            leaf_prop=prop,
            node_prop=prop,
            virtual_value=False,
        )

    def _atom_root(self, term: S.NodeTerm) -> TreeAutomaton:
        """States: 0 no x; 1 x at subtree root; 2 x strictly inside; 3 bad."""
        if term.dirs:
            # A strict descendant can never be the root.
            return self._const(False)
        mgr = self._mgr
        x = term.var
        xb, nxb = self._bit(x), self._bit(x, False)
        delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for l in (0, 1, 2, 3):
            for r in (0, 1, 2, 3):
                if l == 3 or r == 3 or (l and r):
                    base = 3
                elif l or r:
                    base = 2
                else:
                    base = 0
                entries = [(nxb, base)]
                entries.append((xb, 1 if base == 0 else 3))
                delta[(l, r)] = entries
        return TreeAutomaton(
            registry=self.registry,
            tracks=frozenset({x}),
            n_states=4,
            leaf=[(nxb, 0), (xb, 1)],
            delta=delta,
            accepting=frozenset({1}),
            deterministic=True,
            complete=True,
        )

    def _atom_eq(self, f: S.EqT) -> TreeAutomaton:
        """``x.da == y.db``; direct automaton when both terms are bare
        variables, otherwise via a fresh witness variable."""
        if not f.a.dirs and not f.b.dirs:
            if f.a.var == f.b.var:
                return self._const(True)
            # x == y: both bits on the same (single) node.
            mgr = self._mgr
            x, y = f.a.var, f.b.var
            both = mgr.apply_and(self._bit(x), self._bit(y))
            nx = mgr.apply_and(self._bit(x, False), self._bit(y, False))
            other = mgr.apply_not(mgr.apply_or(both, nx))
            delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
            # states: 0 none seen; 1 pair seen; 2 bad.
            for l in (0, 1, 2):
                for r in (0, 1, 2):
                    if l == 2 or r == 2 or (l == 1 and r == 1):
                        base = 2
                    else:
                        base = max(l, r)
                    delta[(l, r)] = [
                        (nx, base),
                        (both, 1 if base == 0 else 2),
                        (other, 2),
                    ]
            return TreeAutomaton(
                registry=self.registry,
                tracks=frozenset({x, y}),
                n_states=3,
                leaf=[(nx, 0), (both, 1), (other, 2)],
                delta=delta,
                accepting=frozenset({1}),
                deterministic=True,
            )
        # General case via an auxiliary first-order witness.
        z = f"@eq#{abs(hash((f.a, f.b))) % 10_000_000}"
        body = S.And(
            (
                self._childis_formula(f.a, z),
                self._childis_formula(f.b, z),
            )
        )
        return self._compile(S.Exists1((z,), body))

    @staticmethod
    def _childis_formula(term: S.NodeTerm, z: str) -> S.Formula:
        if not term.dirs:
            return S.EqT(S.NodeTerm(term.var), S.NodeTerm(z))
        # In(term, {z}) via the ChildIs automaton — expressed through
        # LeftOf/RightOf chains would need intermediate nodes; instead reuse
        # the descendant atom by treating {z} as the set:
        return _ChildIs(term.var, term.dirs, z)

    def _atom_reach(self, a: str, b: str) -> TreeAutomaton:
        """Proper ancestry.  States:
        0 none; 1 only b seen; 2 only a seen (dead); 3 a above b (accept);
        4 both seen but not in ancestry / duplicates (dead)."""
        mgr = self._mgr
        ab = self._bit(a)
        nab = self._bit(a, False)
        bb = self._bit(b)
        nbb = self._bit(b, False)
        g_none = mgr.apply_and(nab, nbb)
        g_a = mgr.apply_and(ab, nbb)
        g_b = mgr.apply_and(nab, bb)
        g_both = mgr.apply_and(ab, bb)

        def step(l: int, r: int) -> List[Tuple[int, int]]:
            # Merge child statuses.
            seen_a = l in (2, 3, 4) or r in (2, 3, 4)
            seen_b = l in (1, 3, 4) or r in (1, 3, 4)
            dup = (l in (2, 3, 4) and r in (2, 3, 4)) or (
                l in (1, 3, 4) and r in (1, 3, 4)
            )
            ok = l == 3 or r == 3
            # combined child state:
            if dup:
                base = 4
            elif ok:
                base = 3
            elif seen_a and seen_b:
                base = 4  # a and b in different subtrees: not ancestry
            elif seen_a:
                base = 2
            elif seen_b:
                base = 1
            else:
                base = 0
            out = [(g_none, base)]
            # a at this node:
            if seen_a or base == 4:
                out.append((g_a, 4))
            else:
                out.append((g_a, 3 if base == 1 else 2))
            # b at this node: b must be *below* a; a processed later (above).
            if seen_b or base == 4:
                out.append((g_b, 4))
            else:
                # base is 0 or 2 or 3; if a already below, b above a: dead.
                out.append((g_b, 1 if base == 0 else 4))
            # both on this node: reach is proper -> dead.
            out.append((g_both, 4))
            return out

        delta = {
            (l, r): step(l, r) for l in range(5) for r in range(5)
        }
        return TreeAutomaton(
            registry=self.registry,
            tracks=frozenset({a, b}),
            n_states=5,
            leaf=[(g_none, 0), (g_a, 2), (g_b, 1), (g_both, 4)],
            delta=delta,
            accepting=frozenset({3}),
            deterministic=True,
            complete=True,
        )


# Alias kept for the local helper below.
_ChildIs = S.ChildIs


# ---------------------------------------------------------------------------
# Automata for the encoder atoms
# ---------------------------------------------------------------------------

def _atom_parent_rel(
    self: Compiler, uvar: str, d: str, dirs: str, prop, virtual_value: bool,
    extra_tracks: FrozenSet[str],
) -> TreeAutomaton:
    """Shared automaton for ParentRelIn / ParentRelNil.

    ``prop`` is a list of (guard, bool) partitioning labels by the tracked
    per-node property P.  Each subtree state carries (ustat, v) where v[k] =
    P at root.dirs[k:] (v[-1] = P at the root's own label) and ustat is
    {0 unseen, 1 pending (u at subtree root), 2 ok, 3 dead}.  The pending
    mark resolves at u's parent: u must be the ``d``-child and P must hold
    at parent.dirs (= v_parent[0], available at the parent step).
    """
    mgr = self.registry.manager
    k = len(dirs)
    ub = self._bit(uvar)
    nub = self._bit(uvar, False)
    states: Dict[Tuple[int, Tuple[bool, ...]], int] = {}

    def mk(ustat: int, v: Tuple[bool, ...]) -> int:
        key = (ustat, v)
        if key not in states:
            states[key] = len(states)
        return states[key]

    leaf: List[Tuple[int, int]] = []
    for guard, pval in prop:
        v = tuple([virtual_value] * k + [pval])
        g0 = mgr.apply_and(guard, nub)
        if g0 != mgr.false:
            leaf.append((g0, mk(0, v)))
        g1 = mgr.apply_and(guard, ub)
        if g1 != mgr.false:
            leaf.append((g1, mk(1, v)))

    delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    done = set()
    while True:
        snapshot = list(states.items())
        for (ul, vl), il in snapshot:
            for (ur, vr), ir in snapshot:
                key = (il, ir)
                if key in done:
                    continue
                done.add(key)
                entries: List[Tuple[int, int]] = []
                for guard, pval in prop:
                    v = tuple(
                        (vl if dirs[i] == "l" else vr)[i + 1] for i in range(k)
                    ) + (pval,)
                    # Resolve a pending child mark at this (parent) node.
                    child_stat = ul if d == "l" else ur
                    other_stat = ur if d == "l" else ul
                    resolved: Optional[int] = None
                    if child_stat == 1:
                        target = v[0] if k > 0 else pval
                        resolved = 2 if target else 3
                        merged = _merge_ustat(resolved, _settle(other_stat))
                    else:
                        merged = _merge_ustat(_settle(ul), _settle(ur))
                    g0 = mgr.apply_and(guard, nub)
                    if g0 != mgr.false:
                        entries.append((g0, mk(merged, v)))
                    g1 = mgr.apply_and(guard, ub)
                    if g1 != mgr.false:
                        # u here too -> duplicate unless nothing below.
                        entries.append(
                            (g1, mk(1 if merged == 0 else 3, v))
                        )
                delta[key] = entries
        if len(states) == len(snapshot):
            if all(
                (i, j) in done
                for i in states.values()
                for j in states.values()
            ):
                break
    accepting = frozenset(i for (us, _v), i in states.items() if us == 2)
    return TreeAutomaton(
        registry=self.registry,
        tracks=extra_tracks | frozenset({uvar}),
        n_states=len(states),
        leaf=leaf,
        delta=delta,
        accepting=accepting,
        deterministic=True,
        complete=True,
    )


def _settle(ustat: int) -> int:
    """A pending mark whose parent step passed without resolution (u was in
    the non-``d`` child, or deeper) can never resolve: dead."""
    return 3 if ustat == 1 else ustat


def _merge_ustat(a: int, b: int) -> int:
    if a == 3 or b == 3:
        return 3
    if a and b:
        return 3  # duplicates
    return a or b


def _atom_agree_upto(self: Compiler, f: S.AgreeUpTo) -> TreeAutomaton:
    """States: 0 z not in subtree; 1 z inside & path so far agrees; 2 dead.

    At ``z`` itself only the inclusive pairs must agree; strictly above it
    both the inclusive and the strict pairs must."""
    mgr = self.registry.manager
    zb = self._bit(f.zvar)
    nzb = self._bit(f.zvar, False)

    def iff_all(pairs) -> int:
        g = mgr.true
        for a, b in pairs:
            ab, bb = self._bit(a), self._bit(b)
            iff = mgr.apply_or(
                mgr.apply_and(ab, bb),
                mgr.apply_and(mgr.apply_not(ab), mgr.apply_not(bb)),
            )
            g = mgr.apply_and(g, iff)
        return g

    agree_at_z = iff_all(f.pairs)
    agree_above = mgr.apply_and(agree_at_z, iff_all(f.strict_pairs))
    dis_at_z = mgr.apply_not(agree_at_z)
    dis_above = mgr.apply_not(agree_above)
    delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for l in (0, 1, 2):
        for r in (0, 1, 2):
            if l == 2 or r == 2 or (l == 1 and r == 1):
                base = 2
            else:
                base = 1 if (l == 1 or r == 1) else 0
            entries = []
            if base == 0:
                # z could sit here; inclusive pairs must agree at z.
                entries.append((nzb, 0))
                entries.append((mgr.apply_and(zb, agree_at_z), 1))
                entries.append((mgr.apply_and(zb, dis_at_z), 2))
            elif base == 1:
                # On the path above z: full agreement; no second z.
                entries.append((mgr.apply_and(nzb, agree_above), 1))
                entries.append((mgr.apply_and(nzb, dis_above), 2))
                entries.append((zb, 2))
            else:
                entries.append((mgr.true, 2))
            delta[(l, r)] = entries
    tracks = (
        frozenset({f.zvar})
        | frozenset(t for pair in f.pairs for t in pair)
        | frozenset(t for pair in f.strict_pairs for t in pair)
    )
    return TreeAutomaton(
        registry=self.registry,
        tracks=tracks,
        n_states=3,
        leaf=[
            (nzb, 0),
            (mgr.apply_and(zb, agree_at_z), 1),
            (mgr.apply_and(zb, dis_at_z), 2),
        ],
        accepting=frozenset({1}),
        delta=delta,
        deterministic=True,
        complete=True,
    )


# Register the internal atoms in the compiler dispatch.
_original_build = Compiler._build


def _build_extended(self: Compiler, f: S.Formula) -> TreeAutomaton:
    if isinstance(f, _ChildIs):
        return self._atom_childis(f.xvar, f.dirs, f.zvar)
    if isinstance(f, S.ParentRelIn):
        xb = self._bit(f.setvar)
        nxb = self._bit(f.setvar, False)
        return _atom_parent_rel(
            self, f.uvar, f.d, f.dirs,
            prop=[(xb, True), (nxb, False)],
            virtual_value=False,
            extra_tracks=frozenset({f.setvar}),
        )
    if isinstance(f, S.ParentRelNil):
        t = self.registry.manager.true
        # P = "this node is nil": on leaves True, internal False.  The
        # prop partition differs between leaf and internal node, so build
        # with distinct leaf/node property tables via the descendant trick:
        return _atom_parent_rel_nil(self, f)
    if isinstance(f, S.AgreeUpTo):
        return _atom_agree_upto(self, f)
    return _original_build(self, f)


def _atom_parent_rel_nil(self: Compiler, f: S.ParentRelNil) -> TreeAutomaton:
    """ParentRel variant where the property is is-nil (leaf-dependent)."""
    # Reuse _atom_parent_rel twice is awkward because prop depends on
    # leafness; inline a tailored build: P(leaf)=True, P(internal)=False.
    mgr = self.registry.manager
    uvar, d, dirs = f.uvar, f.d, f.dirs
    k = len(dirs)
    ub = self._bit(uvar)
    nub = self._bit(uvar, False)
    states: Dict[Tuple[int, Tuple[bool, ...]], int] = {}

    def mk(ustat: int, v: Tuple[bool, ...]) -> int:
        key = (ustat, v)
        if key not in states:
            states[key] = len(states)
        return states[key]

    leaf = []
    v_leaf = tuple([True] * (k + 1))
    leaf.append((nub, mk(0, v_leaf)))
    leaf.append((ub, mk(1, v_leaf)))
    delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    done = set()
    while True:
        snapshot = list(states.items())
        for (ul, vl), il in snapshot:
            for (ur, vr), ir in snapshot:
                key = (il, ir)
                if key in done:
                    continue
                done.add(key)
                v = tuple(
                    (vl if dirs[i] == "l" else vr)[i + 1] for i in range(k)
                ) + (False,)
                child_stat = ul if d == "l" else ur
                other_stat = ur if d == "l" else ul
                if child_stat == 1:
                    target = v[0] if k > 0 else False
                    merged = _merge_ustat(
                        2 if target else 3, _settle(other_stat)
                    )
                else:
                    merged = _merge_ustat(_settle(ul), _settle(ur))
                entries = [(nub, mk(merged, v))]
                entries.append((ub, mk(1 if merged == 0 else 3, v)))
                delta[key] = entries
        if len(states) == len(snapshot):
            if all(
                (i, j) in done
                for i in states.values()
                for j in states.values()
            ):
                break
    accepting = frozenset(i for (us, _v), i in states.items() if us == 2)
    return TreeAutomaton(
        registry=self.registry,
        tracks=frozenset({uvar}),
        n_states=len(states),
        leaf=leaf,
        delta=delta,
        accepting=accepting,
        deterministic=True,
        complete=True,
    )


Compiler._build = _build_extended  # type: ignore[method-assign]
