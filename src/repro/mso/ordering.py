"""Compile-time BDD variable ordering from program/automaton structure.

Guard BDDs in the compiled tree automata are built over the *track* levels
of the shared :class:`~repro.bdd.bdd.VarRegistry`; their size is dictated by
the variable order, which is frozen the first time each track is registered.
Two classic ordering lessons drive the heuristic here:

* **state-bit interleaving** — tracks playing the same role in different
  configuration families (``P1.L.s3`` / ``P2.L.s3`` / ``Q1.L.s3`` …) appear
  together in equality-style guards (the ``AgreeUpTo`` chains of
  ``Consistent``).  With a blocked order (all of family 1, then all of
  family 2) those BDDs are exponential in the number of labels; interleaved,
  they are linear.  :func:`interleave` therefore emits levels column-major:
  one logical *column* (label) at a time, every family's instance of it on
  consecutive levels.

* **alphabet-bit grouping** — within one family, automaton guards are
  conjunctions of pins over small co-occurring label sets: a function's
  blocks and its call sites (successor/predecessor uniqueness), and the
  arithmetic conditions its speculative paths pin (``Next``/``Prev``
  disjuncts).  Placing co-occurring columns on nearby levels keeps those
  conjunction/ITE BDDs shallow.  :func:`seriate` is a greedy
  bandwidth-reduction pass over the column affinity graph: starting from a
  seed column it repeatedly places the unplaced column with the highest
  recency-weighted affinity to the last few placed ones.

The module is deliberately generic — columns are opaque hashables, affinity
is a weighted edge dict — so the encoder owns *what* co-occurs and this
module owns *how* to linearize it.  See DESIGN.md §12.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Sequence, Tuple, TypeVar

__all__ = ["seriate", "interleave", "WINDOW"]

Column = TypeVar("Column", bound=Hashable)

#: How many recently-placed columns contribute to a candidate's score.
#: Small on purpose: guards conjoin a handful of labels at a time, and a
#: short window keeps the greedy pass from chasing global degree.
WINDOW = 4


def seriate(
    columns: Sequence[Column],
    edges: Dict[Tuple[Column, Column], float],
    start: "Column | None" = None,
) -> List[Column]:
    """Linearize ``columns`` so high-affinity pairs land close together.

    ``edges`` maps unordered column pairs to non-negative weights (missing
    pairs have affinity 0).  ``start`` seeds the order when given and
    present.  The result is a permutation of ``columns``; ties and
    disconnected components fall back to the input order, so the pass is
    deterministic and degrades to the caller's order when the graph is
    empty.
    """
    if not columns:
        return []
    rank = {c: i for i, c in enumerate(columns)}
    adj: Dict[Column, Dict[Column, float]] = {c: {} for c in columns}
    for (a, b), w in edges.items():
        if a == b or a not in rank or b not in rank or w <= 0:
            continue
        adj[a][b] = adj[a].get(b, 0.0) + w
        adj[b][a] = adj[b].get(a, 0.0) + w

    remaining = set(columns)
    placed: List[Column] = []
    cur: "Column | None" = start if start in remaining else None
    while remaining:
        if cur is None or cur not in remaining:
            # Fresh component: heaviest total affinity, then input order.
            cur = min(remaining, key=lambda c: (-sum(adj[c].values()), rank[c]))
        placed.append(cur)
        remaining.discard(cur)

        window = placed[-WINDOW:]
        candidates = set()
        for p in window:
            candidates.update(adj[p])
        candidates &= remaining
        if not candidates:
            cur = None
            continue

        def score(c: Column) -> float:
            # Recency-decayed affinity to the window: the just-placed
            # column counts full weight, earlier ones half each step back.
            s = 0.0
            for back, p in enumerate(reversed(window)):
                s += adj[p].get(c, 0.0) / (1 << back)
            return s

        cur = max(candidates, key=lambda c: (score(c), -rank[c]))
    return placed


def interleave(
    columns: Sequence[Column],
    namers: Sequence[Callable[[Column], str]],
) -> List[str]:
    """Column-major track emission: for each column in order, one track per
    family (``namers``) on consecutive levels."""
    out: List[str] = []
    for col in columns:
        for namer in namers:
            out.append(namer(col))
    return out
