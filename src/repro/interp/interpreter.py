"""Concrete interpreter for Retreet with interleaving parallel semantics.

Blocks are the atomic units (matching the paper's iteration granularity):
``{A || B}`` executes as a serialized interleaving of the blocks of A and B,
driven by a :class:`~repro.interp.schedules.Scheduler`.  All function
parameters are call-by-value.

The interpreter is the semantic ground truth of the reproduction: fusion
verdicts are cross-checked by running original and transformed programs on
random trees, and race counterexamples are replayed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from ..lang import ast as A
from ..lang.blocks import Block, BlockTable
from ..lang.exprs import eval_aexpr, eval_bexpr
from ..trees.heap import NilAccessError, Tree, TreeNode
from .schedules import LeftFirst, Scheduler
from .trace import Context, Event, Iteration, Trace

__all__ = ["run", "ExecutionError", "Result"]


class ExecutionError(RuntimeError):
    pass


@dataclass
class Result:
    """Outcome of one execution."""

    returns: Tuple[int, ...]
    trace: Trace
    tree: Tree  # the (possibly mutated) heap after execution

    def field_snapshot(self, fields: Sequence[str]) -> Dict[str, Dict[str, int]]:
        """node path -> {field: value} for the given fields."""
        out: Dict[str, Dict[str, int]] = {}
        for n in self.tree.nodes():
            out[n.path] = {f: n.get(f) for f in fields}
        return out


@dataclass
class _Frame:
    """An activation record."""

    func: A.Func
    node: TreeNode
    env: Dict[str, int]
    context: Context
    scope_id: int
    returned: bool = False
    ret_values: Tuple[int, ...] = ()


class _Machine:
    def __init__(
        self,
        program: A.Program,
        tree: Tree,
        scheduler: Scheduler,
        record_events: bool,
        strict_vars: bool,
        max_steps: int,
    ) -> None:
        self.program = program
        self.table = BlockTable(program)
        self.tree = tree
        self.scheduler = scheduler
        self.record_events = record_events
        self.strict_vars = strict_vars
        self.max_steps = max_steps
        self.trace = Trace()
        self._scope_counter = 0
        self._par_counter = 0
        self._steps = 0

    # -- heap helpers --------------------------------------------------------
    def _resolve(self, loc: A.LExpr, frame: _Frame) -> TreeNode:
        node = frame.node
        for d in loc.directions():
            if node.is_nil:
                raise NilAccessError(
                    f"dereference of nil at {node.path!r} in {frame.func.name}"
                )
            node = node.child(d)
        return node

    def _read_field(self, loc: A.LExpr, fname: str, frame: _Frame, sid: Optional[str]) -> int:
        node = self._resolve(loc, frame)
        if node.is_nil:
            raise NilAccessError(
                f"field read {loc}.{fname} hits nil in {frame.func.name}"
            )
        if self.record_events:
            self.trace.events.append(
                Event(
                    "read", "field", node.path, fname,
                    len(self.trace.iterations) - 1, sid, frame.context,
                )
            )
        return node.get(fname)

    def _write_field(self, loc: A.LExpr, fname: str, value: int, frame: _Frame, sid: str) -> None:
        node = self._resolve(loc, frame)
        if node.is_nil:
            raise NilAccessError(
                f"field write {loc}.{fname} hits nil in {frame.func.name}"
            )
        if self.record_events:
            self.trace.events.append(
                Event(
                    "write", "field", node.path, fname,
                    len(self.trace.iterations) - 1, sid, frame.context,
                )
            )
        node.set(fname, value)

    def _read_var(self, name: str, frame: _Frame) -> int:
        if name not in frame.env:
            if self.strict_vars:
                raise ExecutionError(
                    f"read of unassigned variable {name!r} in {frame.func.name}"
                )
            return 0
        return frame.env[name]

    # -- expression evaluation ------------------------------------------------
    def _eval_a(self, e: A.AExpr, frame: _Frame, sid: Optional[str]) -> int:
        return eval_aexpr(
            e,
            _EnvView(self, frame),
            lambda loc, f: self._read_field(loc, f, frame, sid),
        )

    def _eval_b(self, b: A.BExpr, frame: _Frame, sid: Optional[str]) -> bool:
        return eval_bexpr(
            b,
            _EnvView(self, frame),
            lambda loc, f: self._read_field(loc, f, frame, sid),
            lambda loc: self._resolve(loc, frame).is_nil,
        )

    # -- statement execution as cooperative generators --------------------------
    def exec_stmt(self, stmt: A.Stmt, frame: _Frame) -> Generator[None, None, None]:
        if frame.returned:
            return
        self._steps += 1
        if self._steps > self.max_steps:
            raise ExecutionError(f"exceeded max_steps={self.max_steps}")
        if isinstance(stmt, A.Skip):
            return
        if isinstance(stmt, A.Seq):
            for s in stmt.stmts:
                yield from self.exec_stmt(s, frame)
                if frame.returned:
                    return
            return
        if isinstance(stmt, A.If):
            # Condition evaluation is attributed to the if, not a block.
            branch = self._eval_b(stmt.cond, frame, None)
            if branch:
                yield from self.exec_stmt(stmt.then, frame)
            elif stmt.els is not None:
                yield from self.exec_stmt(stmt.els, frame)
            return
        if isinstance(stmt, A.Par):
            self._par_counter += 1
            pid = self._par_counter
            branches = []
            for i, s in enumerate(stmt.stmts):
                bframe = _Frame(
                    frame.func, frame.node, frame.env,
                    frame.context + (("par", pid, i),), frame.scope_id,
                )
                branches.append(self.exec_stmt(s, bframe))
            live = list(range(len(branches)))
            while live:
                pick = self.scheduler.choose(live)
                try:
                    next(branches[pick])
                    yield
                except StopIteration:
                    live.remove(pick)
            return
        if isinstance(stmt, A.AssignBlock):
            block = self.table.of_stmt(stmt)
            self.trace.iterations.append(
                Iteration(block.sid, frame.node.path, frame.context)
            )
            for a in stmt.assigns:
                if isinstance(a, A.VarAssign):
                    frame.env[a.name] = self._eval_a(a.expr, frame, block.sid)
                elif isinstance(a, A.FieldAssign):
                    v = self._eval_a(a.expr, frame, block.sid)
                    self._write_field(a.loc, a.fieldname, v, frame, block.sid)
                else:  # Return
                    frame.ret_values = tuple(
                        self._eval_a(e, frame, block.sid) for e in a.exprs
                    )
                    frame.returned = True
                    yield
                    return
            yield
            return
        if isinstance(stmt, A.CallStmt):
            block = self.table.of_stmt(stmt)
            yield from self.exec_call(block, frame)
            return
        raise TypeError(f"unknown statement {stmt!r}")

    def exec_call(self, block: Block, frame: _Frame) -> Generator[None, None, None]:
        stmt = block.stmt
        assert isinstance(stmt, A.CallStmt)
        callee = self.program.funcs[stmt.func]
        target_node = self._resolve(stmt.loc, frame)
        args = tuple(self._eval_a(a, frame, block.sid) for a in stmt.args)
        if len(args) != len(callee.int_params):
            raise ExecutionError(
                f"{block.sid}: call to {callee.name} with {len(args)} Int "
                f"args, expected {len(callee.int_params)}"
            )
        self._scope_counter += 1
        sub = _Frame(
            callee,
            target_node,
            dict(zip(callee.int_params, args)),
            frame.context + (("call", block.sid, target_node.path),),
            self._scope_counter,
        )
        yield from self.exec_stmt(callee.body, sub)
        if stmt.targets:
            if len(sub.ret_values) != len(stmt.targets):
                raise ExecutionError(
                    f"{block.sid}: {callee.name} returned "
                    f"{len(sub.ret_values)} values, expected {len(stmt.targets)}"
                )
            for t, v in zip(stmt.targets, sub.ret_values):
                frame.env[t] = v


class _EnvView(dict):
    """Mapping view over a frame's environment with default-0 semantics."""

    def __init__(self, machine: _Machine, frame: _Frame) -> None:
        super().__init__()
        self._m = machine
        self._f = frame

    def __getitem__(self, name: str) -> int:
        return self._m._read_var(name, self._f)

    def __contains__(self, name: str) -> bool:  # pragma: no cover
        return True


def run(
    program: A.Program,
    tree: Tree,
    args: Sequence[int] = (),
    scheduler: Optional[Scheduler] = None,
    record_events: bool = True,
    inplace: bool = False,
    strict_vars: bool = False,
    max_steps: int = 1_000_000,
) -> Result:
    """Execute ``program`` on ``tree``.

    ``args`` are the Int arguments of the entry function.  Unless
    ``inplace``, the tree is cloned first.  The scheduler controls the
    interleaving of parallel regions (default: left branch runs to
    completion first).
    """
    work = tree if inplace else tree.clone()
    m = _Machine(
        program, work, scheduler or LeftFirst(), record_events, strict_vars, max_steps
    )
    entry = program.main
    if len(args) != len(entry.int_params):
        raise ExecutionError(
            f"entry {entry.name} takes {len(entry.int_params)} Int args, "
            f"got {len(args)}"
        )
    m._scope_counter += 1
    frame = _Frame(
        entry, work.root, dict(zip(entry.int_params, args)),
        (("call", "main", ""),), m._scope_counter,
    )
    for _ in m.exec_stmt(entry.body, frame):
        pass
    m.trace.returns = frame.ret_values
    return Result(frame.ret_values, m.trace, work)
