"""Execution traces: iterations, access events and happens-before.

An execution of a Retreet program is a sequence of *iterations* — each runs
one non-call block on one tree node (paper §3).  The interpreter additionally
records every field/variable access as an :class:`Event` tagged with its
*dynamic context*: the path through the dynamic call/compose tree.  Two
events are concurrent iff the first differing step of their contexts is a
pair of distinct branches of the same dynamic ``par`` — exact happens-before
for fork-join parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["Iteration", "Event", "Trace", "concurrent", "Context"]

# A dynamic context is a tuple of steps.  Steps:
#   ("call", call-site sid, node path)   — entered a function call
#   ("par", id(par-instance), branch)    — inside branch of a dynamic par
Context = Tuple[Tuple, ...]


@dataclass(frozen=True)
class Iteration:
    """One execution of a non-call block on a node."""

    sid: str
    node: str  # tree path of the node the function runs on
    context: Context

    def __str__(self) -> str:
        return f"({self.sid}, {self.node or 'root'})"


@dataclass(frozen=True)
class Event:
    """A single memory access."""

    kind: str  # "read" | "write"
    target: str  # "field" | "var"
    node: str  # tree path ("" for root); for vars: the frame scope id
    name: str  # field or variable name
    iteration: int  # index into Trace.iterations (-1 for condition reads)
    sid: Optional[str]  # block sid if attributable
    context: Context = ()

    @property
    def is_write(self) -> bool:
        return self.kind == "write"


def concurrent(a: Context, b: Context) -> bool:
    """True iff contexts diverge at distinct branches of the same par."""
    k = 0
    while k < len(a) and k < len(b) and a[k] == b[k]:
        k += 1
    if k >= len(a) or k >= len(b):
        return False
    sa, sb = a[k], b[k]
    return (
        sa[0] == "par"
        and sb[0] == "par"
        and sa[1] == sb[1]
        and sa[2] != sb[2]
    )


@dataclass
class Trace:
    """Full record of one execution."""

    iterations: List[Iteration] = field(default_factory=list)
    events: List[Event] = field(default_factory=list)
    returns: Tuple[int, ...] = ()

    def iteration_pairs(self) -> List[Tuple[str, str]]:
        """(sid, node) pairs in execution order — the paper's sequence of
        iterations."""
        return [(it.sid, it.node) for it in self.iterations]

    def field_events(self) -> List[Event]:
        return [e for e in self.events if e.target == "field"]

    def __len__(self) -> int:
        return len(self.iterations)
