"""Concrete execution semantics for Retreet (interpreter, schedules, races)."""

from .interpreter import ExecutionError, Result, run
from .races import RacePair, find_races, program_races_on
from .schedules import (
    LeftFirst,
    RandomScheduler,
    ReplayScheduler,
    RoundRobin,
    Scheduler,
    all_schedules,
    distinct_outcomes,
    program_schedule_outcomes,
)
from .trace import Event, Iteration, Trace, concurrent

__all__ = [
    "ExecutionError", "Result", "run",
    "RacePair", "find_races", "program_races_on",
    "LeftFirst", "RandomScheduler", "ReplayScheduler", "RoundRobin",
    "Scheduler", "all_schedules", "distinct_outcomes",
    "program_schedule_outcomes",
    "Event", "Iteration", "Trace", "concurrent",
]
