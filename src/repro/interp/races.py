"""Dynamic data-race detection over execution traces.

Uses the exact fork-join happens-before of :func:`repro.interp.trace.concurrent`:
two field accesses race iff they target the same (node, field), at least one
is a write, and their dynamic contexts sit in different branches of the same
dynamic ``par``.  Because the relation is schedule-independent for fork-join
programs, one execution suffices to decide racefreeness of the program *on
that input tree*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..lang import ast as A
from ..trees.heap import Tree
from .interpreter import run
from .trace import Event, Trace, concurrent

__all__ = ["RacePair", "find_races", "program_races_on"]


@dataclass(frozen=True)
class RacePair:
    """Two conflicting concurrent accesses."""

    first: Event
    second: Event

    @property
    def node(self) -> str:
        return self.first.node

    @property
    def field(self) -> str:
        return self.first.name

    def __str__(self) -> str:
        f, s = self.first, self.second
        where = f"node {f.node or 'root'}.{f.name}"
        return (
            f"race on {where}: {f.kind} by {f.sid or 'cond'} || "
            f"{s.kind} by {s.sid or 'cond'}"
        )


def find_races(trace: Trace, include_vars: bool = False) -> List[RacePair]:
    """All racing pairs in a trace (field accesses; vars optional)."""
    races: List[RacePair] = []
    events = [
        e
        for e in trace.events
        if e.target == "field" or (include_vars and e.target == "var")
    ]
    # Group by accessed cell to keep the pairwise scan near-linear.
    by_cell: dict = {}
    for e in events:
        by_cell.setdefault((e.target, e.node, e.name), []).append(e)
    for cell_events in by_cell.values():
        for i in range(len(cell_events)):
            a = cell_events[i]
            for j in range(i + 1, len(cell_events)):
                b = cell_events[j]
                if not (a.is_write or b.is_write):
                    continue
                if concurrent(a.context, b.context):
                    races.append(RacePair(a, b))
    return races


def program_races_on(
    program: A.Program,
    tree: Tree,
    args: Sequence[int] = (),
) -> List[RacePair]:
    """Run the program once and report the races on that tree."""
    result = run(program, tree, args=args, record_events=True)
    return find_races(result.trace)
