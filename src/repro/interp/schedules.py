"""Schedulers for the interleaving semantics of ``{A || B}``.

A scheduler picks which live parallel branch executes its next atomic block.
``all_schedules`` exhaustively enumerates interleavings (used to test
data-race verdicts on small trees), ``RandomScheduler`` samples them.
"""

from __future__ import annotations

import random
from typing import Callable, Iterator, List, Optional, Sequence

__all__ = [
    "Scheduler",
    "LeftFirst",
    "RoundRobin",
    "RandomScheduler",
    "ReplayScheduler",
    "all_schedules",
    "distinct_outcomes",
    "program_schedule_outcomes",
]


class Scheduler:
    """Base: choose the branch index (from ``live``) to step next."""

    def choose(self, live: Sequence[int]) -> int:
        raise NotImplementedError


class LeftFirst(Scheduler):
    """Run the leftmost live branch to completion first (sequentialization)."""

    def choose(self, live: Sequence[int]) -> int:
        return live[0]


class RoundRobin(Scheduler):
    """Alternate among live branches, one atomic block at a time."""

    def __init__(self) -> None:
        self._last = -1

    def choose(self, live: Sequence[int]) -> int:
        later = [i for i in live if i > self._last]
        pick = later[0] if later else live[0]
        self._last = pick
        return pick


class RandomScheduler(Scheduler):
    """Seeded uniformly random interleaving."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose(self, live: Sequence[int]) -> int:
        return self._rng.choice(list(live))


class ReplayScheduler(Scheduler):
    """Replay a recorded decision sequence; fall back to left-first."""

    def __init__(self, decisions: Sequence[int]) -> None:
        self.decisions = list(decisions)
        self._i = 0
        self.recorded: List[int] = []

    def choose(self, live: Sequence[int]) -> int:
        if self._i < len(self.decisions) and self.decisions[self._i] in live:
            pick = self.decisions[self._i]
        else:
            pick = live[0]
        self._i += 1
        self.recorded.append(pick)
        return pick


class _TrackingScheduler(Scheduler):
    """Follows a prefix of decisions, recording branch-point fan-out."""

    def __init__(self, prefix: Sequence[int]) -> None:
        self.prefix = list(prefix)
        self._i = 0
        self.decisions: List[int] = []
        self.fanout: List[List[int]] = []

    def choose(self, live: Sequence[int]) -> int:
        live = list(live)
        if self._i < len(self.prefix):
            pick = self.prefix[self._i]
            if pick not in live:
                pick = live[0]
        else:
            pick = live[0]
        self._i += 1
        self.decisions.append(pick)
        self.fanout.append(live)
        return pick


def all_schedules(
    run_with: Callable[[Scheduler], object],
    max_schedules: int = 10_000,
) -> Iterator[object]:
    """Enumerate every interleaving by DFS over scheduler decision points.

    ``run_with`` executes the program under the given scheduler and returns
    an arbitrary outcome object.  Yields one outcome per distinct schedule.
    """
    stack: List[List[int]] = [[]]
    count = 0
    while stack:
        prefix = stack.pop()
        sched = _TrackingScheduler(prefix)
        outcome = run_with(sched)
        count += 1
        if count > max_schedules:
            raise RuntimeError(f"more than {max_schedules} schedules")
        yield outcome
        # Fork on the first decision point at or after the prefix where
        # alternatives remain unexplored.
        for k in range(len(sched.decisions) - 1, len(prefix) - 1, -1):
            chosen = sched.decisions[k]
            for alt in sched.fanout[k]:
                if alt > chosen:
                    stack.append(sched.decisions[:k] + [alt])


def distinct_outcomes(
    run_with: Callable[[Scheduler], object],
    key: Optional[Callable[[object], object]] = None,
    max_schedules: int = 10_000,
) -> List[object]:
    """All schedule outcomes, deduplicated by ``key`` (default: identity)."""
    seen = {}
    for outcome in all_schedules(run_with, max_schedules):
        k = key(outcome) if key else outcome
        if k not in seen:
            seen[k] = outcome
    return list(seen.values())


def program_schedule_outcomes(
    program,
    tree,
    fields: Sequence[str] = (),
    max_schedules: int = 240,
    sample_seeds: Sequence[int] = (0, 1, 2, 3, 4),
):
    """Distinct observable outcomes of ``program`` on ``tree`` across
    interleavings: ``(outcome_keys, exhaustive)``.

    An outcome key is the returned tuple plus a canonical snapshot of
    every field the final heap carries.  Interleavings are enumerated
    exhaustively via :func:`all_schedules` up to ``max_schedules``; when
    the schedule space is larger, falls back to left-first, round-robin
    and ``sample_seeds`` random schedules and reports ``exhaustive=
    False``.  A race-free program must yield exactly one key — the
    conformance oracle uses this as the interpreter-level ground truth
    for ``race-free`` verdicts.
    """
    from .interpreter import run  # local: interpreter imports this module

    def outcome(sched: Scheduler):
        r = run(program, tree, scheduler=sched, record_events=False)
        snap = r.field_snapshot(list(fields)) if fields else {}
        canon = tuple(
            (path, tuple(sorted(vals.items())))
            for path, vals in sorted(snap.items())
        )
        return (r.returns, canon)

    try:
        keys = set(all_schedules(outcome, max_schedules=max_schedules))
        return sorted(keys), True
    except RuntimeError:
        keys = {outcome(LeftFirst()), outcome(RoundRobin())}
        keys.update(outcome(RandomScheduler(seed=s)) for s in sample_seeds)
        return sorted(keys), False
