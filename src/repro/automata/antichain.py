"""Antichain subsumption for the lazy product fixpoint (upward simulation).

The lazy emptiness engine reaches an accepting product tuple or saturates.
Many of the tuples it constructs are *subsumed*: if every component of a
tuple ``t`` is upward-simulated by the corresponding component of an
already-reached tuple ``u``, then any tree context that completes ``t``
into an accepting run also completes ``u`` — so ``t`` contributes nothing
to emptiness and can be dropped.  Keeping only the maximal tuples (an
antichain per dominance) shrinks both the frontier and the quadratic
processed-pairs expansion.

The relation computed here is upward simulation parameterized by the
*identity* relation on siblings (the cheap, always-sound member of the
Abdulla/Bouajjani/Holík/Kaati/Vojnar family): ``q ⪯ q'`` iff

* ``q ∈ F  ⇒  q' ∈ F``  (acceptance is preserved at every height), and
* for every transition of the factor with ``q`` as the left (resp.
  right) child and sibling state ``s``, with guard ``g`` and target
  ``t``: ``g`` implies the disjunction of the guards ``g'`` of the
  transitions with ``q'`` in the same position, the *same* sibling
  ``s``, and a target ``t'`` with ``t ⪯ t'``.

Soundness of the pruning (the antichain invariant DESIGN.md §12 states):
when exploration drops ``t`` because a kept ``u`` dominates it
componentwise, every synchronized product transition firing from a
child-pair involving ``t`` is guard-covered by product transitions from
the same pair with ``t`` replaced by ``u`` whose target tuples dominate
the original target — by distributing the per-factor guard implications
through the conjunction — so an accepting tuple stays reachable iff it
was reachable before pruning.  Verdicts never change; only the set of
constructed tuples (and possibly which witness is found first) does.

The relation is the greatest fixpoint, computed by iterated removal, so
stopping early would be *unsound* (too-large relation); when the work cap
trips, the identity relation (no pruning for that factor) is returned
instead.  Results are cached on the automaton object — factors are
shared across queries via the compiler memo, so each factor pays for its
simulation once per solver lifetime.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..runtime import ResourceGuard
from .tta import TreeAutomaton

__all__ = ["upward_simulation", "cached_upward_simulation"]

#: Factors larger than this skip simulation entirely (quadratic pair
#: table); the big factors are exactly where exploration needs pruning
#: most, so the cap is generous.
MAX_SIM_STATES = 512

#: Cap on guard-implication checks per factor; past it the computation
#: abandons (returns identity) rather than burning compile time.
MAX_SIM_CHECKS = 2_000_000


def upward_simulation(
    auto: TreeAutomaton,
    max_states: int = MAX_SIM_STATES,
    max_checks: int = MAX_SIM_CHECKS,
    guard: Optional[ResourceGuard] = None,
) -> Dict[int, FrozenSet[int]]:
    """``{q: states strictly upward-simulating q}`` (identity omitted).

    Empty dict means the relation is trivial (identity only, or the
    computation was abandoned): no pruning is possible for this factor.
    """
    n = auto.n_states
    if n <= 1:
        return {}
    if n > max_states:
        return {}
    mgr = auto.manager
    false = mgr.false
    apply_or = mgr.apply_or
    apply_diff = mgr.apply_diff
    acc = auto.accepting

    # Candidate dominators per state: acceptance-compatible, non-equal.
    above: List[set] = [
        set(
            qp
            for qp in (acc if q in acc else range(n))
            if qp != q
        )
        for q in range(n)
    ]

    # Occurrences of each state as a child, indexed by position+sibling.
    left_occ: Dict[int, List[Tuple[int, list]]] = {}
    right_occ: Dict[int, List[Tuple[int, list]]] = {}
    for (l, r), entries in auto.delta.items():
        left_occ.setdefault(l, []).append((r, entries))
        right_occ.setdefault(r, []).append((l, entries))

    delta = auto.delta
    checks = 0
    changed = True
    while changed:
        changed = False
        if guard is not None:
            guard.tick("antichain.sim")
        for q in range(n):
            cand = above[q]
            if not cand:
                continue
            occs = (
                (False, left_occ.get(q, ())),
                (True, right_occ.get(q, ())),
            )
            drops = []
            for qp in cand:
                ok = True
                for is_right, occ in occs:
                    for s, entries in occ:
                        peer = delta.get((s, qp) if is_right else (qp, s))
                        for g, tgt in entries:
                            cover = false
                            if peer:
                                tgt_above = above[tgt]
                                for g2, tgt2 in peer:
                                    if tgt2 == tgt or tgt2 in tgt_above:
                                        cover = apply_or(cover, g2)
                            checks += 1
                            if checks > max_checks:
                                return {}
                            if apply_diff(g, cover) != false:
                                ok = False
                                break
                        if not ok:
                            break
                    if not ok:
                        break
                if not ok:
                    drops.append(qp)
            if drops:
                cand.difference_update(drops)
                changed = True
    return {q: frozenset(s) for q, s in enumerate(above) if s}


def cached_upward_simulation(
    auto: TreeAutomaton, guard: Optional[ResourceGuard] = None
) -> Dict[int, FrozenSet[int]]:
    """Per-automaton memo of :func:`upward_simulation`.

    Automata are immutable after construction and shared across queries
    (compiler memo, conjunction cache), so caching on the instance makes
    the simulation a once-per-factor cost for a whole solver lifetime.
    """
    sim = getattr(auto, "_upsim", None)
    if sim is None:
        sim = upward_simulation(auto, guard=guard)
        auto._upsim = sim
    return sim
