"""Symbolic bottom-up tree automata (the MONA-substitute's engine room)."""

from .determinize import StateBudgetExceeded, determinize
from .emptiness import Witness, find_witness, is_empty
from .minimize import minimize, prune_unreachable
from .product import Exploration, ProductAutomaton
from .tta import TrackRegistry, TreeAutomaton, split_guards

__all__ = [
    "StateBudgetExceeded", "determinize",
    "Witness", "find_witness", "is_empty",
    "Exploration", "ProductAutomaton",
    "minimize", "prune_unreachable",
    "TrackRegistry", "TreeAutomaton", "split_guards",
]
