"""Bottom-up tree automata over bit-vector-labelled binary trees.

Models are the finite binary trees of :mod:`repro.trees.heap`: internal
nodes have exactly two children, nil nodes are leaves, and *every* node
(including leaves) carries one bit per *track* (an MSO variable).  A
transition guard is a BDD over track levels, so the alphabet 2^k never
materializes — only states do (MONA's architecture).

An automaton is nondeterministic in general; products keep determinism,
projection loses it, and :mod:`repro.automata.determinize` restores it via
symbolic subset construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from ..bdd.bdd import BDDManager
from ..runtime import ResourceGuard, StateBudgetExceeded, as_guard
from ..trees.heap import Tree, TreeNode

__all__ = ["TreeAutomaton", "TrackRegistry", "split_guards"]

Guard = int  # a BDD node index
Trans = List[Tuple[Guard, int]]


class TrackRegistry:
    """Global track-name -> BDD-level mapping shared by a solver instance."""

    def __init__(self, manager: Optional[BDDManager] = None) -> None:
        self.manager = manager or BDDManager()
        self._levels: Dict[str, int] = {}

    def level(self, name: str) -> int:
        if name not in self._levels:
            self._levels[name] = len(self._levels)
        return self._levels[name]

    def bit(self, name: str, value: bool = True) -> Guard:
        lvl = self.level(name)
        return self.manager.var(lvl) if value else self.manager.nvar(lvl)

    def names(self) -> List[str]:
        return sorted(self._levels, key=self._levels.get)

    def name_of(self, level: int) -> str:
        for n, l in self._levels.items():
            if l == level:
                return n
        raise KeyError(level)


@dataclass
class TreeAutomaton:
    """A (possibly nondeterministic) bottom-up tree automaton."""

    registry: TrackRegistry
    tracks: FrozenSet[str]
    n_states: int
    leaf: Trans
    delta: Dict[Tuple[int, int], Trans]
    accepting: FrozenSet[int]
    deterministic: bool = False
    # ``complete``: every (state-pair, label) has at least one successor.
    # Products/projections preserve it; ``completed()`` is a no-op on it.
    complete: bool = False

    @property
    def manager(self) -> BDDManager:
        return self.registry.manager

    def describe(self) -> str:
        kind = "DFTA" if self.deterministic else "NFTA"
        edges = sum(len(v) for v in self.delta.values()) + len(self.leaf)
        return (
            f"{kind}({self.n_states} states, {edges} symbolic edges, "
            f"{len(self.accepting)} accepting, tracks={sorted(self.tracks)})"
        )

    # -- running on a concrete labelled tree --------------------------------------
    def run(self, tree: Tree, labels: Mapping[str, FrozenSet[str]]) -> bool:
        """Accept the tree under the labelling ``track name -> set of node
        paths carrying the bit``."""
        mgr = self.manager
        level_sets = {
            self.registry.level(t): labels.get(t, frozenset()) for t in self.tracks
        }

        def bits_at(path: str) -> Callable[[int], bool]:
            def f(level: int) -> bool:
                return path in level_sets.get(level, frozenset())

            return f

        def states(node: TreeNode) -> FrozenSet[int]:
            assign = bits_at(node.path)
            if node.is_nil:
                return frozenset(
                    q for g, q in self.leaf if mgr.evaluate(g, assign)
                )
            ls = states(node.left)  # type: ignore[arg-type]
            rs = states(node.right)  # type: ignore[arg-type]
            out = set()
            for ql in ls:
                for qr in rs:
                    for g, q in self.delta.get((ql, qr), ()):
                        if mgr.evaluate(g, assign):
                            out.add(q)
            return frozenset(out)

        return bool(states(tree.root) & self.accepting)

    # -- constructions ---------------------------------------------------------------
    def product(
        self,
        other: "TreeAutomaton",
        acc: Callable[[bool, bool], bool],
        max_states: Optional[int] = None,
        deadline: Optional[float] = None,
        guard: Optional[ResourceGuard] = None,
    ) -> "TreeAutomaton":
        """Synchronized product with acceptance combiner ``acc``.

        Sound for conjunction on arbitrary automata; for disjunction both
        sides must be complete (use :meth:`completed`).  Only reachable
        product states are built.  A guard (or legacy ``deadline`` float)
        cancels the construction with ``DeadlineExceeded`` on expiry.
        """
        assert self.registry is other.registry
        guard = as_guard(guard, deadline)
        mgr = self.manager
        index: Dict[Tuple[int, int], int] = {}
        leaf: Trans = []
        delta: Dict[Tuple[int, int], Trans] = {}

        def state(pair: Tuple[int, int]) -> int:
            if pair not in index:
                if max_states is not None and len(index) >= max_states:
                    raise StateBudgetExceeded(
                        f"product exceeded {max_states} states",
                        phase="automata.product",
                        counters={"states": len(index)},
                    )
                index[pair] = len(index)
            return index[pair]

        frontier: List[Tuple[int, int]] = []

        def discover(pair: Tuple[int, int]) -> int:
            known = pair in index
            idx = state(pair)
            if not known:
                frontier.append(pair)
            return idx

        for g1, q1 in self.leaf:
            for g2, q2 in other.leaf:
                g = mgr.apply_and(g1, g2)
                if g != mgr.false:
                    leaf.append((g, discover((q1, q2))))

        def expand(pl: Tuple[int, int], pr: Tuple[int, int]) -> None:
            key = (index[pl], index[pr])
            entries: Trans = []
            for g1, q1 in self.delta.get((pl[0], pr[0]), ()):
                for g2, q2 in other.delta.get((pl[1], pr[1]), ()):
                    g = mgr.apply_and(g1, g2)
                    if g != mgr.false:
                        entries.append((g, discover((q1, q2))))
            if entries:
                delta[key] = entries

        processed: List[Tuple[int, int]] = []
        while frontier:
            pair = frontier.pop()
            processed.append(pair)
            # Expand against every already-processed pair (both sides),
            # including itself.
            for peer in processed:
                if guard is not None:
                    guard.tick("automata.product")
                expand(pair, peer)
                if peer != pair:
                    expand(peer, pair)
        accepting = frozenset(
            idx
            for pair, idx in index.items()
            if acc(pair[0] in self.accepting, pair[1] in other.accepting)
        )
        return TreeAutomaton(
            registry=self.registry,
            tracks=self.tracks | other.tracks,
            n_states=len(index),
            leaf=leaf,
            delta=delta,
            accepting=accepting,
            deterministic=self.deterministic and other.deterministic,
            complete=self.complete and other.complete,
        )

    def union_sum(self, other: "TreeAutomaton") -> "TreeAutomaton":
        """Union by disjoint sum — linear in states, nondeterministic.

        Runs cannot mix components (no cross-component transitions), so the
        language is exactly L(self) ∪ L(other).  The cheap path for
        positive-context disjunctions; the product construction is only
        worthwhile when a small deterministic result is needed (e.g. before
        a complement)."""
        assert self.registry is other.registry
        off = self.n_states
        leaf = list(self.leaf) + [(g, q + off) for g, q in other.leaf]
        delta = {k: list(v) for k, v in self.delta.items()}
        for (ql, qr), entries in other.delta.items():
            delta[(ql + off, qr + off)] = [(g, q + off) for g, q in entries]
        return TreeAutomaton(
            registry=self.registry,
            tracks=self.tracks | other.tracks,
            n_states=self.n_states + other.n_states,
            leaf=leaf,
            delta=delta,
            accepting=self.accepting
            | frozenset(q + off for q in other.accepting),
            deterministic=False,
            complete=self.complete or other.complete,
        )

    def completed(self) -> "TreeAutomaton":
        """Add a non-accepting sink so every (state-pair, label) has at
        least one successor."""
        if self.complete:
            return self
        mgr = self.manager
        sink = self.n_states
        leaf = list(self.leaf)
        covered = mgr.disj([g for g, _ in self.leaf])
        rest = mgr.apply_not(covered)
        needs_sink = rest != mgr.false
        if rest != mgr.false:
            leaf.append((rest, sink))
        delta = {k: list(v) for k, v in self.delta.items()}
        states = range(self.n_states + 1)
        for ql in states:
            for qr in states:
                entries = delta.get((ql, qr), [])
                covered = mgr.disj([g for g, _ in entries])
                rest = mgr.apply_not(covered)
                if rest != mgr.false:
                    entries = entries + [(rest, sink)]
                    delta[(ql, qr)] = entries
                    needs_sink = True
        n = self.n_states + (1 if needs_sink else 0)
        return TreeAutomaton(
            registry=self.registry,
            tracks=self.tracks,
            n_states=n,
            leaf=leaf,
            delta=delta,
            accepting=self.accepting,
            deterministic=self.deterministic,
            complete=True,
        )

    def complemented(
        self, deadline=None, guard: Optional[ResourceGuard] = None
    ) -> "TreeAutomaton":
        """Complement; determinizes and completes first when needed."""
        from .determinize import determinize

        det = (
            self
            if self.deterministic
            else determinize(self, deadline=deadline, guard=guard)
        )
        det = det.completed()
        return TreeAutomaton(
            registry=det.registry,
            tracks=det.tracks,
            n_states=det.n_states,
            leaf=det.leaf,
            delta=det.delta,
            accepting=frozenset(range(det.n_states)) - det.accepting,
            deterministic=True,
            complete=True,
        )

    def projected(self, tracks: Iterable[str]) -> "TreeAutomaton":
        """Existentially quantify the given tracks out of every guard."""
        levels = frozenset(self.registry.level(t) for t in tracks)
        mgr = self.manager
        return TreeAutomaton(
            registry=self.registry,
            tracks=self.tracks - frozenset(tracks),
            n_states=self.n_states,
            leaf=[(mgr.exists(g, levels), q) for g, q in self.leaf],
            delta={
                k: [(mgr.exists(g, levels), q) for g, q in v]
                for k, v in self.delta.items()
            },
            accepting=self.accepting,
            deterministic=False,
            complete=self.complete,
        )

    def with_tracks(self, tracks: Iterable[str]) -> "TreeAutomaton":
        """Cylindrification: declare extra tracks (guards unchanged)."""
        return TreeAutomaton(
            registry=self.registry,
            tracks=self.tracks | frozenset(tracks),
            n_states=self.n_states,
            leaf=self.leaf,
            delta=self.delta,
            accepting=self.accepting,
            deterministic=self.deterministic,
            complete=self.complete,
        )


def split_guards(
    mgr: BDDManager, pairs: Iterable[Tuple[Guard, int]]
) -> List[Tuple[Guard, FrozenSet[int]]]:
    """Partition the label space by which transitions fire.

    Returns disjoint guards covering the whole space, each mapped to the set
    of destinations enabled there (possibly empty).
    """
    parts: List[Tuple[Guard, FrozenSet[int]]] = [(mgr.true, frozenset())]
    for g, d in pairs:
        nxt: List[Tuple[Guard, FrozenSet[int]]] = []
        for h, s in parts:
            both = mgr.apply_and(h, g)
            if both != mgr.false:
                nxt.append((both, s | {d}))
            rest = mgr.apply_diff(h, g)
            if rest != mgr.false:
                nxt.append((rest, s))
        parts = nxt
    # Merge regions with identical destination sets.
    merged: Dict[FrozenSet[int], Guard] = {}
    for h, s in parts:
        merged[s] = mgr.apply_or(merged.get(s, mgr.false), h)
    return [(g, s) for s, g in merged.items()]
