"""Myhill–Nerode style minimization for deterministic tree automata.

Moore-style partition refinement: start from {accepting, rejecting}, then
split classes whose members behave differently — i.e. two states ``p, q``
stay together only if for every peer state ``r`` and both child positions,
the class-level symbolic transition functions from ``(p, r)``/``(r, p)`` and
``(q, r)``/``(r, q)`` coincide.  BDD guards are hash-consed, so "coincide"
is an exact, canonical comparison of (class → guard) maps.

Dead states (that cannot reach an accepting run context) are *not* removed
here — completeness is preserved so complements stay cheap; unreachable
states are pruned.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..runtime import ResourceGuard, as_guard
from .tta import TreeAutomaton

__all__ = ["minimize", "prune_dead", "prune_unreachable", "reduce_nfta"]

Trans_t = List[Tuple[int, int]]


def prune_unreachable(a: TreeAutomaton) -> TreeAutomaton:
    """Drop states that no labelled tree can reach (bottom-up)."""
    reach = set(q for _, q in a.leaf)
    changed = True
    while changed:
        changed = False
        for (ql, qr), entries in a.delta.items():
            if ql in reach and qr in reach:
                for _, q in entries:
                    if q not in reach:
                        reach.add(q)
                        changed = True
    if len(reach) == a.n_states:
        return a
    remap = {q: i for i, q in enumerate(sorted(reach))}
    return TreeAutomaton(
        registry=a.registry,
        tracks=a.tracks,
        n_states=len(remap),
        leaf=[(g, remap[q]) for g, q in a.leaf if q in remap],
        delta={
            (remap[ql], remap[qr]): [
                (g, remap[q]) for g, q in entries if q in remap
            ]
            for (ql, qr), entries in a.delta.items()
            if ql in remap and qr in remap
        },
        accepting=frozenset(remap[q] for q in a.accepting if q in remap),
        deterministic=a.deterministic,
        complete=a.complete,
    )


def prune_dead(a: TreeAutomaton) -> TreeAutomaton:
    """Keep only *useful* states — those occurring in some accepting run.

    A state is useful iff it is bottom-up reachable AND co-reachable: an
    accepting root state, or a child position of a transition whose
    target is useful.  Dropping the rest preserves the language exactly
    (every accepting run consists of useful states only) but loses
    completeness, so this is for emptiness-oriented pipelines — lazy
    product exploration above all, where a dead component dooms every
    product tuple containing it.
    """
    reach = set(q for _, q in a.leaf)
    changed = True
    while changed:
        changed = False
        for (ql, qr), entries in a.delta.items():
            if ql in reach and qr in reach:
                for _, q in entries:
                    if q not in reach:
                        reach.add(q)
                        changed = True
    useful = set(q for q in a.accepting if q in reach)
    changed = True
    while changed:
        changed = False
        for (ql, qr), entries in a.delta.items():
            if ql not in reach or qr not in reach:
                continue
            if any(q in useful for _, q in entries):
                if ql not in useful:
                    useful.add(ql)
                    changed = True
                if qr not in useful:
                    useful.add(qr)
                    changed = True
    if len(useful) == a.n_states:
        return a
    remap = {q: i for i, q in enumerate(sorted(useful))}
    return TreeAutomaton(
        registry=a.registry,
        tracks=a.tracks,
        n_states=len(remap),
        leaf=[(g, remap[q]) for g, q in a.leaf if q in remap],
        delta={
            (remap[ql], remap[qr]): pruned
            for (ql, qr), entries in a.delta.items()
            if ql in remap and qr in remap
            for pruned in [
                [(g, remap[q]) for g, q in entries if q in remap]
            ]
            if pruned
        },
        accepting=frozenset(remap[q] for q in a.accepting if q in remap),
        deterministic=a.deterministic,
        complete=False,
    )


def reduce_nfta(
    a: TreeAutomaton,
    max_rounds: int = 50,
    deadline=None,
    guard: Optional[ResourceGuard] = None,
) -> TreeAutomaton:
    """Bisimulation-based state reduction for nondeterministic automata.

    Merges states with identical acceptance and identical class-level
    transition behaviour (as left and right child).  Sound for NFTAs —
    merged states are forward-bisimilar, so the language is unchanged —
    but not necessarily minimal (NFTA minimization is PSPACE-hard)."""
    guard = as_guard(guard, deadline)
    a = prune_unreachable(a)
    mgr = a.manager
    n = a.n_states
    if n <= 1:
        return a
    cls = [1 if q in a.accepting else 0 for q in range(n)]
    by_left: Dict[int, List[int]] = {p: [] for p in range(n)}
    by_right: Dict[int, List[int]] = {p: [] for p in range(n)}
    for (ql, qr) in a.delta:
        by_left[ql].append(qr)
        by_right[qr].append(ql)
    leaf_by_state: Dict[int, List[int]] = {}
    for g, q in a.leaf:
        leaf_by_state.setdefault(q, []).append(g)

    for _ in range(max_rounds):
        if guard is not None:
            guard.check_now("reduce")
        canon: Dict[Tuple[int, int], Tuple] = {}
        for key, entries in a.delta.items():
            merged: Dict[int, int] = {}
            for g, q in entries:
                c = cls[q]
                prev = merged.get(c)
                merged[c] = g if prev is None else mgr.apply_or(prev, g)
            canon[key] = tuple(sorted(merged.items()))
        sigs: Dict[int, Tuple] = {}
        for p in range(n):
            sig = set()
            for r in by_left[p]:
                sig.add((cls[r], "L", canon[(p, r)]))
            for r in by_right[p]:
                sig.add((cls[r], "R", canon[(r, p)]))
            leaf_guard = mgr.disj(leaf_by_state.get(p, []))
            sigs[p] = (cls[p], leaf_guard, tuple(sorted(sig)))
        table: Dict[Tuple, int] = {}
        new_cls = []
        for p in range(n):
            sp = sigs[p]
            if sp not in table:
                table[sp] = len(table)
            new_cls.append(table[sp])
        if new_cls == cls:
            break
        cls = new_cls
    k = max(cls) + 1
    if k == n:
        return a
    leaf_merged: Dict[int, int] = {}
    for g, q in a.leaf:
        c = cls[q]
        leaf_merged[c] = mgr.apply_or(leaf_merged.get(c, mgr.false), g)
    delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for (ql, qr), entries in a.delta.items():
        key = (cls[ql], cls[qr])
        acc: Dict[int, int] = {}
        for g, q in delta.get(key, ()):
            acc[q] = mgr.apply_or(acc.get(q, mgr.false), g)
        for g, q in entries:
            c = cls[q]
            acc[c] = mgr.apply_or(acc.get(c, mgr.false), g)
        delta[key] = [(g, c) for c, g in acc.items() if g != mgr.false]
    return TreeAutomaton(
        registry=a.registry,
        tracks=a.tracks,
        n_states=k,
        leaf=[(g, c) for c, g in leaf_merged.items() if g != mgr.false],
        delta=delta,
        accepting=frozenset(cls[q] for q in a.accepting),
        deterministic=False,
        complete=a.complete,
    )


def minimize(
    a: TreeAutomaton, deadline=None, guard: Optional[ResourceGuard] = None
) -> TreeAutomaton:
    """Minimize a deterministic (preferably complete) tree automaton."""
    if not a.deterministic:
        raise ValueError("minimize requires a deterministic automaton")
    guard = as_guard(guard, deadline)
    a = prune_unreachable(a)
    mgr = a.manager
    n = a.n_states
    if n <= 1:
        return a
    # class id per state.
    cls = [1 if q in a.accepting else 0 for q in range(n)]

    # Adjacency index: for each state p, its delta entries by peer.
    by_left: Dict[int, List[Tuple[int, Trans_t]]] = {p: [] for p in range(n)}
    by_right: Dict[int, List[Tuple[int, Trans_t]]] = {p: [] for p in range(n)}
    for (ql, qr), entries in a.delta.items():
        by_left[ql].append((qr, entries))
        by_right[qr].append((ql, entries))

    while True:
        if guard is not None:
            guard.check_now("minimize")
        # Canonical class-level transition map per delta entry, computed
        # once per refinement round.
        canon: Dict[Tuple[int, int], Tuple] = {}
        for key, entries in a.delta.items():
            merged: Dict[int, int] = {}
            for g, q in entries:
                c = cls[q]
                prev = merged.get(c)
                merged[c] = g if prev is None else mgr.apply_or(prev, g)
            canon[key] = tuple(sorted(merged.items()))

        signatures: Dict[int, Tuple] = {}
        for p in range(n):
            sig = set()
            for r, _e in by_left[p]:
                sig.add((cls[r], "L", canon[(p, r)]))
            for r, _e in by_right[p]:
                sig.add((cls[r], "R", canon[(r, p)]))
            signatures[p] = (cls[p], tuple(sorted(sig)))
        # Re-class by signature.
        table: Dict[Tuple, int] = {}
        new_cls = []
        for p in range(n):
            s = signatures[p]
            if s not in table:
                table[s] = len(table)
            new_cls.append(table[s])
        if new_cls == cls:
            break
        cls = new_cls
    k = max(cls) + 1
    if k == n:
        return a
    # Build the quotient.
    leaf_merged: Dict[Tuple[int, int], int] = {}
    for g, q in a.leaf:
        key = (0, cls[q])
        leaf_merged[key] = mgr.apply_or(leaf_merged.get(key, mgr.false), g)
    delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    seen_pairs = set()
    for (ql, qr), entries in a.delta.items():
        key = (cls[ql], cls[qr])
        if key in seen_pairs:
            continue
        seen_pairs.add(key)
        merged: Dict[int, int] = {}
        for g, q in entries:
            c = cls[q]
            merged[c] = mgr.apply_or(merged.get(c, mgr.false), g)
        delta[key] = [(g, c) for c, g in merged.items() if g != mgr.false]
    return TreeAutomaton(
        registry=a.registry,
        tracks=a.tracks,
        n_states=k,
        leaf=[(g, c) for (_, c), g in leaf_merged.items() if g != mgr.false],
        delta=delta,
        accepting=frozenset(cls[q] for q in a.accepting),
        deterministic=True,
        complete=a.complete,
    )
