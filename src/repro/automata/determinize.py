"""Symbolic subset construction for bottom-up tree automata."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..runtime import ResourceGuard, as_guard

# Re-exported for backward compatibility: the seed pipeline defined
# ``StateBudgetExceeded`` here, and tests/solver code import it from this
# module.  The class now lives in the runtime taxonomy.
from ..runtime import StateBudgetExceeded
from .tta import TreeAutomaton, split_guards

__all__ = ["determinize", "StateBudgetExceeded"]


def determinize(
    a: TreeAutomaton,
    max_states: int = 200_000,
    deadline=None,
    guard: Optional[ResourceGuard] = None,
) -> TreeAutomaton:
    """Equivalent deterministic, complete automaton (subset construction).

    Guards of a subset state's outgoing transitions partition the label
    space, so the result is complete by construction (the empty subset acts
    as the sink).  ``max_states`` bounds the blow-up; exceeding it raises
    ``StateBudgetExceeded`` so callers can fall back to the bounded engine.
    A :class:`~repro.runtime.ResourceGuard` (or a legacy ``deadline``
    float) cancels the construction with ``DeadlineExceeded`` on expiry.
    """
    guard = as_guard(guard, deadline)
    mgr = a.manager
    index: Dict[FrozenSet[int], int] = {}
    order: List[FrozenSet[int]] = []

    def state(s: FrozenSet[int]) -> int:
        if s not in index:
            if len(index) >= max_states:
                raise StateBudgetExceeded(
                    f"determinization exceeded {max_states} states",
                    phase="determinize",
                    counters={"states": len(index)},
                )
            index[s] = len(index)
            order.append(s)
        return index[s]

    leaf = [
        (g, state(s)) for g, s in split_guards(mgr, a.leaf)
    ]
    delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    done = set()
    changed = True
    while changed:
        changed = False
        current = list(order)
        if guard is not None:
            guard.check_now("determinize")
        for sl in current:
            for sr in current:
                key = (index[sl], index[sr])
                if key in done:
                    continue
                done.add(key)
                if guard is not None:
                    guard.tick("determinize")
                pairs = []
                for ql in sl:
                    for qr in sr:
                        pairs.extend(a.delta.get((ql, qr), ()))
                entries = []
                for g, s in split_guards(mgr, pairs):
                    known = s in index
                    entries.append((g, state(s)))
                    if not known:
                        changed = True
                delta[key] = entries
        if len(order) > len(current):
            changed = True
    accepting = frozenset(
        idx for s, idx in index.items() if s & a.accepting
    )
    return TreeAutomaton(
        registry=a.registry,
        tracks=a.tracks,
        n_states=len(index),
        leaf=leaf,
        delta=delta,
        accepting=accepting,
        deterministic=True,
        complete=True,
    )
