"""Symbolic subset construction for bottom-up tree automata."""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from .tta import TreeAutomaton, split_guards

__all__ = ["determinize"]


def determinize(
    a: TreeAutomaton, max_states: int = 200_000, deadline=None
) -> TreeAutomaton:
    """Equivalent deterministic, complete automaton (subset construction).

    Guards of a subset state's outgoing transitions partition the label
    space, so the result is complete by construction (the empty subset acts
    as the sink).  ``max_states`` bounds the blow-up; exceeding it raises
    ``StateBudgetExceeded`` so callers can fall back to the bounded engine.
    """
    mgr = a.manager
    index: Dict[FrozenSet[int], int] = {}
    order: List[FrozenSet[int]] = []

    def state(s: FrozenSet[int]) -> int:
        if s not in index:
            if len(index) >= max_states:
                raise StateBudgetExceeded(
                    f"determinization exceeded {max_states} states"
                )
            index[s] = len(index)
            order.append(s)
        return index[s]

    leaf = [
        (g, state(s)) for g, s in split_guards(mgr, a.leaf)
    ]
    delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    done = set()
    changed = True
    while changed:
        changed = False
        current = list(order)
        if deadline is not None:
            import time

            if time.perf_counter() > deadline:
                raise StateBudgetExceeded("determinization deadline exceeded")
        for sl in current:
            for sr in current:
                key = (index[sl], index[sr])
                if key in done:
                    continue
                done.add(key)
                pairs = []
                for ql in sl:
                    for qr in sr:
                        pairs.extend(a.delta.get((ql, qr), ()))
                entries = []
                for g, s in split_guards(mgr, pairs):
                    known = s in index
                    entries.append((g, state(s)))
                    if not known:
                        changed = True
                delta[key] = entries
        if len(order) > len(current):
            changed = True
    accepting = frozenset(
        idx for s, idx in index.items() if s & a.accepting
    )
    return TreeAutomaton(
        registry=a.registry,
        tracks=a.tracks,
        n_states=len(index),
        leaf=leaf,
        delta=delta,
        accepting=accepting,
        deterministic=True,
        complete=True,
    )


class StateBudgetExceeded(RuntimeError):
    """Raised when a construction exceeds its state budget."""
