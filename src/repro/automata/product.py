"""Implicit N-way conjunction products with on-the-fly emptiness.

The seed pipeline materialized conjunction products pairwise: every
``A ∧ B`` built *all* reachable ``(p, q)`` states of the binary product
before the next factor was conjoined, so an intermediate product could
blow the state budget even when the *final* conjunction — pruned by the
cheap constraints conjoined last — was tiny.  MONA's engineering lesson
(and the pipeline discipline of the monadic-datalog literature) is to
never build states the emptiness search does not reach.

:class:`ProductAutomaton` represents the synchronized product of N tree
automata *implicitly*: a product state is a tuple of factor states, a
product transition conjoins the factors' BDD guards.  Nothing is
enumerated at construction time.  :meth:`ProductAutomaton.explore` runs
the bottom-up reachability fixpoint directly on this implicit automaton,
constructing only reachable tuples, conjoining guards
smallest-factor-state-set first so empty intersections prune before the
expensive factors are consulted, and short-circuiting as soon as an
accepting tuple is reached.  The state budget therefore counts *reached*
product states — the quantity emptiness actually needs — not the size of
the materialized product.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime import (
    ResourceExhausted,
    ResourceGuard,
    StateBudgetExceeded,
    as_guard,
)
from ..runtime import faults as _faults
from .tta import TreeAutomaton

__all__ = ["ProductAutomaton", "Exploration"]


def _merge_small_factors(
    factors,
    limit: int,
    deadline: Optional[float] = None,
    guard: Optional[ResourceGuard] = None,
):
    """Greedily fold factor pairs whose product stays tiny.

    Dozens of 1–4-state atom automata dominate a query's conjunction;
    exploring them as separate tuple components pays a per-factor cost
    on every expansion.  Pairs are merged smallest-first whenever the
    materialized product, pruned and reduced, stays within ``limit``
    states — a bounded amount of eager work that typically collapses the
    factor list by an order of magnitude.  Factors that cannot merge
    under the cap stay implicit (that is the whole point of the lazy
    engine).

    Two cost guards keep this phase from re-creating the eager engine's
    blow-ups: pairs with disjoint track sets are only tried while the
    *full* product fits the cap (independent automata don't compress —
    their minimal conjunction is the whole product), and each attempt
    materializes at most ``4 * limit`` states before giving up.  Merging
    is best-effort: when the deadline (or any other guard limit) trips,
    the remaining factors are returned unmerged rather than raising —
    exploration enforces its own limits.
    """
    from .minimize import minimize, prune_dead, reduce_nfta

    guard = as_guard(guard, deadline)
    attempt_cap = max(4 * limit, 64)
    pool = sorted(factors, key=lambda a: a.n_states)
    done: List[TreeAutomaton] = []
    while len(pool) > 1:
        if guard is not None and guard.expired():
            return done + pool
        head = pool.pop(0)
        merged = None
        for j, cand in enumerate(pool):
            if head.n_states * cand.n_states > limit * limit:
                break  # pool is sorted: later candidates are bigger
            if (
                head.n_states * cand.n_states > limit
                and not (head.tracks & cand.tracks)
            ):
                continue
            try:
                prod = head.product(
                    cand,
                    lambda x, y: x and y,
                    max_states=attempt_cap,
                    guard=guard,
                )
                prod = prune_dead(prod)
                if prod.deterministic:
                    prod = minimize(prod, guard=guard)
                else:
                    prod = reduce_nfta(prod, guard=guard)
            except StateBudgetExceeded:
                continue
            except ResourceExhausted:
                # Deadline/memory: no point trying further pairs.
                return done + [head] + pool
            if prod.n_states <= limit:
                merged = prod
                pool.pop(j)
                break
        if merged is None:
            done.append(head)
        else:
            pool = sorted(pool + [merged], key=lambda a: a.n_states)
    return done + pool

# Witness table entry: (cube, left_tuple, right_tuple); leaves have None
# children.  ``cube`` is a {BDD level: bool} partial assignment for the
# node's label bits, as in :mod:`repro.automata.emptiness`.
_Entry = Tuple[Dict[int, bool], Optional[tuple], Optional[tuple]]


@dataclass
class Exploration:
    """Result of one lazy reachability fixpoint run."""

    table: Dict[tuple, _Entry]
    target: Optional[tuple]  # an accepting tuple, or None
    reached: int  # product states constructed
    complete: bool  # False when the search short-circuited on ``target``

    @property
    def empty(self) -> bool:
        return self.target is None


class ProductAutomaton:
    """Implicit synchronized product of tree automata (conjunction).

    The language is the intersection of the factor languages; a tuple
    state is accepting iff every component is accepting in its factor.
    Factors must share one :class:`~repro.automata.tta.TrackRegistry`.
    Nested products flatten, so ``ProductAutomaton([P, a])`` where ``P``
    is itself a product behaves like one flat N-way product.
    """

    #: Pre-merge cap: factor pairs whose materialized product minimizes
    #: to at most this many states are combined eagerly.  Small enough
    #: that a merge attempt is always cheap, large enough to fold the
    #: dozens of tiny atom automata a query conjoins into a few factors.
    MERGE_LIMIT = 32

    def __init__(
        self,
        factors: Sequence,
        merge_limit: Optional[int] = None,
        merge_deadline: Optional[float] = None,
        guard: Optional[ResourceGuard] = None,
    ) -> None:
        from .minimize import prune_dead

        flat: List[TreeAutomaton] = []
        for f in factors:
            if isinstance(f, ProductAutomaton):
                flat.extend(f.factors)  # already pruned
            else:
                # Dead components doom every tuple containing them, so
                # restricting each factor to states that occur in some
                # accepting run shrinks the explorable tuple space by
                # orders of magnitude without changing any language.
                flat.append(prune_dead(f))
        if not flat:
            raise ValueError("ProductAutomaton needs at least one factor")
        registry = flat[0].registry
        for f in flat[1:]:
            assert f.registry is registry, "factors must share a registry"
        limit = self.MERGE_LIMIT if merge_limit is None else merge_limit
        if limit and len(flat) > 1:
            flat = _merge_small_factors(
                flat, limit, deadline=merge_deadline, guard=guard
            )
        self.factors: List[TreeAutomaton] = flat
        self.registry = registry
        # Exploration order: smallest factor state sets first, so the
        # cheap, most-constraining factors conjoin (and fail) early.
        self._order = sorted(
            range(len(flat)), key=lambda i: flat[i].n_states
        )
        self._last: Optional[Exploration] = None

    # -- automaton-like surface -------------------------------------------------
    @property
    def manager(self):
        return self.registry.manager

    @property
    def tracks(self) -> frozenset:
        out: frozenset = frozenset()
        for f in self.factors:
            out = out | f.tracks
        return out

    @property
    def n_states(self) -> int:
        """Size of the *full* product (what eager construction would pay)."""
        n = 1
        for f in self.factors:
            n *= f.n_states
        return n

    @property
    def reached_states(self) -> int:
        """Product states constructed by the most recent exploration."""
        return self._last.reached if self._last is not None else 0

    def describe(self) -> str:
        sizes = "x".join(str(f.n_states) for f in self.factors)
        return (
            f"Product({len(self.factors)} factors, {sizes} implicit states, "
            f"tracks={sorted(self.tracks)})"
        )

    def accepting_tuple(self, t: tuple) -> bool:
        return all(
            t[i] in f.accepting for i, f in enumerate(self.factors)
        )

    def run(self, tree, labels) -> bool:
        """Accept iff every factor accepts (for differential testing)."""
        return all(f.run(tree, labels) for f in self.factors)

    # -- eager fallback ---------------------------------------------------------
    def materialized(
        self,
        max_states: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> TreeAutomaton:
        """Fold into one explicit automaton via pairwise products.

        Only used by differential tests and by callers that need a real
        :class:`TreeAutomaton` (e.g. to complement); the point of this
        class is that deciding emptiness never requires it.
        """
        autos = sorted(self.factors, key=lambda a: a.n_states)
        acc = autos[0]
        for nxt in autos[1:]:
            acc = acc.product(
                nxt, lambda x, y: x and y,
                max_states=max_states, deadline=deadline,
            )
        return acc

    def projected(self, tracks) -> TreeAutomaton:
        """Existentially quantify tracks out — materializes first.

        Projection distributes over neither conjunction nor its factors,
        so an explicit automaton is required; callers that only need
        emptiness should skip projection entirely (it never changes
        emptiness) and drop the tracks from the witness instead.
        """
        return self.materialized().projected(tracks)

    # -- the lazy fixpoint ------------------------------------------------------
    def explore(
        self,
        max_states: Optional[int] = None,
        deadline: Optional[float] = None,
        stop_on_accepting: bool = True,
        guard: Optional[ResourceGuard] = None,
    ) -> Exploration:
        """Bottom-up reachability fixpoint on the implicit product.

        Discovers tuple states from the factors' leaf transitions and
        closes under the synchronized delta, recording one witness cube
        and child pointers per tuple (for witness-tree extraction).
        Raises :class:`~repro.runtime.StateBudgetExceeded` when more than
        ``max_states`` tuples are constructed, and
        :class:`~repro.runtime.DeadlineExceeded` when the ``deadline``
        (``time.perf_counter()`` value) or the guard's deadline passes.
        With ``stop_on_accepting`` the search returns as soon as an
        accepting tuple is found (sufficient for emptiness/witness
        queries); the returned exploration is then marked incomplete.
        """
        rg = as_guard(guard, deadline)
        mgr = self.manager
        factors = self.factors
        order = self._order
        n = len(factors)
        false = mgr.false
        apply_and = mgr.apply_and

        table: Dict[tuple, _Entry] = {}
        target: Optional[tuple] = None
        # Frontier as a heap ordered by number of non-accepting
        # components: tuples closer to acceptance expand first, which
        # finds witnesses (and short-circuits) sooner on sat queries.
        frontier: List[Tuple[int, int, tuple]] = []
        counter = 0

        def distance(t: tuple) -> int:
            return sum(
                1 for i in range(n) if t[i] not in factors[i].accepting
            )

        def discover(t: tuple, guard: int, lt, rt) -> bool:
            """Record a newly reached tuple; True when it is accepting."""
            nonlocal counter, target
            if _faults.ARMED:
                t = _faults.fire("product.expand", t)
            if t in table:
                return False
            if max_states is not None and len(table) >= max_states:
                raise StateBudgetExceeded(
                    f"lazy product exceeded {max_states} reached states",
                    phase="product.explore",
                    counters={"reached": len(table)},
                )
            cube = mgr.pick_cube(guard)
            if cube is None:  # unsatisfiable guard — not a real transition
                return False
            table[t] = (cube, lt, rt)
            if rg is not None:
                rg.charge_states(1, "product.explore")
            counter += 1
            heapq.heappush(frontier, (distance(t), counter, t))
            if target is None and self.accepting_tuple(t):
                target = t
                return True
            return False

        ticks = [0]

        def tick() -> None:
            ticks[0] += 1
            if rg is not None and ticks[0] % 4096 == 0:
                rg.check_now("product.explore")

        def combos(entry_lists: List):
            """Yield satisfiable guard-conjunctions across the factors.

            ``entry_lists[k]`` is the transition list of factor
            ``order[k]``; results are (guard, tuple-in-factor-order).
            Guards conjoin in exploration order, so an empty
            intersection aborts before later (larger) factors are
            touched.  A generator, so the budget/deadline checks in the
            consumer interleave with enumeration — a combinatorial cell
            count can only ever burn budget, not hang.
            """
            buf = [0] * n

            def rec(k: int, guard: int):
                if k == n:
                    yield (guard, tuple(buf))
                    return
                tick()
                for g, q in entry_lists[k]:
                    g2 = apply_and(guard, g)
                    if g2 != false:
                        buf[order[k]] = q
                        yield from rec(k + 1, g2)

            yield from rec(0, mgr.true)

        # Seed: synchronized leaf transitions.
        for guard, t in combos([factors[i].leaf for i in order]):
            if discover(t, guard, None, None) and stop_on_accepting:
                self._last = Exploration(table, target, len(table), False)
                return self._last

        processed: List[tuple] = []

        def expand(l: tuple, r: tuple) -> bool:
            entry_lists = []
            for i in order:
                entries = factors[i].delta.get((l[i], r[i]))
                if not entries:
                    return False
                entry_lists.append(entries)
            for guard, t in combos(entry_lists):
                if discover(t, guard, l, r) and stop_on_accepting:
                    return True
            return False

        while frontier:
            _, _, t = heapq.heappop(frontier)
            if _faults.ARMED:
                t = _faults.fire("emptiness.fixpoint", t)
            processed.append(t)
            for u in processed:
                tick()
                if expand(t, u) or (u is not t and expand(u, t)):
                    self._last = Exploration(table, target, len(table), False)
                    return self._last

        self._last = Exploration(table, target, len(table), True)
        return self._last
