"""Implicit N-way conjunction products with on-the-fly emptiness.

The seed pipeline materialized conjunction products pairwise: every
``A ∧ B`` built *all* reachable ``(p, q)`` states of the binary product
before the next factor was conjoined, so an intermediate product could
blow the state budget even when the *final* conjunction — pruned by the
cheap constraints conjoined last — was tiny.  MONA's engineering lesson
(and the pipeline discipline of the monadic-datalog literature) is to
never build states the emptiness search does not reach.

:class:`ProductAutomaton` represents the synchronized product of N tree
automata *implicitly*: a product state is a tuple of factor states, a
product transition conjoins the factors' BDD guards.  Nothing is
enumerated at construction time.  :meth:`ProductAutomaton.explore` runs
the bottom-up reachability fixpoint directly on this implicit automaton,
constructing only reachable tuples, conjoining guards
smallest-factor-state-set first so empty intersections prune before the
expensive factors are consulted, and short-circuiting as soon as an
accepting tuple is reached.  The state budget therefore counts *reached*
product states — the quantity emptiness actually needs — not the size of
the materialized product.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..runtime import (
    ResourceExhausted,
    ResourceGuard,
    StateBudgetExceeded,
    as_guard,
)
from ..runtime import faults as _faults
from .tta import TreeAutomaton

__all__ = ["ProductAutomaton", "Exploration"]


def _pruned_dead(f: TreeAutomaton) -> TreeAutomaton:
    """Memoized :func:`~repro.automata.minimize.prune_dead`.

    Automata are immutable once built and heavily shared across queries
    (compiler structural-key memo, conjunction cache), but every query
    used to re-run the useful-state restriction on the same objects —
    for the big case studies that was a dominant, unaccounted cost.  The
    result rides on the instance, and is marked as its own fixpoint so
    chained calls are free.
    """
    from .minimize import prune_dead

    pruned = getattr(f, "_useful", None)
    if pruned is None:
        pruned = prune_dead(f)
        f._useful = pruned
        pruned._useful = pruned
    return pruned


def _merge_small_factors(
    factors,
    limit: int,
    deadline: Optional[float] = None,
    guard: Optional[ResourceGuard] = None,
):
    """Greedily fold factor pairs whose product stays tiny.

    Dozens of 1–4-state atom automata dominate a query's conjunction;
    exploring them as separate tuple components pays a per-factor cost
    on every expansion.  Pairs are merged smallest-first whenever the
    materialized product, pruned and reduced, stays within ``limit``
    states — a bounded amount of eager work that typically collapses the
    factor list by an order of magnitude.  Factors that cannot merge
    under the cap stay implicit (that is the whole point of the lazy
    engine).

    Two cost guards keep this phase from re-creating the eager engine's
    blow-ups: pairs with disjoint track sets are only tried while the
    *full* product fits the cap (independent automata don't compress —
    their minimal conjunction is the whole product), and each attempt
    materializes at most ``4 * limit`` states before giving up.  Merging
    is best-effort: when the deadline (or any other guard limit) trips,
    the remaining factors are returned unmerged rather than raising —
    exploration enforces its own limits.

    Merge attempts are cached on the shared :class:`TrackRegistry`,
    keyed by the identity of the (immutable, memo-shared) operand pair:
    queries of one family conjoin mostly the same factors, so after the
    first query the greedy fold is a sequence of dict hits, and the
    merged products themselves are *shared objects* — which in turn lets
    the per-factor simulation cache in :mod:`repro.automata.antichain`
    amortize across queries.  Deadline/memory aborts are never cached.
    """
    from .minimize import minimize, reduce_nfta

    guard = as_guard(guard, deadline)
    attempt_cap = max(4 * limit, 64)
    registry = factors[0].registry
    cache = getattr(registry, "_merge_cache", None)
    if cache is None:
        cache = registry._merge_cache = {}
    seen = getattr(registry, "_merge_seen", None)
    if seen is None:
        seen = registry._merge_seen = set()

    def order(p):
        # Stable factors (seen by an earlier merge run on this registry)
        # first, query-fresh ones last, size-sorted within each class:
        # queries in a sweep share most factors (conjunction-cache and
        # compile-memo objects) and differ in one or two, and a fresh
        # factor merged early would poison the whole chain into
        # pair-specific intermediates that no later query can reuse.
        return sorted(p, key=lambda a: (id(a) not in seen, a.n_states))

    pool = order(factors)
    done: List[TreeAutomaton] = []
    # Fold every pair with a cached successful merge first, so the shared
    # subset of the conjunction collapses to the *identical objects* of
    # the previous query and only the varying factors pay a fresh
    # product+minimize below.
    folded = True
    while folded and len(pool) > 1:
        folded = False
        for i in range(len(pool) - 1):
            for j in range(i + 1, len(pool)):
                hit = cache.get((id(pool[i]), id(pool[j]), limit))
                if hit is not None and hit[0] is not None:
                    merged = hit[0]
                    pool.pop(j)
                    pool.pop(i)
                    pool = order(pool + [merged])
                    folded = True
                    break
            if folded:
                break
    while len(pool) > 1:
        if guard is not None and guard.expired():
            return done + pool
        head = pool.pop(0)
        merged = None
        for j, cand in enumerate(pool):
            if head.n_states * cand.n_states > limit * limit:
                continue  # pool is not size-sorted: keep scanning
            if (
                head.n_states * cand.n_states > limit
                and not (head.tracks & cand.tracks)
            ):
                continue
            key = (id(head), id(cand), limit)
            hit = cache.get(key)
            if hit is not None:
                prod = hit[0]
                if prod is None:  # cached failure (budget / over-limit)
                    continue
                merged = prod
                pool.pop(j)
                break
            try:
                prod = head.product(
                    cand,
                    lambda x, y: x and y,
                    max_states=attempt_cap,
                    guard=guard,
                )
                prod = _pruned_dead(prod)
                if prod.deterministic:
                    prod = minimize(prod, guard=guard)
                else:
                    prod = reduce_nfta(prod, guard=guard)
            except StateBudgetExceeded:
                # The entry holds strong refs to the operands so their
                # ids stay valid for the cache's lifetime.
                cache[key] = (None, head, cand)
                continue
            except ResourceExhausted:
                # Deadline/memory: no point trying further pairs.
                return done + [head] + pool
            if prod.n_states <= limit:
                cache[key] = (prod, head, cand)
                merged = prod
                pool.pop(j)
                break
            cache[key] = (None, head, cand)
        if merged is None:
            done.append(head)
        else:
            seen.add(id(merged))
            pool = order(pool + [merged])
    for f in factors:
        seen.add(id(f))
    return done + pool

# Witness table entry: (cube, left_tuple, right_tuple); leaves have None
# children.  ``cube`` is a {BDD level: bool} partial assignment for the
# node's label bits, as in :mod:`repro.automata.emptiness`.
_Entry = Tuple[Dict[int, bool], Optional[tuple], Optional[tuple]]


@dataclass
class Exploration:
    """Result of one lazy reachability fixpoint run."""

    table: Dict[tuple, _Entry]
    target: Optional[tuple]  # an accepting tuple, or None
    reached: int  # product states constructed
    complete: bool  # False when the search short-circuited on ``target``
    # Antichain accounting: tuples never constructed because a reached
    # tuple dominated them, and reached tuples later retired because a
    # newcomer dominated *them* (both zero with pruning off).
    pruned: int = 0
    superseded: int = 0
    # With ``record=True``: every synchronized transition touched by the
    # fixpoint, for :meth:`ProductAutomaton.materialized_explored`.
    leaf_edges: Optional[List[Tuple[int, tuple]]] = None
    edges: Optional[Dict[Tuple[tuple, tuple], List[Tuple[int, tuple]]]] = None

    @property
    def empty(self) -> bool:
        return self.target is None


class ProductAutomaton:
    """Implicit synchronized product of tree automata (conjunction).

    The language is the intersection of the factor languages; a tuple
    state is accepting iff every component is accepting in its factor.
    Factors must share one :class:`~repro.automata.tta.TrackRegistry`.
    Nested products flatten, so ``ProductAutomaton([P, a])`` where ``P``
    is itself a product behaves like one flat N-way product.
    """

    #: Pre-merge cap: factor pairs whose materialized product minimizes
    #: to at most this many states are combined eagerly.  Small enough
    #: that a merge attempt is always cheap, large enough to fold the
    #: dozens of tiny atom automata a query conjoins into a few factors.
    MERGE_LIMIT = 32

    #: Antichain subsumption default for :meth:`explore` (per-call
    #: override via its ``antichain`` argument).
    ANTICHAIN = True

    #: Frontier tuples popped per expansion batch: amortizes heap churn
    #: and gives the processed-list compaction a natural cadence.
    BATCH = 64

    def __init__(
        self,
        factors: Sequence,
        merge_limit: Optional[int] = None,
        merge_deadline: Optional[float] = None,
        guard: Optional[ResourceGuard] = None,
    ) -> None:
        flat: List[TreeAutomaton] = []
        for f in factors:
            if isinstance(f, ProductAutomaton):
                flat.extend(f.factors)  # already pruned
            else:
                # Dead components doom every tuple containing them, so
                # restricting each factor to states that occur in some
                # accepting run shrinks the explorable tuple space by
                # orders of magnitude without changing any language.
                # Memoized per instance — factors recur across queries.
                flat.append(_pruned_dead(f))
        if not flat:
            raise ValueError("ProductAutomaton needs at least one factor")
        registry = flat[0].registry
        for f in flat[1:]:
            assert f.registry is registry, "factors must share a registry"
        # An empty-language factor (no accepting state survives the dead
        # prune) dooms the whole conjunction; keep just that factor so
        # neither the merge phase nor exploration pays for the rest.
        empty = next((f for f in flat if not f.accepting), None)
        if empty is not None:
            flat = [empty]
        limit = self.MERGE_LIMIT if merge_limit is None else merge_limit
        if limit and len(flat) > 1:
            flat = _merge_small_factors(
                flat, limit, deadline=merge_deadline, guard=guard
            )
        self.factors: List[TreeAutomaton] = flat
        self.registry = registry
        # Exploration order: smallest factor state sets first, so the
        # cheap, most-constraining factors conjoin (and fail) early.
        self._order = sorted(
            range(len(flat)), key=lambda i: flat[i].n_states
        )
        self._last: Optional[Exploration] = None

    # -- automaton-like surface -------------------------------------------------
    @property
    def manager(self):
        return self.registry.manager

    @property
    def tracks(self) -> frozenset:
        out: frozenset = frozenset()
        for f in self.factors:
            out = out | f.tracks
        return out

    @property
    def n_states(self) -> int:
        """Size of the *full* product (what eager construction would pay)."""
        n = 1
        for f in self.factors:
            n *= f.n_states
        return n

    @property
    def reached_states(self) -> int:
        """Product states constructed by the most recent exploration."""
        return self._last.reached if self._last is not None else 0

    def describe(self) -> str:
        sizes = "x".join(str(f.n_states) for f in self.factors)
        return (
            f"Product({len(self.factors)} factors, {sizes} implicit states, "
            f"tracks={sorted(self.tracks)})"
        )

    def accepting_tuple(self, t: tuple) -> bool:
        return all(
            t[i] in f.accepting for i, f in enumerate(self.factors)
        )

    def run(self, tree, labels) -> bool:
        """Accept iff every factor accepts (for differential testing)."""
        return all(f.run(tree, labels) for f in self.factors)

    # -- eager fallback ---------------------------------------------------------
    def materialized(
        self,
        max_states: Optional[int] = None,
        deadline: Optional[float] = None,
    ) -> TreeAutomaton:
        """Fold into one explicit automaton via pairwise products.

        Only used by differential tests and by callers that need a real
        :class:`TreeAutomaton` (e.g. to complement); the point of this
        class is that deciding emptiness never requires it.
        """
        autos = sorted(self.factors, key=lambda a: a.n_states)
        acc = autos[0]
        for nxt in autos[1:]:
            acc = acc.product(
                nxt, lambda x, y: x and y,
                max_states=max_states, deadline=deadline,
            )
        return acc

    def materialized_explored(self, exp: Exploration) -> TreeAutomaton:
        """Explicit automaton over the *reached* tuples of a recorded run.

        Requires an exploration from ``explore(stop_on_accepting=False,
        record=True)``: complete (so the reached set is the whole
        reachable set) and with the synchronized transitions recorded.
        The result recognizes exactly the product language — pairwise
        materialization would rebuild unreachable states; this builds
        only what the fixpoint touched, which for sparse conjunctions is
        orders of magnitude smaller than the eager product.
        """
        if not exp.complete or exp.edges is None:
            raise ValueError(
                "materialized_explored needs a complete recorded "
                "exploration (stop_on_accepting=False, record=True)"
            )
        mgr = self.manager
        apply_or = mgr.apply_or
        idx = {t: i for i, t in enumerate(exp.table)}

        def fold(entries):
            # OR together parallel edges (same children, same target).
            by_tgt: Dict[int, int] = {}
            for g, t in entries:
                q = idx[t]
                prev = by_tgt.get(q)
                by_tgt[q] = g if prev is None else apply_or(prev, g)
            return list(by_tgt.items())

        leaf = [(g, q) for q, g in fold(exp.leaf_edges or [])]
        delta: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        for (l, r), entries in exp.edges.items():
            delta[(idx[l], idx[r])] = [(g, q) for q, g in fold(entries)]
        accepting = frozenset(
            i for t, i in idx.items() if self.accepting_tuple(t)
        )
        return TreeAutomaton(
            registry=self.registry,
            tracks=self.tracks,
            n_states=len(idx),
            leaf=leaf,
            delta=delta,
            accepting=accepting,
            deterministic=all(f.deterministic for f in self.factors),
        )

    def projected(self, tracks) -> TreeAutomaton:
        """Existentially quantify tracks out — materializes first.

        Projection distributes over neither conjunction nor its factors,
        so an explicit automaton is required; callers that only need
        emptiness should skip projection entirely (it never changes
        emptiness) and drop the tracks from the witness instead.
        """
        return self.materialized().projected(tracks)

    # -- the lazy fixpoint ------------------------------------------------------
    def explore(
        self,
        max_states: Optional[int] = None,
        deadline: Optional[float] = None,
        stop_on_accepting: bool = True,
        guard: Optional[ResourceGuard] = None,
        antichain: Optional[bool] = None,
        record: bool = False,
    ) -> Exploration:
        """Bottom-up reachability fixpoint on the implicit product.

        Discovers tuple states from the factors' leaf transitions and
        closes under the synchronized delta, recording one witness cube
        and child pointers per tuple (for witness-tree extraction).
        Raises :class:`~repro.runtime.StateBudgetExceeded` when more than
        ``max_states`` tuples are constructed, and
        :class:`~repro.runtime.DeadlineExceeded` when the ``deadline``
        (``time.perf_counter()`` value) or the guard's deadline passes.
        With ``stop_on_accepting`` the search returns as soon as an
        accepting tuple is found (sufficient for emptiness/witness
        queries); the returned exploration is then marked incomplete.

        With ``antichain`` (defaulting to the class flag ``ANTICHAIN``)
        tuples subsumed under the per-factor upward simulation of
        :mod:`repro.automata.antichain` are never constructed, and
        reached tuples dominated by a newcomer are retired from further
        expansion.  This changes which tuples (and possibly which
        witness) are built, never the emptiness verdict; the dropped
        work is reported in ``Exploration.pruned``/``superseded``.  The
        frontier is drained in batches of ``BATCH`` tuples, with the
        processed list compacted of retired tuples between batches.
        """
        rg = as_guard(guard, deadline)
        mgr = self.manager
        factors = self.factors
        order = self._order
        n = len(factors)
        false = mgr.false
        apply_and = mgr.apply_and

        use_antichain = self.ANTICHAIN if antichain is None else antichain
        # Recording keeps every synchronized transition, so the reached
        # set must be the exact reachable set: subsumption pruning (which
        # preserves emptiness but not the language) is forced off.
        leaf_edges: List[Tuple[int, tuple]] = []
        edges: Dict[Tuple[tuple, tuple], List[Tuple[int, tuple]]] = {}
        if record:
            use_antichain = False
        sims: List[Dict[int, frozenset]] = []
        if use_antichain:
            from .antichain import cached_upward_simulation

            sims = [cached_upward_simulation(f, guard=rg) for f in factors]
            if not any(sims):
                use_antichain = False  # identity everywhere: nothing to prune
        # Antichain index: live tuples keyed by their state in the
        # largest factor (smallest expected bucket).  A tuple's possible
        # dominators agree there or sit strictly above in that factor's
        # simulation, so a dominance scan touches only those buckets —
        # never the whole live set.
        dead: set = set()
        pruned = 0
        superseded = 0
        if use_antichain:
            px = max(range(n), key=lambda i: factors[i].n_states)
            sim_px = sims[px]
            below_px: Dict[int, List[int]] = {}
            for q, ups in sim_px.items():
                for qp in ups:
                    below_px.setdefault(qp, []).append(q)
            sims_other = [(i, sims[i]) for i in range(n) if i != px]
            aindex: Dict[int, List[tuple]] = {}

        table: Dict[tuple, _Entry] = {}
        target: Optional[tuple] = None
        # Frontier as a heap ordered by number of non-accepting
        # components: tuples closer to acceptance expand first, which
        # finds witnesses (and short-circuits) sooner on sat queries.
        frontier: List[Tuple[int, int, tuple]] = []
        counter = 0

        def distance(t: tuple) -> int:
            return sum(
                1 for i in range(n) if t[i] not in factors[i].accepting
            )

        def is_dominated(t: tuple) -> bool:
            tp = t[px]
            for qp in (tp, *sim_px.get(tp, ())):
                bucket = aindex.get(qp)
                if not bucket:
                    continue
                for u in bucket:
                    for i, sim_i in sims_other:
                        ui = u[i]
                        ti = t[i]
                        if ui != ti and ui not in sim_i.get(ti, ()):
                            break
                    else:
                        return True
            return False

        dead_pending = [0]

        def antichain_insert(t: tuple) -> None:
            """Add a kept tuple; retire live tuples it dominates."""
            nonlocal superseded
            tp = t[px]
            for qp in (tp, *below_px.get(tp, ())):
                bucket = aindex.get(qp)
                if not bucket:
                    continue
                keep = []
                for u in bucket:
                    for i, sim_i in sims_other:
                        ui = u[i]
                        ti = t[i]
                        if ti != ui and ti not in sim_i.get(ui, ()):
                            keep.append(u)
                            break
                    else:
                        dead.add(u)
                        dead_pending[0] += 1
                        superseded += 1
                if len(keep) != len(bucket):
                    aindex[qp] = keep
            aindex.setdefault(tp, []).append(t)

        def discover(t: tuple, guard: int, lt, rt) -> bool:
            """Record a newly reached tuple; True when it is accepting."""
            nonlocal counter, target, pruned
            if _faults.ARMED:
                t = _faults.fire("product.expand", t)
            if record:
                if lt is None:
                    leaf_edges.append((guard, t))
                else:
                    edges.setdefault((lt, rt), []).append((guard, t))
            if t in table:
                return False
            if use_antichain and is_dominated(t):
                pruned += 1
                return False
            if max_states is not None and len(table) >= max_states:
                raise StateBudgetExceeded(
                    f"lazy product exceeded {max_states} reached states",
                    phase="product.explore",
                    counters={"reached": len(table), "pruned": pruned},
                )
            cube = mgr.pick_cube(guard)
            if cube is None:  # unsatisfiable guard — not a real transition
                return False
            table[t] = (cube, lt, rt)
            if use_antichain:
                antichain_insert(t)
            if rg is not None:
                rg.charge_states(1, "product.explore")
            counter += 1
            heapq.heappush(frontier, (distance(t), counter, t))
            if target is None and self.accepting_tuple(t):
                target = t
                return True
            return False

        ticks = [0]

        def tick() -> None:
            ticks[0] += 1
            if ticks[0] % 4096 == 0 and rg is not None:
                rg.check_now("product.explore")

        def combos(entry_lists: List):
            """Yield satisfiable guard-conjunctions across the factors.

            ``entry_lists[k]`` is the transition list of factor
            ``order[k]``; results are (guard, tuple-in-factor-order).
            Guards conjoin in exploration order, so an empty
            intersection aborts before later (larger) factors are
            touched.  A generator, so the budget/deadline checks in the
            consumer interleave with enumeration — a combinatorial cell
            count can only ever burn budget, not hang.
            """
            buf = [0] * n

            def rec(k: int, guard: int):
                if k == n:
                    yield (guard, tuple(buf))
                    return
                tick()
                for g, q in entry_lists[k]:
                    g2 = apply_and(guard, g)
                    if g2 != false:
                        buf[order[k]] = q
                        yield from rec(k + 1, g2)

            yield from rec(0, mgr.true)

        def finish(complete: bool) -> Exploration:
            self._last = Exploration(
                table, target, len(table), complete, pruned, superseded,
                leaf_edges if record else None, edges if record else None,
            )
            return self._last

        # Seed: synchronized leaf transitions.
        for guard, t in combos([factors[i].leaf for i in order]):
            if discover(t, guard, None, None) and stop_on_accepting:
                return finish(False)

        deltas = [f.delta for f in factors]
        true = mgr.true

        def expand(l: tuple, r: tuple) -> bool:
            """Synchronized expansion of one child pair.

            The factor loops are inlined (no generator) — this is the
            innermost hot path of the whole symbolic engine; guards
            conjoin in exploration order so an empty intersection stops
            before the larger factors are consulted.
            """
            entry_lists = []
            for i in order:
                entries = deltas[i].get((l[i], r[i]))
                if not entries:
                    return False
                entry_lists.append(entries)
            tick()
            if n == 1:
                for g0, q0 in entry_lists[0]:
                    if discover((q0,), g0, l, r) and stop_on_accepting:
                        return True
                return False
            buf = [0] * n
            o0 = order[0]
            o1 = order[1]
            if n == 2:
                for g0, q0 in entry_lists[0]:
                    buf[o0] = q0
                    for g1, q1 in entry_lists[1]:
                        g = apply_and(g0, g1)
                        if g != false:
                            buf[o1] = q1
                            if (
                                discover(tuple(buf), g, l, r)
                                and stop_on_accepting
                            ):
                                return True
                return False
            if n == 3:
                o2 = order[2]
                e1 = entry_lists[1]
                e2 = entry_lists[2]
                for g0, q0 in entry_lists[0]:
                    buf[o0] = q0
                    for g1, q1 in e1:
                        g01 = apply_and(g0, g1)
                        if g01 == false:
                            continue
                        buf[o1] = q1
                        for g2, q2 in e2:
                            g = apply_and(g01, g2)
                            if g != false:
                                buf[o2] = q2
                                if (
                                    discover(tuple(buf), g, l, r)
                                    and stop_on_accepting
                                ):
                                    return True
                return False
            for guard, t in combos(entry_lists):
                if discover(t, guard, l, r) and stop_on_accepting:
                    return True
            return False

        # Child-pair index: processed tuples are grouped by their state
        # in the factor whose delta refutes the most child pairs (lowest
        # key density), so each new tuple only pairs with processed
        # tuples that are delta-compatible there — the quadratic
        # all-pairs sweep only materializes where that factor allows a
        # transition at all.  Sparse factors (the big compiled cores)
        # routinely cut candidate pairs by two orders of magnitude.
        jx = min(
            range(n),
            key=lambda i: len(factors[i].delta)
            / max(1, factors[i].n_states ** 2),
        )
        partners_right: Dict[int, List[int]] = {}
        partners_left: Dict[int, List[int]] = {}
        for (a, b) in factors[jx].delta:
            partners_right.setdefault(a, []).append(b)
            partners_left.setdefault(b, []).append(a)
        groups: Dict[int, List[tuple]] = {}
        live_processed = 0

        batch_cap = self.BATCH
        while frontier:
            # Drain a batch, dropping tuples retired since they were
            # pushed; compact the group lists when retirements have
            # accumulated, so pairing stays on live work.
            batch: List[tuple] = []
            while frontier and len(batch) < batch_cap:
                _, _, t = heapq.heappop(frontier)
                if _faults.ARMED:
                    t = _faults.fire("emptiness.fixpoint", t)
                if t in dead:
                    continue
                batch.append(t)
            if dead_pending[0] * 4 > live_processed > 64:
                for q, us in list(groups.items()):
                    groups[q] = [u for u in us if u not in dead]
                live_processed = sum(len(us) for us in groups.values())
                dead_pending[0] = 0
            for t in batch:
                if t in dead:  # superseded earlier in this same batch
                    continue
                tq = t[jx]
                groups.setdefault(tq, []).append(t)
                live_processed += 1
                # t as left child (includes the (t, t) self-pair) …
                for b in partners_right.get(tq, ()):
                    for u in groups.get(b, ()):
                        if u in dead:
                            continue
                        if expand(t, u):
                            return finish(False)
                # … and as right child of every earlier tuple.
                for a in partners_left.get(tq, ()):
                    for u in groups.get(a, ()):
                        if u is t or u in dead:
                            continue
                        if expand(u, t):
                            return finish(False)

        return finish(True)
