"""Emptiness test and witness-tree extraction for tree automata."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..trees.heap import Tree, TreeNode, nil, node
from .tta import TreeAutomaton

__all__ = ["Witness", "find_witness", "is_empty"]


@dataclass
class Witness:
    """A labelled tree accepted by the automaton.

    ``labels`` maps each track name to the set of node paths carrying the
    bit.  ``tree`` is the underlying shape (with explicit nil leaves).
    """

    tree: Tree
    labels: Dict[str, FrozenSet[str]]

    def nodes_with(self, track: str) -> FrozenSet[str]:
        return self.labels.get(track, frozenset())

    def render(self) -> str:
        lines = [self.tree.render()]
        for t in sorted(self.labels):
            if self.labels[t]:
                lines.append(
                    f"  {t}: {sorted(p or 'root' for p in self.labels[t])}"
                )
        return "\n".join(lines)


# Internally a witness per state is (cube, left_state, right_state) where
# cube is a {level: bool} partial assignment for the node's label bits.
_Entry = Tuple[Dict[int, bool], Optional[int], Optional[int]]


def _saturate(a: TreeAutomaton) -> Dict[int, _Entry]:
    mgr = a.manager
    table: Dict[int, _Entry] = {}
    for g, q in a.leaf:
        if q not in table:
            cube = mgr.pick_cube(g)
            if cube is not None:
                table[q] = (cube, None, None)
    changed = True
    while changed:
        changed = False
        for (ql, qr), entries in a.delta.items():
            if ql not in table or qr not in table:
                continue
            for g, q in entries:
                if q in table:
                    continue
                cube = mgr.pick_cube(g)
                if cube is None:
                    continue
                table[q] = (cube, ql, qr)
                changed = True
    return table


def is_empty(a: TreeAutomaton) -> bool:
    """True iff the automaton accepts no labelled tree."""
    table = _saturate(a)
    return not any(q in table for q in a.accepting)


def find_witness(a: TreeAutomaton) -> Optional[Witness]:
    """A smallest-ish accepted labelled tree, or None when empty."""
    table = _saturate(a)
    target = next((q for q in a.accepting if q in table), None)
    if target is None:
        return None
    labels: Dict[str, set] = {t: set() for t in a.tracks}
    level_to_name = {
        a.registry.level(t): t for t in a.tracks
    }

    def build(q: int, path: str) -> TreeNode:
        cube, ql, qr = table[q]
        for lvl, val in cube.items():
            if val and lvl in level_to_name:
                labels[level_to_name[lvl]].add(path)
        if ql is None:
            return nil_with_path(path)
        left = build(ql, path + "l")
        right = build(qr, path + "r")  # type: ignore[arg-type]
        return node(left, right)

    def nil_with_path(path: str) -> TreeNode:
        return nil()

    root = build(target, "")
    return Witness(
        tree=Tree(root),
        labels={t: frozenset(s) for t, s in labels.items()},
    )
