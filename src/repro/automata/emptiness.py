"""Emptiness test and witness-tree extraction for tree automata.

Both entry points accept a plain :class:`TreeAutomaton` or an implicit
:class:`~repro.automata.product.ProductAutomaton`; either way the
bottom-up reachability fixpoint runs lazily (a plain automaton is a
1-factor product), constructs only reachable states, short-circuits on
the first accepting state, and can be bounded by a reached-state budget
and a wall-clock deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Union

from ..runtime import ResourceGuard
from ..trees.heap import Tree, TreeNode, nil, node
from .product import Exploration, ProductAutomaton
from .tta import TreeAutomaton

__all__ = ["Witness", "find_witness", "is_empty"]

Automaton = Union[TreeAutomaton, ProductAutomaton]


@dataclass
class Witness:
    """A labelled tree accepted by the automaton.

    ``labels`` maps each track name to the set of node paths carrying the
    bit.  ``tree`` is the underlying shape (with explicit nil leaves).
    """

    tree: Tree
    labels: Dict[str, FrozenSet[str]]

    def nodes_with(self, track: str) -> FrozenSet[str]:
        return self.labels.get(track, frozenset())

    def render(self) -> str:
        lines = [self.tree.render()]
        for t in sorted(self.labels):
            if self.labels[t]:
                lines.append(
                    f"  {t}: {sorted(p or 'root' for p in self.labels[t])}"
                )
        return "\n".join(lines)


def _as_product(a: Automaton) -> ProductAutomaton:
    return a if isinstance(a, ProductAutomaton) else ProductAutomaton([a])


def is_empty(
    a: Automaton,
    max_states: Optional[int] = None,
    deadline: Optional[float] = None,
    guard: Optional[ResourceGuard] = None,
    antichain: Optional[bool] = None,
) -> bool:
    """True iff the automaton accepts no labelled tree.

    ``antichain`` overrides the subsumption-pruning default of
    :meth:`ProductAutomaton.explore` (None = the class default); the
    verdict is the same either way, per the antichain invariant.
    """
    exp = _as_product(a).explore(
        max_states=max_states, deadline=deadline, guard=guard,
        antichain=antichain,
    )
    return exp.empty


def find_witness(
    a: Automaton,
    max_states: Optional[int] = None,
    deadline: Optional[float] = None,
    guard: Optional[ResourceGuard] = None,
    antichain: Optional[bool] = None,
) -> Optional[Witness]:
    """A smallest-ish accepted labelled tree, or None when empty."""
    prod = _as_product(a)
    exp = prod.explore(
        max_states=max_states, deadline=deadline, guard=guard,
        antichain=antichain,
    )
    return witness_from_exploration(prod, exp)


def witness_from_exploration(
    prod: ProductAutomaton, exp: Exploration
) -> Optional[Witness]:
    """Decode the witness tree recorded by a lazy exploration."""
    if exp.target is None:
        return None
    registry = prod.registry
    tracks = prod.tracks
    labels: Dict[str, set] = {t: set() for t in tracks}
    level_to_name = {registry.level(t): t for t in tracks}
    table = exp.table

    def build(q, path: str) -> TreeNode:
        cube, ql, qr = table[q]
        for lvl, val in cube.items():
            if val and lvl in level_to_name:
                labels[level_to_name[lvl]].add(path)
        if ql is None:
            return nil()
        left = build(ql, path + "l")
        right = build(qr, path + "r")
        return node(left, right)

    root = build(exp.target, "")
    return Witness(
        tree=Tree(root),
        labels={t: frozenset(s) for t, s in labels.items()},
    )
