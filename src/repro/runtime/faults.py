"""Deterministic fault injection for the solver runtime.

Named probe points sit on the hot paths of the decision procedure:

``bdd.apply``
    after a binary BDD apply computes (and memoizes) its result node;
``product.expand``
    when the lazy product discovers a new reached tuple;
``emptiness.fixpoint``
    when the emptiness/witness fixpoint pops a tuple off its frontier.

A probe is *armed* with :func:`arm` by name plus an Nth-hit count; when
the probe fires it either raises :class:`InjectedFault` (``action=
"raise"``) or substitutes a corrupted value (``action="corrupt"``) that
is guaranteed to crash deterministically on first use — never to flow
onward as a plausible-but-wrong result.  Tests use this to prove that
every injected failure surfaces as a typed
:class:`~repro.runtime.errors.ReproError` and that the degradation
ladder still reaches a sound verdict through a lower rung.

Probes are compiled out of the hot path when nothing is armed: call
sites guard on the module-level ``ARMED`` flag, so the steady-state cost
is one attribute read per probe site.

For CI, ``REPRO_FAULT="probe:hit[:action]"`` (comma-separated for
several) can be parsed with :func:`install_from_env`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .errors import SolverInternalError

__all__ = [
    "PROBES",
    "SOLVER_PROBES",
    "SERVICE_PROBES",
    "ARMED",
    "InjectedFault",
    "FaultSpec",
    "arm",
    "disarm_all",
    "active",
    "fire",
    "install_from_env",
]

#: Probes on the in-process decision procedure's hot paths.
SOLVER_PROBES = ("bdd.apply", "product.expand", "emptiness.fixpoint")

#: Probes on the service layer.  ``worker-abort`` is the non-cooperative
#: one: it sits in :mod:`repro.service.worker` and, when armed, a
#: sandboxed child answers it by dying on SIGSEGV mid-solve (no frame,
#: no cleanup) instead of raising — the crash analogue of the in-process
#: probes, used to test the supervisor/batch recovery paths.  The other
#: three sit in the solve daemon (DESIGN.md §11): ``queue-full`` forces
#: the admission queue to reject as if saturated, ``cache-row-corrupt``
#: substitutes a corrupted row payload on a shared-cache read (the
#: checksum must catch it and quarantine the row), and
#: ``drain-interrupt`` aborts a graceful drain mid-way (the journal and
#: shared cache must still be consistent afterwards).
SERVICE_PROBES = (
    "worker-abort",
    "queue-full",
    "cache-row-corrupt",
    "drain-interrupt",
)

#: Every probe point compiled into the runtime.
PROBES = SOLVER_PROBES + SERVICE_PROBES

#: Fast flag checked at probe sites; true iff any probe is armed.
ARMED = False

_ACTIONS = ("raise", "corrupt")


class InjectedFault(SolverInternalError):
    """Raised by an armed probe with ``action="raise"``."""


@dataclass
class FaultSpec:
    """One armed probe: fire on the *hit*-th traversal, once."""

    probe: str
    hit: int = 1
    action: str = "raise"
    hits_seen: int = field(default=0, compare=False)
    fired: bool = field(default=False, compare=False)


_active: Dict[str, FaultSpec] = {}


def _refresh_armed() -> None:
    global ARMED
    ARMED = bool(_active)


def arm(probe: str, hit: int = 1, action: str = "raise") -> FaultSpec:
    """Arm *probe* to fire on its *hit*-th traversal with *action*."""
    if probe not in PROBES:
        raise ValueError(f"unknown fault probe {probe!r}; known: {PROBES}")
    if action not in _ACTIONS:
        raise ValueError(f"unknown fault action {action!r}; known: {_ACTIONS}")
    if hit < 1:
        raise ValueError("hit count must be >= 1")
    spec = FaultSpec(probe=probe, hit=hit, action=action)
    _active[probe] = spec
    _refresh_armed()
    return spec


def disarm_all() -> None:
    """Disarm every probe."""
    _active.clear()
    _refresh_armed()


def active() -> List[FaultSpec]:
    """The currently armed specs (armed order not guaranteed)."""
    return list(_active.values())


def _corrupted(probe: str, value):
    """A corrupted stand-in for *value* that crashes on first use.

    The corruption is engineered so the value can never silently flip a
    verdict: it either trips a type/index error the moment downstream
    code touches it, or is structurally unusable.
    """
    if probe == "bdd.apply":
        # An out-of-range node index: any dereference of the node table
        # (further applies, pick_cube, evaluate) raises IndexError.
        return 1 << 62
    if probe == "product.expand":
        # A tuple with an unhashable component: membership tests against
        # the reached-state table raise TypeError immediately.
        if isinstance(value, tuple) and value:
            return tuple(value[:-1]) + ([],)
        return ([],)
    if probe == "cache-row-corrupt":
        # Valid JSON that can never checksum against its row: the shared
        # cache must quarantine it and report a miss, never serve it.
        return '{"injected": "cache-row-corrupt"}'
    # emptiness.fixpoint (and the remaining service probes, which are
    # only meaningful with action="raise"): the fixpoint loop subscripts
    # popped tuples, so None raises TypeError on first use.
    return None


def fire(probe: str, value=None):
    """Probe point: pass *value* through unless *probe* is due to fire.

    Call sites must guard on ``ARMED`` so this function is never invoked
    in the steady state.
    """
    spec = _active.get(probe)
    if spec is None or spec.fired:
        return value
    spec.hits_seen += 1
    if spec.hits_seen < spec.hit:
        return value
    spec.fired = True
    if spec.action == "raise":
        raise InjectedFault(
            f"injected fault at probe {probe!r} (hit {spec.hit})",
            phase=probe,
            counters={"hit": spec.hit},
        )
    return _corrupted(probe, value)


def install_from_env(env: Optional[Dict[str, str]] = None) -> List[FaultSpec]:
    """Arm probes from ``REPRO_FAULT="probe:hit[:action][,probe:hit…]"``.

    Returns the list of armed specs (empty when the variable is unset).
    """
    raw = (env if env is not None else os.environ).get("REPRO_FAULT", "").strip()
    if not raw:
        return []
    specs = []
    for chunk in raw.split(","):
        parts = chunk.strip().split(":")
        if not parts or not parts[0]:
            continue
        probe = parts[0]
        hit = int(parts[1]) if len(parts) > 1 and parts[1] else 1
        action = parts[2] if len(parts) > 2 and parts[2] else "raise"
        specs.append(arm(probe, hit=hit, action=action))
    return specs
