"""Cooperative resource governance for the decision procedure.

A single :class:`ResourceGuard` carries every limit a solver run is
subject to — wall-clock deadline, reached-state budget, BDD-node
(memory) ceiling — and is passed down through BDD operations, automaton
constructions, product exploration, compilation, and the solver.  Hot
loops call the cheap :meth:`ResourceGuard.tick` probe (an integer
increment; the expensive clock/size reads only run every
``check_every`` ticks), while natural phase boundaries call
:meth:`ResourceGuard.check_now` directly.

Limit violations raise the typed exceptions from
:mod:`repro.runtime.errors`, so callers can distinguish a timeout from
budget exhaustion from a memory ceiling.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .errors import DeadlineExceeded, MemoryCeilingExceeded, StateBudgetExceeded

__all__ = ["ResourceGuard", "as_guard"]


class ResourceGuard:
    """One cooperative cancellation/limits object for a solver run.

    Parameters
    ----------
    deadline:
        Absolute ``time.perf_counter()`` value after which work must
        stop, or ``None`` for no wall-clock limit.
    state_budget:
        Maximum number of states the run may *charge* (via
        :meth:`charge_states`), or ``None`` for unlimited.
    node_ceiling:
        Maximum number of live BDD nodes in a bound manager, or
        ``None`` for unlimited.
    check_every:
        How many :meth:`tick` calls to skip between real checks.
    """

    __slots__ = (
        "deadline",
        "state_budget",
        "node_ceiling",
        "check_every",
        "_ticks",
        "_next_check",
        "_states",
        "_managers",
        "last_phase",
    )

    def __init__(
        self,
        deadline: Optional[float] = None,
        state_budget: Optional[int] = None,
        node_ceiling: Optional[int] = None,
        check_every: int = 1024,
    ) -> None:
        self.deadline = deadline
        self.state_budget = state_budget
        self.node_ceiling = node_ceiling
        self.check_every = max(1, int(check_every))
        self._ticks = 0
        self._next_check = self.check_every
        self._states = 0
        self._managers: list = []
        self.last_phase: Optional[str] = None

    # ------------------------------------------------------------------
    # construction helpers

    @classmethod
    def start(
        cls,
        deadline_s: Optional[float] = None,
        state_budget: Optional[int] = None,
        node_ceiling: Optional[int] = None,
        check_every: int = 1024,
    ) -> "ResourceGuard":
        """Create a guard whose deadline is *deadline_s* seconds from now."""
        deadline = None
        if deadline_s is not None:
            deadline = time.perf_counter() + deadline_s
        return cls(
            deadline=deadline,
            state_budget=state_budget,
            node_ceiling=node_ceiling,
            check_every=check_every,
        )

    def bind_manager(self, manager) -> None:
        """Attach a :class:`~repro.bdd.bdd.BDDManager` for node accounting.

        The manager's allocation loop reports its node count back through
        :meth:`note_nodes`; binding also lets :meth:`check_now` enforce
        the ceiling at phase boundaries.
        """
        manager.guard = self
        if manager not in self._managers:
            self._managers.append(manager)

    def unbind_managers(self) -> None:
        """Detach every bound manager (clears their ``guard`` attribute)."""
        for manager in self._managers:
            if getattr(manager, "guard", None) is self:
                manager.guard = None
        self._managers = []

    # ------------------------------------------------------------------
    # probes

    def tick(self, phase: Optional[str] = None) -> None:
        """Cheap hot-loop probe: a full check only every ``check_every`` ticks."""
        self._ticks += 1
        if self._ticks >= self._next_check:
            self._next_check = self._ticks + self.check_every
            self.check_now(phase)

    def check_now(self, phase: Optional[str] = None) -> None:
        """Enforce the deadline and node ceiling immediately."""
        if phase is not None:
            self.last_phase = phase
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise DeadlineExceeded(
                "wall-clock deadline exceeded",
                phase=phase or self.last_phase,
                counters=self.counters(),
            )
        if self.node_ceiling is not None:
            for manager in self._managers:
                self._check_ceiling(manager.size(), phase)

    def charge_states(self, n: int = 1, phase: Optional[str] = None) -> None:
        """Account *n* newly reached states against the state budget."""
        self._states += n
        if self.state_budget is not None and self._states > self.state_budget:
            raise StateBudgetExceeded(
                f"reached-state budget of {self.state_budget} exceeded",
                phase=phase or self.last_phase,
                counters=self.counters(),
            )

    def note_nodes(self, count: int, phase: str = "bdd") -> None:
        """Called by a bound BDD manager after allocating nodes."""
        self._check_ceiling(count, phase)
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise DeadlineExceeded(
                "wall-clock deadline exceeded",
                phase=phase,
                counters=self.counters(),
            )

    def _check_ceiling(self, count: int, phase: Optional[str]) -> None:
        if self.node_ceiling is not None and count > self.node_ceiling:
            raise MemoryCeilingExceeded(
                f"BDD node count {count} exceeded ceiling of {self.node_ceiling}",
                phase=phase or self.last_phase,
                counters=self.counters(),
            )

    # ------------------------------------------------------------------
    # introspection

    def expired(self) -> bool:
        """Non-raising deadline test."""
        return self.deadline is not None and time.perf_counter() > self.deadline

    def remaining_s(self) -> Optional[float]:
        """Seconds until the deadline, or ``None`` if no deadline is set."""
        if self.deadline is None:
            return None
        return self.deadline - time.perf_counter()

    def counters(self) -> Dict[str, object]:
        counters: Dict[str, object] = {
            "ticks": self._ticks,
            "states_charged": self._states,
        }
        if self._managers:
            counters["bdd_nodes"] = sum(m.size() for m in self._managers)
        if self.deadline is not None:
            counters["remaining_s"] = round(self.deadline - time.perf_counter(), 6)
        return counters

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResourceGuard(deadline={self.deadline!r}, "
            f"state_budget={self.state_budget!r}, "
            f"node_ceiling={self.node_ceiling!r})"
        )


def as_guard(
    guard: Optional[ResourceGuard],
    deadline: Optional[float] = None,
) -> Optional[ResourceGuard]:
    """Coerce legacy ``deadline`` float kwargs into a guard.

    Construction entry points accept both the new ``guard=`` object and
    the seed pipeline's ``deadline=`` absolute-``perf_counter`` float;
    this helper merges them (an explicit guard wins, a bare float is
    wrapped) so internal code only ever deals with guards.
    """
    if guard is not None:
        return guard
    if deadline is not None:
        return ResourceGuard(deadline=deadline)
    return None
