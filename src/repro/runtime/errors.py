"""Structured failure taxonomy for the solver runtime.

Every recoverable failure the decision procedure can produce is a typed
:class:`ReproError` carrying the *phase* that tripped (``"determinize"``,
``"product.explore"``, ``"bdd"``, …) and a snapshot of the resource
counters at that moment, so callers can tell a wall-clock timeout from
state-budget exhaustion from a memory ceiling from a genuine bug — and
the degradation ladder in :mod:`repro.core.api` can decide whether
escalating limits, switching engines, or re-raising is the right move.

Hierarchy::

    ReproError                     (base; never raised directly)
    ├── ResourceExhausted          (recoverable: a limit was hit)
    │   ├── DeadlineExceeded       (wall-clock deadline passed)
    │   ├── StateBudgetExceeded    (automaton/product state budget hit)
    │   └── MemoryCeilingExceeded  (BDD-node / memory ceiling hit)
    └── SolverInternalError        (a bug or corrupted value — not a limit)

``StateBudgetExceeded`` is re-exported from
:mod:`repro.automata.determinize` for backward compatibility with the
seed pipeline's import sites.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "ReproError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "StateBudgetExceeded",
    "MemoryCeilingExceeded",
    "SolverInternalError",
    "exhaustion_status",
]


class ReproError(RuntimeError):
    """Base class of all typed solver-runtime failures."""

    def __init__(
        self,
        message: str = "",
        phase: Optional[str] = None,
        counters: Optional[Dict[str, object]] = None,
    ) -> None:
        super().__init__(message)
        self.phase = phase
        self.counters: Dict[str, object] = dict(counters or {})

    def __str__(self) -> str:
        base = super().__str__()
        if self.phase:
            base = f"{base} [phase={self.phase}]"
        return base


class ResourceExhausted(ReproError):
    """A configured resource limit was hit (recoverable by fallback)."""


class DeadlineExceeded(ResourceExhausted):
    """The wall-clock deadline passed mid-query."""


class StateBudgetExceeded(ResourceExhausted):
    """A construction or exploration exceeded its state budget."""


class MemoryCeilingExceeded(ResourceExhausted):
    """The BDD-node / memory ceiling was exceeded."""


class SolverInternalError(ReproError):
    """An unexpected internal failure (a bug, not a resource limit).

    The symbolic engine wraps any non-:class:`ReproError` exception into
    this class at its boundary, so callers always see a typed error and
    never a silent wrong verdict.
    """


def exhaustion_status(exc: BaseException) -> str:
    """Canonical short status name for an exhaustion exception."""
    if isinstance(exc, DeadlineExceeded):
        return "deadline"
    if isinstance(exc, MemoryCeilingExceeded):
        return "memory"
    if isinstance(exc, StateBudgetExceeded):
        return "budget"
    return "error"
