"""Resilient solver runtime: resource governance, failure taxonomy, faults.

See DESIGN.md §7 ("Failure semantics & resource governance").
"""

from . import faults
from .errors import (
    DeadlineExceeded,
    MemoryCeilingExceeded,
    ReproError,
    ResourceExhausted,
    SolverInternalError,
    StateBudgetExceeded,
    exhaustion_status,
)
from .guard import ResourceGuard, as_guard

__all__ = [
    "ReproError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "StateBudgetExceeded",
    "MemoryCeilingExceeded",
    "SolverInternalError",
    "exhaustion_status",
    "ResourceGuard",
    "as_guard",
    "faults",
]
