"""Left-child / right-sibling conversion for n-ary trees.

CSS ASTs (and most document trees) are n-ary; Retreet and the MSO encoding
work on binary trees.  Following the paper's §5 preprocessing, an n-ary tree
converts to binary form where ``l`` points to the first child and ``r`` to
the next sibling.  The conversion preserves per-node fields, and "for each
child p: T(n.p)" traversals become ``T(n.l); T(n.r)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .heap import Tree, TreeNode, nil, node

__all__ = ["NaryNode", "to_lcrs", "from_lcrs"]


@dataclass
class NaryNode:
    """A node of an n-ary tree with integer fields."""

    fields: Dict[str, int] = field(default_factory=dict)
    children: List["NaryNode"] = field(default_factory=list)

    def add(self, child: "NaryNode") -> "NaryNode":
        self.children.append(child)
        return child

    def get(self, name: str) -> int:
        return self.fields.get(name, 0)

    def set(self, name: str, value: int) -> None:
        self.fields[name] = int(value)

    def walk(self):
        yield self
        for c in self.children:
            yield from c.walk()

    @property
    def size(self) -> int:
        return sum(1 for _ in self.walk())


def to_lcrs(root: NaryNode) -> Tree:
    """Convert an n-ary tree to left-child/right-sibling binary form."""

    def conv(n: NaryNode, siblings: List[NaryNode]) -> TreeNode:
        first_child = (
            conv(n.children[0], n.children[1:]) if n.children else nil()
        )
        next_sib = conv(siblings[0], siblings[1:]) if siblings else nil()
        return node(first_child, next_sib, **n.fields)

    return Tree(conv(root, []))


def from_lcrs(tree: Tree) -> Optional[NaryNode]:
    """Inverse of :func:`to_lcrs` (the root must have no siblings)."""
    if tree.root.is_nil:
        return None

    def conv(t: TreeNode) -> List[NaryNode]:
        """The node at t plus its following siblings, as n-ary nodes."""
        out: List[NaryNode] = []
        cur: Optional[TreeNode] = t
        while cur is not None and not cur.is_nil:
            n = NaryNode(dict(cur.fields))
            if cur.left is not None and not cur.left.is_nil:
                n.children = conv(cur.left)
            out.append(n)
            cur = cur.right
        return out

    roots = conv(tree.root)
    if len(roots) != 1:
        raise ValueError("LCRS root has siblings; not a converted n-ary tree")
    return roots[0]
