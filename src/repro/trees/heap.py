"""Binary tree heaps with explicit nil leaves.

Retreet programs (and the MSO tree models that abstract them) operate on
finite binary trees in which *every* internal node has exactly two children
and the frontier consists of explicit ``nil`` nodes.  This mirrors the paper's
WS2S constraint ``isNil(v) -> isNil(left(v)) && isNil(right(v))`` while
keeping every model finite and printable.

A :class:`TreeNode` is either *internal* (carries integer fields and two
children) or *nil* (no fields, no children).  :class:`Tree` wraps a root node
and provides addressing, traversal, cloning and comparison utilities used by
the interpreter, the bounded checker and the MSO witness decoder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TreeNode", "Tree", "nil", "node", "tree_from_tuple", "tree_to_tuple"]


class TreeNode:
    """A node of a binary tree heap.

    Internal nodes own a mutable mapping of integer-valued local fields and
    two children (which may be nil nodes).  Nil nodes are terminal: reading a
    field of nil or taking its children is a :class:`NilAccessError`.
    """

    __slots__ = ("left", "right", "fields", "_nil", "path")

    def __init__(
        self,
        left: Optional["TreeNode"] = None,
        right: Optional["TreeNode"] = None,
        fields: Optional[Dict[str, int]] = None,
        *,
        is_nil: bool = False,
    ) -> None:
        self._nil = is_nil
        if is_nil:
            if left is not None or right is not None or fields:
                raise ValueError("nil nodes carry no children or fields")
            self.left = None
            self.right = None
            self.fields: Dict[str, int] = {}
        else:
            self.left = left if left is not None else TreeNode(is_nil=True)
            self.right = right if right is not None else TreeNode(is_nil=True)
            self.fields = dict(fields or {})
        # ``path`` is assigned lazily by Tree._index(); "" is the root,
        # "lr" is root.left.right, etc.
        self.path: str = ""

    # -- structure ---------------------------------------------------------
    @property
    def is_nil(self) -> bool:
        return self._nil

    def child(self, direction: str) -> "TreeNode":
        """Return the child in ``direction`` ('l' or 'r')."""
        if self._nil:
            raise NilAccessError(f"child({direction!r}) of nil node {self.path!r}")
        if direction == "l":
            return self.left  # type: ignore[return-value]
        if direction == "r":
            return self.right  # type: ignore[return-value]
        raise ValueError(f"bad direction {direction!r}")

    # -- fields ------------------------------------------------------------
    def get(self, name: str) -> int:
        if self._nil:
            raise NilAccessError(f"read of field {name!r} on nil node {self.path!r}")
        return self.fields.get(name, 0)

    def set(self, name: str, value: int) -> None:
        if self._nil:
            raise NilAccessError(f"write of field {name!r} on nil node {self.path!r}")
        self.fields[name] = int(value)

    # -- misc ---------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._nil:
            return f"<nil {self.path!r}>"
        return f"<node {self.path!r} {self.fields}>"


class NilAccessError(RuntimeError):
    """Raised when a program dereferences a nil node.

    Retreet assumes null-dereference freedom; the interpreter raises this to
    surface violations during testing rather than silently misbehaving.
    """


def nil() -> TreeNode:
    """Construct a fresh nil leaf."""
    return TreeNode(is_nil=True)


def node(
    left: Optional[TreeNode] = None,
    right: Optional[TreeNode] = None,
    **fields: int,
) -> TreeNode:
    """Construct an internal node; missing children default to nil."""
    return TreeNode(left, right, fields)


@dataclass
class Tree:
    """A rooted binary tree heap with path indexing.

    Paths are strings over ``{'l','r'}``; the empty string addresses the
    root.  Indexing covers nil leaves too, so MSO witnesses (which label nil
    positions — e.g. the paper labels ``C_c0``/``C_c1`` on nil nodes in
    Fig. 4b) can be decoded onto concrete nodes.
    """

    root: TreeNode
    _by_path: Dict[str, TreeNode] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.reindex()

    # -- indexing ------------------------------------------------------------
    def reindex(self) -> None:
        """(Re)compute the path index after structural edits."""
        self._by_path = {}
        stack: List[Tuple[TreeNode, str]] = [(self.root, "")]
        while stack:
            n, p = stack.pop()
            n.path = p
            self._by_path[p] = n
            if not n.is_nil:
                stack.append((n.left, p + "l"))  # type: ignore[arg-type]
                stack.append((n.right, p + "r"))  # type: ignore[arg-type]

    def node_at(self, path: str) -> TreeNode:
        try:
            return self._by_path[path]
        except KeyError:
            raise KeyError(f"no node at path {path!r}") from None

    def __contains__(self, path: str) -> bool:
        return path in self._by_path

    # -- traversal -----------------------------------------------------------
    def nodes(self, include_nil: bool = False) -> Iterator[TreeNode]:
        """Yield nodes in preorder (root, left subtree, right subtree)."""
        stack = [self.root]
        while stack:
            n = stack.pop()
            if n.is_nil:
                if include_nil:
                    yield n
                continue
            yield n
            stack.append(n.right)  # type: ignore[arg-type]
            stack.append(n.left)  # type: ignore[arg-type]

    def paths(self, include_nil: bool = False) -> List[str]:
        return sorted(
            (n.path for n in self.nodes(include_nil)), key=lambda p: (len(p), p)
        )

    # -- measurements ----------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of internal (non-nil) nodes."""
        return sum(1 for _ in self.nodes())

    @property
    def height(self) -> int:
        """Height counted in internal nodes (empty tree has height 0)."""

        def h(n: TreeNode) -> int:
            if n.is_nil:
                return 0
            return 1 + max(h(n.left), h(n.right))  # type: ignore[arg-type]

        return h(self.root)

    # -- copying / comparing ---------------------------------------------------
    def clone(self) -> "Tree":
        """Deep copy (the interpreter mutates fields in place)."""

        def c(n: TreeNode) -> TreeNode:
            if n.is_nil:
                return nil()
            return TreeNode(c(n.left), c(n.right), dict(n.fields))  # type: ignore[arg-type]

        return Tree(c(self.root))

    def same_shape(self, other: "Tree") -> bool:
        return set(self.paths(include_nil=True)) == set(other.paths(include_nil=True))

    def fields_equal(self, other: "Tree", fields: Optional[List[str]] = None) -> bool:
        """Shape equality plus per-node field equality.

        When ``fields`` is given only those fields are compared (used to
        ignore scratch fields introduced by program rewrites).
        """
        if not self.same_shape(other):
            return False
        for p in self.paths():
            a, b = self.node_at(p), other.node_at(p)
            if fields is None:
                keys = set(a.fields) | set(b.fields)
            else:
                keys = set(fields)
            for k in keys:
                if a.get(k) != b.get(k):
                    return False
        return True

    def map_fields(self, fn: Callable[[TreeNode], None]) -> "Tree":
        """Apply ``fn`` to every internal node in place; returns self."""
        for n in self.nodes():
            fn(n)
        return self

    # -- rendering ---------------------------------------------------------------
    def render(self, fields: Optional[List[str]] = None) -> str:
        """ASCII rendering, one node per line, indented by depth."""
        lines: List[str] = []

        def go(n: TreeNode, depth: int, tag: str) -> None:
            pad = "  " * depth
            if n.is_nil:
                lines.append(f"{pad}{tag}nil")
                return
            shown = (
                {k: n.fields[k] for k in fields if k in n.fields}
                if fields is not None
                else n.fields
            )
            lines.append(f"{pad}{tag}node{shown}")
            go(n.left, depth + 1, "l: ")  # type: ignore[arg-type]
            go(n.right, depth + 1, "r: ")  # type: ignore[arg-type]

        go(self.root, 0, "")
        return "\n".join(lines)


def tree_to_tuple(t: Tree) -> object:
    """Serialize a tree to nested tuples ``(fields, left, right)`` / None."""

    def go(n: TreeNode) -> object:
        if n.is_nil:
            return None
        return (tuple(sorted(n.fields.items())), go(n.left), go(n.right))  # type: ignore[arg-type]

    return go(t.root)


def tree_from_tuple(obj: object) -> Tree:
    """Inverse of :func:`tree_to_tuple`."""

    def go(o: object) -> TreeNode:
        if o is None:
            return nil()
        flds, l, r = o  # type: ignore[misc]
        return TreeNode(go(l), go(r), dict(flds))

    return Tree(go(obj))
