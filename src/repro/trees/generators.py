"""Deterministic tree generators for tests, fuzzing and benchmarks.

All randomness is seeded (``random.Random``) so every test and benchmark run
is reproducible.  ``all_shapes`` enumerates every binary-tree shape with a
given number of internal nodes (Catalan enumeration) — the bounded checker
uses it to be exhaustive on small scopes.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from .heap import Tree, TreeNode, nil, node

__all__ = [
    "full_tree",
    "left_chain",
    "right_chain",
    "zigzag",
    "random_tree",
    "all_shapes",
    "assign_fields",
]


def full_tree(height: int, **fields: int) -> Tree:
    """Perfect binary tree of the given height (0 -> a single nil root)."""

    def go(h: int) -> TreeNode:
        if h <= 0:
            return nil()
        return node(go(h - 1), go(h - 1), **fields)

    return Tree(go(height))


def left_chain(length: int, **fields: int) -> Tree:
    """A chain descending through left children."""
    cur = nil()
    for _ in range(length):
        cur = node(cur, nil(), **fields)
    return Tree(cur)


def right_chain(length: int, **fields: int) -> Tree:
    """A chain descending through right children."""
    cur = nil()
    for _ in range(length):
        cur = node(nil(), cur, **fields)
    return Tree(cur)


def zigzag(length: int, **fields: int) -> Tree:
    """A chain alternating left/right descent."""
    cur = nil()
    go_left = True
    for _ in range(length):
        cur = node(cur, nil(), **fields) if go_left else node(nil(), cur, **fields)
        go_left = not go_left
    return Tree(cur)


def random_tree(
    n_internal: int,
    seed: int = 0,
    field_names: Sequence[str] = (),
    value_range: tuple[int, int] = (-8, 8),
) -> Tree:
    """Uniform-ish random shape with ``n_internal`` internal nodes.

    Uses the remy-style split: recursively divide the node budget between the
    two subtrees with a seeded RNG.  Fields listed in ``field_names`` get
    random values in ``value_range``.
    """
    rng = random.Random(seed)

    def go(budget: int) -> TreeNode:
        if budget <= 0:
            return nil()
        left_budget = rng.randint(0, budget - 1)
        fields = {f: rng.randint(*value_range) for f in field_names}
        return node(go(left_budget), go(budget - 1 - left_budget), **fields)

    return Tree(go(n_internal))


def all_shapes(n_internal: int) -> Iterator[Tree]:
    """Every binary-tree shape with exactly ``n_internal`` internal nodes.

    Yields Catalan(n) trees; Catalan(0)=1 is the single nil root.
    """

    def shapes(n: int) -> List[TreeNode]:
        if n == 0:
            return [nil()]
        out: List[TreeNode] = []
        for k in range(n):
            for l in shapes(k):
                for r in shapes(n - 1 - k):
                    out.append(node(_clone(l), _clone(r)))
        return out

    for root in shapes(n_internal):
        yield Tree(root)


def _clone(n: TreeNode) -> TreeNode:
    if n.is_nil:
        return nil()
    return node(_clone(n.left), _clone(n.right), **dict(n.fields))  # type: ignore[arg-type]


def assign_fields(
    tree: Tree,
    field_names: Sequence[str],
    seed: int = 0,
    value_range: tuple[int, int] = (-8, 8),
    fn: Optional[Callable[[str], Dict[str, int]]] = None,
) -> Tree:
    """Assign values to fields on every internal node, in place.

    ``fn`` maps the node path to a field dict; if omitted a seeded RNG is
    used.  Returns the tree for chaining.
    """
    rng = random.Random(seed)
    for n in tree.nodes():
        values = fn(n.path) if fn is not None else {
            f: rng.randint(*value_range) for f in field_names
        }
        for k, v in values.items():
            n.set(k, v)
    return tree
