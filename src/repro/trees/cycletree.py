"""Natural cycletrees: construction, cyclic numbering, and routing.

Cycletrees (Veanes & Barklund, 1996) are binary trees augmented with edges
forming a Hamiltonian cycle over all nodes; broadcast uses the tree edges,
point-to-point traffic uses the cycle.  This module is the concrete
substrate behind the paper's hardest case study (§5): it implements

* the *cyclic order* over a binary tree via the four mutually recursive
  numbering modes (root/pre/in/post — the mode pattern of the paper's
  Fig. 9, with the counter threaded functionally so the numbering is a true
  permutation);
* per-node *routing intervals* (min/max cycle number of each subtree, the
  ``lmin/lmax/rmin/rmax`` fields of ``ComputeRouting``); and
* a :class:`CycletreeRouter` that routes messages hop-by-hop using only the
  local intervals, plus cycle-edge extraction and verification helpers.

The Retreet-level traversals analysed by the framework live in
:mod:`repro.casestudies.cycletree`; tests cross-check the two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .heap import Tree, TreeNode

__all__ = [
    "number_cyclic",
    "compute_routing",
    "cycle_order",
    "cycle_edges",
    "CycletreeRouter",
    "is_hamiltonian_cycle",
]

ROOT, PRE, IN, POST = "root", "pre", "in", "post"

# Child modes per parent mode: (left child mode, right child mode) and
# whether the node numbers itself before, between, or after its children.
_SCHEME: Dict[str, Tuple[str, str, str]] = {
    # mode: (self position, left mode, right mode)
    ROOT: ("first", PRE, POST),
    PRE: ("first", PRE, IN),
    IN: ("mid", POST, PRE),
    POST: ("last", IN, POST),
}


def number_cyclic(tree: Tree) -> Tree:
    """Assign ``num`` fields in cyclic order (mode scheme of Fig. 9).

    The counter is threaded through the recursion, so ``num`` is a
    permutation of 0..size-1 in which consecutive numbers are adjacent in
    the cycletree (tree edges plus the implicit cycle edges)."""

    def go(node: TreeNode, mode: str, counter: int) -> int:
        if node.is_nil:
            return counter
        pos, lmode, rmode = _SCHEME[mode]
        if pos == "first":
            node.set("num", counter)
            counter += 1
            counter = go(node.left, lmode, counter)  # type: ignore[arg-type]
            counter = go(node.right, rmode, counter)  # type: ignore[arg-type]
        elif pos == "mid":
            counter = go(node.left, lmode, counter)  # type: ignore[arg-type]
            node.set("num", counter)
            counter += 1
            counter = go(node.right, rmode, counter)  # type: ignore[arg-type]
        else:  # last
            counter = go(node.left, lmode, counter)  # type: ignore[arg-type]
            counter = go(node.right, rmode, counter)  # type: ignore[arg-type]
            node.set("num", counter)
            counter += 1
        return counter

    total = go(tree.root, ROOT, 0)
    assert total == tree.size
    return tree


def compute_routing(tree: Tree) -> Tree:
    """Post-order computation of the routing intervals (Fig. 9's
    ``ComputeRouting``): per node, the min/max cycle number of each child
    subtree and of the node's own subtree."""

    def go(node: TreeNode) -> Tuple[int, int]:
        # returns (min, max) over the subtree; nil -> sentinel via caller.
        assert not node.is_nil
        num = node.get("num")
        if node.left is not None and not node.left.is_nil:
            lmin, lmax = go(node.left)
        else:
            lmin = lmax = num
        if node.right is not None and not node.right.is_nil:
            rmin, rmax = go(node.right)
        else:
            rmin = rmax = num
        node.set("lmin", lmin)
        node.set("lmax", lmax)
        node.set("rmin", rmin)
        node.set("rmax", rmax)
        node.set("min", min(lmin, rmin, num))
        node.set("max", max(lmax, rmax, num))
        return node.get("min"), node.get("max")

    if not tree.root.is_nil:
        go(tree.root)
    return tree


def cycle_order(tree: Tree) -> List[TreeNode]:
    """Nodes sorted by cyclic number."""
    return sorted(tree.nodes(), key=lambda n: n.get("num"))


def cycle_edges(tree: Tree) -> List[Tuple[str, str]]:
    """The Hamiltonian cycle as (path, path) edges, closing back to 0."""
    order = cycle_order(tree)
    if not order:
        return []
    return [
        (order[i].path, order[(i + 1) % len(order)].path)
        for i in range(len(order))
    ]


def _tree_adjacent(a: str, b: str) -> bool:
    return (len(a) + 1 == len(b) and b.startswith(a)) or (
        len(b) + 1 == len(a) and a.startswith(b)
    )


def is_hamiltonian_cycle(tree: Tree, max_extra_edges: Optional[int] = None) -> bool:
    """Check the cyclic numbering induces a cycle whose non-tree edges are
    few — cycletrees complement the tree with a bounded set of extra edges
    (Veanes & Barklund bound the total edge count)."""
    edges = cycle_edges(tree)
    if not edges:
        return True
    extra = [e for e in edges if not _tree_adjacent(*e)]
    if max_extra_edges is None:
        # Natural cycletrees use at most ~n/2 non-tree edges.
        max_extra_edges = max(1, tree.size // 2 + 1)
    return len(extra) <= max_extra_edges


@dataclass
class RouteStep:
    node: str
    direction: str  # "left" | "right" | "up" | "arrived"


class CycletreeRouter:
    """Hop-by-hop routing using only per-node intervals.

    A message at node ``u`` headed for cycle number ``target`` moves to the
    left child when ``lmin <= target <= lmax``, to the right child when
    ``rmin <= target <= rmax``, and otherwise up to the parent — the
    routing algorithm the paper's ``ComputeRouting`` fields exist for."""

    def __init__(self, tree: Tree) -> None:
        self.tree = tree
        self._by_num: Dict[int, str] = {
            n.get("num"): n.path for n in tree.nodes()
        }

    def node_of(self, num: int) -> str:
        return self._by_num[num]

    def route(self, src_num: int, dst_num: int, max_hops: int = 10_000) -> List[RouteStep]:
        """The path a message takes from src to dst; raises on livelock."""
        cur = self.tree.node_at(self._by_num[src_num])
        steps: List[RouteStep] = []
        for _ in range(max_hops):
            if cur.get("num") == dst_num:
                steps.append(RouteStep(cur.path, "arrived"))
                return steps
            if (
                not cur.left.is_nil  # type: ignore[union-attr]
                and cur.get("lmin") <= dst_num <= cur.get("lmax")
                and not (cur.get("num") == dst_num)
                and _strictly_inside(cur, "l", dst_num)
            ):
                steps.append(RouteStep(cur.path, "left"))
                cur = cur.left  # type: ignore[assignment]
            elif (
                not cur.right.is_nil  # type: ignore[union-attr]
                and cur.get("rmin") <= dst_num <= cur.get("rmax")
                and _strictly_inside(cur, "r", dst_num)
            ):
                steps.append(RouteStep(cur.path, "right"))
                cur = cur.right  # type: ignore[assignment]
            else:
                if not cur.path:
                    raise RuntimeError(
                        f"routing stuck at root heading for {dst_num}"
                    )
                steps.append(RouteStep(cur.path, "up"))
                cur = self.tree.node_at(cur.path[:-1])
        raise RuntimeError("routing exceeded max_hops")


def _strictly_inside(cur: TreeNode, d: str, dst: int) -> bool:
    child = cur.child(d)
    if child.is_nil:
        return False
    return child.get("min") <= dst <= child.get("max")
