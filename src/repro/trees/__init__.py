"""Tree heap substrate: heaps, generators, LCRS, CSS engine, cycletrees."""

from .heap import Tree, TreeNode, nil, node, tree_from_tuple, tree_to_tuple
from .generators import (
    all_shapes,
    assign_fields,
    full_tree,
    left_chain,
    random_tree,
    right_chain,
    zigzag,
)

__all__ = [
    "Tree", "TreeNode", "nil", "node", "tree_from_tuple", "tree_to_tuple",
    "all_shapes", "assign_fields", "full_tree", "left_chain",
    "random_tree", "right_chain", "zigzag",
]
