"""A miniature CSS engine: tokenizer, parser, AST and minification passes.

This is the concrete workload behind the paper's CSS case study (§5,
Fig. 8).  The paper's traversals model passes from minifiers like cssnano;
here we implement a small but *real* subset so the case study runs
end-to-end:

* a tokenizer and recursive-descent parser for ``selector { prop: value }``
  style sheets (values may be keywords, dimensions like ``100ms``, numbers,
  or simple functions like ``calc(...)``);
* an n-ary AST (:class:`~repro.trees.lcrs.NaryNode`-based) with per-node
  string data *and* the integer field encoding (``type``, ``prop``,
  ``value``, ``vlen``) that the Retreet traversals of
  :mod:`repro.casestudies.css` analyse;
* the three minification passes of Fig. 8 — ``convert_values`` (``100ms`` →
  ``.1s``), ``minify_font`` (``font-weight: normal`` → ``400``) and
  ``reduce_init`` (``initial`` → the shorter concrete default) — both as
  separate passes and as the fused single pass whose legality the framework
  verifies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .lcrs import NaryNode, to_lcrs
from .heap import Tree

__all__ = [
    "CssNode",
    "parse_css",
    "render_css",
    "convert_values",
    "minify_font",
    "reduce_init",
    "minify",
    "minify_fused",
    "encode_fields",
    "css_to_binary_tree",
    "PROPERTY_CODES",
    "TYPE_CODES",
]

# Node kinds in the AST.
STYLESHEET, RULE, SELECTOR, DECL, WORD, FUNC, NUMBER = (
    "stylesheet", "rule", "selector", "decl", "word", "func", "number",
)

TYPE_CODES = {
    STYLESHEET: 10, RULE: 11, SELECTOR: 12, DECL: 13,
    WORD: 1, FUNC: 2, NUMBER: 3,
}

PROPERTY_CODES = {
    "font-weight": 7,
    "min-width": 8,
    "max-width": 9,
    "width": 10,
    "transition-duration": 11,
    "animation-duration": 12,
    "letter-spacing": 13,
}

# Defaults used by reduce_init (property -> shorter concrete default).
INITIAL_DEFAULTS = {
    "min-width": "0",
    "max-width": "none",
    "width": "auto",
    "letter-spacing": "normal",
    "font-weight": "400",
}

FONT_WEIGHT_KEYWORDS = {"normal": "400", "bold": "700"}


class CssNode(NaryNode):
    """An n-ary CSS AST node with string payload."""

    def __init__(self, kind: str, text: str = "", prop: str = "") -> None:
        super().__init__()
        self.kind = kind
        self.text = text
        self.prop = prop  # the owning declaration's property, for values

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind} {self.text!r}>"


class CssParseError(SyntaxError):
    pass


_TOKEN = re.compile(
    r"\s*(?:(?P<ident>[-@][\w-]+|[a-zA-Z_][\w-]*)|(?P<num>\.?\d[\w.%]*)"
    r"|(?P<punct>[{}():;,.#*>\[\]=\"'])|(?P<other>\S))"
)


def _tokens(src: str) -> List[str]:
    out = []
    i = 0
    while i < len(src):
        m = _TOKEN.match(src, i)
        if not m:
            break
        out.append(m.group(m.lastgroup))
        i = m.end()
    return out


def parse_css(src: str) -> CssNode:
    """Parse a style sheet into an n-ary AST."""
    toks = _tokens(src)
    i = 0
    sheet = CssNode(STYLESHEET)

    def peek() -> Optional[str]:
        return toks[i] if i < len(toks) else None

    def take() -> str:
        nonlocal i
        t = toks[i]
        i += 1
        return t

    while i < len(toks):
        # selector: everything until '{'
        sel_parts = []
        while peek() is not None and peek() != "{":
            sel_parts.append(take())
        if peek() is None:
            break
        take()  # '{'
        rule = CssNode(RULE)
        rule.add(CssNode(SELECTOR, " ".join(sel_parts)))
        sheet.add(rule)
        # declarations until '}'
        while peek() is not None and peek() != "}":
            prop_parts = []
            while peek() not in (":", None):
                prop_parts.append(take())
            if peek() is None:
                raise CssParseError("missing ':' in declaration")
            take()  # ':'
            prop = "-".join(
                p for p in "".join(prop_parts).split("-") if p
            ) if "-" in "".join(prop_parts) else "".join(prop_parts)
            prop = prop.strip()
            decl = CssNode(DECL, prop, prop=prop)
            rule.add(decl)
            # values until ';' or '}'
            while peek() not in (";", "}", None):
                tok = take()
                if peek() == "(":
                    take()
                    fn = CssNode(FUNC, tok, prop=prop)
                    depth = 1
                    inner = []
                    while depth and peek() is not None:
                        t2 = take()
                        if t2 == "(":
                            depth += 1
                        elif t2 == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        inner.append(t2)
                    for part in inner:
                        if part not in (",",):
                            kind = NUMBER if part[0].isdigit() or part[0] == "." else WORD
                            fn.add(CssNode(kind, part, prop=prop))
                    decl.add(fn)
                else:
                    kind = (
                        NUMBER
                        if tok and (tok[0].isdigit() or (tok[0] == "." and len(tok) > 1))
                        else WORD
                    )
                    decl.add(CssNode(kind, tok, prop=prop))
            if peek() == ";":
                take()
        if peek() == "}":
            take()
    return sheet


def render_css(sheet: CssNode) -> str:
    """Serialize the AST back to (minified) CSS text."""
    rules = []
    for rule in sheet.children:
        sel = ""
        decls = []
        for child in rule.children:
            if child.kind == SELECTOR:
                sel = child.text
            elif child.kind == DECL:
                vals = " ".join(_render_value(v) for v in child.children)
                decls.append(f"{child.text}:{vals}")
        rules.append(f"{sel}{{{';'.join(decls)}}}")
    return "".join(rules)


def _render_value(v: CssNode) -> str:
    if v.kind == FUNC:
        inner = ",".join(_render_value(c) for c in v.children)
        return f"{v.text}({inner})"
    return v.text


# ---------------------------------------------------------------------------
# The three minification passes (Fig. 8) and their fusion.
# ---------------------------------------------------------------------------

_DIM = re.compile(r"^(\.?\d+(?:\.\d+)?)(ms|s|px)$")


def _convert_one(n: CssNode) -> None:
    """ConvertValues on one node: shorter unit/zero representations."""
    if n.kind not in (WORD, FUNC, NUMBER):
        return
    m = _DIM.match(n.text)
    if not m:
        return
    num, unit = m.groups()
    value = float(num)
    if unit == "ms" and value >= 100 and (value / 1000) * 1000 == value:
        s = f"{value / 1000:g}s"
        s = s.lstrip("0") if s.startswith("0.") else s
        if len(s) < len(n.text):
            n.text = s
    elif value == 0:
        n.text = "0"
    elif n.text.startswith("0."):
        n.text = n.text[1:]


def _minify_font_one(n: CssNode) -> None:
    """MinifyFont on one node: numeric font weights."""
    if n.kind == WORD and n.prop == "font-weight":
        repl = FONT_WEIGHT_KEYWORDS.get(n.text)
        if repl is not None:
            n.text = repl


def _reduce_init_one(n: CssNode) -> None:
    """ReduceInit on one node: replace long ``initial`` keywords."""
    if n.kind == WORD and n.text == "initial":
        default = INITIAL_DEFAULTS.get(n.prop)
        if default is not None and len(default) < len("initial"):
            n.text = default


def _traverse(n: CssNode, fns) -> None:
    """Post-order traversal applying the given per-node actions."""
    for c in n.children:
        _traverse(c, fns)
    for f in fns:
        f(n)


def convert_values(sheet: CssNode) -> CssNode:
    _traverse(sheet, [_convert_one])
    return sheet


def minify_font(sheet: CssNode) -> CssNode:
    _traverse(sheet, [_minify_font_one])
    return sheet


def reduce_init(sheet: CssNode) -> CssNode:
    _traverse(sheet, [_reduce_init_one])
    return sheet


def minify(src: str) -> str:
    """The original pipeline: three separate traversals."""
    sheet = parse_css(src)
    convert_values(sheet)
    minify_font(sheet)
    reduce_init(sheet)
    return render_css(sheet)


def minify_fused(src: str) -> str:
    """The fused pipeline: one traversal doing all three minifications —
    the transformation whose legality the Retreet framework verifies."""
    sheet = parse_css(src)
    _traverse(sheet, [_convert_one, _minify_font_one, _reduce_init_one])
    return render_css(sheet)


# ---------------------------------------------------------------------------
# Integer field encoding (the bridge to the Retreet model)
# ---------------------------------------------------------------------------

def encode_fields(sheet: CssNode) -> CssNode:
    """Populate the integer fields (``type``, ``prop``, ``value``, ``vlen``)
    that the Retreet traversals of the case study read and write."""
    for n in sheet.walk():
        assert isinstance(n, CssNode)
        n.set("type", TYPE_CODES.get(n.kind, 0))
        n.set("prop", PROPERTY_CODES.get(n.prop, 0))
        n.set("value", _value_code(n.text))
        n.set("vlen", len(n.text))
    return sheet


def _value_code(text: str) -> int:
    """A stable small integer code for a node's text."""
    h = 0
    for ch in text:
        h = (h * 31 + ord(ch)) % 100_003
    return h


def css_to_binary_tree(src: str) -> Tree:
    """Parse, encode and LCRS-convert a style sheet for the Retreet model."""
    sheet = parse_css(src)
    encode_fields(sheet)
    return to_lcrs(sheet)
