"""Canonical JSON + content hashing shared by every addressing layer.

One formula — the SHA-256 of the canonical JSON of ``{"kind": ...,
"payload": ...}`` — names a unit of work everywhere it can appear: a
:class:`~repro.engine.query.RaceQuery` in process, a
:class:`~repro.service.protocol.Task` crossing the worker pipe, a
record in the batch store, a fuzz case being deduplicated.  It
generalizes what ``service.protocol.task_key`` introduced (and that
function now delegates here), in the spirit of the compiler's
``structural_key`` formula cache: identity is *what* is asked, never
how hard the asker is willing to work — execution limits are excluded
by construction.

This module deliberately imports nothing from the rest of the package
so the worker child's protocol layer can use it without dragging the
language or solver stacks into startup.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

__all__ = ["canonical_json", "content_key"]


def canonical_json(obj: Any) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def content_key(kind: str, payload: Any) -> str:
    """Content-hash identity of one unit of work: what is solved, not
    how hard."""
    raw = canonical_json({"kind": kind, "payload": payload})
    return hashlib.sha256(raw.encode("utf-8")).hexdigest()
