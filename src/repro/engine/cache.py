"""Content-addressed result cache with soundness-aware reuse.

Records are keyed by :meth:`query.key` — the hash of *what* is asked,
never of the limits — and stored in memory plus (optionally) a durable
backend: ``path=`` a directory uses
:class:`repro.service.store.ResultStore` (one checksummed JSON file per
record, the per-run-dir tier), while ``backend=`` accepts any object
with the same ``get(key)``/``put(key, payload)`` surface — in
particular :class:`repro.service.sharedcache.SharedCache`, the shared
cross-run sqlite tier behind the solve daemon.  Either way cached
verdicts get checksummed, atomically-written, quarantine-on-corruption
treatment, and a run directory (or daemon cache) doubles as a warm
cache across runs.

Reuse is governed by the deciding engine's declared
:class:`~repro.engine.engines.Capabilities`, not by the verdict alone:

* ``"unknown"`` is never reusable (and never stored) — a bigger budget
  might decide it;
* a **counterexample** (``race`` / ``not-equivalent``) is reusable iff
  the deciding engine is *sound* for the query kind — the evidence
  stands regardless of scope or budget;
* a **clean** verdict (``race-free`` / ``equivalent``) is reusable iff
  the deciding engine is *complete* for what the query asks: over all
  trees, or exhaustive on the same scope (the scope is part of the
  key, and re-checked here as belt and braces).  A sampled engine's
  clean verdict is never reused;
* the deciding engine must be one the current plan would run — a
  bounded verdict must not satisfy an ``engine="mso"`` caller;
* a ``bisim`` verdict (the equivalence fast path) counts as sound and
  complete, but is only reused when the caller still enables the
  bisimulation gate.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional

from .engines import get_engine

__all__ = ["CacheStats", "ResultCache"]

#: Verdicts that carry a counterexample (sound-direction evidence).
_FOUND_VERDICTS = frozenset({"race", "not-equivalent"})


@dataclass
class CacheStats:
    """Observable cache counters (mirrored into ``SolverStats`` and the
    batch ``report.json``)."""

    hits: int = 0
    misses: int = 0
    stored: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stored": self.stored,
        }


class ResultCache:
    """In-memory + optional on-disk verdict cache keyed by query hash."""

    def __init__(self, path: Optional[Path] = None, backend=None) -> None:
        if path is not None and backend is not None:
            raise ValueError("pass either path= or backend=, not both")
        self._memory: Dict[str, Dict[str, Any]] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()
        self._store = backend
        if path is not None:
            from ..service.store import ResultStore

            self._store = ResultStore(Path(path))

    # -- reuse policy ----------------------------------------------------

    @staticmethod
    def _reusable(record: Dict[str, Any], query, plan,
                  allow_bisim: bool) -> bool:
        verdict = record.get("verdict")
        decided_engine = record.get("decided_engine")
        if verdict in (None, "unknown") or decided_engine is None:
            return False
        if record.get("kind") != query.kind:
            return False
        if decided_engine == "bisim":
            return allow_bisim and query.kind == "equiv"
        if decided_engine not in plan.engine_names():
            return False
        try:
            caps = get_engine(decided_engine).capabilities
        except ValueError:
            return False
        if verdict in _FOUND_VERDICTS:
            return query.kind in caps.sound_for
        if caps.complete_for == "all-trees":
            return True
        if caps.complete_for == "scope":
            return record.get("scope") == query.scope
        return False

    # -- lookup / store --------------------------------------------------

    def lookup(self, query, plan,
               allow_bisim: bool = True) -> Optional[Dict[str, Any]]:
        """The reusable cache record for ``query`` under ``plan``, or
        ``None`` (counted as a miss)."""
        key = query.key()
        with self._lock:
            record = self._memory.get(key)
        if record is None and self._store is not None:
            record = self._store.get(key)
            if record is not None:
                with self._lock:
                    self._memory[key] = record
        if record is not None and self._reusable(
            record, query, plan, allow_bisim
        ):
            with self._lock:
                self.stats.hits += 1
            return record
        with self._lock:
            self.stats.misses += 1
        return None

    def store(
        self,
        query,
        verdict: str,
        holds: bool,
        decided_by: Optional[str],
        decided_engine: Optional[str],
        result: Dict[str, Any],
    ) -> bool:
        """Store one decided verdict; refuses ``unknown`` (a bigger
        budget might decide it, so it must always be recomputed)."""
        if verdict == "unknown" or decided_engine is None:
            return False
        key = query.key()
        record = {
            "key": key,
            "kind": query.kind,
            "scope": query.scope,
            "verdict": verdict,
            "holds": bool(holds),
            "decided_by": decided_by,
            "decided_engine": decided_engine,
            "result": result,
        }
        with self._lock:
            self._memory[key] = record
            self.stats.stored += 1
        if self._store is not None:
            self._store.put(key, record)
        return True
