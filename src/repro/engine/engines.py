"""The Engine protocol, the three built-in backends, and the registry.

Every backend answers the same two questions — :class:`~repro.engine.
query.RaceQuery` and :class:`~repro.engine.query.EquivalenceQuery` —
through one interface::

    verdict = get_engine("mso").run(query)        # EngineVerdict

and declares :class:`Capabilities` saying what its verdicts are worth:

* ``sound_for`` — query kinds whose *counterexample* verdicts can be
  trusted (all three engines only report concrete, checkable evidence);
* ``complete_for`` — what a *clean* verdict quantifies over:
  ``"all-trees"`` (the MSO pipeline decides over every tree),
  ``"scope"`` (exhaustive up to the query's bound), or
  ``"scope-sampled"`` (the interpreter's seeded valuations — clean
  means "no evidence found", not a proof);
* ``witness_kinds`` — the shape of evidence a counterexample carries.

The cache (:mod:`repro.engine.cache`) reads these declarations to
decide which stored verdicts are reusable, and plans (:mod:`repro.
engine.plan`) use the execution ``kind`` (``"symbolic"`` engines take a
solver + guard, ``"scope"`` engines take a tree bound) to know how to
drive a rung.

Engines register by name; ``engine="auto"|"mso"|"bounded"`` on the
public API and any future backend resolve uniformly through
:func:`get_engine` / :func:`known_engines`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..runtime import ResourceGuard
from .query import EquivalenceQuery, Limits, RaceQuery

__all__ = [
    "Capabilities",
    "EngineVerdict",
    "Engine",
    "SymbolicEngine",
    "BoundedEngine",
    "InterpEngine",
    "InterpVerdict",
    "register_engine",
    "get_engine",
    "known_engines",
]


@dataclass(frozen=True)
class Capabilities:
    """What one engine's verdicts are worth (see module docstring)."""

    kind: str  # "symbolic" | "scope"
    sound_for: FrozenSet[str]  # query kinds with trustworthy counterexamples
    complete_for: str  # "all-trees" | "scope" | "scope-sampled"
    witness_kinds: FrozenSet[str]


@dataclass
class EngineVerdict:
    """Uniform engine answer.

    ``found`` is the decided verdict — ``True`` (counterexample),
    ``False`` (clean) or ``None`` (undecided); ``raw`` keeps the
    engine-native verdict object (``SymbolicVerdict``,
    ``BoundedVerdict``, :class:`InterpVerdict`) for callers that need
    engine-specific detail (status counters, trees checked, …).
    """

    engine: str
    status: str  # "decided" | "budget" | "deadline" | "memory"
    found: Optional[bool]
    witness: Optional[object] = None
    witness_tree: Optional[object] = None
    detail: str = ""
    raw: Optional[object] = None


@dataclass
class InterpVerdict:
    """The interpreter's engine-native verdict (dynamic evidence)."""

    found: bool
    evidence: Optional[str] = None
    witness: Optional[object] = None  # dynamic evidence carries no tree

    def __str__(self) -> str:
        return self.evidence or "no dynamic evidence on scope"


class Engine(abc.ABC):
    """One verification backend, registered by name."""

    name: str
    capabilities: Capabilities

    @abc.abstractmethod
    def bind(self, query) -> Callable:
        """A rung runner for ``query``: symbolic engines return
        ``(solver, guard) -> SymbolicVerdict``; scope engines return
        ``(scope, guard) -> verdict`` with ``.found``/``.witness``."""

    @abc.abstractmethod
    def run(self, query, guard: Optional[ResourceGuard] = None,
            limits: Optional[Limits] = None) -> EngineVerdict:
        """Answer ``query`` raw — one engine, no ladder, no masking."""


class SymbolicEngine(Engine):
    """The paper's MSO/automata pipeline — decides over *all* trees."""

    name = "mso"
    capabilities = Capabilities(
        kind="symbolic",
        sound_for=frozenset({"race", "equiv"}),
        complete_for="all-trees",
        witness_kinds=frozenset({"tree", "cells"}),
    )

    def bind(self, query) -> Callable:
        from ..core.symbolic import check_conflict_mso, check_data_race_mso

        if query.kind == "race":
            return lambda solver, guard: check_data_race_mso(
                query.program, solver=solver, guard=guard
            )
        return lambda solver, guard: check_conflict_mso(
            query.program, query.program2, query.mapping,
            solver=solver, guard=guard,
        )

    def run(self, query, guard: Optional[ResourceGuard] = None,
            limits: Optional[Limits] = None) -> EngineVerdict:
        from ..solver.solver import MSOSolver

        limits = limits if limits is not None else query.limits
        if limits.product_budget is not None:
            solver = MSOSolver(
                det_budget=limits.det_budget,
                product_budget=limits.product_budget,
            )
        else:
            solver = MSOSolver(det_budget=limits.det_budget)
        own_guard = guard is None
        if own_guard:
            guard = ResourceGuard.start(
                deadline_s=limits.mso_deadline_s,
                node_ceiling=limits.node_ceiling,
            )
        try:
            raw = self.bind(query)(solver, guard)
        finally:
            if own_guard:
                guard.unbind_managers()
        return EngineVerdict(
            engine=self.name,
            status=raw.status,
            found=raw.found if raw.status == "decided" else None,
            witness=raw.witness,
            witness_tree=(
                raw.witness.tree if (raw.found and raw.witness) else None
            ),
            detail=str(raw),
            raw=raw,
        )


class BoundedEngine(Engine):
    """Exhaustive over every tree shape up to the query's scope."""

    name = "bounded"
    capabilities = Capabilities(
        kind="scope",
        sound_for=frozenset({"race", "equiv"}),
        complete_for="scope",
        witness_kinds=frozenset({"tree", "cells"}),
    )

    def bind(self, query) -> Callable:
        from ..core.bounded import check_conflict_bounded, check_data_race_bounded

        if query.kind == "race":
            return lambda scope, guard: check_data_race_bounded(
                query.program, max_internal=scope, guard=guard
            )
        return lambda scope, guard: check_conflict_bounded(
            query.program, query.program2, query.mapping,
            max_internal=scope, guard=guard,
        )

    def run(self, query, guard: Optional[ResourceGuard] = None,
            limits: Optional[Limits] = None,
            scope: Optional[int] = None) -> EngineVerdict:
        raw = self.bind(query)(scope if scope is not None else query.scope,
                               guard)
        return EngineVerdict(
            engine=self.name,
            status="decided",
            found=raw.found,
            witness=raw.witness,
            witness_tree=(
                raw.witness.tree if (raw.found and raw.witness) else None
            ),
            detail=str(raw),
            raw=raw,
        )


class InterpEngine(Engine):
    """Dynamic evidence: happens-before race detection, schedule-outcome
    enumeration and concrete divergence on every in-scope tree under
    seeded field valuations.  Clean means "no evidence found" — the
    valuations are sampled — so it is ``complete_for="scope-sampled"``
    and its clean verdicts are never cache-reusable.
    """

    name = "interp"
    capabilities = Capabilities(
        kind="scope",
        sound_for=frozenset({"race", "equiv"}),
        complete_for="scope-sampled",
        witness_kinds=frozenset({"input"}),
    )

    #: Default seeded valuations and schedule cap (the oracle overrides
    #: these per-config).
    field_seeds: Tuple[int, ...] = (0, 7, 13)
    schedule_cap: int = 240
    value_range: Tuple[int, int] = (0, 5)

    def _scope_trees(self, query, scope: Optional[int]):
        from ..core.bounded import default_scope

        return default_scope(scope if scope is not None else query.scope)

    def _valuations(self, query, scope, field_seeds):
        from ..trees.generators import assign_fields

        fields = query.fields()
        seeds = field_seeds if field_seeds is not None else self.field_seeds
        for tree in self._scope_trees(query, scope):
            for seed in seeds:
                work = tree.clone()
                if fields:
                    assign_fields(
                        work, fields, seed=seed, value_range=self.value_range
                    )
                yield work, seed, fields

    def race_evidence(self, query: RaceQuery, scope: Optional[int] = None,
                      field_seeds: Optional[Tuple[int, ...]] = None
                      ) -> Optional[str]:
        """A concrete race on some in-scope tree/valuation, or None.

        The fork-join happens-before relation is schedule-independent,
        so one run per (tree, valuation) decides racefreeness on that
        input.
        """
        from ..interp import program_races_on

        for work, seed, _fields in self._valuations(query, scope, field_seeds):
            races = program_races_on(query.program, work)
            if races:
                return (
                    f"tree {work.paths() or ['(root)']} seed {seed}: "
                    f"{races[0]}"
                )
        return None

    def schedule_divergence(self, query: RaceQuery,
                            scope: Optional[int] = None,
                            field_seeds: Optional[Tuple[int, ...]] = None,
                            schedule_cap: Optional[int] = None
                            ) -> Optional[str]:
        """A tree/valuation where interleavings yield different outcomes."""
        from ..interp import program_schedule_outcomes

        cap = schedule_cap if schedule_cap is not None else self.schedule_cap
        for work, seed, fields in self._valuations(query, scope, field_seeds):
            keys, exhaustive = program_schedule_outcomes(
                query.program, work, fields=fields, max_schedules=cap
            )
            if len(keys) > 1:
                how = "exhaustive" if exhaustive else "sampled"
                return (
                    f"tree {work.paths() or ['(root)']} seed {seed}: "
                    f"{len(keys)} distinct outcomes across {how} schedules"
                )
        return None

    def concrete_divergence(self, query: EquivalenceQuery,
                            scope: Optional[int] = None,
                            field_seeds: Optional[Tuple[int, ...]] = None
                            ) -> Optional[str]:
        """A scope tree/valuation where the two programs observably
        differ under the deterministic left-first schedule."""
        from ..interp import run

        for base, seed, fields in self._valuations(query, scope, field_seeds):
            ra = run(query.program, base)
            rb = run(query.program2, base)
            if ra.returns != rb.returns:
                return (
                    f"tree {base.paths() or ['(root)']} seed {seed}: "
                    f"returns {ra.returns} vs {rb.returns}"
                )
            if fields and ra.field_snapshot(fields) != rb.field_snapshot(fields):
                return (
                    f"tree {base.paths() or ['(root)']} seed {seed}: "
                    "heap states differ"
                )
        return None

    def _evidence(self, query, scope) -> Optional[str]:
        if query.kind == "race":
            return self.race_evidence(query, scope=scope)
        return self.concrete_divergence(query, scope=scope)

    def bind(self, query) -> Callable:
        def runner(scope, guard):
            ev = self._evidence(query, scope)
            return InterpVerdict(found=ev is not None, evidence=ev)

        return runner

    def run(self, query, guard: Optional[ResourceGuard] = None,
            limits: Optional[Limits] = None,
            scope: Optional[int] = None) -> EngineVerdict:
        raw = self.bind(query)(scope, guard)
        return EngineVerdict(
            engine=self.name,
            status="decided",
            found=raw.found,
            witness=None,
            detail=str(raw),
            raw=raw,
        )


# ----------------------------------------------------------------------
# Registry


_REGISTRY: Dict[str, Engine] = {}


def register_engine(engine: Engine, replace: bool = False) -> Engine:
    """Register a backend by its ``name``; later plans and ``engine=``
    specs resolve it uniformly."""
    if engine.name in _REGISTRY and not replace:
        raise ValueError(f"engine {engine.name!r} is already registered")
    _REGISTRY[engine.name] = engine
    return engine


def get_engine(name: str) -> Engine:
    engine = _REGISTRY.get(name)
    if engine is None:
        raise ValueError(
            f"unknown engine {name!r}; known engines: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return engine


def known_engines() -> List[str]:
    return sorted(_REGISTRY)


register_engine(SymbolicEngine())
register_engine(BoundedEngine())
register_engine(InterpEngine())
