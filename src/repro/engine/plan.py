"""Declarative plans: the degradation ladder as data.

A :class:`Plan` is a tuple of :class:`Rung`\\ s — engine name plus
policy (budget scaling, deadline sharing, scope shrinking, when the
rung fires, what an internal error does).  One :class:`PlanExecutor`
interprets any plan and produces exactly the historical
``details["attempts"]`` / ``details["decided_by"]`` schema that
``core.api`` used to hard-code in ``_symbolic_ladder`` /
``_bounded_ladder`` (DESIGN.md §7 → §10):

* ``engine="auto"`` — guarded symbolic run, one ×4-escalated retry when
  (and only when) the first run died on its *state budget* and ≥1s of
  wall clock remains (sharing the first run's absolute deadline), then
  the bounded engine, shrinking its scope whenever a rung overruns;
* ``engine="mso"`` — the strict single symbolic rung
  (``SolverInternalError`` propagates);
* ``engine="bounded"`` — the scope-shrinking bounded rungs alone;
* any other registered engine name — a synthesized single-rung plan.

The supervisor's circuit-breaker degradation is the plan
transformation :func:`degraded` (drop the symbolic rungs, keep the
scope rungs) instead of bespoke worker code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace as dc_replace
from typing import Callable, Dict, List, Optional, Tuple

from ..runtime import (
    ResourceExhausted,
    ResourceGuard,
    SolverInternalError,
    exhaustion_status,
)
from .engines import get_engine, known_engines

__all__ = [
    "LADDER_ESCALATION",
    "Rung",
    "Plan",
    "plan_for",
    "known_specs",
    "degraded",
    "degraded_spec",
    "record_attempt",
    "run_symbolic_rungs",
    "run_scope_rungs",
    "merge_verdicts",
    "note_symbolic",
    "PlanOutcome",
    "PlanExecutor",
    "worker_attempt_record",
    "normalized_attempts",
]

#: The retry rung multiplies the symbolic budgets by this factor.
LADDER_ESCALATION = 4
#: Skip a retry rung when less wall-clock than this remains; the
#: escalated run would only burn the next rung's time.
_MIN_RETRY_S = 1.0


@dataclass(frozen=True)
class Rung:
    """One ladder step: an engine plus firing/limit policy."""

    name: str
    engine: str
    #: Budget multiplier relative to the query's limits.
    scale: int = 1
    #: "always" | "after-budget" (previous symbolic rung exhausted its
    #: state budget) | "undecided" (no symbolic rung decided).
    when: str = "always"
    #: Skip this rung when less wall clock than this remains.
    min_remaining_s: float = 0.0
    #: Inherit the previous rung's absolute deadline instead of a fresh
    #: one, so the rungs together never exceed the query's deadline.
    share_deadline: bool = False
    #: Scope rungs only: shrink the tree bound until a run fits.
    shrink_scope: bool = False
    #: "continue" records a SolverInternalError and falls through;
    #: "raise" propagates it (the strict single-engine contract).
    on_internal_error: str = "continue"


@dataclass(frozen=True)
class Plan:
    """A named sequence of rungs, interpreted by :class:`PlanExecutor`."""

    name: str
    rungs: Tuple[Rung, ...]

    def symbolic_rungs(self) -> Tuple[Rung, ...]:
        return tuple(
            r for r in self.rungs
            if get_engine(r.engine).capabilities.kind == "symbolic"
        )

    def scope_rung(self) -> Optional[Rung]:
        for r in self.rungs:
            if get_engine(r.engine).capabilities.kind == "scope":
                return r
        return None

    def engine_names(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys(r.engine for r in self.rungs))


_PLANS: Dict[str, Plan] = {
    "auto": Plan("auto", (
        Rung("mso", "mso"),
        Rung(
            "mso-retry", "mso",
            scale=LADDER_ESCALATION,
            when="after-budget",
            min_remaining_s=_MIN_RETRY_S,
            share_deadline=True,
        ),
        Rung("bounded", "bounded", when="undecided", shrink_scope=True),
    )),
    "mso": Plan("mso", (Rung("mso", "mso", on_internal_error="raise"),)),
    "bounded": Plan("bounded", (
        Rung("bounded", "bounded", shrink_scope=True),
    )),
}


def known_specs() -> List[str]:
    """Every valid ``engine=`` spec: the named plans plus every
    registered engine (each resolves to a single-rung plan)."""
    return sorted(set(_PLANS) | set(known_engines()))


def plan_for(spec: str) -> Plan:
    """Resolve an ``engine=`` spec to a plan.

    Unknown specs raise ``ValueError`` naming the known ones — the CLI
    maps that to exit code 2 instead of falling through to a default
    ladder.
    """
    plan = _PLANS.get(spec)
    if plan is not None:
        return plan
    if spec in known_engines():
        # A registered engine without a bespoke plan: one strict rung.
        if get_engine(spec).capabilities.kind == "symbolic":
            return Plan(spec, (Rung(spec, spec, on_internal_error="raise"),))
        return Plan(spec, (Rung(spec, spec, shrink_scope=True),))
    raise ValueError(
        f"unknown engine {spec!r}; known engines: "
        f"{', '.join(known_specs())}"
    )


def degraded(plan: Plan) -> Plan:
    """The circuit-breaker transformation: drop the symbolic rungs and
    run the scope rungs unconditionally (bounded-only service)."""
    scope_rungs = tuple(
        dc_replace(r, when="always")
        for r in plan.rungs
        if get_engine(r.engine).capabilities.kind == "scope"
    )
    if not scope_rungs:
        return _PLANS["bounded"]
    return Plan("bounded", scope_rungs)


def degraded_spec(spec: str) -> str:
    """The serializable ``engine=`` spec of a plan's degraded form
    (what the supervisor writes into a rewritten task payload)."""
    return degraded(plan_for(spec)).name


# ----------------------------------------------------------------------
# The attempts schema


def record_attempt(
    attempts: List[Dict[str, object]],
    rung: str,
    engine: str,
    limits: Dict[str, object],
    outcome: str,
    t0: float,
    note: Optional[str] = None,
    found: Optional[bool] = None,
) -> None:
    """``found`` is the rung's *raw* verdict — True (counterexample),
    False (clean), or None (undecided/errored) — recorded for every rung
    even when a later rung ends up deciding the query, so differential
    oracles can cross-check the rungs against each other."""
    entry: Dict[str, object] = {
        "rung": rung,
        "engine": engine,
        "limits": limits,
        "outcome": outcome,
        "elapsed": round(time.perf_counter() - t0, 6),
        "found": found,
    }
    if note is not None:
        entry["note"] = note
    attempts.append(entry)


def worker_attempt_record(
    limits: Dict[str, object], attempt: Dict[str, object]
) -> Dict[str, object]:
    """A supervisor attempt rendered in the plan's attempts format
    (``limits`` is the task's sandbox-limits dict)."""
    rec = {
        "rung": f"worker#{attempt['attempt']}",
        "engine": "process",
        "limits": dict(limits),
        "outcome": attempt["outcome"],
        "elapsed": attempt["elapsed"],
        "found": None,
    }
    for k in ("signal", "phase", "detail", "degraded"):
        if attempt.get(k) not in (None, False):
            rec[k] = attempt[k]
    return rec


def normalized_attempts(
    attempts: List[Dict[str, object]],
) -> List[Dict[str, object]]:
    """The schema projection used by the golden tests and the
    plan-equivalence CI step: every field except wall-clock elapsed."""
    return [{k: v for k, v in a.items() if k != "elapsed"} for a in attempts]


# ----------------------------------------------------------------------
# Rung interpreters


def _default_solver(det_budget: int, product_budget: Optional[int]):
    from ..solver.solver import MSOSolver

    if product_budget is None:
        return MSOSolver(det_budget=det_budget)
    return MSOSolver(det_budget=det_budget, product_budget=product_budget)


def run_symbolic_rungs(
    run_sym: Callable,
    rungs: Tuple[Rung, ...],
    det_budget: int,
    mso_deadline_s: Optional[float],
    node_ceiling: Optional[int],
    attempts: List[Dict[str, object]],
    details: Dict[str, object],
    product_budget: Optional[int] = None,
    make_solver: Optional[Callable] = None,
):
    """Interpret the symbolic rungs of a plan.

    A retry rung only fires when its ``when``/``min_remaining_s`` policy
    allows (for the auto plan: the previous run died on its *state
    budget* — a deadline or memory ceiling would just be hit again —
    and ≥1s of wall clock remains); ``share_deadline`` rungs inherit
    the first run's absolute deadline so together they never exceed
    ``mso_deadline_s``.  ``SolverInternalError`` propagates when the
    rung's policy is ``"raise"``; otherwise it is recorded and the plan
    falls through to the scope rungs.
    """
    if not rungs:
        return None, None
    make_solver = make_solver or _default_solver
    first = rungs[0]
    guard = ResourceGuard.start(
        deadline_s=mso_deadline_s, node_ceiling=node_ceiling
    )
    solver = make_solver(det_budget * first.scale, product_budget)
    base_product = solver.product_budget
    limits: Dict[str, object] = {
        "det_budget": det_budget * first.scale,
        "product_budget": solver.product_budget,
        "deadline_s": mso_deadline_s,
        "node_ceiling": node_ceiling,
    }
    t0 = time.perf_counter()
    try:
        sym = run_sym(solver, guard)
    except SolverInternalError as e:
        record_attempt(
            attempts, first.name, first.engine, limits, "error", t0,
            note=str(e),
        )
        details["mso_error"] = str(e)
        if first.on_internal_error == "raise":
            raise
        return None, None
    finally:
        guard.unbind_managers()
    record_attempt(
        attempts,
        first.name,
        first.engine,
        limits,
        sym.status,
        t0,
        note="counterexample" if sym.found else None,
        found=sym.found if sym.status == "decided" else None,
    )

    chosen, chosen_rung = sym, first.name
    prev = sym
    for rung in rungs[1:]:
        if rung.when == "after-budget" and prev.status != "budget":
            break
        remaining = guard.remaining_s()
        if remaining is not None and remaining < rung.min_remaining_s:
            break
        solver2 = make_solver(
            det_budget * rung.scale, base_product * rung.scale
        )
        guard2 = (
            ResourceGuard(deadline=guard.deadline, node_ceiling=node_ceiling)
            if rung.share_deadline
            else ResourceGuard.start(
                deadline_s=mso_deadline_s, node_ceiling=node_ceiling
            )
        )
        limits2: Dict[str, object] = {
            "det_budget": solver2.compiler.det_budget,
            "product_budget": solver2.product_budget,
            "deadline_s": round(remaining, 3) if remaining is not None else None,
            "node_ceiling": node_ceiling,
        }
        t1 = time.perf_counter()
        try:
            sym2 = run_sym(solver2, guard2)
        except SolverInternalError as e:
            record_attempt(
                attempts, rung.name, rung.engine, limits2, "error", t1,
                note=str(e),
            )
            details["mso_error"] = str(e)
            break
        finally:
            guard2.unbind_managers()
        record_attempt(
            attempts,
            rung.name,
            rung.engine,
            limits2,
            sym2.status,
            t1,
            note="counterexample" if sym2.found else None,
            found=sym2.found if sym2.status == "decided" else None,
        )
        if sym2.status == "decided":
            chosen, chosen_rung = sym2, rung.name
            break
        prev = sym2
        guard = guard2
    return chosen, chosen_rung


def run_scope_rungs(
    run_bnd: Callable,
    rung: Rung,
    max_internal: int,
    deadline_s: Optional[float],
    attempts: List[Dict[str, object]],
):
    """Interpret a plan's scope rung: shrink the bound until a run fits.

    With no ``deadline_s`` the first (largest-scope) run always
    completes — the seed behaviour.  With one, each scope gets a fresh
    deadline; an overrun shrinks the scope instead of failing the query.
    """
    scopes = (
        range(max_internal, 0, -1) if rung.shrink_scope else (max_internal,)
    )
    for scope in scopes:
        name = f"{rung.engine}@{scope}"
        guard = (
            ResourceGuard.start(deadline_s=deadline_s)
            if deadline_s is not None
            else None
        )
        limits: Dict[str, object] = {
            "max_internal": scope,
            "deadline_s": deadline_s,
        }
        t0 = time.perf_counter()
        try:
            bnd = run_bnd(scope, guard)
        except ResourceExhausted as e:
            record_attempt(
                attempts, name, rung.engine, limits, exhaustion_status(e), t0
            )
            continue
        record_attempt(
            attempts,
            name,
            rung.engine,
            limits,
            "decided",
            t0,
            note="counterexample" if bnd.found else None,
            found=bnd.found,
        )
        return bnd, scope
    return None, None


def merge_verdicts(sym, bnd):
    """Pick the verdict source: a *decided* symbolic result wins, then a
    scope-engine result.  An undecided symbolic run never contributes a
    verdict or witness — its partial state is not evidence."""
    if sym is not None and sym.status == "decided":
        tree = sym.witness.tree if (sym.found and sym.witness) else None
        return sym.found, tree, sym.witness
    if bnd is not None:
        witness = bnd.witness
        tree = (
            witness.tree
            if (bnd.found and witness is not None
                and getattr(witness, "tree", None) is not None)
            else None
        )
        return bnd.found, tree, witness
    return False, None, None


def note_symbolic(details: Dict[str, object], sym) -> None:
    details["mso"] = str(sym)
    details["mso_status"] = sym.status
    details["mso_queries"] = sym.queries
    details["mso_reached_states"] = sym.max_states
    if sym.stats is not None:
        details["mso_stats"] = sym.stats


# ----------------------------------------------------------------------
# The executor


@dataclass
class PlanOutcome:
    """Everything a façade needs to build its result object."""

    found: bool
    witness: Optional[object]
    witness_tree: Optional[object]
    undecided: bool
    decided_by: Optional[str]
    engine_label: str
    attempts: List[Dict[str, object]]
    details: Dict[str, object]
    sym: Optional[object] = None
    scope_verdict: Optional[object] = None


class PlanExecutor:
    """Interprets any :class:`Plan` over one query, producing the
    attempts/decided_by schema byte-for-byte as the hard-coded ladder
    did.  An attached :class:`~repro.engine.cache.ResultCache` only
    feeds observability here (its counters are mirrored into each
    solver's :class:`~repro.solver.stats.SolverStats`); lookup/store
    policy lives with the caller."""

    def __init__(self, cache=None) -> None:
        self.cache = cache

    def _make_solver(self, det_budget: int, product_budget: Optional[int]):
        solver = _default_solver(det_budget, product_budget)
        if self.cache is not None:
            solver.stats.note_cache(self.cache.stats)
        return solver

    def execute(self, query, plan: Plan) -> PlanOutcome:
        attempts: List[Dict[str, object]] = []
        details: Dict[str, object] = {"attempts": attempts}
        srungs = plan.symbolic_rungs()
        scope_rung = plan.scope_rung()

        sym = None
        sym_rung = None
        if srungs:
            runner = get_engine(srungs[0].engine).bind(query)
            sym, sym_rung = run_symbolic_rungs(
                runner,
                srungs,
                query.limits.det_budget,
                query.limits.mso_deadline_s,
                query.limits.node_ceiling,
                attempts,
                details,
                product_budget=query.limits.product_budget,
                make_solver=self._make_solver,
            )
            if sym is not None:
                note_symbolic(details, sym)
        sym_decided = sym is not None and sym.status == "decided"

        bnd = None
        bnd_scope = None
        if scope_rung is not None and (
            scope_rung.when == "always" or not sym_decided
        ):
            runner = get_engine(scope_rung.engine).bind(query)
            bnd, bnd_scope = run_scope_rungs(
                runner,
                scope_rung,
                query.scope,
                query.limits.bounded_deadline_s,
                attempts,
            )
            if bnd is not None:
                details[scope_rung.engine] = str(bnd)

        found, witness_tree, witness = merge_verdicts(sym, bnd)
        undecided = not sym_decided and bnd is None
        decided_by = (
            None
            if undecided
            else (sym_rung if sym_decided else f"{scope_rung.engine}@{bnd_scope}")
        )
        details["decided_by"] = decided_by

        if srungs and scope_rung is None:
            engine_label = srungs[0].engine
        elif srungs and scope_rung is not None:
            engine_label = (
                srungs[0].engine
                if sym_decided
                else f"{srungs[0].engine}+{scope_rung.engine}"
            )
        else:
            engine_label = scope_rung.engine if scope_rung else plan.name

        return PlanOutcome(
            found=found,
            witness=witness,
            witness_tree=witness_tree,
            undecided=undecided,
            decided_by=decided_by,
            engine_label=engine_label,
            attempts=attempts,
            details=details,
            sym=sym,
            scope_verdict=bnd,
        )
