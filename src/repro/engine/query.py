"""The Query IR: verification questions as first-class data.

A :class:`RaceQuery` or :class:`EquivalenceQuery` carries everything a
backend needs — the program(s), the block correspondence, the bounded
scope — plus a :class:`Limits` bundle saying how hard the caller is
willing to work.  The split matters for identity: :meth:`key` hashes
the *question* (canonical program sources, entry, mapping, scope) and
never the limits, mirroring how ``service.protocol.task_key`` excludes
sandbox limits, so the same key addresses a query in-process, in the
batch store, and in the fuzz loop's dedup set, and re-running with a
bigger budget still reuses every verdict already decided.

Programs are canonicalized through :func:`repro.lang.printer.
program_source` (which round-trips through the parser), so two ASTs
that print identically — regardless of how they were constructed — are
the same query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set

from ..lang import ast as A
from .keys import content_key

__all__ = [
    "Limits",
    "RaceQuery",
    "EquivalenceQuery",
    "program_fields",
]


def program_fields(program: A.Program) -> List[str]:
    """All field names the program touches (for replay field seeding).

    The single shared copy — ``core.api`` and ``conformance.oracle``
    used to carry private duplicates of this helper.
    """
    from ..core.readwrite import ReadWriteAnalysis
    from ..lang.blocks import BlockTable

    table = BlockTable(program)
    rw = ReadWriteAnalysis(table)
    fields = set()
    for b in table.all_noncalls:
        for c in rw.access(b).readwrites:
            if c.kind == "field":
                fields.add(c.name)
    return sorted(fields)


@dataclass(frozen=True)
class Limits:
    """How hard to work on a query — never part of its identity.

    ``product_budget=None`` means the solver's own default; the other
    fields mirror the historical ``check_*`` keyword arguments.
    """

    det_budget: int = 50_000
    product_budget: Optional[int] = None
    mso_deadline_s: Optional[float] = 600.0
    node_ceiling: Optional[int] = None
    bounded_deadline_s: Optional[float] = None


def _canonical_source(program: A.Program) -> str:
    from ..lang.printer import program_source

    return program_source(program)


@dataclass(frozen=True)
class RaceQuery:
    """Is ``program`` data-race-free (paper Thm 2)?"""

    program: A.Program
    scope: int = 4
    limits: Limits = field(default_factory=Limits)

    kind = "race"

    def display(self) -> str:
        """The human-facing query string used by ``VerificationResult``."""
        return f"data-race({self.program.name})"

    def payload(self) -> Dict[str, object]:
        """Canonical, JSON-plain identity payload (limits excluded)."""
        return {
            "entry": self.program.entry,
            "scope": self.scope,
            "source": _canonical_source(self.program),
        }

    def key(self) -> str:
        return content_key(self.kind, self.payload())

    def fields(self) -> List[str]:
        return program_fields(self.program)


@dataclass(frozen=True)
class EquivalenceQuery:
    """Are the two programs equivalent under the block correspondence
    (paper Thm 3: bisimilar and conflict-free)?"""

    program: A.Program
    program2: A.Program
    mapping: Mapping[str, Set[str]]
    scope: int = 4
    limits: Limits = field(default_factory=Limits)

    kind = "equiv"

    def display(self) -> str:
        return f"equivalence({self.program.name} vs {self.program2.name})"

    def payload(self) -> Dict[str, object]:
        return {
            "entry": self.program.entry,
            "mapping": {k: sorted(v) for k, v in self.mapping.items()},
            "scope": self.scope,
            "source": _canonical_source(self.program),
            "source2": _canonical_source(self.program2),
        }

    def key(self) -> str:
        return content_key(self.kind, self.payload())

    def fields(self) -> List[str]:
        return sorted(
            set(program_fields(self.program))
            | set(program_fields(self.program2))
        )
