"""One seam for queries, engines, limits, and results (DESIGN.md §10).

The paper's pipeline is answered by three backends — the interpreter,
the bounded checker, and the MSO/automata engine.  This package makes
their invocation first-class data so every consumer (``core.api``, the
service worker, the conformance oracle, the CLI, the batch driver)
dispatches the same way:

* :mod:`repro.engine.keys` — the one content-hash formula
  (``sha256(canonical_json({kind, payload}))``) shared with
  ``service.protocol.task_key``;
* :mod:`repro.engine.query` — :class:`RaceQuery` /
  :class:`EquivalenceQuery` + :class:`Limits`: the question as data,
  hashed without its limits;
* :mod:`repro.engine.engines` — the :class:`Engine` protocol with
  declared :class:`Capabilities`, the three built-ins, and the
  name registry;
* :mod:`repro.engine.plan` — the degradation ladder as a declarative
  :class:`Plan` interpreted by one :class:`PlanExecutor` producing the
  historical ``details["attempts"]`` schema;
* :mod:`repro.engine.cache` — a content-addressed verdict cache whose
  reuse rules read the deciding engine's capabilities.
"""

from .cache import CacheStats, ResultCache
from .engines import (
    BoundedEngine,
    Capabilities,
    Engine,
    EngineVerdict,
    InterpEngine,
    SymbolicEngine,
    get_engine,
    known_engines,
    register_engine,
)
from .keys import canonical_json, content_key
from .plan import (
    LADDER_ESCALATION,
    Plan,
    PlanExecutor,
    PlanOutcome,
    Rung,
    degraded,
    degraded_spec,
    known_specs,
    normalized_attempts,
    plan_for,
)
from .query import EquivalenceQuery, Limits, RaceQuery, program_fields

__all__ = [
    "canonical_json",
    "content_key",
    "Limits",
    "RaceQuery",
    "EquivalenceQuery",
    "program_fields",
    "Capabilities",
    "Engine",
    "EngineVerdict",
    "SymbolicEngine",
    "BoundedEngine",
    "InterpEngine",
    "register_engine",
    "get_engine",
    "known_engines",
    "Rung",
    "Plan",
    "plan_for",
    "known_specs",
    "degraded",
    "degraded_spec",
    "LADDER_ESCALATION",
    "PlanExecutor",
    "PlanOutcome",
    "normalized_attempts",
    "CacheStats",
    "ResultCache",
]
