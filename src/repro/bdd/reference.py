"""Reference ROBDD implementation (tuple nodes, tuple-keyed caches).

This is the pre-int-table :class:`BDDManager`, kept verbatim (modulo the
class name) as the differential-testing oracle for the flat int-table
implementation in :mod:`repro.bdd.bdd`.  The two managers must agree on
every observable: node semantics (truth tables), ``cache_stats()`` key
shape, and the node-index sequences that feed ``structural_key``.  It is
not exported from the package ``__init__`` and nothing in the solver
imports it; only ``tests/test_bdd_differential.py`` does.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..runtime import faults as _faults

__all__ = ["ReferenceBDDManager"]

FALSE = 0
TRUE = 1

# Operation tags for the shared memo table (small ints hash fastest).
_AND = 0
_OR = 1
_NOT = 2
_EXISTS = 3
_RESTRICT = 4

_OP_NAMES = {_AND: "and", _OR: "or", _NOT: "not",
             _EXISTS: "exists", _RESTRICT: "restrict"}


class ReferenceBDDManager:
    """A shared store of hash-consed BDD nodes (tuple-per-node layout)."""

    def __init__(self) -> None:
        # node idx -> (level, lo, hi); indices 0/1 are terminals.
        self._nodes: List[Tuple[int, int, int]] = [(-1, -1, -1), (-1, -1, -1)]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        # One keyed operation cache for every memoized op; keys are
        # (op-tag, operands...).  A single table keeps memory accounting
        # (and ``cache_stats``) trivial and lets callers clear one dict.
        self._op_cache: Dict[Tuple, int] = {}
        self._op_hits = 0
        self._op_misses = 0
        # Optional ResourceGuard (set via guard.bind_manager): enforces
        # the BDD-node ceiling and the deadline from inside allocation.
        self.guard = None

    # -- node plumbing ---------------------------------------------------------
    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level, lo, hi)
        idx = self._unique.get(key)
        if idx is None:
            idx = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = idx
            # Probe the guard every 256 allocations: cheap enough to sit
            # on the allocation path, frequent enough that a node ceiling
            # or deadline trips within a bounded amount of extra work.
            if self.guard is not None and not (idx & 255):
                self.guard.note_nodes(idx + 1)
        return idx

    def level(self, u: int) -> int:
        return self._nodes[u][0]

    def node(self, u: int) -> Tuple[int, int, int]:
        return self._nodes[u]

    @property
    def true(self) -> int:
        return TRUE

    @property
    def false(self) -> int:
        return FALSE

    def var(self, level: int) -> int:
        """The BDD of "bit at ``level`` is 1"."""
        return self._mk(level, FALSE, TRUE)

    def nvar(self, level: int) -> int:
        return self._mk(level, TRUE, FALSE)

    def size(self) -> int:
        return len(self._nodes)

    def cache_stats(self) -> Dict[str, int]:
        """Node and operation-cache counters (for solver statistics).

        ``cache_<op>`` entries count memoized results per operation;
        ``cache_hits``/``cache_misses`` count lookups since construction.
        """
        per_op: Dict[int, int] = {}
        for key in self._op_cache:
            per_op[key[0]] = per_op.get(key[0], 0) + 1
        out = {
            "nodes": len(self._nodes),
            "cache_entries": len(self._op_cache),
            "cache_hits": self._op_hits,
            "cache_misses": self._op_misses,
        }
        for tag, name in _OP_NAMES.items():
            out[f"cache_{name}"] = per_op.get(tag, 0)
        return out

    # -- boolean operations -------------------------------------------------------
    def apply_and(self, u: int, v: int) -> int:
        if u == FALSE or v == FALSE:
            return FALSE
        if u == TRUE:
            return v
        if v == TRUE:
            return u
        if u == v:
            return u
        if u > v:
            u, v = v, u
        key = (_AND, u, v)
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        lu, lou, hiu = self._nodes[u]
        lv, lov, hiv = self._nodes[v]
        if lu == lv:
            lo = self.apply_and(lou, lov)
            hi = self.apply_and(hiu, hiv)
            lvl = lu
        elif lu < lv:
            lo = self.apply_and(lou, v)
            hi = self.apply_and(hiu, v)
            lvl = lu
        else:
            lo = self.apply_and(u, lov)
            hi = self.apply_and(u, hiv)
            lvl = lv
        r = self._mk(lvl, lo, hi)
        self._op_cache[key] = r
        if _faults.ARMED:
            r = _faults.fire("bdd.apply", r)
        return r

    def apply_or(self, u: int, v: int) -> int:
        if u == TRUE or v == TRUE:
            return TRUE
        if u == FALSE:
            return v
        if v == FALSE:
            return u
        if u == v:
            return u
        if u > v:
            u, v = v, u
        key = (_OR, u, v)
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        lu, lou, hiu = self._nodes[u]
        lv, lov, hiv = self._nodes[v]
        if lu == lv:
            lo = self.apply_or(lou, lov)
            hi = self.apply_or(hiu, hiv)
            lvl = lu
        elif lu < lv:
            lo = self.apply_or(lou, v)
            hi = self.apply_or(hiu, v)
            lvl = lu
        else:
            lo = self.apply_or(u, lov)
            hi = self.apply_or(u, hiv)
            lvl = lv
        r = self._mk(lvl, lo, hi)
        self._op_cache[key] = r
        if _faults.ARMED:
            r = _faults.fire("bdd.apply", r)
        return r

    def apply_not(self, u: int) -> int:
        if u == FALSE:
            return TRUE
        if u == TRUE:
            return FALSE
        key = (_NOT, u)
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        lvl, lo, hi = self._nodes[u]
        r = self._mk(lvl, self.apply_not(lo), self.apply_not(hi))
        self._op_cache[key] = r
        return r

    def apply_diff(self, u: int, v: int) -> int:
        """u AND NOT v."""
        return self.apply_and(u, self.apply_not(v))

    def ite(self, c: int, t: int, e: int) -> int:
        return self.apply_or(self.apply_and(c, t), self.apply_and(self.apply_not(c), e))

    def conj(self, items: Sequence[int]) -> int:
        r = TRUE
        for u in items:
            r = self.apply_and(r, u)
            if r == FALSE:
                return FALSE
        return r

    def disj(self, items: Sequence[int]) -> int:
        r = FALSE
        for u in items:
            r = self.apply_or(r, u)
            if r == TRUE:
                return TRUE
        return r

    # -- cofactors / quantification -------------------------------------------------
    def restrict(self, u: int, level: int, value: bool) -> int:
        if u <= TRUE:
            return u
        key = (_RESTRICT, u, level, value)
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        lvl, lo, hi = self._nodes[u]
        if lvl > level:
            r = u
        elif lvl == level:
            r = hi if value else lo
        else:
            r = self._mk(
                lvl,
                self.restrict(lo, level, value),
                self.restrict(hi, level, value),
            )
        self._op_cache[key] = r
        return r

    def exists(self, u: int, levels: frozenset) -> int:
        """Existentially quantify the given levels out of ``u``."""
        if u <= TRUE or not levels:
            return u
        key = (_EXISTS, u, levels)
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        lvl, lo, hi = self._nodes[u]
        elo = self.exists(lo, levels)
        ehi = self.exists(hi, levels)
        if lvl in levels:
            r = self.apply_or(elo, ehi)
        else:
            r = self._mk(lvl, elo, ehi)
        self._op_cache[key] = r
        return r

    # -- evaluation / models -----------------------------------------------------------
    def evaluate(self, u: int, assignment: Callable[[int], bool]) -> bool:
        while u > TRUE:
            lvl, lo, hi = self._nodes[u]
            u = hi if assignment(lvl) else lo
        return u == TRUE

    def support(self, u: int) -> frozenset:
        out = set()
        seen = set()
        stack = [u]
        while stack:
            n = stack.pop()
            if n <= TRUE or n in seen:
                continue
            seen.add(n)
            lvl, lo, hi = self._nodes[n]
            out.add(lvl)
            stack.append(lo)
            stack.append(hi)
        return frozenset(out)

    def pick_cube(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment (level -> bool), or None."""
        if u == FALSE:
            return None
        cube: Dict[int, bool] = {}
        while u > TRUE:
            lvl, lo, hi = self._nodes[u]
            if hi != FALSE:
                cube[lvl] = True
                u = hi
            else:
                cube[lvl] = False
                u = lo
        return cube

    def iter_cubes(self, u: int) -> Iterator[Dict[int, bool]]:
        """All satisfying partial assignments (disjoint cubes)."""
        if u == FALSE:
            return
        if u == TRUE:
            yield {}
            return
        lvl, lo, hi = self._nodes[u]
        for sub in self.iter_cubes(lo):
            yield {lvl: False, **sub}
        for sub in self.iter_cubes(hi):
            yield {lvl: True, **sub}
