"""Reduced ordered binary decision diagrams (ROBDDs), int-table layout.

The symbolic backbone of the tree-automata library: transition guards over
the node-label alphabet {0,1}^k are BDDs, so automata scale with the number
of *states*, not with 2^k alphabet entries — the same architectural choice
MONA makes.

Implementation notes (pure Python, tuned per the HPC guides' "algorithmic
optimization first" rule).  Nodes live in a flat *int table*: three
parallel arrays ``_var``/``_lo``/``_hi`` indexed by the node handle, so a
node is just an ``int`` and dereferencing it is two list reads instead of
a tuple allocation + unpack.  Hash-consing and the operation memo are
plain dicts keyed by *packed integers* (level/lo/hi and operand pairs
bit-packed into one int), which CPython stores open-addressed with the
identity hash — no tuple hashing on the hot path.  Handle/level packing
widths are fixed (``_SHIFT`` bits per handle, ``_LEVEL_BITS`` per level)
and enforced at allocation, so keys can never collide across fields.

The public surface is identical to the original tuple-node manager,
which survives as :class:`repro.bdd.reference.ReferenceBDDManager` and is
held equivalent by ``tests/test_bdd_differential.py``:

* terminals are ``0`` and ``1``; a node is an ``int`` index;
* ``apply`` / ``ite`` / ``exists`` are memoized per manager;
* variables are integer *levels*; the caller (the automata layer) maps
  track names to levels;
* ``cache_stats()`` exposes the same counter keys.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..runtime import faults as _faults
from ..runtime.errors import MemoryCeilingExceeded

__all__ = ["BDDManager"]

FALSE = 0
TRUE = 1

# Operation tags for the shared memo table (low bits of every packed key,
# so per-op keys occupy disjoint ranges of one dict).
_AND = 0
_OR = 1
_NOT = 2
_EXISTS = 3
_RESTRICT = 4

_OP_NAMES = {_AND: "and", _OR: "or", _NOT: "not",
             _EXISTS: "exists", _RESTRICT: "restrict"}

#: Bits per node handle in packed keys: handles < 2^26 (≈67M nodes).
_SHIFT = 26
_CAPACITY = 1 << _SHIFT
#: Bits per variable level in packed keys.
_LEVEL_BITS = 20
_MAX_LEVEL = 1 << _LEVEL_BITS


class BDDManager:
    """A shared store of hash-consed BDD nodes in a flat int table."""

    def __init__(self) -> None:
        # Parallel arrays: node idx -> var level / low child / high child.
        # Indices 0/1 are the terminals (level -1 keeps them below every
        # real variable without special-casing level reads).
        self._var: List[int] = [-1, -1]
        self._lo: List[int] = [-1, -1]
        self._hi: List[int] = [-1, -1]
        # Unique (hash-cons) table: (level << 2*_SHIFT | lo << _SHIFT | hi)
        # -> idx.  Int keys hash to themselves, so probing is one modulo.
        self._unique: Dict[int, int] = {}
        # One packed-int-keyed operation cache for every memoized op; the
        # op tag sits in the low 3 bits, so a single dict serves all five
        # ops and callers can still clear / account for one table.
        self._op_cache: Dict[int, int] = {}
        self._op_hits = 0
        self._op_misses = 0
        # Entries currently memoized per op tag (cache_stats breakdown;
        # counted at insert time since entries are never evicted).
        self._op_entries = [0, 0, 0, 0, 0]
        # Quantified level-set -> packed bitmask (exists() cache keys).
        self._mask_cache: Dict[frozenset, int] = {}
        # Optional ResourceGuard (set via guard.bind_manager): enforces
        # the BDD-node ceiling and the deadline from inside allocation.
        self.guard = None

    # -- node plumbing ---------------------------------------------------------
    def _mk(self, level: int, lo: int, hi: int) -> int:
        if lo == hi:
            return lo
        key = (level << 52) | (lo << _SHIFT) | hi
        idx = self._unique.get(key)
        if idx is None:
            var = self._var
            idx = len(var)
            if idx >= _CAPACITY:
                raise MemoryCeilingExceeded(
                    f"BDD unique table exceeded int-table capacity ({_CAPACITY} nodes)",
                    counters={"bdd_nodes": idx},
                )
            var.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = idx
            # Probe the guard every 256 allocations: cheap enough to sit
            # on the allocation path, frequent enough that a node ceiling
            # or deadline trips within a bounded amount of extra work.
            if self.guard is not None and not (idx & 255):
                self.guard.note_nodes(idx + 1)
        return idx

    def level(self, u: int) -> int:
        return self._var[u]

    def node(self, u: int) -> Tuple[int, int, int]:
        return (self._var[u], self._lo[u], self._hi[u])

    @property
    def true(self) -> int:
        return TRUE

    @property
    def false(self) -> int:
        return FALSE

    def var(self, level: int) -> int:
        """The BDD of "bit at ``level`` is 1"."""
        if not (0 <= level < _MAX_LEVEL):
            raise ValueError(f"BDD level {level} outside packed range [0, {_MAX_LEVEL})")
        return self._mk(level, FALSE, TRUE)

    def nvar(self, level: int) -> int:
        if not (0 <= level < _MAX_LEVEL):
            raise ValueError(f"BDD level {level} outside packed range [0, {_MAX_LEVEL})")
        return self._mk(level, TRUE, FALSE)

    def size(self) -> int:
        return len(self._var)

    def cache_stats(self) -> Dict[str, int]:
        """Node and operation-cache counters (for solver statistics).

        ``cache_<op>`` entries count memoized results per operation;
        ``cache_hits``/``cache_misses`` count lookups since construction.
        """
        out = {
            "nodes": len(self._var),
            "cache_entries": len(self._op_cache),
            "cache_hits": self._op_hits,
            "cache_misses": self._op_misses,
        }
        for tag, name in _OP_NAMES.items():
            out[f"cache_{name}"] = self._op_entries[tag]
        return out

    # -- boolean operations -------------------------------------------------------
    def apply_and(self, u: int, v: int) -> int:
        if u == FALSE or v == FALSE:
            return FALSE
        if u == TRUE:
            return v
        if v == TRUE:
            return u
        if u == v:
            return u
        if u > v:
            u, v = v, u
        key = (((u << _SHIFT) | v) << 3) | _AND
        cache = self._op_cache
        r = cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        var = self._var
        lo_ = self._lo
        hi_ = self._hi
        lu = var[u]
        lv = var[v]
        if lu == lv:
            lo = self.apply_and(lo_[u], lo_[v])
            hi = self.apply_and(hi_[u], hi_[v])
            lvl = lu
        elif lu < lv:
            lo = self.apply_and(lo_[u], v)
            hi = self.apply_and(hi_[u], v)
            lvl = lu
        else:
            lo = self.apply_and(u, lo_[v])
            hi = self.apply_and(u, hi_[v])
            lvl = lv
        r = lo if lo == hi else self._mk(lvl, lo, hi)
        cache[key] = r
        self._op_entries[_AND] += 1
        if _faults.ARMED:
            r = _faults.fire("bdd.apply", r)
        return r

    def apply_or(self, u: int, v: int) -> int:
        if u == TRUE or v == TRUE:
            return TRUE
        if u == FALSE:
            return v
        if v == FALSE:
            return u
        if u == v:
            return u
        if u > v:
            u, v = v, u
        key = (((u << _SHIFT) | v) << 3) | _OR
        cache = self._op_cache
        r = cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        var = self._var
        lo_ = self._lo
        hi_ = self._hi
        lu = var[u]
        lv = var[v]
        if lu == lv:
            lo = self.apply_or(lo_[u], lo_[v])
            hi = self.apply_or(hi_[u], hi_[v])
            lvl = lu
        elif lu < lv:
            lo = self.apply_or(lo_[u], v)
            hi = self.apply_or(hi_[u], v)
            lvl = lu
        else:
            lo = self.apply_or(u, lo_[v])
            hi = self.apply_or(u, hi_[v])
            lvl = lv
        r = lo if lo == hi else self._mk(lvl, lo, hi)
        cache[key] = r
        self._op_entries[_OR] += 1
        if _faults.ARMED:
            r = _faults.fire("bdd.apply", r)
        return r

    def apply_not(self, u: int) -> int:
        if u == FALSE:
            return TRUE
        if u == TRUE:
            return FALSE
        key = (u << 3) | _NOT
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        r = self._mk(self._var[u], self.apply_not(self._lo[u]), self.apply_not(self._hi[u]))
        self._op_cache[key] = r
        self._op_entries[_NOT] += 1
        return r

    def apply_diff(self, u: int, v: int) -> int:
        """u AND NOT v."""
        return self.apply_and(u, self.apply_not(v))

    def ite(self, c: int, t: int, e: int) -> int:
        return self.apply_or(self.apply_and(c, t), self.apply_and(self.apply_not(c), e))

    def conj(self, items: Sequence[int]) -> int:
        r = TRUE
        for u in items:
            r = self.apply_and(r, u)
            if r == FALSE:
                return FALSE
        return r

    def disj(self, items: Sequence[int]) -> int:
        r = FALSE
        for u in items:
            r = self.apply_or(r, u)
            if r == TRUE:
                return TRUE
        return r

    # -- cofactors / quantification -------------------------------------------------
    def restrict(self, u: int, level: int, value: bool) -> int:
        if u <= TRUE:
            return u
        key = (((((u << _LEVEL_BITS) | level) << 1) | (1 if value else 0)) << 3) | _RESTRICT
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        lvl = self._var[u]
        if lvl > level:
            r = u
        elif lvl == level:
            r = self._hi[u] if value else self._lo[u]
        else:
            r = self._mk(
                lvl,
                self.restrict(self._lo[u], level, value),
                self.restrict(self._hi[u], level, value),
            )
        self._op_cache[key] = r
        self._op_entries[_RESTRICT] += 1
        return r

    def exists(self, u: int, levels: frozenset) -> int:
        """Existentially quantify the given levels out of ``u``."""
        if u <= TRUE or not levels:
            return u
        mask = self._mask_cache.get(levels)
        if mask is None:
            mask = 0
            for lvl in levels:
                mask |= 1 << lvl
            self._mask_cache[levels] = mask
        return self._exists(u, levels, mask)

    def _exists(self, u: int, levels: frozenset, mask: int) -> int:
        if u <= TRUE:
            return u
        lvl = self._var[u]
        if mask < (1 << lvl):
            # Every quantified level is above (comes before) this node,
            # and levels only grow downward: the subgraph is untouched.
            return u
        key = (((mask << _SHIFT) | u) << 3) | _EXISTS
        r = self._op_cache.get(key)
        if r is not None:
            self._op_hits += 1
            return r
        self._op_misses += 1
        elo = self._exists(self._lo[u], levels, mask)
        ehi = self._exists(self._hi[u], levels, mask)
        if (mask >> lvl) & 1:
            r = self.apply_or(elo, ehi)
        else:
            r = self._mk(lvl, elo, ehi)
        self._op_cache[key] = r
        self._op_entries[_EXISTS] += 1
        return r

    # -- evaluation / models -----------------------------------------------------------
    def evaluate(self, u: int, assignment: Callable[[int], bool]) -> bool:
        var = self._var
        lo_ = self._lo
        hi_ = self._hi
        while u > TRUE:
            u = hi_[u] if assignment(var[u]) else lo_[u]
        return u == TRUE

    def support(self, u: int) -> frozenset:
        out = set()
        seen = set()
        stack = [u]
        var = self._var
        lo_ = self._lo
        hi_ = self._hi
        while stack:
            n = stack.pop()
            if n <= TRUE or n in seen:
                continue
            seen.add(n)
            out.add(var[n])
            stack.append(lo_[n])
            stack.append(hi_[n])
        return frozenset(out)

    def pick_cube(self, u: int) -> Optional[Dict[int, bool]]:
        """One satisfying partial assignment (level -> bool), or None."""
        if u == FALSE:
            return None
        cube: Dict[int, bool] = {}
        var = self._var
        lo_ = self._lo
        hi_ = self._hi
        while u > TRUE:
            lvl = var[u]
            hi = hi_[u]
            if hi != FALSE:
                cube[lvl] = True
                u = hi
            else:
                cube[lvl] = False
                u = lo_[u]
        return cube

    def iter_cubes(self, u: int) -> Iterator[Dict[int, bool]]:
        """All satisfying partial assignments (disjoint cubes)."""
        if u == FALSE:
            return
        if u == TRUE:
            yield {}
            return
        lvl = self._var[u]
        for sub in self.iter_cubes(self._lo[u]):
            yield {lvl: False, **sub}
        for sub in self.iter_cubes(self._hi[u]):
            yield {lvl: True, **sub}
