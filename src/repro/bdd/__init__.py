"""Hash-consed reduced ordered binary decision diagrams."""

from .bdd import BDDManager

__all__ = ["BDDManager"]
