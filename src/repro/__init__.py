"""Retreet: reasoning about recursive tree traversals.

A from-scratch reproduction of *"Reasoning About Recursive Tree
Traversals"* (Wang, Liu, Zhang, Qiu — PPoPP 2021): an expressive language
for mutually recursive tree traversals, a configuration abstraction for
their iterations, an encoding into monadic second-order logic over trees,
and a WS2S-style solver (a MONA substitute built on in-repo BDD and
tree-automata libraries) that checks data-race-freeness and transformation
correctness — fusion and parallelization — automatically.

Quickstart::

    from repro import parse_program, check_data_race

    prog = parse_program(SOURCE, name="mine")
    result = check_data_race(prog)
    print(result.verdict)          # "race-free" or "race"

See ``examples/`` for full scenarios and DESIGN.md for the architecture.
"""

from .core.api import VerificationResult, check_data_race, check_equivalence
from .runtime import (
    DeadlineExceeded,
    MemoryCeilingExceeded,
    ReproError,
    ResourceExhausted,
    ResourceGuard,
    SolverInternalError,
    StateBudgetExceeded,
)
from .core.transform import (
    correspondence_by_key,
    parallelize_entry,
    sequentialize_entry,
)
from .interp.interpreter import run
from .lang.parser import parse_program
from .lang.printer import program_source
from .lang.validate import validate
from .trees.heap import Tree, TreeNode, nil, node

__version__ = "1.0.0"

__all__ = [
    "VerificationResult",
    "check_data_race",
    "check_equivalence",
    "ResourceGuard",
    "ReproError",
    "ResourceExhausted",
    "DeadlineExceeded",
    "StateBudgetExceeded",
    "MemoryCeilingExceeded",
    "SolverInternalError",
    "correspondence_by_key",
    "parallelize_entry",
    "sequentialize_entry",
    "run",
    "parse_program",
    "program_source",
    "validate",
    "Tree",
    "TreeNode",
    "nil",
    "node",
    "__version__",
]
