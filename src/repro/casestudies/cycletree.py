"""Case study 4: cycletree construction and routing (paper Fig. 9, T1.6/T1.7).

Cycletrees (Veanes & Barklund) are binary trees extended with edges forming
a Hamiltonian cycle; the cyclic order is computed by a *mutually recursive*
quadruple of traversals (``RootMode``/``PreMode``/``InMode``/``PostMode``)
that number the nodes in the cycle order, and ``ComputeRouting`` computes
per-node routing intervals (min/max cycle numbers per subtree) in a
post-order pass.

The paper verifies:

* **T1.6** the numbering and routing traversals fuse into a single pass —
  the hardest query in the evaluation (MONA: 490.55 s);
* **T1.7** running them *in parallel* races: ``ComputeRouting`` reads
  ``n.num`` concurrently with the mode traversals writing it (MONA finds the
  counterexample in 0.95 s; the paper confirms it is a true positive — our
  framework replays it on the interpreter automatically).

The Retreet programs below follow Fig. 9, with the child-interval
assignments guarded by nil tests (Fig. 9 elides the guards).  The concrete
cycletree substrate — actual cycle construction and routing over it — lives
in :mod:`repro.trees.cycletree` and is cross-checked against these programs.
"""

from __future__ import annotations

from typing import Dict, Set

from ..lang import ast as A
from ..lang.parser import parse_program

__all__ = [
    "sequential_program",
    "parallel_program",
    "fused_program",
    "fusion_correspondence",
    "FIELDS",
]

FIELDS = ("num", "lmin", "rmin", "lmax", "rmax", "min", "max")

_MODES = """
RootMode(n, number) {
  if (n == nil) { return 0 }
  else {
    n.num = number;
    a = PreMode(n.l, number + 1);
    b = PostMode(n.r, number + 1);
    return 0
  }
}

PreMode(n, number) {
  if (n == nil) { return 0 }
  else {
    n.num = number;
    a = PreMode(n.l, number + 1);
    b = InMode(n.r, number + 1);
    return 0
  }
}

InMode(n, number) {
  if (n == nil) { return 0 }
  else {
    a = PostMode(n.l, number);
    n.num = number;
    b = PreMode(n.r, number + 1);
    return 0
  }
}

PostMode(n, number) {
  if (n == nil) { return 0 }
  else {
    a = InMode(n.l, number);
    b = PostMode(n.r, number);
    n.num = number;
    return 0
  }
}
"""

_ROUTING = """
ComputeRouting(n) {
  if (n == nil) { return 0 }
  else {
    a = ComputeRouting(n.l);
    b = ComputeRouting(n.r);
    if (n.l == nil) {
      n.lmin = n.num;
      n.lmax = n.num
    } else {
      n.lmin = n.l.min;
      n.lmax = n.l.max
    };
    if (n.r == nil) {
      n.rmin = n.num;
      n.rmax = n.num
    } else {
      n.rmin = n.r.min;
      n.rmax = n.r.max
    };
    n.max = max(n.lmax, n.rmax, n.num);
    n.min = min(n.lmin, n.rmin, n.num);
    return 0
  }
}
"""

_SEQ_MAIN = """
Main(n) {
  a = RootMode(n, 0);
  b = ComputeRouting(n);
  return 0
}
"""

_PAR_MAIN = """
Main(n) {
  { a = RootMode(n, 0) || b = ComputeRouting(n) };
  return 0
}
"""

# The fused traversal: one function per mode, each writing n.num at its
# mode's position in the cycle order and computing the routing intervals
# after both child calls completed.
_ROUTING_TAIL = """
    if (n.l == nil) {
      n.lmin = n.num;
      n.lmax = n.num
    } else {
      n.lmin = n.l.min;
      n.lmax = n.l.max
    };
    if (n.r == nil) {
      n.rmin = n.num;
      n.rmax = n.num
    } else {
      n.rmin = n.r.min;
      n.rmax = n.r.max
    };
    n.max = max(n.lmax, n.rmax, n.num);
    n.min = min(n.lmin, n.rmin, n.num);
    return 0
"""

_FUSED = (
    """
FRoot(n, number) {
  if (n == nil) { return 0 }
  else {
    n.num = number;
    a = FPre(n.l, number + 1);
    b = FPost(n.r, number + 1);
"""
    + _ROUTING_TAIL
    + """
  }
}

FPre(n, number) {
  if (n == nil) { return 0 }
  else {
    n.num = number;
    a = FPre(n.l, number + 1);
    b = FIn(n.r, number + 1);
"""
    + _ROUTING_TAIL
    + """
  }
}

FIn(n, number) {
  if (n == nil) { return 0 }
  else {
    a = FPost(n.l, number);
    n.num = number;
    b = FPre(n.r, number + 1);
"""
    + _ROUTING_TAIL
    + """
  }
}

FPost(n, number) {
  if (n == nil) { return 0 }
  else {
    a = FIn(n.l, number);
    b = FPost(n.r, number);
    n.num = number;
"""
    + _ROUTING_TAIL
    + """
  }
}

Main(n) {
  a = FRoot(n, 0);
  return 0
}
"""
)


def sequential_program() -> A.Program:
    """Fig. 9: cyclic numbering, then routing (the fusion source)."""
    return parse_program(_MODES + _ROUTING + _SEQ_MAIN, name="cycletree-seq")


def parallel_program() -> A.Program:
    """Numbering and routing in parallel — the racy variant of T1.7."""
    return parse_program(_MODES + _ROUTING + _PAR_MAIN, name="cycletree-par")


def fused_program() -> A.Program:
    """Numbering and routing fused into one mutually recursive pass."""
    return parse_program(_FUSED, name="cycletree-fused")


def fusion_correspondence() -> Dict[str, Set[str]]:
    """Non-call block correspondence sequential -> fused.

    Computed from the concrete block tables (asserted in the tests):

    sequential —
      RootMode: s0 nil, s1 num-write, s4 ret; PreMode: s5 nil, s6 num, s9
      ret; InMode: s10 nil, s12 num, s14 ret; PostMode: s15 nil, s18 num+ret;
      ComputeRouting: s20 nil, s23..s26 child-interval blocks, s27 minmax+ret;
      Main: s30 ret.
    fused (per mode f in FRoot s0.., FPre s10.., FIn s20.., FPost s30..):
      nil, num-write, 4 interval blocks, minmax+ret; Main: s41 ret.
    """
    return {
        # RootMode -> FRoot
        "s0": {"s0"},
        "s1": {"s1"},
        "s4": {"s8"},
        # PreMode -> FPre
        "s5": {"s9"},
        "s6": {"s10"},
        "s9": {"s17"},
        # InMode -> FIn
        "s10": {"s18"},
        "s12": {"s20"},
        "s14": {"s26"},
        # PostMode -> FPost (the merged num+return block splits)
        "s15": {"s27"},
        "s18": {"s30", "s35"},
        # ComputeRouting blocks map into every fused mode (routing runs at
        # every node regardless of which mode numbers it).
        "s19": {"s0", "s9", "s18", "s27"},
        "s22": {"s4", "s13", "s22", "s31"},
        "s23": {"s5", "s14", "s23", "s32"},
        "s24": {"s6", "s15", "s24", "s33"},
        "s25": {"s7", "s16", "s25", "s34"},
        "s26": {"s8", "s17", "s26", "s35"},
        # Main return
        "s29": {"s37"},
    }
