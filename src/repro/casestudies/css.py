"""Case study 3: CSS minification traversals (paper Fig. 8, T1.5).

Three minification passes over the AST of a CSS document:

* ``ConvertValues`` — rewrite values into shorter unit representations
  (``100ms`` → ``.1s``);
* ``MinifyFont`` — numeric font weights (``font-weight: normal`` → ``400``);
* ``ReduceInit`` — replace ``initial`` keywords longer than the property's
  concrete value.

Following §5's preprocessing:

* CSS ASTs are n-ary, so they are converted to **left-child/right-sibling**
  binary form (``n.l`` = first child, ``n.r`` = next sibling); "for each
  child p: T(n.p)" becomes the two recursive calls ``T(n.l); T(n.r)``;
* string conditions become arithmetic over integer-coded fields:
  ``type`` (1=word, 2=func, ...), ``prop`` (7=font-weight), ``value`` and
  its length ``vlen``.

The three traversals touch only per-node fields, so they fuse into a single
pass; the paper checks the fusion in 6.88 s of MONA time.  The concrete CSS
engine these traversals model lives in :mod:`repro.trees.css`, which runs
real minifications and cross-checks the fused pass.
"""

from __future__ import annotations

from typing import Dict, Set

from ..lang import ast as A
from ..lang.parser import parse_program

__all__ = [
    "original_program",
    "fused_program",
    "fusion_correspondence",
    "FIELDS",
    "TYPE_WORD",
    "TYPE_FUNC",
    "PROP_FONT_WEIGHT",
    "INITIAL_LENGTH",
]

FIELDS = ("type", "prop", "value", "vlen")
TYPE_WORD = 1
TYPE_FUNC = 2
PROP_FONT_WEIGHT = 7
INITIAL_LENGTH = 7  # len("initial")

_TRAVERSALS = """
ConvertValues(n) {
  if (n == nil) { return 0 }
  else {
    a = ConvertValues(n.l);
    b = ConvertValues(n.r);
    if (n.type == 1 || n.type == 2) {
      n.value = n.value - 1;
      n.vlen = n.vlen - 1
    };
    return 0
  }
}

MinifyFont(n) {
  if (n == nil) { return 0 }
  else {
    a = MinifyFont(n.l);
    b = MinifyFont(n.r);
    if (n.prop == 7) {
      n.value = 400;
      n.vlen = 3
    };
    return 0
  }
}

ReduceInit(n) {
  if (n == nil) { return 0 }
  else {
    a = ReduceInit(n.l);
    b = ReduceInit(n.r);
    if (n.vlen > 7) {
      n.value = 0;
      n.vlen = 1
    };
    return 0
  }
}
"""

_MAIN = """
Main(n) {
  a = ConvertValues(n);
  b = MinifyFont(n);
  c = ReduceInit(n);
  return 0
}
"""

_FUSED = """
Fused(n) {
  if (n == nil) { return 0 }
  else {
    a = Fused(n.l);
    b = Fused(n.r);
    if (n.type == 1 || n.type == 2) {
      n.value = n.value - 1;
      n.vlen = n.vlen - 1
    };
    if (n.prop == 7) {
      n.value = 400;
      n.vlen = 3
    };
    if (n.vlen > 7) {
      n.value = 0;
      n.vlen = 1
    };
    return 0
  }
}

Main(n) {
  a = Fused(n);
  return 0
}
"""


def original_program() -> A.Program:
    """The three sequential minification passes (Fig. 8, arithmetized)."""
    return parse_program(_TRAVERSALS + _MAIN, name="css-orig")


def fused_program() -> A.Program:
    """All three minifications in a single traversal."""
    return parse_program(_FUSED, name="css-fused")


def fusion_correspondence() -> Dict[str, Set[str]]:
    """Non-call block correspondence original -> fused.

    original: s0/s3/s4 ConvertValues (nil, body, ret); s5/s8/s9 MinifyFont;
    s10/s13/s14 ReduceInit; s18 Main return.
    fused: s0 nil; s3 convert body; s4 font body; s5 reduce body; s6 ret;
    s8 Main return.
    """
    return {
        "s0": {"s0"},
        "s3": {"s3"},
        "s4": {"s6"},
        "s5": {"s0"},
        "s8": {"s4"},
        "s9": {"s6"},
        "s10": {"s0"},
        "s13": {"s5"},
        "s14": {"s6"},
        "s18": {"s8"},
    }
