"""Case study 2: fusing tree-mutating traversals (paper Fig. 7, T1.4).

``Swap`` recursively swaps the children of every node; ``IncrmLeft`` updates
``n.v`` from the value stored in the (post-swap) left child.  Tree mutation
is disallowed in Retreet, so — following §5 — the mutation is *simulated
with mutable local fields*:

* ``n.ll`` = "n.l is unchanged", ``n.lr`` = "n.l points to the original
  right child" (and symmetrically ``n.rl``/``n.rr``); the swap statement
  ``tmp = n.l; n.l = n.r; n.r = tmp`` becomes
  ``n.ll = 0; n.lr = 1; n.rl = 1; n.rr = 0``;
* reads through a possibly-swapped pointer become conditionals on the
  flags: ``f(n.l)`` → ``if (n.ll) f(n.l) else if (n.lr) f(n.r)``;
* as in the paper, a simple program analysis then simplifies branches that
  are statically decided (after ``Swap`` ran, ``n.lr`` is 1 at every node,
  so ``IncrmLeft``'s recursion descends directly through the original
  right/left children).  We keep the ``n.lr`` test guarding the ``n.v``
  update so the Swap→IncrmLeft flag dependence remains visible to the
  framework — this is the dependence that forces the fused traversal to
  write the flags before the ``n.v`` update at each node.

The fused traversal (Fig. 7b) interleaves both phases in one post-order
pass; the framework verifies the fusion (MONA: 0.12 s).
"""

from __future__ import annotations

from typing import Dict, Set

from ..lang import ast as A
from ..lang.parser import parse_program

__all__ = [
    "original_program",
    "fused_program",
    "fusion_correspondence",
    "FIELDS",
]

FIELDS = ("v", "ll", "lr", "rl", "rr")

_ORIGINAL = """
Swap(n) {
  if (n == nil) { return 0 }
  else {
    z1 = Swap(n.l);
    z2 = Swap(n.r);
    n.ll = 0;
    n.lr = 1;
    n.rl = 1;
    n.rr = 0;
    return 0
  }
}

IncrmLeft(n) {
  if (n == nil) { return 0 }
  else {
    z1 = IncrmLeft(n.r);
    z2 = IncrmLeft(n.l);
    if (n.lr > 0) {
      if (n.r == nil) { n.v = 1 } else { n.v = n.r.v + 1 }
    } else {
      if (n.l == nil) { n.v = 1 } else { n.v = n.l.v + 1 }
    };
    return 0
  }
}

Main(n) {
  a = Swap(n);
  b = IncrmLeft(n);
  return 0
}
"""

_FUSED = """
Fused(n) {
  if (n == nil) { return 0 }
  else {
    z1 = Fused(n.l);
    z2 = Fused(n.r);
    n.ll = 0;
    n.lr = 1;
    n.rl = 1;
    n.rr = 0;
    if (n.lr > 0) {
      if (n.r == nil) { n.v = 1 } else { n.v = n.r.v + 1 }
    } else {
      if (n.l == nil) { n.v = 1 } else { n.v = n.l.v + 1 }
    };
    return 0
  }
}

Main(n) {
  a = Fused(n);
  return 0
}
"""


def original_program() -> A.Program:
    """Fig. 7a after mutation simulation (see module docstring)."""
    return parse_program(_ORIGINAL, name="treemutation-orig")


def fused_program() -> A.Program:
    """Fig. 7b after mutation simulation."""
    return parse_program(_FUSED, name="treemutation-fused")


def fusion_correspondence() -> Dict[str, Set[str]]:
    """Non-call block correspondence original -> fused.

    Computed against the concrete block numbering; the test suite asserts
    the numbering so drift is caught.
    """
    # original: s0 Swap nil-ret; s3 Swap flags+return; s4 Incrm nil-ret;
    #           s7/s8/s9/s10 the four n.v blocks; s11 Incrm return;
    #           s14 Main return.
    # fused:    s0 nil-ret; s3 flags block; s4..s7 n.v blocks; s8 return;
    #           s10 Main return.
    return {
        "s0": {"s0"},
        "s3": {"s3", "s8"},  # Swap's flags+return splits into flags + return
        "s4": {"s0"},
        "s7": {"s4"},
        "s8": {"s5"},
        "s9": {"s6"},
        "s10": {"s7"},
        "s11": {"s8"},
        "s14": {"s10"},
    }
