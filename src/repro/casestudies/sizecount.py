"""Case study 1: mutually recursive size-counting (paper Fig. 3 & Fig. 6).

``Odd(n)``/``Even(n)`` count the nodes on odd/even layers of the tree by
calling each other — mutual recursion that the paper notes is beyond every
prior automatic framework.  The paper verifies:

* **T1.1** the two traversals fuse into the single ``Fused`` traversal of
  Fig. 6a (valid — MONA: 0.14 s);
* **T1.2** the mis-fused variant of Fig. 6b (computing the returns *before*
  the recursive calls) violates the child→parent read-after-write dependence
  (counterexample — MONA: 0.14 s);
* **T1.3** ``Odd(n) ‖ Even(n)`` is data-race-free (MONA: 0.02 s).
"""

from __future__ import annotations

from typing import Dict, Set

from ..lang import ast as A
from ..lang.parser import parse_program

__all__ = [
    "parallel_program",
    "sequential_program",
    "fused_valid",
    "fused_invalid",
    "fusion_correspondence",
    "invalid_fusion_correspondence",
]

_TRAVERSALS = """
Odd(n) {
  if (n == nil) { return 0 }
  else {
    ls = Even(n.l);
    rs = Even(n.r);
    return ls + rs + 1
  }
}

Even(n) {
  if (n == nil) { return 0 }
  else {
    ls = Odd(n.l);
    rs = Odd(n.r);
    return ls + rs
  }
}
"""

_PARALLEL_MAIN = """
Main(n) {
  { o = Odd(n) || e = Even(n) };
  return o, e
}
"""

_SEQUENTIAL_MAIN = """
Main(n) {
  o = Odd(n);
  e = Even(n);
  return o, e
}
"""

# Fig. 6a — the valid fusion.  Fused(n) returns (Odd(n), Even(n)):
# Odd(n) = Even(n.l) + Even(n.r) + 1 and Even(n) = Odd(n.l) + Odd(n.r).
_FUSED_VALID = """
Fused(n) {
  if (n == nil) { return 0, 0 }
  else {
    lo, le = Fused(n.l);
    ro, re = Fused(n.r);
    return le + re + 1, lo + ro
  }
}

Main(n) {
  o, e = Fused(n);
  return o, e
}
"""

# Fig. 6b — the invalid fusion: the combined return values are computed
# *before* the recursive calls, so the child->parent read-after-write
# dependence of the original traversals is reversed.
_FUSED_INVALID = """
Fused(n) {
  if (n == nil) { return 0, 0 }
  else {
    ret1, ret2 = le + re + 1, lo + ro;
    lo, le = Fused(n.l);
    ro, re = Fused(n.r);
    return ret1, ret2
  }
}

Main(n) {
  o, e = Fused(n);
  return o, e
}
"""


def parallel_program() -> A.Program:
    """Fig. 3: Main runs Odd and Even in parallel."""
    return parse_program(_TRAVERSALS + _PARALLEL_MAIN, name="sizecount-par")


def sequential_program() -> A.Program:
    """The sequential composition Odd(n); Even(n) — the fusion source."""
    return parse_program(_TRAVERSALS + _SEQUENTIAL_MAIN, name="sizecount-seq")


def fused_valid() -> A.Program:
    """Fig. 6a."""
    return parse_program(_FUSED_VALID, name="sizecount-fused")


def fused_invalid() -> A.Program:
    """Fig. 6b."""
    return parse_program(_FUSED_INVALID, name="sizecount-fused-bad")


def fusion_correspondence() -> Dict[str, Set[str]]:
    """Non-call block correspondence, sequential original -> Fig. 6a.

    Block numbering (from :class:`~repro.lang.blocks.BlockTable`):
    original — s0 `return 0` (Odd nil), s3 `return ls+rs+1` (Odd),
    s4 `return 0` (Even nil), s7 `return ls+rs` (Even), s10 main return;
    fused — s0 `return 0, 0` (nil), s3 the combined return, s5 main return.
    """
    return {
        "s0": {"s0"},
        "s4": {"s0"},
        "s3": {"s3"},
        "s7": {"s3"},
        "s10": {"s5"},
    }


def invalid_fusion_correspondence() -> Dict[str, Set[str]]:
    """Correspondence onto Fig. 6b, where the original return blocks' work is
    split between the early compute block (s1) and the final return (s4)."""
    return {
        "s0": {"s0"},
        "s4": {"s0"},
        "s3": {"s1", "s4"},
        "s7": {"s1", "s4"},
        "s10": {"s6"},
    }
