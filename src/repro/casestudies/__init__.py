"""The paper's four case studies (§5), as Retreet programs + substrates."""

from . import css, cycletree, sizecount, treemutation

__all__ = ["css", "cycletree", "sizecount", "treemutation"]
