"""Command-line interface: ``python -m repro <command> …``.

Commands:

* ``check-race FILE`` — parse a ``.retreet`` program and decide
  data-race-freeness;
* ``check-fusion ORIGINAL FUSED`` — decide equivalence of two programs
  under a block correspondence (derived by structural key matching, with
  ``--map sP=sQ1,sQ2`` overrides);
* ``run FILE`` — execute a program on a generated tree and print the
  result;
* ``blocks FILE`` — print the numbered block table (the paper's s0..sn);
* ``fuzz`` — seeded differential conformance fuzzing: generated queries
  run through all three engines, witnesses replayed, mismatches shrunk
  to minimal reproducers in a corpus directory;
* ``batch MANIFEST`` — a durable, resumable batch of solves over a
  supervised pool of crash-isolated worker processes (DESIGN.md §9);
  ``--resume RUN_DIR`` continues a run killed mid-way, recomputing only
  verdicts that never reached the journal;
* ``serve RUN_DIR`` — the long-lived multi-tenant solve daemon
  (DESIGN.md §11): admission control, per-client quotas, weighted fair
  scheduling, and a shared crash-safe sqlite cache tier;
  ``--status`` / ``--stop`` talk to a running daemon;
* ``client FILE [--fused FILE2]`` — submit one query to a running
  daemon and report like ``check-race`` / ``check-fusion``.

Exit codes are uniform across every subcommand:

====  =====================================================
code  meaning
====  =====================================================
0     the property holds / no mismatch / batch clean
1     a violation was found (race, non-equivalence, mismatch)
2     usage or environment error (bad flags, unreadable or
      unparseable input, broken manifest, worker failure,
      unreachable daemon)
3     undecided: every engine rung exhausted its limits
4     daemon overloaded (queue full / quota / shed /
      draining); stderr carries a retry-after hint
130   interrupted (SIGINT); partial batch journals survive
====  =====================================================

``--deadline``, ``--det-budget`` and ``--max-internal`` tune the engine
limits; ``--isolation process`` sandboxes each solve in a killable
child process.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Dict, Set

from .core.api import check_data_race, check_equivalence
from .core.transform import correspondence_by_key
from .interp import run as interp_run
from .lang import BlockTable, parse_program, validate
from .runtime import ReproError
from .trees.generators import full_tree, random_tree

__all__ = ["main"]

#: Uniform exit codes (also documented in README.md).
EXIT_OK = 0
EXIT_VIOLATION = 1
EXIT_ERROR = 2
EXIT_UNKNOWN = 3
EXIT_OVERLOADED = 4
EXIT_INTERRUPTED = 130


def _load(path: str, entry: str):
    prog = parse_program(
        Path(path).read_text(), name=Path(path).stem, entry=entry
    )
    warnings = validate(prog)
    for w in warnings:
        print(f"warning: {w}", file=sys.stderr)
    return prog


def _parse_map(items) -> Dict[str, Set[str]]:
    out: Dict[str, Set[str]] = {}
    for item in items or ():
        lhs, rhs = item.split("=", 1)
        out[lhs.strip()] = {s.strip() for s in rhs.split(",")}
    return out


def main(argv=None) -> int:
    """CLI entry point with the uniform exit-code contract.

    Every error path — unreadable files, parse/validation failures,
    broken manifests, typed solver-runtime errors — exits 2 with a
    one-line message instead of a traceback; SIGINT exits 130 after
    noting that any partial batch journal survives.
    """
    from .service.scheduler import ServiceOverloaded

    try:
        return _dispatch(argv)
    except KeyboardInterrupt:
        print("interrupted (partial journal preserved)", file=sys.stderr)
        return EXIT_INTERRUPTED
    except ServiceOverloaded as e:
        # Typed admission rejection from the daemon: distinct exit code
        # so callers can back off and retry instead of treating it as a
        # hard error.
        print(
            f"overloaded: {e} (reason: {e.reason}, retry after "
            f"{e.retry_after_s:.2f}s)",
            file=sys.stderr,
        )
        return EXIT_OVERLOADED
    except (ReproError, SyntaxError, ValueError, OSError) as e:
        # Covers ParseError/LexError (SyntaxError), ValidationError and
        # manifest/JSON errors (ValueError), missing files (OSError).
        print(f"error: {e}", file=sys.stderr)
        return EXIT_ERROR


def _dispatch(argv=None) -> int:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    ap.add_argument("--entry", default="Main", help="entry function name")
    sub = ap.add_subparsers(dest="cmd", required=True)

    def add_resource_flags(parser):
        parser.add_argument(
            "--deadline",
            type=float,
            metavar="SECONDS",
            help="wall-clock deadline for the symbolic engine",
        )
        parser.add_argument(
            "--det-budget",
            type=int,
            metavar="STATES",
            help="determinization state budget for the symbolic engine",
        )
        parser.add_argument(
            "--max-internal",
            type=int,
            metavar="N",
            help="bounded-engine scope: trees with up to N internal nodes",
        )

    def add_isolation_flags(parser):
        parser.add_argument(
            "--isolation",
            default="inline",
            choices=["inline", "process"],
            help="run each solve in-process (inline) or in a sandboxed, "
                 "supervised worker child (process)",
        )
        parser.add_argument(
            "--wall-s", type=float, metavar="SECONDS", default=None,
            help="process isolation: wall-clock kill for a worker child",
        )
        parser.add_argument(
            "--cpu-s", type=float, metavar="SECONDS", default=None,
            help="process isolation: RLIMIT_CPU for a worker child",
        )
        parser.add_argument(
            "--mem-mb", type=int, metavar="MB", default=None,
            help="process isolation: RLIMIT_AS for a worker child",
        )

    p_race = sub.add_parser("check-race", help="data-race-freeness (Thm 2)")
    p_race.add_argument("file")
    p_race.add_argument("--engine", default="auto", metavar="SPEC",
                        help="plan or engine name from the registry "
                             "(auto, mso, bounded, ...); unknown names "
                             "exit 2 listing the known ones")
    add_resource_flags(p_race)
    add_isolation_flags(p_race)

    p_fuse = sub.add_parser("check-fusion", help="equivalence (Thm 3)")
    p_fuse.add_argument("original")
    p_fuse.add_argument("fused")
    p_fuse.add_argument("--engine", default="auto", metavar="SPEC",
                        help="plan or engine name from the registry "
                             "(auto, mso, bounded, ...); unknown names "
                             "exit 2 listing the known ones")
    add_resource_flags(p_fuse)
    add_isolation_flags(p_fuse)
    p_fuse.add_argument(
        "--map",
        action="append",
        metavar="sP=sQ[,sQ2]",
        help="correspondence override for renamed/merged/split blocks",
    )

    p_run = sub.add_parser("run", help="execute on a generated tree")
    p_run.add_argument("file")
    p_run.add_argument("--tree", default="full:3",
                       help="full:<h> or random:<n>:<seed>")
    p_run.add_argument("--args", default="",
                       help="comma-separated Int arguments for the entry")

    p_blocks = sub.add_parser("blocks", help="print the block table")
    p_blocks.add_argument("file")

    p_fuzz = sub.add_parser(
        "fuzz", help="differential conformance fuzzing across engines"
    )
    p_fuzz.add_argument("--seed", type=int, default=0,
                        help="run seed; the whole case stream is a "
                             "function of it (default 0)")
    p_fuzz.add_argument("--budget-s", type=float, default=30.0,
                        metavar="SECONDS",
                        help="wall-clock budget for the run (default 30)")
    shrink_group = p_fuzz.add_mutually_exclusive_group()
    shrink_group.add_argument("--shrink", dest="shrink",
                              action="store_true", default=True,
                              help="shrink mismatches to minimal "
                                   "reproducers (default)")
    shrink_group.add_argument("--no-shrink", dest="shrink",
                              action="store_false",
                              help="report mismatches unshrunk")
    p_fuzz.add_argument("--corpus", metavar="DIR", default=None,
                        help="directory to persist reproducers to "
                             "(default: no persistence)")
    p_fuzz.add_argument("--max-internal", type=int, default=2, metavar="N",
                        help="tree scope for bounded/interpreter engines")
    p_fuzz.add_argument("--max-cases", type=int, default=None, metavar="K",
                        help="stop after K cases even if budget remains")
    p_fuzz.add_argument("--inject-fault", metavar="PROBE:HIT:ACTION",
                        default=None,
                        help="arm a runtime fault before each symbolic "
                             "run (e.g. bdd.apply:1:corrupt); the oracle "
                             "must catch it as a mismatch")
    p_fuzz.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    add_isolation_flags(p_fuzz)

    p_batch = sub.add_parser(
        "batch",
        help="durable, resumable batch of solves over crash-isolated "
             "workers (DESIGN.md §9)",
    )
    p_batch.add_argument("manifest", help="batch manifest (JSON)")
    p_batch.add_argument(
        "--run-dir", metavar="DIR", default=None,
        help="run directory for journal/store/results "
             "(default: <manifest-stem>-run next to the manifest)",
    )
    p_batch.add_argument(
        "--resume", metavar="RUN_DIR", default=None,
        help="resume a previous run: skip every journaled verdict and "
             "compute only the rest",
    )
    p_batch.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="concurrent worker processes (default 1)")
    p_batch.add_argument(
        "--isolation", default="process", choices=["inline", "process"],
        help="process (default): one sandboxed child per solve; "
             "inline: solve in the driver process (no crash isolation)",
    )
    p_batch.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="retry budget per task for crashed workers (default 2)",
    )
    p_batch.add_argument("--quiet", action="store_true",
                         help="suppress per-task progress lines")

    p_serve = sub.add_parser(
        "serve",
        help="long-lived multi-tenant solve daemon with admission "
             "control, quotas, and a shared crash-safe cache tier "
             "(DESIGN.md §11)",
    )
    p_serve.add_argument("run_dir", help="daemon run directory "
                         "(journal, shared cache, socket, lock)")
    p_serve.add_argument("--socket", metavar="PATH", default=None,
                         help="Unix socket path "
                              "(default: RUN_DIR/daemon.sock)")
    p_serve.add_argument("--jobs", type=int, default=2, metavar="N",
                         help="concurrent solves (default 2)")
    p_serve.add_argument(
        "--isolation", default="process", choices=["inline", "process"],
        help="process (default): one sandboxed child per solve; "
             "inline: solve in the daemon process (no crash isolation)",
    )
    p_serve.add_argument("--retries", type=int, default=2, metavar="N",
                         help="retry budget per task for crashed "
                              "workers (default 2)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         metavar="N",
                         help="admission queue bound; beyond it the "
                              "daemon sheds or rejects (default 64)")
    p_serve.add_argument("--client-rate", type=float, default=None,
                         metavar="R",
                         help="per-client quota: R tokens/second "
                              "(default: no quota)")
    p_serve.add_argument("--client-burst", type=float, default=8.0,
                         metavar="B",
                         help="per-client quota burst capacity "
                              "(default 8)")
    p_serve.add_argument("--weight", action="append", metavar="CLIENT=W",
                         help="fair-share weight for a client id "
                              "(repeatable; default weight 1)")
    p_serve.add_argument("--warm-corpus", metavar="DIR", default=None,
                         help="pre-solve a conformance corpus into the "
                              "shared cache on startup")
    p_serve.add_argument("--status", action="store_true",
                         help="print a running daemon's status as JSON "
                              "and exit")
    p_serve.add_argument("--stop", action="store_true",
                         help="ask a running daemon to drain and exit 0")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress daemon progress lines")

    p_client = sub.add_parser(
        "client",
        help="submit one query to a running solve daemon",
    )
    p_client.add_argument("file", help="program to check")
    p_client.add_argument("--fused", metavar="FILE2", default=None,
                          help="check equivalence against FILE2 instead "
                               "of data-race-freeness")
    p_client.add_argument("--run-dir", metavar="DIR", default=None,
                          help="daemon run directory (socket derived "
                               "as DIR/daemon.sock)")
    p_client.add_argument("--socket", metavar="PATH", default=None,
                          help="daemon socket path (overrides --run-dir)")
    p_client.add_argument("--client-id", default="cli", metavar="ID",
                          help="client identity for quotas and fair "
                               "scheduling (default: cli)")
    p_client.add_argument("--priority", type=int, default=5,
                          metavar="0-9",
                          help="admission priority; lower is shed first "
                               "(default 5)")
    p_client.add_argument("--retry", type=int, default=0, metavar="N",
                          help="on overload, honor the daemon's "
                               "retry-after hint up to N times "
                               "(default 0: fail fast with exit 4)")
    p_client.add_argument("--engine", default="auto", metavar="SPEC",
                          help="plan or engine name from the registry")
    p_client.add_argument("--max-internal", type=int, default=None,
                          metavar="N",
                          help="bounded-engine scope")
    p_client.add_argument(
        "--map", action="append", metavar="sP=sQ[,sQ2]",
        help="correspondence override (with --fused)",
    )

    args = ap.parse_args(argv)

    def resource_kwargs():
        # Only forward flags the user actually set: the two commands have
        # different deadline defaults (600s race / 60s fusion).
        kw = {}
        if args.deadline is not None:
            kw["mso_deadline_s"] = args.deadline
        if args.det_budget is not None:
            kw["det_budget"] = args.det_budget
        if args.max_internal is not None:
            kw["max_internal"] = args.max_internal
        if args.isolation != "inline":
            kw["isolation"] = args.isolation
            if args.wall_s is not None:
                kw["wall_s"] = args.wall_s
            if args.cpu_s is not None:
                kw["cpu_s"] = args.cpu_s
            if args.mem_mb is not None:
                kw["mem_bytes"] = args.mem_mb * 1024 * 1024
        return kw

    def report(res) -> int:
        print(res)
        if res.replay is not None:
            print(f"  replay: {res.replay.detail}")
        if res.verdict == "unknown":
            for a in res.details.get("attempts", ()):
                rung = a.get("rung", a.get("attempt", "?"))
                print(
                    f"  attempt {rung}: {a['outcome']} "
                    f"({a['elapsed']:.3f}s)",
                    file=sys.stderr,
                )
            print("  verdict is unknown: all engine rungs exhausted their "
                  "resource limits", file=sys.stderr)
            return EXIT_UNKNOWN
        return EXIT_OK if res.holds else EXIT_VIOLATION

    if args.cmd == "check-race":
        prog = _load(args.file, args.entry)
        res = check_data_race(prog, engine=args.engine, **resource_kwargs())
        return report(res)

    if args.cmd == "check-fusion":
        p = _load(args.original, args.entry)
        q = _load(args.fused, args.entry)
        mapping = correspondence_by_key(
            p, q, overrides=_parse_map(args.map), strict=True
        )
        res = check_equivalence(
            p, q, mapping, engine=args.engine, **resource_kwargs()
        )
        return report(res)

    if args.cmd == "run":
        prog = _load(args.file, args.entry)
        spec = args.tree.split(":")
        if spec[0] == "full":
            tree = full_tree(int(spec[1]))
        elif spec[0] == "random":
            tree = random_tree(int(spec[1]), seed=int(spec[2]) if len(spec) > 2 else 0)
        else:
            ap.error(f"bad --tree {args.tree!r}")
        call_args = [int(a) for a in args.args.split(",") if a.strip()]
        result = interp_run(prog, tree, args=call_args)
        print(f"returns: {result.returns}")
        print(f"iterations: {len(result.trace)}")
        return 0

    if args.cmd == "blocks":
        prog = _load(args.file, args.entry)
        print(BlockTable(prog).summary())
        return 0

    if args.cmd == "fuzz":
        from .conformance import OracleConfig, run_fuzz

        fault = None
        if args.inject_fault is not None:
            parts = args.inject_fault.split(":")
            if len(parts) != 3:
                ap.error(
                    f"bad --inject-fault {args.inject_fault!r} "
                    "(want PROBE:HIT:ACTION)"
                )
            fault = (parts[0], int(parts[1]), parts[2])
        cfg = OracleConfig(fault=fault)
        say = (lambda _msg: None) if args.quiet else (
            lambda msg: print(msg, file=sys.stderr)
        )
        worker_limits = None
        if args.isolation == "process":
            from .service import Limits

            worker_limits = Limits(
                wall_s=args.wall_s if args.wall_s is not None else 120.0,
                cpu_s=args.cpu_s,
                mem_bytes=(
                    args.mem_mb * 1024 * 1024
                    if args.mem_mb is not None else None
                ),
            )
        rep = run_fuzz(
            seed=args.seed,
            budget_s=args.budget_s,
            shrink=args.shrink,
            corpus_dir=Path(args.corpus) if args.corpus else None,
            max_internal=args.max_internal,
            max_cases=args.max_cases,
            cfg=cfg,
            log=say,
            isolation=args.isolation if args.isolation != "inline" else None,
            worker_limits=worker_limits,
        )
        print(rep.summary())
        return EXIT_OK if rep.ok else EXIT_VIOLATION

    if args.cmd == "batch":
        from .service import RetryPolicy, run_batch

        resume = args.resume is not None
        if resume:
            run_dir = Path(args.resume)
        elif args.run_dir is not None:
            run_dir = Path(args.run_dir)
        else:
            manifest = Path(args.manifest)
            run_dir = manifest.parent / f"{manifest.stem}-run"
        say = (lambda _msg: None) if args.quiet else (
            lambda msg: print(msg, file=sys.stderr)
        )
        report_b = run_batch(
            Path(args.manifest),
            run_dir,
            jobs=args.jobs,
            isolation=args.isolation,
            resume=resume,
            policy=RetryPolicy(max_attempts=1 + max(0, args.retries)),
            log=say,
        )
        print(report_b.summary())
        print(f"results: {run_dir / 'results.json'}")
        return report_b.exit_code

    if args.cmd == "serve":
        import json as _json

        from .service.client import DaemonClient
        from .service.daemon import DaemonConfig
        from .service.daemon import serve as serve_daemon

        run_dir = Path(args.run_dir)
        socket_path = (
            Path(args.socket) if args.socket else run_dir / "daemon.sock"
        )
        if args.status or args.stop:
            with DaemonClient(socket_path, client_id="cli") as client:
                if args.status:
                    print(_json.dumps(
                        client.status(), indent=1, sort_keys=True
                    ))
                if args.stop:
                    client.shutdown()
                    print("daemon draining", file=sys.stderr)
            return EXIT_OK
        weights: Dict[str, float] = {}
        for item in args.weight or ():
            lhs, rhs = item.split("=", 1)
            weights[lhs.strip()] = float(rhs)
        say = (lambda _msg: None) if args.quiet else (
            lambda msg: print(msg, file=sys.stderr)
        )
        config = DaemonConfig(
            socket_path=socket_path,
            jobs=args.jobs,
            isolation=args.isolation,
            retries=args.retries,
            queue_depth=args.queue_depth,
            client_rate=args.client_rate,
            client_burst=args.client_burst,
            weights=weights,
            warm_corpus=(
                Path(args.warm_corpus) if args.warm_corpus else None
            ),
        )
        return serve_daemon(run_dir, config, log=say)

    if args.cmd == "client":
        from .core.api import _via_daemon

        if args.socket:
            socket_path = Path(args.socket)
        elif args.run_dir:
            socket_path = Path(args.run_dir) / "daemon.sock"
        else:
            ap.error("client needs --run-dir or --socket")
        prog = _load(args.file, args.entry)
        options: Dict[str, object] = {"engine": args.engine, "replay": True}
        if args.max_internal is not None:
            options["max_internal"] = args.max_internal
        if args.fused is not None:
            q = _load(args.fused, args.entry)
            mapping = correspondence_by_key(
                prog, q, overrides=_parse_map(args.map), strict=True
            )
            res = _via_daemon(
                "check-fusion", (prog, q), options, socket_path,
                mapping=mapping, client_id=args.client_id,
                priority=args.priority, retries=args.retry,
            )
        else:
            res = _via_daemon(
                "check-race", (prog,), options, socket_path,
                client_id=args.client_id, priority=args.priority,
                retries=args.retry,
            )
        if res.details.get("daemon", {}).get("cached"):
            print("(cached by daemon)", file=sys.stderr)
        return report(res)

    return EXIT_ERROR  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
