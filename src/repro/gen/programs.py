"""Random valid Retreet programs and verification queries.

The generated space mirrors the hypothesis strategies the fuzz tests
grew up with: ``k`` mutually recursive functions ``F0..Fk-1`` whose
bodies descend into ``n.l``/``n.r`` (guarded by the ``n == nil`` base
case), perform a few (possibly guarded) field updates, and return an
arithmetic expression; ``Main`` composes one or two root calls either
sequentially or in parallel.  Every program the generators emit parses,
validates, and terminates on every tree (descending recursion only).

Queries come in two kinds:

* a **race query** — one program, biased toward a parallel ``Main`` so
  the data-race machinery is actually exercised;
* an **equivalence query** — a program pair plus its non-call block
  correspondence.  Pairs are either *identity* (same source reparsed;
  must be equivalent) or *independent* (two unrelated programs; the
  engines must never call them equivalent when their concrete runs
  observably differ).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from ..lang import ast as A
from ..lang.parser import parse_program
from ..lang.validate import validate
from .source import ChoiceSource, RandomSource

__all__ = [
    "GenConfig",
    "RaceQuery",
    "EquivalenceQuery",
    "gen_aexpr",
    "gen_program_source",
    "gen_program",
    "gen_race_query",
    "gen_equivalence_query",
]


@dataclass(frozen=True)
class GenConfig:
    """Knobs bounding the generated program space."""

    fields: Tuple[str, ...] = ("a", "b", "c")
    max_funcs: int = 3
    expr_depth: int = 2
    max_callees: int = 2
    max_updates: int = 2
    # None: coin flip between a sequential and a parallel Main (when two
    # root calls are drawn); True/False force the choice.
    parallel_main: Optional[bool] = None


@dataclass(frozen=True)
class RaceQuery:
    """One generated data-race query."""

    source: str
    seed: Optional[int] = None

    def program(self, name: str = "fuzz") -> A.Program:
        return parse_program(self.source, name=name)


@dataclass(frozen=True)
class EquivalenceQuery:
    """One generated equivalence query: a program pair.

    ``pair_kind`` is ``"identity"`` (same source; equivalence must hold)
    or ``"independent"`` (unrelated programs; anything goes, but an
    ``equivalent`` verdict must be consistent with their concrete runs).
    """

    source: str
    source2: str
    pair_kind: str
    seed: Optional[int] = None

    def programs(self) -> Tuple[A.Program, A.Program]:
        return (
            parse_program(self.source, name="fuzz-p"),
            parse_program(self.source2, name="fuzz-q"),
        )


def gen_aexpr(src: ChoiceSource, cfg: GenConfig, depth: Optional[int] = None) -> str:
    """A random arithmetic expression over constants and ``n`` fields."""
    depth = cfg.expr_depth if depth is None else depth
    kinds = ["const", "field", "field"] + (["add", "sub"] if depth > 0 else [])
    kind = src.choice(kinds)
    if kind == "const":
        return str(src.randint(-3, 9))
    if kind == "field":
        return f"n.{src.choice(cfg.fields)}"
    op = "+" if kind == "add" else "-"
    return f"({gen_aexpr(src, cfg, depth - 1)} {op} {gen_aexpr(src, cfg, depth - 1)})"


def _gen_body(src: ChoiceSource, cfg: GenConfig, n_funcs: int) -> str:
    """The else-branch of a function: calls on children + field updates."""
    lines: List[str] = []
    callees = src.sublist(list(range(n_funcs)), 0, cfg.max_callees)
    for i, c in enumerate(callees):
        d = src.choice(["l", "r"])
        lines.append(f"v{i} = F{c}(n.{d});")
    for _ in range(src.randint(0, cfg.max_updates)):
        f = src.choice(cfg.fields)
        if src.boolean():
            lines.append(f"n.{f} = {gen_aexpr(src, cfg)};")
        else:
            g = src.choice(cfg.fields)
            lines.append(
                f"if (n.{g} > {src.randint(0, 3)}) "
                f"{{ n.{f} = {gen_aexpr(src, cfg)} }};"
            )
    lines.append(f"return {gen_aexpr(src, cfg)}")
    return "\n    ".join(lines)


def gen_program_source(src: ChoiceSource, cfg: GenConfig = GenConfig()) -> str:
    """A random valid Retreet program, as source text."""
    n_funcs = src.randint(1, cfg.max_funcs)
    chunks = []
    for i in range(n_funcs):
        body = _gen_body(src, cfg, n_funcs)
        chunks.append(
            f"F{i}(n) {{\n  if (n == nil) {{ return 0 }}\n"
            f"  else {{\n    {body}\n  }}\n}}"
        )
    want_par = (
        src.boolean() if cfg.parallel_main is None else cfg.parallel_main
    )
    calls = src.sublist(list(range(n_funcs)), 2 if want_par else 1, 2)
    if len(calls) == 2 and want_par:
        main = (
            "Main(n) {\n  { "
            + f"x0 = F{calls[0]}(n) || x1 = F{calls[1]}(n)"
            + " };\n  return x0\n}"
        )
    else:
        body = ";\n  ".join(f"x{i} = F{c}(n)" for i, c in enumerate(calls))
        main = f"Main(n) {{\n  {body};\n  return x0\n}}"
    chunks.append(main)
    return "\n".join(chunks)


def gen_program(
    seed: int, cfg: GenConfig = GenConfig(), name: str = "fuzz"
) -> A.Program:
    """Parse + validate the program generated from ``seed``."""
    prog = parse_program(gen_program_source(RandomSource(seed), cfg), name=name)
    validate(prog)
    return prog


def gen_race_query(seed: int, cfg: GenConfig = GenConfig()) -> RaceQuery:
    """A data-race query, biased toward parallel ``Main`` compositions.

    Three out of four seeds force a parallel root composition (a purely
    sequential program is race-free by construction, so an unbiased
    stream would starve the interesting direction of the lattice).
    """
    if cfg.parallel_main is None and seed % 4 != 3:
        cfg = replace(cfg, parallel_main=True)
    source = gen_program_source(RandomSource(seed), cfg)
    validate(parse_program(source, name="fuzz"))
    return RaceQuery(source=source, seed=seed)


def gen_equivalence_query(
    seed: int, cfg: GenConfig = GenConfig()
) -> EquivalenceQuery:
    """An equivalence query: identity pair (even seeds) or independent
    pair (odd seeds)."""
    src = RandomSource(seed)
    source = gen_program_source(src, cfg)
    if seed % 2 == 0:
        source2, pair_kind = source, "identity"
    else:
        source2, pair_kind = gen_program_source(src, cfg), "independent"
    for s, nm in ((source, "fuzz-p"), (source2, "fuzz-q")):
        validate(parse_program(s, name=nm))
    return EquivalenceQuery(
        source=source, source2=source2, pair_kind=pair_kind, seed=seed
    )
