"""Seeded program/query generator library for fuzzing and conformance.

Promotes the ad-hoc hypothesis strategies that used to live in
``tests/test_fuzz.py`` into a reusable library:

* :mod:`repro.gen.source` — the ``ChoiceSource`` abstraction every
  generator is written against, with a seeded-RNG backend
  (:class:`RandomSource`) so all generation is reproducible from a seed;
* :mod:`repro.gen.programs` — random *valid* Retreet programs
  (descending recursion, guarded dereferences, consistent arities),
  race-query and equivalence-query builders;
* :mod:`repro.gen.strategies` — optional hypothesis strategies built on
  the same generators (imported lazily; hypothesis is a test-only
  dependency and must not be required at runtime).

The conformance subsystem (:mod:`repro.conformance`) and the property
tests both draw from these generators, so "the program space we fuzz" is
defined exactly once.
"""

from .programs import (
    GenConfig,
    gen_equivalence_query,
    gen_program,
    gen_program_source,
    gen_race_query,
)
from .source import ChoiceSource, RandomSource

__all__ = [
    "ChoiceSource",
    "RandomSource",
    "GenConfig",
    "gen_program_source",
    "gen_program",
    "gen_race_query",
    "gen_equivalence_query",
]
