"""Hypothesis strategies over the :mod:`repro.gen` generators.

Kept separate from the core generators so hypothesis stays a test-only
dependency: importing :mod:`repro.gen` never touches it, and this module
raises a clear error only when a strategy is actually requested without
hypothesis installed.

A :class:`DrawSource` funnels every generator decision through one
``draw(st.integers(lo, hi))`` primitive, so hypothesis can shrink the
decision stream — and therefore the generated program — natively.
"""

from __future__ import annotations

from .programs import GenConfig, gen_program_source
from .source import ChoiceSource

__all__ = ["DrawSource", "program_sources", "HAVE_HYPOTHESIS"]

try:  # pragma: no cover - exercised by which test env runs
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    st = None
    HAVE_HYPOTHESIS = False


class DrawSource(ChoiceSource):
    """ChoiceSource backed by a hypothesis ``draw`` function."""

    def __init__(self, draw) -> None:
        self._draw = draw

    def randint(self, lo: int, hi: int) -> int:
        return self._draw(st.integers(lo, hi))


if HAVE_HYPOTHESIS:

    @st.composite
    def program_sources(draw, cfg: GenConfig = GenConfig()) -> str:
        """Strategy yielding random valid Retreet program sources."""
        return gen_program_source(DrawSource(draw), cfg)

else:  # pragma: no cover

    def program_sources(cfg: GenConfig = GenConfig()):
        raise RuntimeError(
            "hypothesis is not installed; repro.gen.strategies requires it"
        )
