"""Decision sources for the generators.

Every generator in :mod:`repro.gen.programs` draws its random choices
through a :class:`ChoiceSource`, so the same generator code serves two
backends:

* :class:`RandomSource` — a seeded ``random.Random``; fully
  deterministic from the seed, used by the conformance fuzz loop and the
  deterministic property tests;
* a hypothesis-backed source (:mod:`repro.gen.strategies`) — every
  choice funnels through one ``draw`` primitive, so hypothesis can
  shrink generated programs natively.

All derived choices (``choice``, ``boolean``, ``sublist``) are expressed
in terms of ``randint`` so a backend only implements one primitive.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

__all__ = ["ChoiceSource", "RandomSource"]

T = TypeVar("T")


class ChoiceSource:
    """A stream of bounded integer decisions; everything else derives."""

    def randint(self, lo: int, hi: int) -> int:
        """An integer in ``[lo, hi]`` inclusive."""
        raise NotImplementedError

    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise ValueError("choice from empty sequence")
        return seq[self.randint(0, len(seq) - 1)]

    def boolean(self) -> bool:
        return bool(self.randint(0, 1))

    def sublist(self, seq: Sequence[T], min_size: int, max_size: int) -> List[T]:
        """A list of ``min_size``..``max_size`` elements drawn (with
        replacement) from ``seq``."""
        n = self.randint(min_size, max_size)
        return [self.choice(seq) for _ in range(n)]


class RandomSource(ChoiceSource):
    """Seeded-RNG backend; the whole program is a function of the seed."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)
