"""Baseline dependence analyses (prior-work stand-ins for benchmarks)."""

from .coarse import CoarseAnalysis, TraversalSummary
from .syntactic import fields_mentioned, syntactic_parallel_ok

__all__ = [
    "CoarseAnalysis", "TraversalSummary",
    "fields_mentioned", "syntactic_parallel_ok",
]
