"""Naive syntactic parallelization check (strawman baseline).

The weakest credible baseline: two traversals may run in parallel iff the
*texts* of their bodies mention disjoint field names.  No recursion
analysis, no read/write distinction.  Used in the benchmarks to bracket the
precision spectrum: syntactic < coarse (TreeFuser-style) < Retreet.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from ..lang import ast as A
from ..lang.blocks import BlockTable
from ..lang.exprs import aexpr_field_reads, bexpr_field_reads

__all__ = ["fields_mentioned", "syntactic_parallel_ok"]


def fields_mentioned(program: A.Program, fname: str) -> Set[str]:
    """Every field name appearing anywhere in the function (and only that
    function — no closure; this baseline does not model recursion)."""
    table = BlockTable(program)
    out: Set[str] = set()
    for b in table.blocks_of(fname):
        stmt = b.stmt
        if isinstance(stmt, A.CallStmt):
            for a in stmt.args:
                out |= {f for _, f in aexpr_field_reads(a)}
        else:
            for a in stmt.assigns:
                if isinstance(a, A.FieldAssign):
                    out.add(a.fieldname)
                    out |= {f for _, f in aexpr_field_reads(a.expr)}
                elif isinstance(a, A.VarAssign):
                    out |= {f for _, f in aexpr_field_reads(a.expr)}
                else:
                    for e in a.exprs:
                        out |= {f for _, f in aexpr_field_reads(e)}
    for c in table.conds_of(fname):
        out |= {f for _, f in bexpr_field_reads(c.cond)}
    return out


def syntactic_parallel_ok(
    program: A.Program, f: str, g: str
) -> Tuple[bool, List[str]]:
    shared = fields_mentioned(program, f) & fields_mentioned(program, g)
    if shared:
        return False, [f"shared field {s!r}" for s in sorted(shared)]
    return True, []
