"""TreeFuser-style coarse-grained dependence analysis (baseline).

Prior frameworks (TreeFuser [Sakka et al. 2017], the attribute-grammar
synthesizers [Meyerovich et al.]) build dependence graphs at *traversal*
granularity: each traversal gets one read summary and one write summary
over field names, and two traversals may be fused/parallelized only when
their summaries do not conflict — no per-iteration, per-node reasoning,
and no support for mutual recursion.

This module implements that baseline faithfully so the benchmarks can show
what the paper claims: the coarse analysis *rejects* every one of the
paper's case-study transformations that Retreet proves safe, because all of
them involve traversals whose summaries overlap (self-dependences within a
single traversal, or inter-traversal field flows that are safe only because
of the fine-grained schedule).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set, Tuple

from ..lang import ast as A
from ..lang.blocks import BlockTable
from ..core.readwrite import ReadWriteAnalysis

__all__ = ["TraversalSummary", "CoarseAnalysis"]


@dataclass(frozen=True)
class TraversalSummary:
    """Field-level read/write summary of one traversal (function closure)."""

    root_func: str
    functions: FrozenSet[str]
    reads: FrozenSet[str]
    writes: FrozenSet[str]

    def conflicts_with(self, other: "TraversalSummary") -> List[str]:
        out = []
        for f in sorted(self.writes & other.writes):
            out.append(f"write/write on field {f!r}")
        for f in sorted(self.writes & other.reads):
            out.append(f"write({self.root_func})/read({other.root_func}) on {f!r}")
        for f in sorted(self.reads & other.writes):
            out.append(f"read({self.root_func})/write({other.root_func}) on {f!r}")
        return out

    @property
    def self_dependent(self) -> bool:
        """A traversal whose own reads and writes overlap cannot be
        reordered internally by a coarse analysis."""
        return bool(self.reads & self.writes)


class CoarseAnalysis:
    """Traversal-granularity analysis of a Retreet program."""

    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.table = BlockTable(program)
        self.rw = ReadWriteAnalysis(self.table)

    def closure(self, fname: str) -> FrozenSet[str]:
        """All functions reachable from ``fname``."""
        seen: Set[str] = set()
        work = [fname]
        while work:
            f = work.pop()
            if f in seen:
                continue
            seen.add(f)
            for b in self.table.blocks_of(f):
                if b.is_call and b.callee not in seen:
                    work.append(b.callee)
        return frozenset(seen)

    def summary(self, fname: str) -> TraversalSummary:
        reads: Set[str] = set()
        writes: Set[str] = set()
        for f in self.closure(fname):
            for b in self.table.blocks_of(f):
                if b.is_call:
                    continue
                for c in self.rw.access(b).reads:
                    if c.kind == "field":
                        reads.add(c.name)
                for c in self.rw.access(b).writes:
                    if c.kind == "field":
                        writes.add(c.name)
        return TraversalSummary(
            root_func=fname,
            functions=self.closure(fname),
            reads=frozenset(reads),
            writes=frozenset(writes),
        )

    # -- the two client analyses --------------------------------------------
    def can_parallelize(self, f: str, g: str) -> Tuple[bool, List[str]]:
        """May ``f(n) || g(n)`` run in parallel? (summary disjointness)"""
        sf, sg = self.summary(f), self.summary(g)
        conflicts = sf.conflicts_with(sg)
        return (not conflicts, conflicts)

    def can_fuse(self, f: str, g: str) -> Tuple[bool, List[str]]:
        """May ``f(n); g(n)`` fuse into one traversal?

        The coarse criterion (as in traversal-summary fusers without
        fine-grained scheduling): no cross-traversal conflict, and neither
        traversal carries an internal read-write dependence that fusion
        could reorder across nodes."""
        sf, sg = self.summary(f), self.summary(g)
        reasons = sf.conflicts_with(sg)
        if sf.self_dependent:
            reasons.append(
                f"{f} has internal read/write overlap on "
                f"{sorted(sf.reads & sf.writes)}"
            )
        if sg.self_dependent:
            reasons.append(
                f"{g} has internal read/write overlap on "
                f"{sorted(sg.reads & sg.writes)}"
            )
        # Mutual recursion is outside the fragment of every prior tool.
        if len(self.closure(f)) > 1 or len(self.closure(g)) > 1:
            reasons.append(
                "mutually recursive traversal group "
                f"{sorted(self.closure(f) | self.closure(g))} is outside "
                "the supported fragment"
            )
        return (not reasons, reasons)
