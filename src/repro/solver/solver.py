"""MONA-replacement front end: decide MSO formulas, produce witnesses.

``MSOSolver`` wraps the compiler pipeline: formula → tree automaton →
emptiness.  Satisfiability treats free variables as implicitly
existentially quantified (their tracks stay free, so a witness directly
shows the labelling — this is how counterexample configurations are
decoded).  A state budget turns blow-ups into a clean ``budget`` status for
the caller's engine-fallback logic.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..automata.determinize import StateBudgetExceeded
from ..automata.emptiness import Witness, find_witness, is_empty
from ..automata.tta import TrackRegistry, TreeAutomaton
from ..mso import syntax as S
from ..mso.compile import Compiler

__all__ = ["MSOSolver", "SolveResult"]


@dataclass
class SolveResult:
    status: str  # "sat" | "unsat" | "budget"
    witness: Optional[Witness] = None
    elapsed: float = 0.0
    automaton_states: int = 0
    compile_stats: Optional[object] = None

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    def __str__(self) -> str:
        return (
            f"[mso] {self.status} ({self.automaton_states} states, "
            f"{self.elapsed:.3f}s)"
        )


class MSOSolver:
    """Decide satisfiability/validity of MSO formulas over labelled trees."""

    def __init__(
        self,
        registry: Optional[TrackRegistry] = None,
        minimize_always: bool = True,
        det_budget: int = 200_000,
        product_budget: int = 3_000,
    ) -> None:
        self.compiler = Compiler(
            registry=registry,
            minimize_always=minimize_always,
            det_budget=det_budget,
        )
        # Conjunction products beyond this state count raise
        # StateBudgetExceeded so callers can fall back to the bounded
        # engine instead of grinding (pure-Python products are O(n^2)).
        self.product_budget = product_budget
        # Optional wall-clock deadline (time.perf_counter() value); when
        # exceeded mid-conjunction, StateBudgetExceeded is raised so the
        # caller's fallback logic runs rather than a query overshooting.
        self.deadline: Optional[float] = None
        self._conj_cache: Dict[str, TreeAutomaton] = {}

    @property
    def registry(self) -> TrackRegistry:
        return self.compiler.registry

    def compile(self, formula: S.Formula) -> TreeAutomaton:
        self.compiler.deadline = self.deadline
        return self.compiler.compile(formula)

    def satisfiable(self, formula: S.Formula, want_witness: bool = True) -> SolveResult:
        """Is there a tree + labelling of the free variables satisfying the
        formula?"""
        t0 = time.perf_counter()
        try:
            a = self.compiler.compile(formula)
        except StateBudgetExceeded:
            return SolveResult(
                status="budget",
                elapsed=time.perf_counter() - t0,
                compile_stats=self.compiler.stats,
            )
        if want_witness:
            w = find_witness(a)
            status = "sat" if w is not None else "unsat"
        else:
            w = None
            status = "unsat" if is_empty(a) else "sat"
        return SolveResult(
            status=status,
            witness=w,
            elapsed=time.perf_counter() - t0,
            automaton_states=a.n_states,
            compile_stats=self.compiler.stats,
        )

    def automaton_conj(self, parts, cache_key: Optional[str] = None) -> TreeAutomaton:
        """Product automaton of a conjunction of formulas, minimized along
        the way.  With ``cache_key`` the result is cached for reuse across
        queries (e.g. the q-independent ``Configuration`` core)."""
        from ..automata.minimize import minimize, prune_unreachable, reduce_nfta

        if cache_key is not None:
            cached = self._conj_cache.get(cache_key)
            if cached is not None:
                return cached
        self.compiler.deadline = self.deadline
        autos = [
            p if isinstance(p, TreeAutomaton) else self.compiler.compile(p)
            for p in parts
        ]
        autos.sort(key=lambda a: a.n_states)
        acc = autos[0]
        for nxt in autos[1:]:
            if self.deadline is not None and time.perf_counter() > self.deadline:
                raise StateBudgetExceeded("solver deadline exceeded")
            acc = acc.product(
                nxt,
                lambda x, y: x and y,
                max_states=self.product_budget,
                deadline=self.deadline,
            )
            acc = prune_unreachable(acc)
            if acc.deterministic and acc.n_states > 8:
                acc = minimize(acc.completed(), deadline=self.deadline)
            elif not acc.deterministic and acc.n_states > 32:
                acc = reduce_nfta(acc, deadline=self.deadline)
            if acc.n_states > self.product_budget:
                raise StateBudgetExceeded(
                    f"conjunction product exceeded {self.product_budget} "
                    "states"
                )
            if not acc.accepting:
                break
        if cache_key is not None:
            self._conj_cache[cache_key] = acc
        return acc

    def sat_of(self, automaton: TreeAutomaton, exist_fo=(), want_witness=True) -> SolveResult:
        """Emptiness/witness of a pre-built automaton, after projecting the
        given first-order variables (their Sing constraints must already be
        part of the automaton)."""
        from ..automata.minimize import prune_unreachable

        t0 = time.perf_counter()
        acc = automaton
        if exist_fo and acc.accepting:
            acc = prune_unreachable(acc.projected(exist_fo))
        if want_witness:
            w = find_witness(acc)
            status = "sat" if w is not None else "unsat"
        else:
            w = None
            status = "unsat" if is_empty(acc) else "sat"
        return SolveResult(
            status=status,
            witness=w,
            elapsed=time.perf_counter() - t0,
            automaton_states=acc.n_states,
            compile_stats=self.compiler.stats,
        )

    def satisfiable_conj(
        self,
        parts,
        exist_fo=(),
        want_witness: bool = True,
    ) -> SolveResult:
        """Satisfiability of a conjunction, compiled part-by-part.

        Each part is compiled (and memoized) independently, so shared
        constraints — e.g. the q-independent conjuncts of ``Configuration``
        — are reused across queries.  ``exist_fo`` names first-order
        variables occurring free in the parts to bind existentially at the
        top (their singleton constraint is conjoined, then their tracks are
        projected away)."""
        from ..automata.minimize import minimize, prune_unreachable

        t0 = time.perf_counter()
        try:
            all_parts = list(parts) + [S.Sing(v) for v in exist_fo]
            acc = self.automaton_conj(all_parts)
            res = self.sat_of(acc, exist_fo=exist_fo, want_witness=want_witness)
        except StateBudgetExceeded:
            return SolveResult(
                status="budget",
                elapsed=time.perf_counter() - t0,
                compile_stats=self.compiler.stats,
            )
        res.elapsed = time.perf_counter() - t0
        return res

    def valid(self, formula: S.Formula) -> SolveResult:
        """Is the formula true on every tree (free variables universal)?

        Returns sat-status of the *negation*: ``unsat`` means valid; a
        witness is a counterexample to validity."""
        return self.satisfiable(S.Not(formula))
