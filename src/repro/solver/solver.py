"""MONA-replacement front end: decide MSO formulas, produce witnesses.

``MSOSolver`` wraps the compiler pipeline: formula → tree automaton →
emptiness.  Satisfiability treats free variables as implicitly
existentially quantified (their tracks stay free, so a witness directly
shows the labelling — this is how counterexample configurations are
decoded).  A state budget turns blow-ups into a clean ``budget`` status for
the caller's engine-fallback logic.

With ``lazy_products`` (the default) conjunctions are never multiplied
out: ``automaton_conj`` returns an implicit
:class:`~repro.automata.product.ProductAutomaton` of the compiled
factors, and ``sat_of`` runs the emptiness fixpoint directly on it — the
``product_budget`` then bounds *reached* product states rather than the
size of a materialized product.  ``lazy_products=False`` restores the
seed's eager pairwise-product pipeline (still used by differential
tests).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..automata.determinize import StateBudgetExceeded
from ..automata.emptiness import (
    Witness,
    find_witness,
    is_empty,
    witness_from_exploration,
)
from ..automata.product import ProductAutomaton
from ..automata.tta import TrackRegistry, TreeAutomaton
from ..mso import syntax as S
from ..mso.compile import Compiler
from ..runtime import (
    ResourceExhausted,
    ResourceGuard,
    as_guard,
    exhaustion_status,
)
from .stats import SolverStats

__all__ = ["MSOSolver", "SolveResult"]

Automaton = Union[TreeAutomaton, ProductAutomaton]


@dataclass
class SolveResult:
    status: str  # "sat" | "unsat" | "budget" | "deadline" | "memory"
    witness: Optional[Witness] = None
    elapsed: float = 0.0
    automaton_states: int = 0
    reached_states: int = 0
    budget: Optional[int] = None
    compile_stats: Optional[object] = None
    stats: Optional[SolverStats] = None

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"

    def __str__(self) -> str:
        if self.status == "budget":
            detail = (
                f"exceeded {self.budget} states"
                if self.budget is not None
                else "state budget exceeded"
            )
        elif self.status == "deadline":
            detail = "wall-clock deadline exceeded"
        elif self.status == "memory":
            detail = "memory ceiling exceeded"
        else:
            states = self.reached_states or self.automaton_states
            detail = f"{states} states reached"
            if self.budget is not None:
                detail += f"/{self.budget} budget"
            if self.status == "sat":
                detail += (
                    f", witness {self.witness.tree.size} nodes"
                    if self.witness is not None
                    else ", no witness requested"
                )
        return f"[mso] {self.status} ({detail}, {self.elapsed:.3f}s)"


class MSOSolver:
    """Decide satisfiability/validity of MSO formulas over labelled trees."""

    def __init__(
        self,
        registry: Optional[TrackRegistry] = None,
        minimize_always: bool = True,
        det_budget: int = 200_000,
        product_budget: int = 50_000,
        lazy_products: bool = True,
    ) -> None:
        self.compiler = Compiler(
            registry=registry,
            minimize_always=minimize_always,
            det_budget=det_budget,
        )
        # Conjunction products beyond this state count raise
        # StateBudgetExceeded so callers can fall back to the bounded
        # engine instead of grinding.  Lazily it bounds *reached* product
        # states; eagerly, materialized ones.  The default leaves ~2x
        # headroom over the largest Table-1 saturation (T1.6 peaks near
        # 24k reached tuples under antichain pruning), so every paper
        # query decides on the first "mso" rung.
        self.product_budget = product_budget
        self.lazy_products = lazy_products
        # Optional wall-clock deadline (time.perf_counter() value); when
        # exceeded mid-query, DeadlineExceeded is raised so the caller's
        # fallback logic runs rather than a query overshooting.  A full
        # ResourceGuard (deadline + state budget + node ceiling) can be
        # installed via ``guard`` instead; it supersedes ``deadline``.
        self.deadline: Optional[float] = None
        self.guard: Optional[ResourceGuard] = None
        self.stats = SolverStats(budget=product_budget)
        self._conj_cache: Dict[str, Automaton] = {}
        self._iface_cache: Dict[str, TreeAutomaton] = {}

    @property
    def registry(self) -> TrackRegistry:
        return self.compiler.registry

    def _active_guard(self) -> Optional[ResourceGuard]:
        return as_guard(self.guard, self.deadline)

    def _sync_compiler(self) -> None:
        self.compiler.deadline = self.deadline
        self.compiler.guard = self.guard

    def compile(self, formula: S.Formula) -> TreeAutomaton:
        self._sync_compiler()
        with self.stats.phase("compile"):
            return self.compiler.compile(formula)

    def satisfiable(self, formula: S.Formula, want_witness: bool = True) -> SolveResult:
        """Is there a tree + labelling of the free variables satisfying the
        formula?"""
        t0 = time.perf_counter()
        self._sync_compiler()
        try:
            with self.stats.phase("compile"):
                if self.lazy_products:
                    a = self.compiler.compile_product(formula)
                else:
                    a = self.compiler.compile(formula)
            res = self.sat_of(a, want_witness=want_witness)
        except ResourceExhausted as e:
            return SolveResult(
                status=exhaustion_status(e),
                elapsed=time.perf_counter() - t0,
                budget=self.product_budget,
                compile_stats=self.compiler.stats,
                stats=self.stats,
            )
        res.elapsed = time.perf_counter() - t0
        return res

    def automaton_conj(self, parts, cache_key: Optional[str] = None) -> Automaton:
        """Conjunction of formulas/automata, ready for emptiness.

        Lazily (the default): compiles each part and returns the implicit
        :class:`ProductAutomaton` — no product state is built until an
        emptiness query explores it.  Eagerly: the seed's pairwise
        product pipeline, minimized along the way.  With ``cache_key``
        the result is cached for reuse across queries (e.g. the
        q-independent ``Configuration`` core)."""
        from ..automata.minimize import minimize, prune_unreachable, reduce_nfta

        if cache_key is not None:
            cached = self._conj_cache.get(cache_key)
            if cached is not None:
                self.stats.conj_cache_hits += 1
                return cached
            self.stats.conj_cache_misses += 1
        self._sync_compiler()
        with self.stats.phase("compile"):
            autos = [
                p
                if isinstance(p, (TreeAutomaton, ProductAutomaton))
                else self.compiler.compile(p)
                for p in parts
            ]
        guard = self._active_guard()
        if self.lazy_products:
            acc: Automaton = ProductAutomaton(autos, guard=guard)
            # An unsatisfiable factor decides the whole conjunction;
            # keeping just that factor lets exploration finish instantly
            # instead of saturating the other factors' product.
            for f in acc.factors:
                if not f.accepting:
                    acc = ProductAutomaton([f])
                    break
            if cache_key is not None:
                self._conj_cache[cache_key] = acc
            return acc
        autos.sort(key=lambda a: a.n_states)
        acc = autos[0]
        for nxt in autos[1:]:
            if guard is not None:
                guard.check_now("solver.conj")
            acc = acc.product(
                nxt,
                lambda x, y: x and y,
                max_states=self.product_budget,
                guard=guard,
            )
            acc = prune_unreachable(acc)
            if acc.deterministic and acc.n_states > 8:
                acc = minimize(acc.completed(), guard=guard)
            elif not acc.deterministic and acc.n_states > 32:
                acc = reduce_nfta(acc, guard=guard)
            if acc.n_states > self.product_budget:
                raise StateBudgetExceeded(
                    f"conjunction product exceeded {self.product_budget} "
                    "states",
                    phase="solver.conj",
                    counters={"states": acc.n_states},
                )
            if not acc.accepting:
                break
        if cache_key is not None:
            self._conj_cache[cache_key] = acc
        return acc

    def interface_conj(
        self,
        parts,
        keep,
        cache_key: Optional[str] = None,
    ) -> TreeAutomaton:
        """Conjunction of ``parts`` projected onto the ``keep`` tracks.

        Saturates the implicit product once (recording the synchronized
        transitions it touches), materializes exactly the reached
        automaton, existentially quantifies every non-interface track,
        and reduces.  Two constraint systems that share only an
        interface — e.g. the P-side and P′-side of a ``Conflict`` query,
        which meet only at the endpoint markers — can then be decided by
        intersecting their (tiny) interface automata instead of
        exploring the joint product, whose reachable tuple space is
        multiplicative in the sides'.  Projection preserves emptiness of
        any conjunction with track-disjoint partners, so verdicts are
        unchanged; witnesses must be re-derived from the joint product
        (interface labels alone cannot be decoded back).

        With ``cache_key`` the interface automaton is memoized on the
        solver: a side that depends only on one loop variable of a query
        sweep is saturated once, not once per combination.
        """
        from ..automata.minimize import prune_unreachable, reduce_nfta

        if cache_key is not None:
            cached = self._iface_cache.get(cache_key)
            if cached is not None:
                self.stats.conj_cache_hits += 1
                return cached
            self.stats.conj_cache_misses += 1
        acc = self.automaton_conj(parts)
        guard = self._active_guard()
        if isinstance(acc, ProductAutomaton):
            unsat = next(
                (f for f in acc.factors if not f.accepting), None
            )
            if unsat is not None:
                side = unsat
            else:
                with self.stats.phase("explore"):
                    exp = acc.explore(
                        max_states=self.product_budget,
                        stop_on_accepting=False,
                        record=True,
                        guard=guard,
                    )
                self.stats.note_exploration(exp.reached)
                side = acc.materialized_explored(exp)
        else:
            side = acc
        with self.stats.phase("compile"):
            drop = [t for t in side.tracks if t not in keep]
            iface = reduce_nfta(
                prune_unreachable(side.projected(drop)), guard=guard
            )
        if cache_key is not None:
            self._iface_cache[cache_key] = iface
        return iface

    def sat_of(self, automaton: Automaton, exist_fo=(), want_witness=True) -> SolveResult:
        """Emptiness/witness of a pre-built automaton, after projecting the
        given first-order variables (their Sing constraints must already be
        part of the automaton)."""
        from ..automata.minimize import prune_unreachable

        t0 = time.perf_counter()
        if isinstance(automaton, ProductAutomaton):
            # Projection never changes emptiness, so the implicit product
            # is explored as-is; the projected tracks are simply dropped
            # from the witness labelling afterwards.
            with self.stats.phase("explore"):
                exp = automaton.explore(
                    max_states=self.product_budget,
                    guard=self._active_guard(),
                )
            self.stats.note_exploration(exp.reached, exp.pruned, exp.superseded)
            w = None
            if exp.target is None:
                status = "unsat"
            else:
                status = "sat"
                if want_witness:
                    with self.stats.phase("witness"):
                        w = witness_from_exploration(automaton, exp)
                        if exist_fo:
                            drop = frozenset(exist_fo)
                            w.labels = {
                                t: s for t, s in w.labels.items()
                                if t not in drop
                            }
            return SolveResult(
                status=status,
                witness=w,
                elapsed=time.perf_counter() - t0,
                automaton_states=exp.reached,
                reached_states=exp.reached,
                budget=self.product_budget,
                compile_stats=self.compiler.stats,
                stats=self.stats,
            )
        acc = automaton
        if exist_fo and acc.accepting:
            acc = prune_unreachable(acc.projected(exist_fo))
        if want_witness:
            with self.stats.phase("explore"):
                w = find_witness(acc, guard=self._active_guard())
            status = "sat" if w is not None else "unsat"
        else:
            w = None
            with self.stats.phase("explore"):
                status = (
                    "unsat"
                    if is_empty(acc, guard=self._active_guard())
                    else "sat"
                )
        self.stats.note_exploration(acc.n_states)
        return SolveResult(
            status=status,
            witness=w,
            elapsed=time.perf_counter() - t0,
            automaton_states=acc.n_states,
            reached_states=acc.n_states,
            budget=self.product_budget,
            compile_stats=self.compiler.stats,
            stats=self.stats,
        )

    def satisfiable_conj(
        self,
        parts,
        exist_fo=(),
        want_witness: bool = True,
    ) -> SolveResult:
        """Satisfiability of a conjunction, compiled part-by-part.

        Each part is compiled (and memoized) independently, so shared
        constraints — e.g. the q-independent conjuncts of ``Configuration``
        — are reused across queries.  ``exist_fo`` names first-order
        variables occurring free in the parts to bind existentially at the
        top (their singleton constraint is conjoined, then their tracks are
        projected away)."""
        t0 = time.perf_counter()
        try:
            all_parts = list(parts) + [S.Sing(v) for v in exist_fo]
            acc = self.automaton_conj(all_parts)
            res = self.sat_of(acc, exist_fo=exist_fo, want_witness=want_witness)
        except ResourceExhausted as e:
            return SolveResult(
                status=exhaustion_status(e),
                elapsed=time.perf_counter() - t0,
                budget=self.product_budget,
                compile_stats=self.compiler.stats,
                stats=self.stats,
            )
        res.elapsed = time.perf_counter() - t0
        return res

    def valid(self, formula: S.Formula) -> SolveResult:
        """Is the formula true on every tree (free variables universal)?

        Returns sat-status of the *negation*: ``unsat`` means valid; a
        witness is a counterexample to validity."""
        return self.satisfiable(S.Not(formula))
