"""The MONA-replacement solver front end."""

from .solver import MSOSolver, SolveResult

__all__ = ["MSOSolver", "SolveResult"]
