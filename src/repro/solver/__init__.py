"""The MONA-replacement solver front end."""

from .solver import MSOSolver, SolveResult
from .stats import SolverStats

__all__ = ["MSOSolver", "SolveResult", "SolverStats"]
