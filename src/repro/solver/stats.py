"""Per-phase solver statistics (the instrumentation DESIGN.md promises).

:class:`SolverStats` accumulates, per :class:`~repro.solver.solver.MSOSolver`
instance, where a query's time actually goes — formula→automaton
compilation, lazy product exploration, witness decoding — plus the
reached-states-vs-budget picture of the lazy emptiness engine and the
BDD manager's node/cache counters.  ``as_dict()`` renders a flat,
JSON-friendly snapshot for result objects and the benchmark harness.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["SolverStats"]


@dataclass
class SolverStats:
    """Cumulative counters for one solver instance."""

    # Phase wall-clock totals (seconds).
    compile_s: float = 0.0
    explore_s: float = 0.0
    witness_s: float = 0.0
    # Lazy-emptiness accounting.
    budget: Optional[int] = None
    queries: int = 0
    last_reached: int = 0
    max_reached: int = 0
    total_reached: int = 0
    # Antichain pruning (repro.automata.antichain): tuples subsumption
    # skipped at discovery, and reached tuples retired by a dominating
    # newcomer.  Cumulative totals are monotone non-negative.
    last_pruned: int = 0
    pruned_tuples: int = 0
    superseded_tuples: int = 0
    # Cross-query caching.
    conj_cache_hits: int = 0
    conj_cache_misses: int = 0
    # Content-addressed result cache (repro.engine.cache) counters at
    # solve time — zero unless a cache is attached to the plan executor.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stored: int = 0

    @contextmanager
    def phase(self, name: str):
        """Time a block into ``<name>_s`` (compile/explore/witness)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - t0
            setattr(self, f"{name}_s", getattr(self, f"{name}_s") + dt)

    def note_cache(self, cache_stats) -> None:
        """Mirror a result-cache's counters (an object with
        ``hits``/``misses``/``stored``) into this snapshot."""
        self.cache_hits = cache_stats.hits
        self.cache_misses = cache_stats.misses
        self.cache_stored = cache_stats.stored

    def note_exploration(
        self, reached: int, pruned: int = 0, superseded: int = 0
    ) -> None:
        self.queries += 1
        self.last_reached = reached
        self.max_reached = max(self.max_reached, reached)
        self.total_reached += reached
        self.last_pruned = pruned
        self.pruned_tuples += pruned
        self.superseded_tuples += superseded

    def as_dict(self, manager=None) -> Dict[str, object]:
        """Flat snapshot; pass the BDD manager to include its counters."""
        out: Dict[str, object] = {
            "compile_s": round(self.compile_s, 6),
            "explore_s": round(self.explore_s, 6),
            "witness_s": round(self.witness_s, 6),
            "queries": self.queries,
            "budget": self.budget,
            "last_reached": self.last_reached,
            "max_reached": self.max_reached,
            "total_reached": self.total_reached,
            "conj_cache_hits": self.conj_cache_hits,
            "conj_cache_misses": self.conj_cache_misses,
            "last_pruned": self.last_pruned,
            "pruned_tuples": self.pruned_tuples,
            "superseded_tuples": self.superseded_tuples,
            "cache": {
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "stored": self.cache_stored,
            },
        }
        if manager is not None:
            for k, v in manager.cache_stats().items():
                out[f"bdd_{k}"] = v
        return out

    def __str__(self) -> str:
        return (
            f"[stats] compile {self.compile_s:.3f}s, explore "
            f"{self.explore_s:.3f}s, witness {self.witness_s:.3f}s; "
            f"{self.queries} queries, max {self.max_reached} reached"
            + (f"/{self.budget} budget" if self.budget is not None else "")
        )
