"""The seeded differential fuzz loop.

Drives :mod:`repro.gen` queries through the three-engine oracle until a
wall-clock budget runs out: race queries and equivalence queries are
interleaved 3:1 (sequential equivalence queries are cheap but less
likely to flush out verdict flips).  Every mismatch is shrunk with the
delta-debugging shrinker (spending at most half the remaining budget)
and persisted to the corpus directory as a minimal reproducer.

The whole run is a function of ``seed``: case ``i`` of ``repro fuzz
--seed N`` is query seed ``N * 100_003 + i``, so any corpus entry can be
regenerated from its recorded origin.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field, replace
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from ..gen import GenConfig, gen_equivalence_query, gen_race_query
from .corpus import save_entry
from .oracle import (
    Case,
    CaseResult,
    Mismatch,
    OracleConfig,
    query_for_case,
    run_case,
)
from .shrink import shrink_case

__all__ = ["FuzzReport", "run_fuzz", "case_for_seed"]

#: Spacing of per-case seeds within one fuzz run (prime, so different
#: run seeds produce disjoint-looking query streams).
SEED_STRIDE = 100_003

#: Stop collecting after this many distinct mismatching cases; a broken
#: engine would otherwise spend the whole budget shrinking duplicates.
MAX_MISMATCHING_CASES = 5


@dataclass
class FuzzReport:
    seed: int
    cases: int = 0
    race_cases: int = 0
    equiv_cases: int = 0
    deduped: int = 0
    mismatches: List[Tuple[Case, List[Mismatch]]] = dc_field(default_factory=list)
    warnings: List[str] = dc_field(default_factory=list)
    corpus_paths: List[Path] = dc_field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        lines = [
            f"fuzz seed {self.seed}: {self.cases} cases "
            f"({self.race_cases} race, {self.equiv_cases} equivalence) "
            f"in {self.elapsed:.1f}s — "
            + ("no mismatches" if self.ok else
               f"{len(self.mismatches)} MISMATCHING case(s)")
        ]
        if self.deduped:
            lines.append(
                f"  ({self.deduped} duplicate case(s) skipped by query key)"
            )
        for case, mms in self.mismatches:
            for m in mms:
                lines.append(f"  {case.name}: {m}")
        for p in self.corpus_paths:
            lines.append(f"  reproducer: {p}")
        if self.warnings:
            lines.append(f"  ({len(self.warnings)} over-approximation warnings)")
        return "\n".join(lines)


def case_for_seed(seed: int, case_index: int, max_internal: int = 2) -> Case:
    """The deterministic case stream: index ``i`` of run ``seed``."""
    q_seed = seed * SEED_STRIDE + case_index
    if case_index % 4 == 3:
        eq = gen_equivalence_query(q_seed, GenConfig())
        return Case(
            kind="equiv", source=eq.source, source2=eq.source2,
            max_internal=max_internal, seed=q_seed,
            name=f"fuzz-{seed}-{case_index}-equiv-{eq.pair_kind}",
        )
    rq = gen_race_query(q_seed, GenConfig())
    return Case(
        kind="race", source=rq.source, max_internal=max_internal,
        seed=q_seed, name=f"fuzz-{seed}-{case_index}-race",
    )


def run_fuzz(
    seed: int = 0,
    budget_s: float = 30.0,
    shrink: bool = True,
    corpus_dir: Optional[Path] = None,
    max_internal: int = 2,
    max_cases: Optional[int] = None,
    cfg: OracleConfig = OracleConfig(),
    log: Optional[Callable[[str], None]] = None,
    isolation: Optional[str] = None,
    worker_limits=None,
) -> FuzzReport:
    """Fuzz until ``budget_s`` wall-clock seconds (or ``max_cases``) are
    spent; shrink and persist every mismatch found.

    With ``isolation="process"`` every oracle evaluation (including the
    shrinker's re-runs) happens in a sandboxed worker child under
    ``worker_limits``; an engine that crashes or blows its rlimits then
    surfaces as an ``engine-error`` mismatch on that case instead of
    aborting the fuzz run.
    """
    if isolation == "process":
        from ..service import run_case_isolated
        from ..service.supervisor import Supervisor

        supervisor = Supervisor()

        def exec_case(case: Case, case_cfg: OracleConfig) -> CaseResult:
            return run_case_isolated(
                case, case_cfg, limits=worker_limits, supervisor=supervisor
            )
    else:
        exec_case = run_case
    t0 = time.perf_counter()
    deadline = t0 + budget_s
    report = FuzzReport(seed=seed)
    say = log or (lambda _msg: None)
    seen_keys: set = set()
    i = 0
    while time.perf_counter() < deadline:
        if max_cases is not None and i >= max_cases:
            break
        if len(report.mismatches) >= MAX_MISMATCHING_CASES:
            say("stopping early: too many mismatching cases")
            break
        case = case_for_seed(seed, i, max_internal=max_internal)
        i += 1
        # Dedup by content key: two generator seeds that print the same
        # program(s) ask the same query, and the oracle's verdict is a
        # function of the query — rerunning it cannot find anything new.
        try:
            key = query_for_case(case).key()
        except Exception:
            key = None  # unparseable case: let the oracle report it
        if key is not None:
            if key in seen_keys:
                report.deduped += 1
                continue
            seen_keys.add(key)
        # Never let one symbolic query blow the whole budget.
        remaining = max(deadline - time.perf_counter(), 0.5)
        case_cfg = replace(
            cfg, sym_deadline_s=min(cfg.sym_deadline_s, remaining)
        )
        result = exec_case(case, case_cfg)
        report.cases += 1
        if case.kind == "race":
            report.race_cases += 1
        else:
            report.equiv_cases += 1
        report.warnings.extend(
            f"{case.name}: {w}" for w in result.warnings
        )
        if result.ok:
            continue
        say(f"MISMATCH in {case.name}: "
            + "; ".join(str(m) for m in result.mismatches))
        final = case
        if shrink:
            kinds = {m.kind for m in result.mismatches}

            def still_fails(cand: Case) -> bool:
                res = exec_case(cand, case_cfg)
                return any(m.kind in kinds for m in res.mismatches)

            shrink_budget = max((deadline - time.perf_counter()) / 2, 2.0)
            final = shrink_case(
                case, still_fails, budget_s=shrink_budget, log=say
            )
        report.mismatches.append((final, result.mismatches))
        if corpus_dir is not None:
            path = save_entry(
                corpus_dir,
                final,
                result.mismatches,
                origin=f"fuzz --seed {seed} (case {case.name})",
            )
            report.corpus_paths.append(path)
            say(f"wrote reproducer {path}")
    report.elapsed = time.perf_counter() - t0
    return report
