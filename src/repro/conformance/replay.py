"""Concrete witness replay, sweep edition.

:mod:`repro.core.witness` replays a witness under a single field
valuation (automating the paper's manual true-positive check).  The
conformance oracle needs a stronger notion: a witness only counts as
*unconfirmed* after a sweep over several seeded valuations and a few
structured ones (all-zero, all-distinct), because a race behind an
arithmetic guard may need particular field values to manifest.  An
unconfirmed witness is still not a conformance failure — the encoding
may over-approximate (conditions are abstracted away) — but the sweep
keeps the ``spurious-witness`` warning rate honest.
"""

from __future__ import annotations

from typing import Sequence

from ..core.witness import ReplayOutcome
from ..interp import program_races_on
from ..lang import ast as A
from ..trees.generators import assign_fields
from ..trees.heap import Tree

__all__ = ["replay_race_witness"]


def _valuations(tree: Tree, fields: Sequence[str], seeds: Sequence[int]):
    """Seeded + structured field assignments of the witness tree."""
    for seed in seeds:
        work = tree.clone()
        if fields:
            assign_fields(work, fields, seed=seed, value_range=(0, 5))
        yield f"seed {seed}", work
    zero = tree.clone()
    for n in zero.nodes():
        for f in fields:
            n.set(f, 0)
    yield "all-zero", zero
    dist = tree.clone()
    for i, n in enumerate(dist.nodes()):
        for j, f in enumerate(fields):
            n.set(f, (i + j + 1) % 7)
    yield "all-distinct", dist


def replay_race_witness(
    program: A.Program,
    tree: Tree,
    fields: Sequence[str] = (),
    seeds: Sequence[int] = (0, 7, 13),
) -> ReplayOutcome:
    """Replay a race witness tree against the dynamic happens-before
    detector under a sweep of field valuations."""
    tried = 0
    for label, work in _valuations(tree, fields, seeds):
        tried += 1
        try:
            races = program_races_on(program, work)
        except Exception as e:  # pragma: no cover - defensive
            return ReplayOutcome(False, f"replay failed ({label}): {e}")
        if races:
            return ReplayOutcome(
                True, f"dynamic race confirmed ({label}): {races[0]}"
            )
    return ReplayOutcome(
        False,
        f"no dynamic race on the witness tree under {tried} valuations",
    )
