"""Delta-debugging shrinker for conformance mismatches.

Given a failing :class:`~repro.conformance.oracle.Case` and a predicate
``still_fails``, greedily applies single-step reductions while the
predicate keeps holding:

* drop a whole (non-entry) function;
* drop one statement from a ``Seq`` / one branch from a ``Par`` (or
  unwrap a single surviving branch);
* replace an ``If`` by its then- or else-branch (guard simplification);
* drop one assignment from a block, or simplify an assigned expression
  to ``0``;
* shrink the tree scope (``max_internal`` — the bounded/interpreter
  engines enumerate ``all_shapes`` up to it).

Candidates are rebuilt functionally (tuples in, tuples out), re-printed,
re-parsed and re-validated; anything the validator rejects is skipped,
so the shrinker can propose aggressively.  Each accepted step strictly
decreases ``(statements + non-constant expressions + scope)``, so the
loop terminates; a wall-clock budget caps pathological predicates.
"""

from __future__ import annotations

import time
from typing import Callable, Iterator, List, Optional

from ..lang import ast as A
from ..lang.parser import parse_program
from ..lang.printer import program_source
from ..lang.validate import validate
from .oracle import Case

__all__ = ["shrink_case", "case_size"]

_ZERO = A.Const(0)


# ----------------------------------------------------------------------
# Single-step statement reductions (functional rebuild)


def _assign_variants(a: A.Assign) -> Iterator[A.Assign]:
    """Simplify one assignment's right-hand side to ``0``."""
    if isinstance(a, A.FieldAssign) and a.expr != _ZERO:
        yield A.FieldAssign(a.loc, a.fieldname, _ZERO)
    elif isinstance(a, A.VarAssign) and a.expr != _ZERO:
        yield A.VarAssign(a.name, _ZERO)
    elif isinstance(a, A.Return) and any(e != _ZERO for e in a.exprs):
        yield A.Return(tuple(_ZERO for _ in a.exprs))


def _stmt_variants(s: A.Stmt) -> Iterator[A.Stmt]:
    """Every single-edit reduction of the statement subtree."""
    if isinstance(s, A.Seq):
        if len(s.stmts) > 1:
            for i in range(len(s.stmts)):
                rest = s.stmts[:i] + s.stmts[i + 1:]
                yield rest[0] if len(rest) == 1 else A.Seq(rest)
        for i, sub in enumerate(s.stmts):
            for v in _stmt_variants(sub):
                yield A.Seq(s.stmts[:i] + (v,) + s.stmts[i + 1:])
    elif isinstance(s, A.Par):
        for i in range(len(s.stmts)):
            rest = s.stmts[:i] + s.stmts[i + 1:]
            if len(rest) == 1:
                yield rest[0]
            elif rest:
                yield A.Par(rest)
        for i, sub in enumerate(s.stmts):
            for v in _stmt_variants(sub):
                yield A.Par(s.stmts[:i] + (v,) + s.stmts[i + 1:])
    elif isinstance(s, A.If):
        yield s.then
        if s.els is not None:
            yield s.els
            yield A.If(s.cond, s.then, None)
        for v in _stmt_variants(s.then):
            yield A.If(s.cond, v, s.els)
        if s.els is not None:
            for v in _stmt_variants(s.els):
                yield A.If(s.cond, s.then, v)
    elif isinstance(s, A.AssignBlock):
        if len(s.assigns) > 1:
            for i in range(len(s.assigns)):
                yield A.AssignBlock(s.assigns[:i] + s.assigns[i + 1:])
        for i, a in enumerate(s.assigns):
            for v in _assign_variants(a):
                yield A.AssignBlock(s.assigns[:i] + (v,) + s.assigns[i + 1:])
    # CallStmt / Skip: dropped via their parent Seq, nothing inside.


def _program_variants(program: A.Program) -> Iterator[A.Program]:
    """Single-edit reductions of the whole program."""
    names = list(program.funcs)
    for drop in names:
        if drop == program.entry or len(names) == 1:
            continue
        funcs = {n: f for n, f in program.funcs.items() if n != drop}
        yield A.Program(funcs, entry=program.entry, name=program.name)
    for name, f in program.funcs.items():
        for v in _stmt_variants(f.body):
            funcs = dict(program.funcs)
            funcs[name] = A.Func(
                f.name, f.loc_param, f.int_params, v, f.n_returns
            )
            yield A.Program(funcs, entry=program.entry, name=program.name)


def _source_variants(source: str, name: str) -> Iterator[str]:
    """Valid reduced sources: rebuild, print, reparse, validate."""
    program = parse_program(source, name=name)
    seen = {program_source(program)}
    for cand in _program_variants(program):
        try:
            text = program_source(cand)
            if text in seen:
                continue
            seen.add(text)
            validate(parse_program(text, name=name))
        except Exception:
            continue
        yield text


# ----------------------------------------------------------------------
# Size metric + the greedy loop


def _stmt_size(s: A.Stmt) -> int:
    if isinstance(s, (A.Seq, A.Par)):
        return 1 + sum(_stmt_size(x) for x in s.stmts)
    if isinstance(s, A.If):
        return 1 + _stmt_size(s.then) + (
            _stmt_size(s.els) if s.els is not None else 0
        )
    if isinstance(s, A.AssignBlock):
        nonzero = 0
        for a in s.assigns:
            if isinstance(a, A.Return):
                nonzero += sum(1 for e in a.exprs if e != _ZERO)
            elif getattr(a, "expr", None) != _ZERO:
                nonzero += 1
        return 1 + len(s.assigns) + nonzero
    return 1


def case_size(case: Case) -> int:
    """The metric the shrinker drives down (for tests and reporting)."""
    total = case.max_internal
    for source, name in ((case.source, "p"), (case.source2, "q")):
        if source is None:
            continue
        prog = parse_program(source, name=name)
        total += sum(1 + _stmt_size(f.body) for f in prog.funcs.values())
    return total


def _case_candidates(case: Case) -> Iterator[Case]:
    """Single-step reductions of the case, biggest wins first."""
    if case.max_internal > 1:
        yield Case(
            kind=case.kind, source=case.source, source2=case.source2,
            max_internal=case.max_internal - 1, seed=case.seed,
            name=case.name,
        )
    for text in _source_variants(case.source, "p"):
        source2 = text if (
            case.source2 is not None and case.source2 == case.source
        ) else case.source2
        yield Case(
            kind=case.kind, source=text, source2=source2,
            max_internal=case.max_internal, seed=case.seed, name=case.name,
        )
    if case.source2 is not None and case.source2 != case.source:
        for text in _source_variants(case.source2, "q"):
            yield Case(
                kind=case.kind, source=case.source, source2=text,
                max_internal=case.max_internal, seed=case.seed,
                name=case.name,
            )


def shrink_case(
    case: Case,
    still_fails: Callable[[Case], bool],
    budget_s: float = 60.0,
    log: Optional[Callable[[str], None]] = None,
) -> Case:
    """Greedy ddmin: accept any single-step reduction that still fails.

    Identity pairs are shrunk in lockstep (both sides get the same
    reduced source), so an ``identity`` equivalence case stays an
    identity pair all the way down.  Returns the smallest failing case
    found within the budget (the original if nothing reduced).
    """
    deadline = time.perf_counter() + budget_s
    cur = case
    improved = True
    while improved and time.perf_counter() < deadline:
        improved = False
        for cand in _case_candidates(cur):
            if time.perf_counter() >= deadline:
                break
            try:
                ok = still_fails(cand)
            except Exception:
                ok = False
            if ok:
                if log is not None:
                    log(
                        f"shrink: {case_size(cur)} -> {case_size(cand)} "
                        f"(scope {cand.max_internal})"
                    )
                cur = cand
                improved = True
                break
    return cur
