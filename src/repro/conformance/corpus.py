"""Persisted corpus of minimal reproducers.

Every mismatch the fuzz loop finds is shrunk and written to a corpus
directory (``tests/corpus/`` in this repository) as one JSON file per
entry.  The corpus is re-run as regression tests: each entry goes back
through the oracle and must produce zero mismatches, so a fixed bug
stays fixed and an open reproducer keeps CI red until it is.

Entry schema (all unknown keys are preserved on round-trip)::

    {
      "name":        "racy-parallel-write",
      "kind":        "race" | "equiv",
      "description": "why this entry exists",
      "origin":      "hand-seeded" | "fuzz --seed N",
      "max_internal": 2,
      "source":      "<retreet program>",
      "source2":     null | "<retreet program>",
      "oracle":      {optional OracleConfig overrides},
      "isolation":   null | "process",
      "limits":      {optional worker rlimits: wall_s, cpu_s, mem_bytes},
      "expect":      {"mismatches": 0,
                      optional "mismatch_kinds": ["engine-error", ...],
                      optional "symbolic_status": "...",
                      optional "bounded_found": true|false}
    }

``oracle`` overrides let an entry pin engine limits — e.g. the T1.3
regression pins ``product_budget`` and asserts the raw symbolic status
is ``"budget"``, keeping PR 2's deadline-vs-budget taxonomy honest.
``isolation: "process"`` runs the entry's oracle evaluation in a
sandboxed worker child under the entry's ``limits`` (DESIGN.md §9) — a
child that blows its rlimits or crashes becomes a deterministic
``engine-error`` mismatch, which is how the crash-reproducer entry
exercises that path forever.

To reproduce a fuzz entry from its seed, see the ``origin`` field:
``repro fuzz --seed N`` regenerates the exact pre-shrink query stream.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional

from .oracle import Case, CaseResult, Mismatch, OracleConfig, run_case

__all__ = ["CorpusEntry", "load_corpus", "save_entry", "run_entry"]

#: OracleConfig fields an entry may override.
_ORACLE_KEYS = (
    "sym_deadline_s",
    "det_budget",
    "product_budget",
    "run_symbolic",
    "schedule_cap",
)


@dataclass
class CorpusEntry:
    name: str
    case: Case
    description: str = ""
    origin: str = ""
    oracle_overrides: Dict[str, object] = None
    expect: Dict[str, object] = None
    isolation: Optional[str] = None
    limits: Dict[str, object] = None
    path: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.oracle_overrides is None:
            self.oracle_overrides = {}
        if self.expect is None:
            self.expect = {"mismatches": 0}
        if self.limits is None:
            self.limits = {}

    def config(self, base: OracleConfig = OracleConfig()) -> OracleConfig:
        kw = {
            k: v for k, v in self.oracle_overrides.items()
            if k in _ORACLE_KEYS
        }
        return replace(base, **kw) if kw else base


def _entry_from_dict(data: Dict[str, object], path: Optional[Path]) -> CorpusEntry:
    case = Case(
        kind=data["kind"],
        source=data["source"],
        source2=data.get("source2"),
        max_internal=int(data.get("max_internal", 2)),
        seed=data.get("seed"),
        name=data.get("name", path.stem if path else "corpus"),
    )
    return CorpusEntry(
        name=data.get("name", case.name),
        case=case,
        description=data.get("description", ""),
        origin=data.get("origin", ""),
        oracle_overrides=dict(data.get("oracle", {})),
        expect=dict(data.get("expect", {"mismatches": 0})),
        isolation=data.get("isolation"),
        limits=dict(data.get("limits", {})),
        path=path,
    )


def load_corpus(corpus_dir: Path) -> List[CorpusEntry]:
    """All entries in the directory, sorted by file name."""
    corpus_dir = Path(corpus_dir)
    entries = []
    if not corpus_dir.is_dir():
        return entries
    for p in sorted(corpus_dir.glob("*.json")):
        entries.append(_entry_from_dict(json.loads(p.read_text()), p))
    return entries


def _slug(text: str) -> str:
    return re.sub(r"[^a-z0-9]+", "-", text.lower()).strip("-") or "entry"


def save_entry(
    corpus_dir: Path,
    case: Case,
    mismatches: List[Mismatch],
    origin: str,
    description: str = "",
    oracle_overrides: Optional[Dict[str, object]] = None,
) -> Path:
    """Persist a (shrunk) reproducer; returns the written path."""
    corpus_dir = Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    base = _slug(f"{case.kind}-{mismatches[0].kind if mismatches else 'case'}")
    path = corpus_dir / f"{base}.json"
    n = 1
    while path.exists():
        n += 1
        path = corpus_dir / f"{base}-{n}.json"
    data = {
        "name": path.stem,
        "kind": case.kind,
        "description": description or (
            "fuzz-found mismatch: "
            + "; ".join(str(m) for m in mismatches)
        ),
        "origin": origin,
        "max_internal": case.max_internal,
        "seed": case.seed,
        "source": case.source,
        "source2": case.source2,
        "expect": {"mismatches": 0},
    }
    if oracle_overrides:
        data["oracle"] = dict(oracle_overrides)
    path.write_text(json.dumps(data, indent=2) + "\n")
    return path


def run_entry(
    entry: CorpusEntry, base: OracleConfig = OracleConfig()
) -> CaseResult:
    """Run one corpus entry through the oracle with its overrides.

    Entries marked ``isolation: "process"`` evaluate in a sandboxed
    worker child under the entry's ``limits``.  Corpus entries are
    deterministic reproducers, so the worker runs single-shot — a
    retry of a deterministic rlimit crash would only re-crash.
    """
    if entry.isolation == "process":
        from ..service import Limits, RetryPolicy, run_case_isolated

        return run_case_isolated(
            entry.case,
            entry.config(base),
            limits=Limits.from_dict(entry.limits),
            policy=RetryPolicy(max_attempts=1),
        )
    return run_case(entry.case, entry.config(base))
