"""The three-engine differential oracle.

A conformance :class:`Case` (one race query or one equivalence query) is
lifted into the Query IR (:mod:`repro.engine.query`) and run through
every registered engine:

* the **interpreter** (``get_engine("interp")``) — dynamic
  happens-before race detection plus schedule-outcome enumeration on
  every tree shape in scope, under several seeded field valuations;
* the **bounded engine** (``get_engine("bounded")``) — exhaustive on
  the same scope;
* the **symbolic engine** (``get_engine("mso")``) — the guarded MSO
  pipeline, called *raw* through :meth:`Engine.run` (never through a
  plan/ladder) so its verdict is never masked by a fallback rung.

The engines are then checked against the soundness lattice the paper's
theorems induce (dynamic ⊆ bounded ⊆ symbolic):

========================================  =================================
observation                               verdict
========================================  =================================
interpreter race, bounded ``race-free``   mismatch (``interp-vs-bounded``)
bounded race, symbolic ``race-free``      mismatch (``bounded-vs-symbolic``)
interpreter race, symbolic ``race-free``  mismatch (``interp-vs-symbolic``)
schedule-divergent outcome, bounded
``race-free``                             mismatch (``schedule-divergence``)
undecided symbolic result carrying a
witness                                   mismatch (``stale-witness``)
decided ``race`` without a witness        mismatch (``missing-witness``)
``SolverInternalError`` from an engine    mismatch (``engine-error``)
concrete runs differ, engines say
``equivalent``                            mismatch (``concrete-vs-equivalent``)
bounded conflict, symbolic ``equivalent``  mismatch (``bounded-vs-symbolic``)
witness does not replay concretely        *warning* (``spurious-witness``)
========================================  =================================

The reverse directions (bounded race that no concrete run exhibits, a
symbolic counterexample the replay cannot confirm) are exactly the
over-approximation the paper grants itself, so they are recorded as
warnings, never as mismatches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple, Union

from ..core.api import check_equivalence
from ..core.transform import correspondence_by_key
from ..engine import (
    EquivalenceQuery,
    Limits,
    RaceQuery,
    get_engine,
    program_fields,
)
from ..lang import ast as A
from ..lang.blocks import BlockTable
from ..lang.parser import parse_program
from ..lang.validate import validate
from ..runtime import SolverInternalError
from ..runtime import faults as fault_mod
from .replay import replay_race_witness

__all__ = [
    "Case",
    "OracleConfig",
    "Mismatch",
    "CaseResult",
    "run_case",
    "query_for_case",
    "program_fields",
]


@dataclass(frozen=True)
class Case:
    """One conformance test case, serializable as plain data."""

    kind: str  # "race" | "equiv"
    source: str
    source2: Optional[str] = None
    max_internal: int = 2
    seed: Optional[int] = None
    name: str = "case"

    def __post_init__(self) -> None:
        if self.kind not in ("race", "equiv"):
            raise ValueError(f"bad case kind {self.kind!r}")
        if self.kind == "equiv" and self.source2 is None:
            raise ValueError("equivalence case needs source2")

    def programs(self) -> Tuple[A.Program, Optional[A.Program]]:
        p = parse_program(self.source, name=f"{self.name}-p")
        validate(p)
        q = None
        if self.source2 is not None:
            q = parse_program(self.source2, name=f"{self.name}-q")
            validate(q)
        return p, q


def query_for_case(case: Case) -> Union[RaceQuery, EquivalenceQuery]:
    """The Query-IR object a case asks — its :meth:`~repro.engine.query.
    RaceQuery.key` is the content hash the fuzzer dedups on and the
    result cache stores under."""
    p, q = case.programs()
    if case.kind == "race":
        return RaceQuery(program=p, scope=case.max_internal)
    assert q is not None
    mapping = correspondence_by_key(p, q, strict=False)
    return EquivalenceQuery(
        program=p, program2=q, mapping=mapping, scope=case.max_internal
    )


@dataclass(frozen=True)
class OracleConfig:
    """Engine limits for one oracle evaluation."""

    field_seeds: Tuple[int, ...] = (0, 7, 13)
    schedule_cap: int = 240
    run_symbolic: bool = True
    sym_deadline_s: float = 10.0
    det_budget: int = 50_000
    product_budget: int = 3_000
    # (probe, hit, action) armed around each symbolic run — used by the
    # fault-injection conformance tests; re-armed on every evaluation so
    # the shrinker's re-runs reproduce the fault deterministically.
    fault: Optional[Tuple[str, int, str]] = None


@dataclass(frozen=True)
class Mismatch:
    """One soundness-lattice violation."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class CaseResult:
    case: Case
    mismatches: List[Mismatch] = dc_field(default_factory=list)
    warnings: List[str] = dc_field(default_factory=list)
    engines: Dict[str, object] = dc_field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches


# ----------------------------------------------------------------------
# Symbolic engine, called raw (no plan)


def _symbolic_raw(query, cfg: OracleConfig):
    """Raw symbolic verdict, with the configured fault (if any) armed."""
    if cfg.fault is not None:
        probe, hit, action = cfg.fault
        fault_mod.disarm_all()
        fault_mod.arm(probe, hit=hit, action=action)
    try:
        return get_engine("mso").run(
            query,
            limits=Limits(
                det_budget=cfg.det_budget,
                product_budget=cfg.product_budget,
                mso_deadline_s=cfg.sym_deadline_s,
            ),
        )
    finally:
        if cfg.fault is not None:
            fault_mod.disarm_all()


# ----------------------------------------------------------------------
# The oracle


def _check_race_case(
    case: Case, cfg: OracleConfig, result: CaseResult
) -> None:
    program, _ = case.programs()
    query = RaceQuery(program=program, scope=case.max_internal)
    fields = program_fields(program)
    interp = get_engine("interp")

    interp_race = interp.race_evidence(query, field_seeds=cfg.field_seeds)
    result.engines["interp_race"] = interp_race

    bounded = get_engine("bounded").run(query)
    result.engines["bounded"] = bounded.detail
    result.engines["bounded_found"] = bounded.found

    # Lattice: dynamic race ⇒ bounded race (the abstraction
    # over-approximates dynamic iterations — Thm 2's sound direction).
    if interp_race and not bounded.found:
        result.mismatches.append(Mismatch(
            "interp-vs-bounded",
            f"dynamic race exists but bounded says race-free: {interp_race}",
        ))

    # Race-free fork-join programs are schedule-deterministic; a
    # divergent outcome under a race-free verdict means the
    # happens-before relation (or the bounded abstraction) lost a race.
    if not bounded.found:
        div = interp.schedule_divergence(
            query, field_seeds=cfg.field_seeds, schedule_cap=cfg.schedule_cap
        )
        if div:
            result.mismatches.append(Mismatch(
                "schedule-divergence",
                f"bounded says race-free but outcomes diverge: {div}",
            ))

    if bounded.found and bounded.witness is not None:
        cells = getattr(bounded.witness, "cells", ())
        if any(str(c).startswith("field:") for c in cells):
            rep = replay_race_witness(
                program, bounded.witness_tree, fields, seeds=cfg.field_seeds
            )
            result.engines["bounded_replay"] = rep.detail
            if not rep.confirmed:
                result.warnings.append(
                    f"spurious-witness: bounded race witness did not "
                    f"replay ({rep.detail})"
                )
        else:
            # Ghost value-cell races (e.g. two parallel calls of the same
            # function) are abstraction-level only; the dynamic detector
            # tracks field cells, so there is nothing to replay.
            result.engines["bounded_replay"] = (
                "skipped: value-cell witness is not dynamically observable"
            )

    if not cfg.run_symbolic:
        return
    try:
        sym = _symbolic_raw(query, cfg)
    except SolverInternalError as e:
        result.mismatches.append(Mismatch(
            "engine-error", f"symbolic engine failed: {e}"
        ))
        return
    result.engines["symbolic"] = sym.detail
    result.engines["symbolic_status"] = sym.status
    result.engines["symbolic_found"] = sym.found

    if sym.status != "decided":
        # PR 2 invariant: an undecided run never carries a witness.
        if sym.witness is not None:
            result.mismatches.append(Mismatch(
                "stale-witness",
                f"symbolic status {sym.status!r} carries a witness",
            ))
        return

    if sym.found and sym.witness is None:
        result.mismatches.append(Mismatch(
            "missing-witness", "symbolic race verdict carries no witness"
        ))
    if not sym.found:
        # Symbolic race-free is a claim over *all* trees; any concrete
        # or bounded race on the scope refutes it outright.
        if bounded.found:
            result.mismatches.append(Mismatch(
                "bounded-vs-symbolic",
                f"bounded found a race but symbolic proved race-free: "
                f"{bounded.witness}",
            ))
        if interp_race:
            result.mismatches.append(Mismatch(
                "interp-vs-symbolic",
                f"dynamic race exists but symbolic proved race-free: "
                f"{interp_race}",
            ))
    elif sym.witness is not None:
        rep = replay_race_witness(
            program, sym.witness_tree, fields, seeds=cfg.field_seeds
        )
        result.engines["symbolic_replay"] = rep.detail
        if not rep.confirmed:
            result.warnings.append(
                f"spurious-witness: symbolic race witness did not replay "
                f"({rep.detail})"
            )


def _check_equiv_case(
    case: Case, cfg: OracleConfig, result: CaseResult
) -> None:
    p, q = case.programs()
    assert q is not None
    mapping = correspondence_by_key(p, q, strict=False)
    query = EquivalenceQuery(
        program=p, program2=q, mapping=mapping, scope=case.max_internal
    )
    bounded_eng = get_engine("bounded")
    # Thm 3 needs a *total* non-call correspondence; with a partial one
    # an "equivalent" verdict is outside the API's contract, so the
    # concrete-divergence rule is not escalated to a mismatch.
    total_mapping = all(
        b.sid in mapping for b in BlockTable(p).all_noncalls
    )
    result.engines["total_mapping"] = total_mapping

    # Thm 3's guarantee only applies to race-free programs (footnote 7);
    # the concrete-divergence rule is gated on that precondition.
    p_racefree = not bounded_eng.run(
        RaceQuery(program=p, scope=case.max_internal)
    ).found
    q_racefree = not bounded_eng.run(
        RaceQuery(program=q, scope=case.max_internal)
    ).found
    result.engines["precondition_racefree"] = p_racefree and q_racefree

    divergence = (
        get_engine("interp").concrete_divergence(
            query, field_seeds=cfg.field_seeds
        )
        if p_racefree and q_racefree
        else None
    )
    result.engines["concrete_divergence"] = divergence

    bnd = check_equivalence(
        p, q, mapping, engine="bounded",
        max_internal=case.max_internal, replay=False,
    )
    result.engines["bounded"] = bnd.verdict

    if bnd.verdict == "equivalent" and divergence:
        if total_mapping:
            result.mismatches.append(Mismatch(
                "concrete-vs-equivalent",
                f"bounded says equivalent but concrete runs differ: "
                f"{divergence}",
            ))
        else:
            result.warnings.append(
                "partial-correspondence: equivalent verdict under a "
                f"partial mapping while concrete runs differ: {divergence}"
            )

    if not cfg.run_symbolic:
        return
    if cfg.fault is not None:
        probe, hit, action = cfg.fault
        fault_mod.disarm_all()
        fault_mod.arm(probe, hit=hit, action=action)
    try:
        sym = check_equivalence(
            p, q, mapping, engine="mso",
            det_budget=cfg.det_budget,
            mso_deadline_s=cfg.sym_deadline_s, replay=False,
        )
    except SolverInternalError as e:
        result.mismatches.append(Mismatch(
            "engine-error", f"symbolic engine failed: {e}"
        ))
        return
    finally:
        if cfg.fault is not None:
            fault_mod.disarm_all()
    result.engines["symbolic"] = sym.verdict
    result.engines["symbolic_status"] = sym.details.get("mso_status")

    if sym.verdict == "equivalent" and sym.engine != "bisim":
        if divergence and total_mapping:
            result.mismatches.append(Mismatch(
                "concrete-vs-equivalent",
                f"symbolic says equivalent (all trees) but concrete runs "
                f"differ: {divergence}",
            ))
        if bnd.verdict == "not-equivalent":
            result.mismatches.append(Mismatch(
                "bounded-vs-symbolic",
                "bounded found a conflict on the scope but symbolic "
                "proved equivalence over all trees",
            ))


def run_case(case: Case, cfg: OracleConfig = OracleConfig()) -> CaseResult:
    """Run one case through every engine and check the lattice."""
    t0 = time.perf_counter()
    result = CaseResult(case=case)
    if case.kind == "race":
        _check_race_case(case, cfg, result)
    else:
        _check_equiv_case(case, cfg, result)
    result.elapsed = time.perf_counter() - t0
    return result
