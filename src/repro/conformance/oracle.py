"""The three-engine differential oracle.

A conformance :class:`Case` (one race query or one equivalence query) is
run through every engine we have:

* the **interpreter** — dynamic happens-before race detection plus
  schedule-outcome enumeration (:func:`repro.interp.program_schedule_outcomes`)
  on every tree shape in scope, under several seeded field valuations;
* the **bounded engine** — exhaustive on the same scope
  (:func:`repro.core.bounded.check_data_race_bounded` /
  :func:`check_conflict_bounded` via :func:`repro.core.api`);
* the **symbolic engine** — the guarded MSO pipeline, called *directly*
  (not through the degradation ladder) so its raw verdict is never
  masked by a fallback rung.

The engines are then checked against the soundness lattice the paper's
theorems induce (dynamic ⊆ bounded ⊆ symbolic):

========================================  =================================
observation                               verdict
========================================  =================================
interpreter race, bounded ``race-free``   mismatch (``interp-vs-bounded``)
bounded race, symbolic ``race-free``      mismatch (``bounded-vs-symbolic``)
interpreter race, symbolic ``race-free``  mismatch (``interp-vs-symbolic``)
schedule-divergent outcome, bounded
``race-free``                             mismatch (``schedule-divergence``)
undecided symbolic result carrying a
witness                                   mismatch (``stale-witness``)
decided ``race`` without a witness        mismatch (``missing-witness``)
``SolverInternalError`` from an engine    mismatch (``engine-error``)
concrete runs differ, engines say
``equivalent``                            mismatch (``concrete-vs-equivalent``)
bounded conflict, symbolic ``equivalent``  mismatch (``bounded-vs-symbolic``)
witness does not replay concretely        *warning* (``spurious-witness``)
========================================  =================================

The reverse directions (bounded race that no concrete run exhibits, a
symbolic counterexample the replay cannot confirm) are exactly the
over-approximation the paper grants itself, so they are recorded as
warnings, never as mismatches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field as dc_field
from typing import Dict, List, Optional, Tuple

from ..core.api import check_equivalence
from ..core.bounded import check_data_race_bounded, default_scope
from ..core.symbolic import check_data_race_mso
from ..core.transform import correspondence_by_key
from ..interp import program_races_on, program_schedule_outcomes, run
from ..lang import ast as A
from ..lang.blocks import BlockTable
from ..lang.parser import parse_program
from ..lang.validate import validate
from ..runtime import ResourceGuard, SolverInternalError
from ..runtime import faults as fault_mod
from ..solver.solver import MSOSolver
from ..trees.generators import assign_fields
from .replay import replay_race_witness

__all__ = [
    "Case",
    "OracleConfig",
    "Mismatch",
    "CaseResult",
    "run_case",
    "program_fields",
]


@dataclass(frozen=True)
class Case:
    """One conformance test case, serializable as plain data."""

    kind: str  # "race" | "equiv"
    source: str
    source2: Optional[str] = None
    max_internal: int = 2
    seed: Optional[int] = None
    name: str = "case"

    def __post_init__(self) -> None:
        if self.kind not in ("race", "equiv"):
            raise ValueError(f"bad case kind {self.kind!r}")
        if self.kind == "equiv" and self.source2 is None:
            raise ValueError("equivalence case needs source2")

    def programs(self) -> Tuple[A.Program, Optional[A.Program]]:
        p = parse_program(self.source, name=f"{self.name}-p")
        validate(p)
        q = None
        if self.source2 is not None:
            q = parse_program(self.source2, name=f"{self.name}-q")
            validate(q)
        return p, q


@dataclass(frozen=True)
class OracleConfig:
    """Engine limits for one oracle evaluation."""

    field_seeds: Tuple[int, ...] = (0, 7, 13)
    schedule_cap: int = 240
    run_symbolic: bool = True
    sym_deadline_s: float = 10.0
    det_budget: int = 50_000
    product_budget: int = 3_000
    # (probe, hit, action) armed around each symbolic run — used by the
    # fault-injection conformance tests; re-armed on every evaluation so
    # the shrinker's re-runs reproduce the fault deterministically.
    fault: Optional[Tuple[str, int, str]] = None


@dataclass(frozen=True)
class Mismatch:
    """One soundness-lattice violation."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


@dataclass
class CaseResult:
    case: Case
    mismatches: List[Mismatch] = dc_field(default_factory=list)
    warnings: List[str] = dc_field(default_factory=list)
    engines: Dict[str, object] = dc_field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches


def program_fields(program: A.Program) -> List[str]:
    """All field names the program touches."""
    from ..core.readwrite import ReadWriteAnalysis

    table = BlockTable(program)
    rw = ReadWriteAnalysis(table)
    fields = set()
    for b in table.all_noncalls:
        for c in rw.access(b).readwrites:
            if c.kind == "field":
                fields.add(c.name)
    return sorted(fields)


# ----------------------------------------------------------------------
# Interpreter-level evidence


def _interp_race_evidence(
    program: A.Program, trees, fields, cfg: OracleConfig
) -> Optional[str]:
    """A concrete race on some in-scope tree/valuation, or None.

    The fork-join happens-before relation is schedule-independent, so
    one run per (tree, valuation) decides racefreeness on that input.
    """
    for tree in trees:
        for seed in cfg.field_seeds:
            work = tree.clone()
            if fields:
                assign_fields(work, fields, seed=seed, value_range=(0, 5))
            races = program_races_on(program, work)
            if races:
                return (
                    f"tree {work.paths() or ['(root)']} seed {seed}: {races[0]}"
                )
    return None


def _schedule_divergence(
    program: A.Program, trees, fields, cfg: OracleConfig
) -> Optional[str]:
    """A tree/valuation where interleavings yield different outcomes."""
    for tree in trees:
        for seed in cfg.field_seeds:
            work = tree.clone()
            if fields:
                assign_fields(work, fields, seed=seed, value_range=(0, 5))
            keys, exhaustive = program_schedule_outcomes(
                program, work, fields=fields, max_schedules=cfg.schedule_cap
            )
            if len(keys) > 1:
                how = "exhaustive" if exhaustive else "sampled"
                return (
                    f"tree {work.paths() or ['(root)']} seed {seed}: "
                    f"{len(keys)} distinct outcomes across {how} schedules"
                )
    return None


# ----------------------------------------------------------------------
# Symbolic engine, called raw (no ladder)


def _symbolic_race(program: A.Program, cfg: OracleConfig):
    """Raw symbolic verdict, with the configured fault (if any) armed."""
    solver = MSOSolver(
        det_budget=cfg.det_budget, product_budget=cfg.product_budget
    )
    guard = ResourceGuard.start(deadline_s=cfg.sym_deadline_s)
    if cfg.fault is not None:
        probe, hit, action = cfg.fault
        fault_mod.disarm_all()
        fault_mod.arm(probe, hit=hit, action=action)
    try:
        return check_data_race_mso(program, solver=solver, guard=guard)
    finally:
        guard.unbind_managers()
        if cfg.fault is not None:
            fault_mod.disarm_all()


# ----------------------------------------------------------------------
# The oracle


def _check_race_case(
    case: Case, cfg: OracleConfig, result: CaseResult
) -> None:
    program, _ = case.programs()
    fields = program_fields(program)
    trees = default_scope(case.max_internal)

    interp_race = _interp_race_evidence(program, trees, fields, cfg)
    result.engines["interp_race"] = interp_race

    bounded = check_data_race_bounded(program, max_internal=case.max_internal)
    result.engines["bounded"] = str(bounded)
    result.engines["bounded_found"] = bounded.found

    # Lattice: dynamic race ⇒ bounded race (the abstraction
    # over-approximates dynamic iterations — Thm 2's sound direction).
    if interp_race and not bounded.found:
        result.mismatches.append(Mismatch(
            "interp-vs-bounded",
            f"dynamic race exists but bounded says race-free: {interp_race}",
        ))

    # Race-free fork-join programs are schedule-deterministic; a
    # divergent outcome under a race-free verdict means the
    # happens-before relation (or the bounded abstraction) lost a race.
    if not bounded.found:
        div = _schedule_divergence(program, trees, fields, cfg)
        if div:
            result.mismatches.append(Mismatch(
                "schedule-divergence",
                f"bounded says race-free but outcomes diverge: {div}",
            ))

    if bounded.found and bounded.witness is not None:
        cells = getattr(bounded.witness, "cells", ())
        if any(str(c).startswith("field:") for c in cells):
            rep = replay_race_witness(
                program, bounded.witness.tree, fields, seeds=cfg.field_seeds
            )
            result.engines["bounded_replay"] = rep.detail
            if not rep.confirmed:
                result.warnings.append(
                    f"spurious-witness: bounded race witness did not "
                    f"replay ({rep.detail})"
                )
        else:
            # Ghost value-cell races (e.g. two parallel calls of the same
            # function) are abstraction-level only; the dynamic detector
            # tracks field cells, so there is nothing to replay.
            result.engines["bounded_replay"] = (
                "skipped: value-cell witness is not dynamically observable"
            )

    if not cfg.run_symbolic:
        return
    try:
        sym = _symbolic_race(program, cfg)
    except SolverInternalError as e:
        result.mismatches.append(Mismatch(
            "engine-error", f"symbolic engine failed: {e}"
        ))
        return
    result.engines["symbolic"] = str(sym)
    result.engines["symbolic_status"] = sym.status
    result.engines["symbolic_found"] = (
        sym.found if sym.status == "decided" else None
    )

    if sym.status != "decided":
        # PR 2 invariant: an undecided run never carries a witness.
        if sym.witness is not None:
            result.mismatches.append(Mismatch(
                "stale-witness",
                f"symbolic status {sym.status!r} carries a witness",
            ))
        return

    if sym.found and sym.witness is None:
        result.mismatches.append(Mismatch(
            "missing-witness", "symbolic race verdict carries no witness"
        ))
    if not sym.found:
        # Symbolic race-free is a claim over *all* trees; any concrete
        # or bounded race on the scope refutes it outright.
        if bounded.found:
            result.mismatches.append(Mismatch(
                "bounded-vs-symbolic",
                f"bounded found a race but symbolic proved race-free: "
                f"{bounded.witness}",
            ))
        if interp_race:
            result.mismatches.append(Mismatch(
                "interp-vs-symbolic",
                f"dynamic race exists but symbolic proved race-free: "
                f"{interp_race}",
            ))
    elif sym.witness is not None:
        rep = replay_race_witness(
            program, sym.witness.tree, fields, seeds=cfg.field_seeds
        )
        result.engines["symbolic_replay"] = rep.detail
        if not rep.confirmed:
            result.warnings.append(
                f"spurious-witness: symbolic race witness did not replay "
                f"({rep.detail})"
            )


def _concrete_divergence(
    p: A.Program, q: A.Program, trees, fields, cfg: OracleConfig
) -> Optional[str]:
    """A scope tree/valuation where the two programs observably differ
    under the deterministic left-first schedule."""
    for tree in trees:
        for seed in cfg.field_seeds:
            base = tree.clone()
            if fields:
                assign_fields(base, fields, seed=seed, value_range=(0, 5))
            ra = run(p, base)
            rb = run(q, base)
            if ra.returns != rb.returns:
                return (
                    f"tree {base.paths() or ['(root)']} seed {seed}: "
                    f"returns {ra.returns} vs {rb.returns}"
                )
            if fields and ra.field_snapshot(fields) != rb.field_snapshot(fields):
                return (
                    f"tree {base.paths() or ['(root)']} seed {seed}: "
                    "heap states differ"
                )
    return None


def _check_equiv_case(
    case: Case, cfg: OracleConfig, result: CaseResult
) -> None:
    p, q = case.programs()
    assert q is not None
    fields = sorted(set(program_fields(p)) | set(program_fields(q)))
    trees = default_scope(case.max_internal)
    mapping = correspondence_by_key(p, q, strict=False)
    # Thm 3 needs a *total* non-call correspondence; with a partial one
    # an "equivalent" verdict is outside the API's contract, so the
    # concrete-divergence rule is not escalated to a mismatch.
    total_mapping = all(
        b.sid in mapping for b in BlockTable(p).all_noncalls
    )
    result.engines["total_mapping"] = total_mapping

    # Thm 3's guarantee only applies to race-free programs (footnote 7);
    # the concrete-divergence rule is gated on that precondition.
    p_racefree = not check_data_race_bounded(
        p, max_internal=case.max_internal
    ).found
    q_racefree = not check_data_race_bounded(
        q, max_internal=case.max_internal
    ).found
    result.engines["precondition_racefree"] = p_racefree and q_racefree

    divergence = (
        _concrete_divergence(p, q, trees, fields, cfg)
        if p_racefree and q_racefree
        else None
    )
    result.engines["concrete_divergence"] = divergence

    bnd = check_equivalence(
        p, q, mapping, engine="bounded",
        max_internal=case.max_internal, replay=False,
    )
    result.engines["bounded"] = bnd.verdict

    if bnd.verdict == "equivalent" and divergence:
        if total_mapping:
            result.mismatches.append(Mismatch(
                "concrete-vs-equivalent",
                f"bounded says equivalent but concrete runs differ: "
                f"{divergence}",
            ))
        else:
            result.warnings.append(
                "partial-correspondence: equivalent verdict under a "
                f"partial mapping while concrete runs differ: {divergence}"
            )

    if not cfg.run_symbolic:
        return
    if cfg.fault is not None:
        probe, hit, action = cfg.fault
        fault_mod.disarm_all()
        fault_mod.arm(probe, hit=hit, action=action)
    try:
        sym = check_equivalence(
            p, q, mapping, engine="mso",
            det_budget=cfg.det_budget,
            mso_deadline_s=cfg.sym_deadline_s, replay=False,
        )
    except SolverInternalError as e:
        result.mismatches.append(Mismatch(
            "engine-error", f"symbolic engine failed: {e}"
        ))
        return
    finally:
        if cfg.fault is not None:
            fault_mod.disarm_all()
    result.engines["symbolic"] = sym.verdict
    result.engines["symbolic_status"] = sym.details.get("mso_status")

    if sym.verdict == "equivalent" and sym.engine != "bisim":
        if divergence and total_mapping:
            result.mismatches.append(Mismatch(
                "concrete-vs-equivalent",
                f"symbolic says equivalent (all trees) but concrete runs "
                f"differ: {divergence}",
            ))
        if bnd.verdict == "not-equivalent":
            result.mismatches.append(Mismatch(
                "bounded-vs-symbolic",
                "bounded found a conflict on the scope but symbolic "
                "proved equivalence over all trees",
            ))


def run_case(case: Case, cfg: OracleConfig = OracleConfig()) -> CaseResult:
    """Run one case through every engine and check the lattice."""
    t0 = time.perf_counter()
    result = CaseResult(case=case)
    if case.kind == "race":
        _check_race_case(case, cfg, result)
    else:
        _check_equiv_case(case, cfg, result)
    result.elapsed = time.perf_counter() - t0
    return result
