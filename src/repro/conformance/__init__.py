"""Cross-engine differential conformance subsystem.

Three independent engines implement the same semantics — interpreter
schedule enumeration, the bounded checker, and the MSO/automata
pipeline — and the degradation ladder silently switches between them.
This package is the standing cross-check: a seeded fuzz loop
(:mod:`repro.conformance.fuzz`) drives generated queries through all
three (:mod:`repro.conformance.oracle`), replays every witness
concretely (:mod:`repro.conformance.replay`), shrinks any mismatch to a
minimal reproducer (:mod:`repro.conformance.shrink`) and persists it to
a regression corpus (:mod:`repro.conformance.corpus`).

CLI: ``repro fuzz --seed N --budget-s S --shrink``.
"""

from .corpus import CorpusEntry, load_corpus, run_entry, save_entry
from .fuzz import FuzzReport, case_for_seed, run_fuzz
from .oracle import Case, CaseResult, Mismatch, OracleConfig, run_case
from .replay import replay_race_witness
from .shrink import case_size, shrink_case

__all__ = [
    "Case",
    "CaseResult",
    "Mismatch",
    "OracleConfig",
    "run_case",
    "replay_race_witness",
    "shrink_case",
    "case_size",
    "CorpusEntry",
    "load_corpus",
    "save_entry",
    "run_entry",
    "FuzzReport",
    "run_fuzz",
    "case_for_seed",
]
