"""One solve per sandboxed child process.

The **child** (``python -m repro.service.worker``) reads a single
:class:`~repro.service.protocol.Task` frame from stdin, applies hard OS
limits to itself (``RLIMIT_CPU``, ``RLIMIT_AS``, no core dumps), runs
the task's solve, and writes phase heartbeats plus one result frame to
stdout.  Cooperative failures — the PR 2 taxonomy, ``MemoryError`` from
the address-space rlimit, ``SIGXCPU`` from the CPU rlimit (converted to
a :class:`~repro.runtime.DeadlineExceeded` by a signal handler) — still
produce a structured ``result`` frame.  Only a *non-cooperative* death
(SIGSEGV, SIGKILL, ``os._exit``) leaves the stream without one.

The **parent** (:func:`run_task`) spawns the child, enforces the
wall-clock limit with SIGKILL, and classifies what it read back into a
:class:`WorkerOutcome`: ``ok`` (a verdict), ``failed`` (structured
error), ``timeout`` (parent killed it), or ``crashed`` (died without a
result frame — the outcome records the signal, last heartbeat phase and
RSS so a crash report can say where the solver was).

A test-only crash hook rides on :mod:`repro.runtime.faults`:
``REPRO_FAULT=worker-abort`` makes the child die by SIGSEGV mid-solve
whenever the task would run the symbolic engine — the non-cooperative
analogue of the PR 2 probes.  Setting ``REPRO_FAULT_ONCE=<path>``
additionally makes the crash one-shot across process boundaries (the
child touches the sentinel file before dying), which is how the retry
and resume tests model a transient crash.
"""

from __future__ import annotations

import os
import select
import signal
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .protocol import (
    FrameError,
    Limits,
    Task,
    jsonable,
    read_frame,
    write_frame,
)

__all__ = [
    "WorkerOutcome",
    "run_task",
    "execute_payload",
    "child_main",
    "task_for_race",
    "task_for_fusion",
    "task_for_case",
    "run_case_isolated",
    "run_verification_isolated",
    "verification_from_supervised",
]

#: Seconds between heartbeat frames from the child.
HEARTBEAT_PERIOD_S = 0.25

#: Grace period for a child to exit after its result frame (or a kill).
_REAP_GRACE_S = 5.0

#: True only inside a worker child process; the crash hook and rlimit
#: plumbing are inert everywhere else (in particular under the
#: supervisor's inline mode, which runs runners in the parent).
_IN_CHILD = False

_EMITTER: Optional["_Emitter"] = None


# ----------------------------------------------------------------------
# Outcomes


@dataclass
class WorkerOutcome:
    """What one child-process attempt produced.

    ``status`` is the protocol-level result (``ok``/``failed``/
    ``timeout``/``crashed``); :attr:`outcome_class` maps it onto the
    supervisor's retry classes (``ok``/``error``/``resource``/
    ``crashed``), folding structured resource failures and wall-clock
    kills into ``resource`` per the PR 2 taxonomy.
    """

    status: str  # "ok" | "failed" | "timeout" | "crashed"
    value: Optional[Dict[str, Any]] = None
    error: Optional[Dict[str, Any]] = None
    signal: Optional[int] = None
    returncode: Optional[int] = None
    phase: Optional[str] = None
    rss_kb: Optional[int] = None
    elapsed: float = 0.0
    stderr_tail: str = ""

    @property
    def outcome_class(self) -> str:
        if self.status == "ok":
            return "ok"
        if self.status == "timeout":
            return "resource"
        if self.status == "failed":
            return "resource" if (self.error or {}).get("resource") else "error"
        return "crashed"

    def describe(self) -> str:
        if self.status == "ok":
            return "ok"
        if self.status == "timeout":
            return (
                f"wall-clock limit exceeded (killed in phase "
                f"{self.phase or 'startup'})"
            )
        if self.status == "failed":
            err = self.error or {}
            return f"{err.get('type', 'error')}: {err.get('message', '')}"
        how = (
            f"signal {self.signal} ({signal.Signals(self.signal).name})"
            if self.signal is not None and self.signal in signal.Signals._value2member_map_
            else f"signal {self.signal}"
            if self.signal is not None
            else f"exit code {self.returncode} without a result"
        )
        return f"worker crashed: {how} in phase {self.phase or 'startup'}"


# ----------------------------------------------------------------------
# Child side


# The functions below run only inside the worker child; coverage is
# measured in the parent, so they are excluded from the ratchet.


def _apply_rlimits(limits: Limits) -> None:  # pragma: no cover - child only
    import resource as res

    res.setrlimit(res.RLIMIT_CORE, (0, 0))
    if limits.cpu_s is not None:
        soft = max(1, int(limits.cpu_s + 0.999))
        res.setrlimit(res.RLIMIT_CPU, (soft, soft + 1))
    if limits.mem_bytes is not None:
        res.setrlimit(res.RLIMIT_AS, (limits.mem_bytes, limits.mem_bytes))


def _rss_kb() -> int:  # pragma: no cover - child only
    import resource as res

    return int(res.getrusage(res.RUSAGE_SELF).ru_maxrss)


class _Emitter:  # pragma: no cover - child only
    """Serializes child→parent frames across the solve and heartbeat
    threads; after the result frame nothing else is written."""

    def __init__(self, fp) -> None:
        self._fp = fp
        self._lock = threading.Lock()
        self.phase = "start"
        self.done = False

    def set_phase(self, phase: str) -> None:
        self.phase = phase
        self.emit_phase()

    def emit_phase(self) -> None:
        with self._lock:
            if self.done:
                return
            write_frame(
                self._fp,
                {"type": "phase", "phase": self.phase, "rss_kb": _rss_kb()},
            )

    def result(self, body: Dict[str, Any]) -> None:
        with self._lock:
            self.done = True
            write_frame(self._fp, {"type": "result", **body})


def _heartbeat_loop(emitter: _Emitter) -> None:  # pragma: no cover - child only
    while not emitter.done:
        time.sleep(HEARTBEAT_PERIOD_S)
        try:
            emitter.emit_phase()
        except (BrokenPipeError, OSError):
            os._exit(1)  # parent is gone; nothing left to report to


def _on_xcpu(signum, frame) -> None:  # pragma: no cover - child only
    from ..runtime import DeadlineExceeded

    phase = _EMITTER.phase if _EMITTER is not None else None
    raise DeadlineExceeded(
        "CPU rlimit exhausted", phase=phase, counters={"signal": "SIGXCPU"}
    )


def _maybe_worker_abort(symbolic: bool) -> None:
    """Test-only crash hook: die by SIGSEGV mid-solve.

    Fires only inside a child, only when the task would run the symbolic
    engine (the hook models a non-cooperative symbolic blow-up, and this
    is what lets the circuit breaker's bounded-only degradation actually
    recover), and — when ``REPRO_FAULT_ONCE`` names a sentinel path —
    exactly once *pool-wide*: the sentinel is claimed with an atomic
    ``O_CREAT | O_EXCL`` create, so concurrent children that all raced
    past the fast-path existence check still elect a single crasher
    (under the daemon's pool several workers start at once; a
    check-then-touch sentinel would let every one of them die).
    """
    from ..runtime import faults

    if not (_IN_CHILD and symbolic and faults.ARMED):
        return
    once = os.environ.get("REPRO_FAULT_ONCE")
    if once and os.path.exists(once):
        return
    try:
        faults.fire("worker-abort")
    except faults.InjectedFault:
        if once:
            try:
                os.close(os.open(once, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
            except FileExistsError:
                return  # another child already claimed the crash
        os.kill(os.getpid(), signal.SIGSEGV)
        os._exit(139)  # fallback if SIGSEGV is somehow blocked


def _error_dict(e: BaseException) -> Dict[str, Any]:
    from ..runtime import ResourceExhausted

    return {
        "type": type(e).__name__,
        "message": str(e),
        "phase": getattr(e, "phase", None),
        "resource": isinstance(e, (ResourceExhausted, MemoryError)),
    }


# ----------------------------------------------------------------------
# Task runners (shared by the child and the supervisor's inline mode)


_RACE_OPTIONS = (
    "engine",
    "max_internal",
    "det_budget",
    "mso_deadline_s",
    "node_ceiling",
    "bounded_deadline_s",
    "replay",
)
_FUSION_OPTIONS = _RACE_OPTIONS + ("check_bisim",)


def _options(payload: Dict[str, Any], allowed) -> Dict[str, Any]:
    opts = payload.get("options") or {}
    unknown = sorted(set(opts) - set(allowed))
    if unknown:
        raise ValueError(f"unknown task options {unknown}")
    return {k: opts[k] for k in allowed if k in opts}


def _verification_to_dict(res) -> Dict[str, Any]:
    from ..core.api import verification_to_dict

    return verification_to_dict(res)


def _run_check_race(payload: Dict[str, Any], set_phase) -> Dict[str, Any]:
    from ..core.api import check_data_race
    from ..lang.parser import parse_program

    set_phase("parse")
    program = parse_program(
        payload["source"],
        name=payload.get("name", "program"),
        entry=payload.get("entry", "Main"),
    )
    options = _options(payload, _RACE_OPTIONS)
    set_phase("solve")
    _maybe_worker_abort(options.get("engine", "auto") != "bounded")
    return _verification_to_dict(check_data_race(program, **options))


def _run_check_fusion(payload: Dict[str, Any], set_phase) -> Dict[str, Any]:
    from ..core.api import check_equivalence
    from ..core.transform import correspondence_by_key
    from ..lang.parser import parse_program

    set_phase("parse")
    entry = payload.get("entry", "Main")
    p = parse_program(
        payload["source"], name=payload.get("name", "original"), entry=entry
    )
    q = parse_program(
        payload["source2"], name=payload.get("name2", "fused"), entry=entry
    )
    if payload.get("mapping") is not None:
        mapping = {k: set(v) for k, v in payload["mapping"].items()}
    else:
        overrides = {
            k: set(v) for k, v in (payload.get("map_overrides") or {}).items()
        }
        mapping = correspondence_by_key(p, q, overrides=overrides, strict=True)
    options = _options(payload, _FUSION_OPTIONS)
    set_phase("solve")
    _maybe_worker_abort(options.get("engine", "auto") != "bounded")
    return _verification_to_dict(check_equivalence(p, q, mapping, **options))


def _run_fuzz_case(payload: Dict[str, Any], set_phase) -> Dict[str, Any]:
    from ..conformance.oracle import Case, OracleConfig, run_case

    set_phase("parse")
    case = Case(**payload["case"])
    cfg_data = dict(payload.get("oracle") or {})
    if "field_seeds" in cfg_data:
        cfg_data["field_seeds"] = tuple(cfg_data["field_seeds"])
    if cfg_data.get("fault") is not None:
        cfg_data["fault"] = tuple(cfg_data["fault"])
    cfg = OracleConfig(**cfg_data)
    set_phase("solve")
    _maybe_worker_abort(cfg.run_symbolic)
    result = run_case(case, cfg)
    return {
        "mismatches": [
            {"kind": m.kind, "detail": m.detail} for m in result.mismatches
        ],
        "warnings": list(result.warnings),
        "engines": jsonable(result.engines),
        "elapsed": result.elapsed,
    }


_RUNNERS: Dict[str, Callable[[Dict[str, Any], Callable], Dict[str, Any]]] = {
    "check-race": _run_check_race,
    "check-fusion": _run_check_fusion,
    "fuzz-case": _run_fuzz_case,
}


def execute_payload(
    kind: str,
    payload: Dict[str, Any],
    set_phase: Callable[[str], None] = lambda _p: None,
) -> Dict[str, Any]:
    """Run one task's solve in the current process; returns the
    JSON-plain result value.  This is the child's core, and also what
    the supervisor's inline (non-isolated) mode calls directly."""
    runner = _RUNNERS.get(kind)
    if runner is None:
        raise ValueError(
            f"unknown task kind {kind!r}; known: {sorted(_RUNNERS)}"
        )
    return runner(payload, set_phase)


def child_main() -> int:  # pragma: no cover - exercised via subprocess
    """Entry point of the worker child: one task frame in, frames out."""
    global _IN_CHILD, _EMITTER
    _IN_CHILD = True
    # Keep the framing fd private: stray prints from engine code (or C
    # extensions writing to fd 1) must not corrupt the protocol stream.
    out_fp = os.fdopen(os.dup(1), "wb")
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    frame = read_frame(sys.stdin.buffer)
    if frame is None:
        return 2
    task = Task.from_dict(frame)
    _apply_rlimits(task.limits)
    signal.signal(signal.SIGXCPU, _on_xcpu)

    from ..runtime import faults

    faults.install_from_env()

    emitter = _Emitter(out_fp)
    _EMITTER = emitter
    emitter.emit_phase()
    hb = threading.Thread(target=_heartbeat_loop, args=(emitter,), daemon=True)
    hb.start()
    try:
        value = execute_payload(task.kind, task.payload, emitter.set_phase)
        emitter.result({"ok": True, "value": value})
    except Exception as e:  # structured failure is a protocol success
        try:
            emitter.result({"ok": False, "error": _error_dict(e)})
        except (BrokenPipeError, OSError):
            return 1
    return 0


# ----------------------------------------------------------------------
# Parent side


class _WallTimeout(Exception):
    pass


class _DeadlineReader:
    """File-like reader over a pipe fd that honours a wall deadline."""

    def __init__(self, fd: int, deadline: Optional[float]) -> None:
        self._fd = fd
        self._deadline = deadline

    def read(self, n: int) -> bytes:
        buf = b""
        while len(buf) < n:
            timeout = None
            if self._deadline is not None:
                timeout = self._deadline - time.monotonic()
                if timeout <= 0:
                    raise _WallTimeout
            ready, _, _ = select.select([self._fd], [], [], timeout)
            if not ready:
                raise _WallTimeout
            chunk = os.read(self._fd, n - len(buf))
            if not chunk:
                return buf  # EOF; read_frame classifies a torn frame
            buf += chunk
        return buf


def _child_env(env: Optional[Dict[str, str]]) -> Dict[str, str]:
    out = dict(os.environ if env is None else env)
    pkg_root = str(Path(__file__).resolve().parents[2])
    parts = out.get("PYTHONPATH", "")
    if pkg_root not in parts.split(os.pathsep):
        out["PYTHONPATH"] = (
            pkg_root + (os.pathsep + parts if parts else "")
        )
    return out


def _reap(proc: subprocess.Popen) -> int:
    try:
        return proc.wait(timeout=_REAP_GRACE_S)
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.wait()


def run_task(
    task: Task,
    env: Optional[Dict[str, str]] = None,
    on_spawn: Optional[Callable[[subprocess.Popen], None]] = None,
) -> WorkerOutcome:
    """Run one task in a fresh sandboxed child; never raises for child
    failure — every way the child can die maps to a :class:`WorkerOutcome`."""
    t0 = time.monotonic()
    deadline = (
        t0 + task.limits.wall_s if task.limits.wall_s is not None else None
    )
    stderr_file = tempfile.TemporaryFile()
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.service.worker"],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=stderr_file,
        env=_child_env(env),
    )
    if on_spawn is not None:
        on_spawn(proc)
    phase: Optional[str] = None
    rss_kb: Optional[int] = None
    result_frame: Optional[Dict[str, Any]] = None
    timed_out = False
    torn = False
    try:
        try:
            write_frame(proc.stdin, task.to_dict())
            proc.stdin.close()
        except (BrokenPipeError, OSError):
            pass  # child died before reading; classified below
        reader = _DeadlineReader(proc.stdout.fileno(), deadline)
        while True:
            try:
                frame = read_frame(reader)
            except _WallTimeout:
                proc.kill()
                timed_out = True
                break
            except FrameError:
                torn = True
                break
            if frame is None:
                break
            if frame.get("type") == "phase":
                phase = frame.get("phase", phase)
                rss_kb = frame.get("rss_kb", rss_kb)
            elif frame.get("type") == "result":
                result_frame = frame
                break
        returncode = _reap(proc)
    finally:
        proc.stdout.close()
        if proc.poll() is None:  # pragma: no cover - safety net
            proc.kill()
            proc.wait()
    stderr_file.seek(0)
    stderr_tail = stderr_file.read()[-2048:].decode("utf-8", "replace")
    stderr_file.close()
    elapsed = time.monotonic() - t0
    sig = -returncode if returncode is not None and returncode < 0 else None

    if result_frame is not None:
        if result_frame.get("ok"):
            return WorkerOutcome(
                status="ok",
                value=result_frame.get("value"),
                phase=phase,
                rss_kb=rss_kb,
                elapsed=elapsed,
                returncode=returncode,
                stderr_tail=stderr_tail,
            )
        return WorkerOutcome(
            status="failed",
            error=result_frame.get("error") or {},
            phase=phase,
            rss_kb=rss_kb,
            elapsed=elapsed,
            returncode=returncode,
            stderr_tail=stderr_tail,
        )
    if timed_out:
        return WorkerOutcome(
            status="timeout",
            phase=phase,
            rss_kb=rss_kb,
            elapsed=elapsed,
            signal=signal.SIGKILL,
            returncode=returncode,
            stderr_tail=stderr_tail,
        )
    # EOF (or a torn frame) without a result: a non-cooperative death.
    return WorkerOutcome(
        status="crashed",
        phase=phase,
        rss_kb=rss_kb,
        elapsed=elapsed,
        signal=sig,
        returncode=returncode if sig is None else None,
        error={"torn_frame": True} if torn else None,
        stderr_tail=stderr_tail,
    )


# ----------------------------------------------------------------------
# Task builders + high-level isolated entry points


def task_for_race(
    source: str,
    entry: str = "Main",
    options: Optional[Dict[str, Any]] = None,
    limits: Optional[Limits] = None,
    name: str = "program",
) -> Task:
    return Task(
        kind="check-race",
        payload={
            "source": source,
            "entry": entry,
            "name": name,
            "options": dict(options or {}),
        },
        name=name,
        limits=limits or Limits(),
    )


def task_for_fusion(
    source: str,
    source2: str,
    entry: str = "Main",
    options: Optional[Dict[str, Any]] = None,
    mapping: Optional[Dict[str, List[str]]] = None,
    map_overrides: Optional[Dict[str, List[str]]] = None,
    limits: Optional[Limits] = None,
    name: str = "original",
    name2: str = "fused",
) -> Task:
    payload: Dict[str, Any] = {
        "source": source,
        "source2": source2,
        "entry": entry,
        "name": name,
        "name2": name2,
        "options": dict(options or {}),
    }
    if mapping is not None:
        payload["mapping"] = {k: sorted(v) for k, v in mapping.items()}
    if map_overrides is not None:
        payload["map_overrides"] = {
            k: sorted(v) for k, v in map_overrides.items()
        }
    return Task(
        kind="check-fusion",
        payload=payload,
        name=f"{name}-vs-{name2}",
        limits=limits or Limits(),
    )


def task_for_case(case, cfg=None, limits: Optional[Limits] = None) -> Task:
    from dataclasses import asdict

    from ..conformance.oracle import OracleConfig

    cfg = cfg or OracleConfig()
    cfg_data = asdict(cfg)
    cfg_data["field_seeds"] = list(cfg.field_seeds)
    if cfg.fault is not None:
        cfg_data["fault"] = list(cfg.fault)
    return Task(
        kind="fuzz-case",
        payload={"case": asdict(case), "oracle": cfg_data},
        name=case.name,
        limits=limits or Limits(),
    )


def _worker_attempt_record(task: Task, attempt: Dict[str, Any]) -> Dict[str, Any]:
    """A supervisor attempt rendered in the plan executor's attempts
    format (the shared schema lives in :mod:`repro.engine.plan`)."""
    from ..engine.plan import worker_attempt_record

    return worker_attempt_record(task.limits.to_dict(), attempt)


def verification_from_supervised(supervised) -> "VerificationResult":
    """Convert a supervised worker run of a ``check-*`` task back into
    a :class:`~repro.core.api.VerificationResult`.

    A child that never produced a verdict (crash/timeout after the
    retry budget) yields ``verdict="unknown"`` with ``holds=False`` —
    never a silent wrong answer — and every failed worker attempt
    appears in ``details["attempts"]`` with its outcome class.
    """
    from ..core.api import VerificationResult, verification_from_dict

    task = supervised.task
    final = supervised.final
    failed_attempts = [
        _worker_attempt_record(task, a)
        for a in supervised.attempts
        if a["outcome"] != "ok"
    ]
    query = {
        "check-race": f"data-race({task.payload.get('name', task.name)})",
        "check-fusion": (
            f"equivalence({task.payload.get('name', 'p')} vs "
            f"{task.payload.get('name2', 'q')})"
        ),
    }.get(task.kind, task.name)

    if final.status == "ok":
        value = final.value or {}
        res = verification_from_dict(
            value, default_query=query, elapsed=final.elapsed
        )
        res.details["attempts"] = failed_attempts + list(
            res.details.get("attempts") or []
        )
        res.details["isolation"] = "process"
        if supervised.degraded:
            res.details["circuit_breaker"] = "open"
        return res
    details = {
        "attempts": failed_attempts,
        "decided_by": None,
        "isolation": "process",
        "worker": {
            "status": final.status,
            "outcome_class": final.outcome_class,
            "detail": final.describe(),
            "signal": final.signal,
            "phase": final.phase,
            "rss_kb": final.rss_kb,
        },
    }
    if final.status == "failed":
        details["worker"]["error"] = final.error
    return VerificationResult(
        query=query,
        verdict="unknown",
        engine="process",
        elapsed=sum(a["elapsed"] for a in supervised.attempts),
        holds=False,
        details=details,
    )


def run_verification_isolated(task: Task, policy=None, supervisor=None):
    """Run one ``check-*`` task under process isolation and supervision."""
    from .supervisor import Supervisor

    sup = supervisor or Supervisor(policy=policy)
    return verification_from_supervised(sup.run_one(task))


def run_case_isolated(
    case,
    cfg=None,
    limits: Optional[Limits] = None,
    policy=None,
    supervisor=None,
):
    """Run one conformance case in a sandboxed worker.

    A worker that dies — crash, rlimit exhaustion, wall-clock kill —
    becomes an ``engine-error`` mismatch on the returned
    :class:`~repro.conformance.oracle.CaseResult` instead of aborting
    the fuzz loop: from the oracle's viewpoint, an engine that cannot
    answer inside its sandbox *is* a broken engine.
    """
    from ..conformance.oracle import CaseResult, Mismatch
    from .supervisor import Supervisor

    sup = supervisor or Supervisor(policy=policy)
    supervised = sup.run_one(task_for_case(case, cfg, limits))
    final = supervised.final
    result = CaseResult(case=case)
    result.engines["worker_attempts"] = supervised.attempts
    result.elapsed = sum(a["elapsed"] for a in supervised.attempts)
    if final.status == "ok":
        value = final.value or {}
        result.mismatches = [
            Mismatch(kind=m["kind"], detail=m["detail"])
            for m in value.get("mismatches", ())
        ]
        result.warnings = list(value.get("warnings", ()))
        result.engines.update(value.get("engines") or {})
        return result
    result.engines["worker"] = {
        "status": final.status,
        "outcome_class": final.outcome_class,
        "signal": final.signal,
        "phase": final.phase,
        "rss_kb": final.rss_kb,
    }
    result.mismatches.append(
        Mismatch(kind="engine-error", detail=f"isolated {final.describe()}")
    )
    return result


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(child_main())
