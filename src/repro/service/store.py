"""Durable result store + append-only journal for resumable batches.

**Store** — one JSON file per result under ``<run_dir>/store/``, named
by the task's content-hash key.  Each record wraps its payload with a
SHA-256 checksum of the payload's canonical JSON; writes go through a
temp file in the same directory followed by ``os.replace`` (atomic on
POSIX), so a record is either fully present and self-consistent or not
there at all.  A record that fails verification — torn write that
somehow survived, bit rot, a hand-edited file — is *quarantined*: moved
aside to ``<run_dir>/quarantine/`` for the post-mortem and reported as
a miss, so it is recomputed and **never trusted**.

**Journal** — ``<run_dir>/journal.jsonl``, one JSON record per line,
each appended with flush+fsync before the batch moves on.  The journal
is the resume index: a record marks "this task's verdict is safely in
the store".  Replay is tolerant by construction — a line that does not
parse (the torn tail a ``kill -9`` leaves behind) is skipped and
counted, and every journaled completion is re-verified against the
checksummed store before it is believed, so a lying journal line can at
worst cause recomputation, never a wrong verdict.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional

from .protocol import canonical_json

__all__ = ["ResultStore", "Journal", "payload_digest"]


def payload_digest(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultStore:
    """Checksummed, atomically-written result records keyed by task key."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.store_dir = self.root / "store"
        self.quarantine_dir = self.root / "quarantine"
        self.store_dir.mkdir(parents=True, exist_ok=True)
        self.quarantined: List[str] = []

    def path_for(self, key: str) -> Path:
        return self.store_dir / f"{key}.json"

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        record = {
            "key": key,
            "sha256": payload_digest(payload),
            "payload": payload,
        }
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        data = json.dumps(record, sort_keys=True, indent=1) + "\n"
        with open(tmp, "w", encoding="utf-8") as fp:
            fp.write(data)
            fp.flush()
            os.fsync(fp.fileno())
        os.replace(tmp, path)
        return path

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified payload for ``key``, or ``None``.

        Any record that fails to parse or to checksum is moved to the
        quarantine directory and treated as a miss.
        """
        path = self.path_for(key)
        if not path.exists():
            return None
        try:
            record = json.loads(path.read_text(encoding="utf-8"))
            payload = record["payload"]
            if record.get("key") != key:
                raise ValueError("record key mismatch")
            if record.get("sha256") != payload_digest(payload):
                raise ValueError("record checksum mismatch")
        except (ValueError, KeyError, TypeError, OSError):
            self._quarantine(path)
            return None
        return payload

    def _quarantine(self, path: Path) -> None:
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        dest = self.quarantine_dir / path.name
        n = 1
        while dest.exists():
            n += 1
            dest = self.quarantine_dir / f"{path.name}.{n}"
        try:
            os.replace(path, dest)
        except OSError:  # pragma: no cover - racing quarantiners
            return
        self.quarantined.append(path.stem)


@dataclass
class JournalReplay:
    records: List[Dict[str, Any]]
    skipped_lines: int = 0


class Journal:
    """Append-only JSONL event log, durable per append."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)
        self._lock = threading.Lock()

    def append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as fp:
                fp.write(line)
                fp.flush()
                os.fsync(fp.fileno())

    def replay(self) -> JournalReplay:
        """Every parseable record, skipping (and counting) torn lines."""
        if not self.path.exists():
            return JournalReplay(records=[])
        records: List[Dict[str, Any]] = []
        skipped = 0
        with open(self.path, "r", encoding="utf-8") as fp:
            for line in fp:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if isinstance(rec, dict):
                    records.append(rec)
                else:
                    skipped += 1
        return JournalReplay(records=records, skipped_lines=skipped)
