"""The long-lived multi-tenant solve daemon (DESIGN.md §11).

``repro serve RUN_DIR`` turns the one-shot service stack into a
persistent process: an asyncio daemon listening on a Unix socket
(``RUN_DIR/daemon.sock``), speaking the same length-prefixed JSON
framing as the worker protocol, and fronting the PR 4 supervisor pool
behind the PR 5 query-keyed cache.  The request path is::

    client ──▶ admission (quota, bounded queue, shedding)
           ──▶ shared-cache lookup (sqlite tier, soundness-gated reuse)
           ──▶ coalescing (identical in-flight keys share one solve)
           ──▶ fair scheduler (stride over client weights)
           ──▶ supervisor pool (sandboxed workers, retries, breaker)
           ──▶ journal + shared cache  ──▶ every waiter's response

**Durability contract.**  A verdict is durable once its checksummed row
is in the shared sqlite cache *and* a journal line points at it — both
happen before any client sees the result.  ``SIGKILL`` at any moment
loses at most in-flight work (clients see a dropped connection and
resubmit); on restart the journal is replayed, every journaled row is
re-verified byte-for-byte (corrupt rows are quarantined and will be
recomputed), and resubmissions of completed work are answered from the
cache — no lost and no duplicated verdicts.  ``SIGTERM`` drains:
admission closes (``ServiceOverloaded(reason="shutting-down")``),
queued and running work completes and is answered, then the daemon
exits 0.

**Requests** (one JSON frame each; responses mirror the type):

``{"type": "submit", "client": id, "priority": 0-9, "task": {...}}``
    solve (or reuse) one :class:`~repro.service.protocol.Task`;
``{"type": "status"}``
    full observability snapshot: queue/quota/fairness state, circuit
    breaker, retry spend, cache tiers, journal replay counts;
``{"type": "ping"}`` / ``{"type": "shutdown"}``
    liveness / graceful drain (what ``SIGTERM`` triggers).
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import struct
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..runtime import faults
from .client import DaemonError
from .protocol import MAX_FRAME_BYTES, FrameError, Task, task_key
from .scheduler import (
    DEFAULT_PRIORITY,
    FairScheduler,
    ServiceOverloaded,
    Submission,
)
from .sharedcache import SharedCache
from .store import Journal
from .supervisor import RetryPolicy, SupervisedResult, Supervisor

__all__ = [
    "DaemonConfig",
    "DaemonError",
    "SolveDaemon",
    "serve",
    "warm_from_corpus",
    "read_frame_async",
    "write_frame_async",
]

PROTOCOL_VERSION = 1

_LEN = struct.Struct(">I")


# ----------------------------------------------------------------------
# Async framing (same wire format as repro.service.protocol)


async def read_frame_async(reader: asyncio.StreamReader) -> Optional[Dict]:
    try:
        header = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as e:
        if not e.partial:
            return None  # clean EOF
        raise FrameError("stream torn inside frame length prefix") from e
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    try:
        data = await reader.readexactly(length)
    except asyncio.IncompleteReadError as e:
        raise FrameError("stream torn inside frame payload") from e
    try:
        return json.loads(data.decode("utf-8"))
    except ValueError as e:
        raise FrameError(f"frame payload is not JSON: {e}") from e


async def write_frame_async(writer: asyncio.StreamWriter, obj: Any) -> None:
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    writer.write(_LEN.pack(len(data)) + data)
    await writer.drain()


# ----------------------------------------------------------------------
# Configuration


@dataclass
class DaemonConfig:
    """Tunables of one daemon instance (all enforced in code)."""

    socket_path: Optional[Path] = None
    jobs: int = 2
    isolation: str = "process"
    retries: int = 2
    queue_depth: int = 64
    client_rate: Optional[float] = None  # tokens/second per client
    client_burst: float = 8.0
    weights: Dict[str, float] = field(default_factory=dict)
    warm_corpus: Optional[Path] = None
    drain_grace_s: float = 60.0
    #: worker-loop poll interval; tests raise it to make admission
    #: races deterministic.
    poll_s: float = 0.02


# ----------------------------------------------------------------------
# Corpus warm start


def warm_from_corpus(
    rcache,
    corpus_dir: Path,
    log: Optional[Callable[[str], None]] = None,
    deadline_s: float = 10.0,
) -> Dict[str, int]:
    """Pre-solve the conformance corpus into the shared cache.

    Each ``race``/``equiv`` corpus entry is decided with the *bounded*
    engine at the entry's own scope — fast, and its clean verdicts are
    exactly-scope-complete, so the cache's capability gating lets any
    client running a bounded-capable plan at the same scope reuse them
    (counterexamples are sound everywhere).  Entries that fail to
    parse, map, or decide are skipped and counted, never fatal.
    """
    from ..core.api import check_data_race, check_equivalence
    from ..core.transform import correspondence_by_key
    from ..lang.parser import parse_program

    say = log or (lambda _m: None)
    counts = {"warmed": 0, "already": 0, "skipped": 0}
    for path in sorted(Path(corpus_dir).glob("*.json")):
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
            kind = entry.get("kind")
            scope = int(entry.get("max_internal", 2))
            before = rcache.stats.hits
            if kind == "race":
                prog = parse_program(
                    entry["source"], name=entry.get("name", path.stem)
                )
                res = check_data_race(
                    prog,
                    engine="bounded",
                    max_internal=scope,
                    bounded_deadline_s=deadline_s,
                    replay=False,
                    cache=rcache,
                )
            elif kind == "equiv":
                p = parse_program(
                    entry["source"], name=entry.get("name", path.stem)
                )
                q = parse_program(
                    entry["source2"], name=f"{entry.get('name', path.stem)}-2"
                )
                mapping = correspondence_by_key(p, q, strict=True)
                res = check_equivalence(
                    p,
                    q,
                    mapping,
                    engine="bounded",
                    max_internal=scope,
                    bounded_deadline_s=deadline_s,
                    replay=False,
                    cache=rcache,
                )
            else:
                counts["skipped"] += 1
                continue
            if rcache.stats.hits > before:
                counts["already"] += 1
            elif res.verdict != "unknown":
                counts["warmed"] += 1
            else:
                counts["skipped"] += 1
        except Exception as e:
            counts["skipped"] += 1
            say(f"warm-start: skipping {path.name}: {e}")
    say(
        f"warm-start: {counts['warmed']} warmed, {counts['already']} already "
        f"cached, {counts['skipped']} skipped"
    )
    return counts


# ----------------------------------------------------------------------
# The daemon


class SolveDaemon:
    """One persistent, multi-tenant, crash-safe solve service."""

    def __init__(
        self,
        run_dir: Path,
        config: Optional[DaemonConfig] = None,
        log: Optional[Callable[[str], None]] = None,
    ) -> None:
        from ..engine import ResultCache

        self.run_dir = Path(run_dir)
        self.run_dir.mkdir(parents=True, exist_ok=True)
        self.config = config or DaemonConfig()
        self.say = log or (lambda _m: None)
        self.socket_path = Path(
            self.config.socket_path or self.run_dir / "daemon.sock"
        )
        self.cache = SharedCache(self.run_dir / "cache.sqlite")
        self.rcache = ResultCache(backend=self.cache)
        self.journal = Journal(self.run_dir / "daemon-journal.jsonl")
        self.scheduler = FairScheduler(
            max_depth=self.config.queue_depth,
            quota_rate=self.config.client_rate,
            quota_burst=self.config.client_burst,
            weights=self.config.weights,
            workers=self.config.jobs,
        )
        self.supervisor = Supervisor(
            policy=RetryPolicy(max_attempts=1 + max(0, self.config.retries)),
            isolation=self.config.isolation,
        )
        self._executor: Optional[ThreadPoolExecutor] = None
        #: key → futures of every request waiting on that key.
        self._waiters: Dict[str, List[asyncio.Future]] = {}
        #: key → queued submission (coalescing anchor before dispatch).
        self._queued: Dict[str, Submission] = {}
        self._running: set = set()
        self._stop: Optional[asyncio.Event] = None
        self._draining = False
        self._drain_aborted = False
        self._exit_code = 0
        self._lock_fp = None
        self.started_s = time.time()
        self.stats: Dict[str, Any] = {
            "completed": 0,
            "failed": 0,
            "cache_hits": 0,
            "coalesced": 0,
            "retries": 0,
            "replayed": 0,
            "replay_missing": 0,
            "journal_skipped_lines": 0,
            "verified_rows": 0,
            "verify_quarantined": 0,
        }

    # -- startup ---------------------------------------------------------

    def _acquire_lock(self) -> None:
        """One daemon per run directory, enforced with an exclusive
        flock (released by the kernel even on SIGKILL)."""
        import fcntl

        fp = open(self.run_dir / "daemon.lock", "w")
        try:
            fcntl.flock(fp, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as e:
            fp.close()
            raise DaemonError(
                f"another daemon already serves {self.run_dir} "
                f"(daemon.lock is held)"
            ) from e
        fp.write(f"{os.getpid()}\n")
        fp.flush()
        self._lock_fp = fp

    def _release_lock(self) -> None:
        # Closing the fd drops the flock; a successor in the SAME
        # process (tests restart daemons in-process) needs this — a
        # killed process releases through the kernel anyway.
        if self._lock_fp is not None:
            try:
                self._lock_fp.close()
            except OSError:  # pragma: no cover
                pass
            self._lock_fp = None

    def _replay_journal(self) -> None:
        """Re-verify every journaled verdict against the shared cache;
        corrupt or missing rows are counted and will be recomputed."""
        rep = self.journal.replay()
        self.stats["journal_skipped_lines"] = rep.skipped_lines
        seen = set()
        for rec in rep.records:
            if rec.get("event") != "verdict":
                continue
            ckey = rec.get("ckey")
            if not ckey or ckey in seen:
                continue
            seen.add(ckey)
            if self.cache.get(ckey) is not None:
                self.stats["replayed"] += 1
            else:
                self.stats["replay_missing"] += 1
        verified, _corrupt = self.cache.verify_all()
        self.stats["verified_rows"] = verified
        # Everything this instance quarantined so far — rows caught by
        # the replay loop's reads count too, not just verify_all's.
        corrupt = len(self.cache.quarantined)
        self.stats["verify_quarantined"] = corrupt
        if seen or corrupt:
            self.say(
                f"journal replay: {self.stats['replayed']} verdict(s) "
                f"verified, {self.stats['replay_missing']} missing/corrupt; "
                f"cache: {verified} row(s) byte-verified, "
                f"{corrupt} quarantined"
            )

    # -- cache plumbing --------------------------------------------------

    def _query_info(self, task: Task) -> Optional[Tuple]:
        """(query, plan, allow_bisim) for a ``check-*`` task, else
        ``None`` (fuzz cases are cached raw by task key)."""
        from ..engine import plan_for
        from .batch import _query_for_task

        query = _query_for_task(task)
        if query is None:
            return None
        opts = task.payload.get("options") or {}
        try:
            plan = plan_for(opts.get("engine", "auto"))
        except ValueError:
            return None
        return query, plan, bool(opts.get("check_bisim", True))

    def _cache_lookup(self, task: Task, key: str) -> Optional[Dict[str, Any]]:
        if task.kind in ("check-race", "check-fusion"):
            info = self._query_info(task)
            if info is None:
                return None
            query, plan, allow_bisim = info
            record = self.rcache.lookup(query, plan, allow_bisim=allow_bisim)
            return None if record is None else record.get("result")
        raw = self.cache.get(key)
        return None if raw is None else raw.get("result")

    def _store_result(
        self, sub: Submission, value: Dict[str, Any]
    ) -> Optional[str]:
        """Persist one verdict into the shared tier; returns the cache
        row key (``None`` when nothing durable was stored — e.g. an
        ``unknown`` verdict, which must always be recomputed)."""
        if sub.task.kind in ("check-race", "check-fusion"):
            info = self._query_info(sub.task)
            if info is None:
                return None
            from ..core.api import _decided_engine

            query, _plan, _allow = info
            details = value.get("details") or {}
            decided_by = details.get("decided_by")
            stored = self.rcache.store(
                query,
                value.get("verdict", "unknown"),
                bool(value.get("holds")),
                decided_by,
                _decided_engine(decided_by, details.get("attempts") or []),
                value,
            )
            return query.key() if stored else None
        self.cache.put(
            sub.key, {"key": sub.key, "kind": sub.task.kind, "result": value}
        )
        return sub.key

    # -- result fan-out --------------------------------------------------

    def _resolve_waiters(self, key: str, payload: Dict[str, Any]) -> None:
        for fut in self._waiters.pop(key, []):
            if not fut.done():
                fut.set_result(payload)

    def _finish(self, sub: Submission, res: SupervisedResult) -> None:
        self.scheduler.task_done(sub.client, res.final.elapsed)
        self.stats["retries"] += res.retries
        if res.ok:
            value = res.final.value or {}
            ckey = self._store_result(sub, value)
            self.journal.append(
                {
                    "event": "verdict" if ckey else "undecided",
                    "key": sub.key,
                    "ckey": ckey,
                    "client": sub.client,
                    "name": sub.task.name,
                    "verdict": value.get("verdict", "ok"),
                }
            )
            self.stats["completed"] += 1
            payload = {
                "ok": True,
                "cached": False,
                "key": sub.key,
                "value": value,
                "attempts": res.attempts,
                "degraded": res.degraded,
            }
        else:
            self.journal.append(
                {
                    "event": "failed",
                    "key": sub.key,
                    "client": sub.client,
                    "name": sub.task.name,
                    "outcome": res.final.outcome_class,
                    "detail": res.final.describe(),
                }
            )
            self.stats["failed"] += 1
            payload = {
                "ok": False,
                "cached": False,
                "key": sub.key,
                "outcome_class": res.final.outcome_class,
                "detail": res.final.describe(),
                "attempts": res.attempts,
                "degraded": res.degraded,
            }
        self._resolve_waiters(sub.key, payload)

    # -- worker loops ----------------------------------------------------

    async def _worker_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            sub = self.scheduler.next_ready()
            if sub is None:
                if self._draining:
                    return
                await asyncio.sleep(self.config.poll_s)
                continue
            self._queued.pop(sub.key, None)
            self._running.add(sub.key)
            try:
                res = await loop.run_in_executor(
                    self._executor, self.supervisor.run_one, sub.task
                )
                self._finish(sub, res)
            except Exception as e:  # pragma: no cover - defensive
                self._resolve_waiters(
                    sub.key,
                    {
                        "ok": False,
                        "key": sub.key,
                        "outcome_class": "error",
                        "detail": f"daemon internal error: {e}",
                    },
                )
                self.stats["failed"] += 1
            finally:
                self._running.discard(sub.key)

    # -- request handling ------------------------------------------------

    def status(self) -> Dict[str, Any]:
        return {
            "version": PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": round(time.time() - self.started_s, 3),
            "run_dir": str(self.run_dir),
            "socket": str(self.socket_path),
            "jobs": self.config.jobs,
            "isolation": self.config.isolation,
            "draining": self._draining,
            "in_flight": len(self._running),
            "queue": self.scheduler.stats(),
            "breaker": self.supervisor.breaker.as_dict(),
            "retry_budget": {
                "per_task_max": self.supervisor.policy.max_attempts - 1,
                "spent_total": self.stats["retries"],
            },
            "cache": {
                "memory": self.rcache.stats.as_dict(),
                "shared": self.cache.stats(),
            },
            "journal": {
                "replayed": self.stats["replayed"],
                "missing": self.stats["replay_missing"],
                "skipped_lines": self.stats["journal_skipped_lines"],
                "verified_rows": self.stats["verified_rows"],
                "verify_quarantined": self.stats["verify_quarantined"],
            },
            "completed": self.stats["completed"],
            "failed": self.stats["failed"],
            "cache_hits": self.stats["cache_hits"],
            "coalesced": self.stats["coalesced"],
        }

    def _overloaded_frame(self, exc: ServiceOverloaded) -> Dict[str, Any]:
        return {"type": "error", **exc.to_dict()}

    async def _handle_submit(
        self, frame: Dict[str, Any], writer: asyncio.StreamWriter
    ) -> None:
        client = str(frame.get("client") or "anon")
        priority = int(frame.get("priority", DEFAULT_PRIORITY))
        wait = bool(frame.get("wait", True))
        try:
            task = Task.from_dict(frame["task"])
            key = task_key(task)
        except (KeyError, TypeError, ValueError) as e:
            await write_frame_async(
                writer,
                {"type": "error", "error": "BadRequest", "detail": str(e)},
            )
            return
        if self._draining:
            await write_frame_async(
                writer,
                self._overloaded_frame(
                    ServiceOverloaded(
                        "shutting-down",
                        self.scheduler.retry_after_s(),
                        client=client,
                    )
                ),
            )
            return
        hit = self._cache_lookup(task, key)
        if hit is not None:
            self.stats["cache_hits"] += 1
            await write_frame_async(
                writer,
                {
                    "type": "result",
                    "ok": True,
                    "cached": True,
                    "key": key,
                    "value": hit,
                },
            )
            return
        loop = asyncio.get_running_loop()
        if key in self._queued or key in self._running:
            # Coalesce: identical work in flight — join its waiters
            # (consumes no queue slot and no quota token).
            self.stats["coalesced"] += 1
            fut: asyncio.Future = loop.create_future()
            self._waiters.setdefault(key, []).append(fut)
        else:
            try:
                sub, shed = self.scheduler.submit(
                    client, task, priority=priority, key=key
                )
            except ServiceOverloaded as e:
                await write_frame_async(writer, self._overloaded_frame(e))
                return
            self._queued[key] = sub
            for victim in shed:
                self._queued.pop(victim.key, None)
                self._resolve_waiters(
                    victim.key,
                    {
                        "overloaded": True,
                        **ServiceOverloaded(
                            "shed",
                            self.scheduler.retry_after_s(),
                            client=victim.client,
                        ).to_dict(),
                    },
                )
            fut = loop.create_future()
            self._waiters.setdefault(key, []).append(fut)
        if not wait:
            await write_frame_async(
                writer, {"type": "accepted", "key": key}
            )
            return
        payload = await fut
        if payload.get("overloaded"):
            await write_frame_async(
                writer, {"type": "error", **{
                    k: payload[k]
                    for k in ("error", "reason", "retry_after_s", "client")
                    if k in payload
                }},
            )
            return
        await write_frame_async(writer, {"type": "result", **payload})

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None:
                    break
                rtype = frame.get("type")
                if rtype == "ping":
                    await write_frame_async(
                        writer,
                        {"type": "pong", "version": PROTOCOL_VERSION,
                         "pid": os.getpid()},
                    )
                elif rtype == "status":
                    await write_frame_async(
                        writer, {"type": "status", "status": self.status()}
                    )
                elif rtype == "shutdown":
                    await write_frame_async(writer, {"type": "ok"})
                    self.begin_shutdown(0)
                elif rtype == "submit":
                    await self._handle_submit(frame, writer)
                else:
                    await write_frame_async(
                        writer,
                        {"type": "error", "error": "BadRequest",
                         "detail": f"unknown request type {rtype!r}"},
                    )
        except (FrameError, ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- lifecycle -------------------------------------------------------

    def begin_shutdown(self, exit_code: int = 0) -> None:
        self._exit_code = exit_code
        if self._stop is not None and not self._stop.is_set():
            self._stop.set()

    async def run(self) -> int:
        """Serve until a drain is requested; returns the exit code
        (0 clean drain, 130 SIGINT, 1 aborted drain)."""
        self._acquire_lock()
        try:
            return await self._run_locked()
        finally:
            self._release_lock()

    async def _run_locked(self) -> int:
        self._replay_journal()
        if self.config.warm_corpus is not None:
            warm_from_corpus(
                self.rcache, self.config.warm_corpus, log=self.say
            )
        self._stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for sig, code in ((signal.SIGTERM, 0), (signal.SIGINT, 130)):
            try:
                loop.add_signal_handler(sig, self.begin_shutdown, code)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # not the main thread (in-process tests)
        self._executor = ThreadPoolExecutor(max_workers=self.config.jobs)
        if self.socket_path.exists():
            # The flock proves no live daemon owns it: a stale socket
            # from a SIGKILLed predecessor.
            self.socket_path.unlink()
        try:
            server = await asyncio.start_unix_server(
                self._handle_conn, path=str(self.socket_path)
            )
        except OSError as e:
            raise DaemonError(
                f"cannot bind {self.socket_path}: {e}"
            ) from e
        self.journal.append(
            {"event": "start", "pid": os.getpid(),
             "replayed": self.stats["replayed"],
             "verify_quarantined": self.stats["verify_quarantined"]}
        )
        workers = [
            asyncio.create_task(self._worker_loop())
            for _ in range(self.config.jobs)
        ]
        self.say(
            f"daemon pid {os.getpid()} listening on {self.socket_path} "
            f"(jobs={self.config.jobs}, isolation={self.config.isolation}, "
            f"queue-depth={self.config.queue_depth})"
        )
        await self._stop.wait()

        # -- graceful drain: stop admitting, finish everything admitted.
        self._draining = True
        server.close()
        await server.wait_closed()
        exit_code = self._exit_code
        deadline = time.monotonic() + self.config.drain_grace_s
        try:
            while (
                self.scheduler.depth() or self._running
            ) and time.monotonic() < deadline:
                if faults.ARMED:
                    faults.fire("drain-interrupt")
                await asyncio.sleep(self.config.poll_s)
        except faults.InjectedFault:
            self._drain_aborted = True
            exit_code = 1
            self.say("drain interrupted by injected fault; aborting")
            self.supervisor.kill_live_workers()
        for w in workers:
            w.cancel()
        await asyncio.gather(*workers, return_exceptions=True)
        # Fail any request still waiting (aborted drain / grace expiry).
        for key in list(self._waiters):
            self._resolve_waiters(
                key,
                {
                    "overloaded": True,
                    **ServiceOverloaded(
                        "shutting-down", self.scheduler.retry_after_s()
                    ).to_dict(),
                },
            )
        await asyncio.sleep(min(0.2, self.config.poll_s * 2))
        self._executor.shutdown(wait=not self._drain_aborted)
        self.journal.append(
            {"event": "shutdown", "clean": not self._drain_aborted,
             "exit": exit_code, "completed": self.stats["completed"]}
        )
        self.cache.close()
        try:
            self.socket_path.unlink()
        except OSError:  # pragma: no cover
            pass
        self.say(
            f"daemon drained: {self.stats['completed']} completed, "
            f"{self.stats['cache_hits']} cache hit(s); exit {exit_code}"
        )
        return exit_code


def serve(
    run_dir: Path,
    config: Optional[DaemonConfig] = None,
    log: Optional[Callable[[str], None]] = None,
) -> int:
    """Blocking entry point behind ``repro serve``."""
    faults.install_from_env()
    daemon = SolveDaemon(run_dir, config=config, log=log)
    return asyncio.run(daemon.run())
