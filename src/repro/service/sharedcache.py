"""Shared cross-run sqlite cache tier for the solve daemon.

This is the promotion of the per-run-dir result cache
(:class:`repro.engine.cache.ResultCache` over a directory of JSON
files) into a single durable store many runs — and many clients of the
long-lived daemon — share.  It keeps the ``service.store`` discipline:

* **Checksummed rows** — every row carries the SHA-256 of its payload's
  canonical JSON; a row is only believed after re-verification at read
  time, so bit rot, torn writes that somehow survived sqlite's
  journaling, or hand-edited rows can never flow onward as a verdict.
* **Corruption quarantine** — a row that fails verification is moved to
  a ``quarantine`` table (with the failure reason, for the post-mortem)
  and reported as a miss, so it is recomputed and **never trusted**.
* **Single-writer locking** — writes run under ``BEGIN IMMEDIATE`` so
  sqlite's own locking serializes concurrent writers; in-process access
  is additionally serialized by a lock so the daemon's executor threads
  and event loop cannot interleave half-written state.
* **Crash safety** — WAL journaling with ``synchronous=FULL``: a
  ``kill -9`` mid-write leaves either the old row or the new row,
  never a torn one, and :meth:`verify_all` byte-verifies the whole
  tier on daemon restart.

The class implements the same ``get(key) -> payload`` / ``put(key,
payload)`` surface as :class:`repro.service.store.ResultStore`, so it
plugs straight into :class:`repro.engine.cache.ResultCache` as its
durable backend (``ResultCache(backend=SharedCache(path))``).
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..runtime import faults
from .store import payload_digest

__all__ = ["SharedCache"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    key TEXT PRIMARY KEY,
    sha256 TEXT NOT NULL,
    payload TEXT NOT NULL,
    created_s REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS quarantine (
    key TEXT NOT NULL,
    sha256 TEXT,
    payload TEXT,
    reason TEXT NOT NULL,
    quarantined_s REAL NOT NULL
);
"""


class SharedCache:
    """Checksummed, quarantining, crash-safe sqlite key→payload store."""

    def __init__(self, path: Path, timeout_s: float = 30.0) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            str(self.path),
            timeout=timeout_s,
            check_same_thread=False,
            isolation_level=None,  # explicit BEGIN IMMEDIATE below
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.executescript(_SCHEMA)
        #: Keys quarantined by this instance (observability mirror of
        #: the ``quarantine`` table).
        self.quarantined: List[str] = []

    # -- writes ----------------------------------------------------------

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        digest = payload_digest(payload)
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT OR REPLACE INTO records "
                    "(key, sha256, payload, created_s) VALUES (?, ?, ?, ?)",
                    (key, digest, text, time.time()),
                )
                self._conn.execute("COMMIT")
            except BaseException:
                self._conn.execute("ROLLBACK")
                raise

    # -- reads -----------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The verified payload for ``key``, or ``None``.

        A row that fails to parse or to checksum is quarantined and
        treated as a miss (the ``cache-row-corrupt`` fault probe can
        substitute a corrupted payload here to prove that path).
        """
        with self._lock:
            row = self._conn.execute(
                "SELECT sha256, payload FROM records WHERE key = ?", (key,)
            ).fetchone()
        if row is None:
            return None
        digest, text = row
        if faults.ARMED:
            try:
                text = faults.fire("cache-row-corrupt", text)
            except faults.InjectedFault as e:
                # action="raise" models an unreadable row; same
                # discipline as a checksum failure.
                self._quarantine(key, digest, text, f"injected: {e}")
                return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("row payload is not an object")
            if payload_digest(payload) != digest:
                raise ValueError("row checksum mismatch")
        except ValueError as e:
            self._quarantine(key, digest, text, str(e))
            return None
        return payload

    def _quarantine(
        self, key: str, digest: str, text: str, reason: str
    ) -> None:
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                self._conn.execute(
                    "INSERT INTO quarantine "
                    "(key, sha256, payload, reason, quarantined_s) "
                    "VALUES (?, ?, ?, ?, ?)",
                    (key, digest, text, reason, time.time()),
                )
                self._conn.execute(
                    "DELETE FROM records WHERE key = ?", (key,)
                )
                self._conn.execute("COMMIT")
            except BaseException:  # pragma: no cover - defensive
                self._conn.execute("ROLLBACK")
                raise
        self.quarantined.append(key)

    # -- maintenance / observability -------------------------------------

    def keys(self) -> List[str]:
        with self._lock:
            rows = self._conn.execute("SELECT key FROM records").fetchall()
        return [r[0] for r in rows]

    def __len__(self) -> int:
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM records"
            ).fetchone()
        return int(n)

    def quarantine_count(self) -> int:
        with self._lock:
            (n,) = self._conn.execute(
                "SELECT COUNT(*) FROM quarantine"
            ).fetchone()
        return int(n)

    def verify_all(self) -> Tuple[int, int]:
        """Byte-verify every row; returns ``(verified, quarantined)``.

        Run on daemon restart so a crash can never leave a silently
        corrupt row to be served later.
        """
        verified = corrupt = 0
        for key in self.keys():
            if self.get(key) is None:
                corrupt += 1
            else:
                verified += 1
        return verified, corrupt

    def stats(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "rows": len(self),
            "quarantined": self.quarantine_count(),
        }

    def close(self) -> None:
        with self._lock:
            self._conn.close()
