"""Supervised execution: bounded pool, retries, circuit breaker.

The supervisor sits between callers (the batch layer, ``core.api``'s
``isolation="process"`` path, the fuzz loop) and the per-task worker in
:mod:`repro.service.worker`:

* **Retry policy** — each task gets a retry budget; which outcome
  classes are retried is policy (default: only ``crashed`` — a resource
  exhaustion under the same limits is deterministic, and a verdict
  needs no retry).  Backoff is exponential with *deterministic* jitter
  derived from the task key, so concurrent workers decorrelate without
  consuming RNG state anywhere.
* **Circuit breaker** — repeated crashes of *symbolic* workers trip the
  breaker; while it is open, every subsequent ``check-*``/fuzz task is
  degraded to the bounded-only ladder rung (``engine="bounded"`` /
  ``run_symbolic=False``) before being handed to a worker.  That is the
  process-level analogue of PR 2's in-process degradation ladder: when
  the symbolic engine does not fail cooperatively, stop feeding it
  queries rather than burning the whole batch's retry budget.
* **Bounded pool** — :meth:`Supervisor.map` runs tasks over at most
  ``jobs`` concurrent children and kills every live child if the caller
  is interrupted, so ``^C`` never leaks sandboxed workers.
"""

from __future__ import annotations

import hashlib
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from .protocol import Task, task_key
from .worker import WorkerOutcome, execute_payload, run_task

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "SupervisedResult",
    "Supervisor",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Per-task retry budget and backoff shape."""

    max_attempts: int = 3
    retry_classes: Tuple[str, ...] = ("crashed",)
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_max_s: float = 2.0
    jitter_frac: float = 0.25

    def should_retry(self, attempt: int, outcome_class: str) -> bool:
        return attempt < self.max_attempts and outcome_class in self.retry_classes

    def backoff_s(self, attempt: int, key: str) -> float:
        base = min(
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
            self.backoff_max_s,
        )
        # Deterministic jitter in [-jitter_frac, +jitter_frac], keyed by
        # (task, attempt): reproducible runs, decorrelated workers.
        h = int.from_bytes(
            hashlib.sha256(f"{key}:{attempt}".encode()).digest()[:4], "big"
        )
        unit = h / 0xFFFFFFFF
        return base * (1.0 + self.jitter_frac * (2.0 * unit - 1.0))


class CircuitBreaker:
    """Trips after N consecutive crashes of symbolic workers.

    The breaker's full state is observable through :meth:`as_dict` —
    surfaced in the batch ``report.json`` and the daemon's
    ``repro serve --status`` output, so bounded-only degradation is
    visible rather than silent.
    """

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = threshold
        self._consecutive = 0
        self._open = False
        self._trips = 0
        self._lock = threading.Lock()

    @property
    def open(self) -> bool:
        return self._open

    @property
    def consecutive_crashes(self) -> int:
        return self._consecutive

    @property
    def trips(self) -> int:
        """How many times the breaker has transitioned closed → open."""
        return self._trips

    def record(self, outcome_class: str, symbolic: bool) -> None:
        with self._lock:
            if outcome_class == "crashed" and symbolic:
                self._consecutive += 1
                if self._consecutive >= self.threshold and not self._open:
                    self._open = True
                    self._trips += 1
            elif outcome_class == "ok":
                self._consecutive = 0

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "open": self._open,
                "threshold": self.threshold,
                "consecutive_crashes": self._consecutive,
                "trips": self._trips,
            }


def _task_is_symbolic(task: Task) -> bool:
    if task.kind in ("check-race", "check-fusion"):
        from ..engine.plan import plan_for

        spec = (task.payload.get("options") or {}).get("engine", "auto")
        try:
            return bool(plan_for(spec).symbolic_rungs())
        except ValueError:
            return True  # unknown spec: assume the worst for the breaker
    if task.kind == "fuzz-case":
        oracle = task.payload.get("oracle") or {}
        return bool(oracle.get("run_symbolic", True))
    return False


def _degrade_task(task: Task) -> Task:
    """The symbolic-free rendering of a task (circuit breaker open).

    For ``check-*`` tasks this is the plan transformation
    :func:`repro.engine.plan.degraded_spec` — drop every symbolic rung,
    keep the scope rungs; the fuzz oracle has its own flag.
    """
    payload = dict(task.payload)
    if task.kind in ("check-race", "check-fusion"):
        from ..engine.plan import degraded_spec

        payload["options"] = dict(payload.get("options") or {})
        spec = payload["options"].get("engine", "auto")
        try:
            payload["options"]["engine"] = degraded_spec(spec)
        except ValueError:
            payload["options"]["engine"] = "bounded"
    elif task.kind == "fuzz-case":
        payload["oracle"] = dict(payload.get("oracle") or {})
        payload["oracle"]["run_symbolic"] = False
    return replace(task, payload=payload)


@dataclass
class SupervisedResult:
    """Final outcome of one task plus its full attempt history."""

    task: Task
    key: str
    final: WorkerOutcome
    attempts: List[Dict[str, Any]]
    degraded: bool = False

    @property
    def ok(self) -> bool:
        return self.final.status == "ok"

    @property
    def retries(self) -> int:
        """Retry-budget spend: attempts beyond the first."""
        return max(0, len(self.attempts) - 1)


class Supervisor:
    """Runs tasks through sandboxed workers with retries and breaker."""

    def __init__(
        self,
        policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        isolation: str = "process",
        env: Optional[Dict[str, str]] = None,
    ) -> None:
        if isolation not in ("process", "inline"):
            raise ValueError(f"unknown isolation mode {isolation!r}")
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        self.isolation = isolation
        self.env = env
        self._procs: Dict[int, object] = {}
        self._procs_lock = threading.Lock()

    # -- child bookkeeping (so an interrupt can kill live workers) ------

    def _register(self, proc) -> None:
        with self._procs_lock:
            self._procs[proc.pid] = proc

    def _forget(self) -> None:
        with self._procs_lock:
            self._procs = {
                pid: p for pid, p in self._procs.items() if p.poll() is None
            }

    def kill_live_workers(self) -> None:
        with self._procs_lock:
            procs = list(self._procs.values())
            self._procs.clear()
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.kill()
                    proc.wait()
                except OSError:  # pragma: no cover - already reaped
                    pass

    # -- single attempt --------------------------------------------------

    def _attempt(self, task: Task) -> WorkerOutcome:
        if self.isolation == "inline":
            t0 = time.monotonic()
            try:
                value = execute_payload(task.kind, task.payload)
                return WorkerOutcome(
                    status="ok", value=value, elapsed=time.monotonic() - t0
                )
            except Exception as e:
                from .worker import _error_dict

                return WorkerOutcome(
                    status="failed",
                    error=_error_dict(e),
                    elapsed=time.monotonic() - t0,
                )
        outcome = run_task(task, env=self.env, on_spawn=self._register)
        self._forget()
        return outcome

    # -- supervised task -------------------------------------------------

    def run_one(self, task: Task) -> SupervisedResult:
        key = task_key(task)
        attempts: List[Dict[str, Any]] = []
        degraded_any = False
        final: Optional[WorkerOutcome] = None
        for attempt in range(1, self.policy.max_attempts + 1):
            degraded = self.breaker.open and _task_is_symbolic(task)
            run = _degrade_task(task) if degraded else task
            degraded_any = degraded_any or degraded
            outcome = self._attempt(run)
            self.breaker.record(
                outcome.outcome_class, _task_is_symbolic(run)
            )
            record: Dict[str, Any] = {
                "attempt": attempt,
                "outcome": outcome.outcome_class,
                "status": outcome.status,
                "elapsed": round(outcome.elapsed, 6),
            }
            if outcome.signal is not None:
                record["signal"] = outcome.signal
            if outcome.phase is not None:
                record["phase"] = outcome.phase
            if outcome.status not in ("ok",):
                record["detail"] = outcome.describe()
            if degraded:
                record["degraded"] = True
            final = outcome
            if not self.policy.should_retry(attempt, outcome.outcome_class):
                attempts.append(record)
                break
            backoff = self.policy.backoff_s(attempt, key)
            record["backoff_s"] = round(backoff, 6)
            attempts.append(record)
            time.sleep(backoff)
        assert final is not None
        return SupervisedResult(
            task=task,
            key=key,
            final=final,
            attempts=attempts,
            degraded=degraded_any,
        )

    # -- bounded pool -----------------------------------------------------

    def map(
        self,
        tasks: List[Task],
        jobs: int = 1,
        on_result: Optional[Callable[[SupervisedResult], None]] = None,
    ) -> List[SupervisedResult]:
        """Run every task over at most ``jobs`` concurrent workers.

        ``on_result`` fires as each task settles (under no lock — the
        batch layer serializes its own journal).  Results come back in
        task order.  On interruption every live child is killed before
        the exception propagates.
        """
        jobs = max(1, jobs)
        results: List[Optional[SupervisedResult]] = [None] * len(tasks)

        def run_indexed(i: int) -> None:
            res = self.run_one(tasks[i])
            results[i] = res
            if on_result is not None:
                on_result(res)

        if jobs == 1:
            try:
                for i in range(len(tasks)):
                    run_indexed(i)
            except BaseException:
                self.kill_live_workers()
                raise
            return [r for r in results if r is not None]

        executor = ThreadPoolExecutor(max_workers=jobs)
        try:
            pending = {
                executor.submit(run_indexed, i) for i in range(len(tasks))
            }
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for fut in done:
                    fut.result()
        except BaseException:
            for fut in pending:
                fut.cancel()
            self.kill_live_workers()
            executor.shutdown(wait=False, cancel_futures=True)
            raise
        executor.shutdown(wait=True)
        return [r for r in results if r is not None]
