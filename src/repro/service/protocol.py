"""Worker wire protocol and the serializable task model.

Parent and child speak *length-prefixed JSON frames* over pipes: a
4-byte big-endian payload length followed by that many bytes of UTF-8
JSON.  The framing makes a dying child unambiguous — a parent either
reads a complete frame or knows the stream was torn mid-message — which
is what turns a SIGSEGV in the solver into a structured
``WorkerCrashed`` result instead of a parse guess.

Frames from child to parent:

``{"type": "phase", "phase": "solve", "rss_kb": 31200}``
    heartbeat: the phase the child is in and its max RSS so far;
    emitted at every phase transition and periodically from a
    heartbeat thread, so a crash report can say *where* the child died;
``{"type": "result", "ok": true, "value": {...}}``
    the solve completed and ``value`` is its JSON rendering;
``{"type": "result", "ok": false, "error": {...}}``
    the solve failed *cooperatively* — ``error`` carries the PR 2
    taxonomy type name, message, phase, and whether it is a resource
    class failure.

The single parent-to-child frame is the :class:`Task` itself.

Task identity is a *content hash* (:func:`task_key`): the SHA-256 of
the canonical JSON of ``(kind, payload)``, in the spirit of the
compiler's ``structural_key`` formula cache.  Execution limits are
deliberately excluded — re-running a batch with a bigger sandbox must
still reuse every verdict that already succeeded.
"""

from __future__ import annotations

import json
import struct
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Optional

from ..engine.keys import canonical_json, content_key

__all__ = [
    "FrameError",
    "Limits",
    "Task",
    "task_key",
    "canonical_json",
    "write_frame",
    "read_frame",
    "jsonable",
]

#: Refuse frames larger than this (a corrupted length prefix would
#: otherwise make the reader try to allocate gigabytes).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LEN = struct.Struct(">I")


class FrameError(RuntimeError):
    """A malformed frame (bad length prefix or torn payload)."""


@dataclass(frozen=True)
class Limits:
    """Hard OS limits applied to one worker child.

    ``wall_s`` is enforced by the *parent* (SIGKILL past the deadline);
    ``cpu_s`` and ``mem_bytes`` become ``RLIMIT_CPU`` / ``RLIMIT_AS``
    inside the child, so even a solver stuck in C code cannot outrun
    them.
    """

    wall_s: Optional[float] = 120.0
    cpu_s: Optional[float] = None
    mem_bytes: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Optional[Dict[str, Any]]) -> "Limits":
        data = data or {}
        return cls(
            wall_s=data.get("wall_s", 120.0),
            cpu_s=data.get("cpu_s"),
            mem_bytes=data.get("mem_bytes"),
        )


@dataclass(frozen=True)
class Task:
    """One unit of isolated work, serializable as plain data.

    ``kind`` selects a runner in :mod:`repro.service.worker`
    (``"check-race"``, ``"check-fusion"``, ``"fuzz-case"``); ``payload``
    is the kind-specific input (program sources, engine options, oracle
    config) and must be JSON-plain.
    """

    kind: str
    payload: Dict[str, Any]
    name: str = "task"
    limits: Limits = field(default_factory=Limits)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "payload": self.payload,
            "name": self.name,
            "limits": self.limits.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Task":
        return cls(
            kind=data["kind"],
            payload=dict(data["payload"]),
            name=data.get("name", "task"),
            limits=Limits.from_dict(data.get("limits")),
        )


def task_key(task: Task) -> str:
    """Content-hash identity of a task: what is solved, not how hard.

    Delegates to :func:`repro.engine.keys.content_key` — the same
    formula behind :meth:`repro.engine.query.RaceQuery.key` — so a
    query hashed in-process, a batch-store entry, and a fuzz-dedup key
    all agree byte-for-byte.
    """
    return content_key(task.kind, task.payload)


# ----------------------------------------------------------------------
# Framing


def write_frame(fp, obj: Any) -> None:
    """Write one length-prefixed JSON frame and flush."""
    data = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    fp.write(_LEN.pack(len(data)) + data)
    fp.flush()


def read_frame(fp) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on clean EOF.

    A torn frame — EOF inside the length prefix or payload, which is
    exactly what a SIGKILLed child leaves behind — raises
    :class:`FrameError` so the caller can classify the death instead of
    mis-parsing half a message.
    """
    header = fp.read(_LEN.size)
    if not header:
        return None
    if len(header) < _LEN.size:
        raise FrameError("stream torn inside frame length prefix")
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    chunks = []
    remaining = length
    while remaining:
        chunk = fp.read(remaining)
        if not chunk:
            raise FrameError(
                f"stream torn inside frame payload ({remaining} of "
                f"{length} bytes missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    try:
        return json.loads(b"".join(chunks).decode("utf-8"))
    except ValueError as e:
        raise FrameError(f"frame payload is not JSON: {e}") from e


def jsonable(value: Any) -> Any:
    """Best-effort conversion of a result structure to JSON-plain data.

    Dicts/lists/tuples recurse (tuples become lists); scalars pass
    through; anything else — stats objects, witnesses — is rendered
    with ``str``.  Used on the ``details`` dicts the engines produce so
    a worker result always frames.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    return str(value)
