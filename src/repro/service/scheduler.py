"""Admission control and weighted fair scheduling for the solve daemon.

The daemon (:mod:`repro.service.daemon`) fronts the PR 4 supervisor
pool for many concurrent clients; this module is the policy layer that
keeps it overload-tolerant and fair, enforced in code rather than
convention:

* **Bounded admission queue** — at most ``max_depth`` queued
  submissions.  A submission that cannot be admitted raises the typed
  :class:`ServiceOverloaded` carrying a *retry-after hint* (derived
  from the queue depth and an EWMA of recent service times), so clients
  can back off intelligently instead of hammering the socket.
* **Load shedding, lowest priority first** — when the queue is full and
  a strictly higher-priority submission arrives, the lowest-priority
  queued entry (newest among ties) is evicted and *its* waiters get the
  overload rejection; an incoming submission that is itself lowest
  priority is rejected directly.
* **Per-client token-bucket quotas** — each client id owns a bucket
  (``rate`` tokens/second, ``burst`` capacity); an empty bucket rejects
  with the exact time until the next token.  ``rate=None`` disables
  quotas.
* **Weighted fair scheduling** — stride scheduling over per-client
  virtual time: each dequeue picks the backlogged client with the
  smallest *pass* value and advances it by ``1/weight``, so a client
  with weight 2 receives twice the service of a weight-1 client and no
  backlog, however deep, can starve another client (the starved
  client's pass value stays put while the flooder's races ahead).

The scheduler is a pure, deterministic data structure: no threads, no
asyncio, a injectable clock.  The daemon drives it from its event loop;
tests drive it directly.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..runtime import faults
from ..runtime.errors import ReproError
from .protocol import Task, task_key

__all__ = [
    "DEFAULT_PRIORITY",
    "ServiceOverloaded",
    "TokenBucket",
    "Submission",
    "FairScheduler",
]

#: Priorities run 0 (shed first) to 9 (shed last).
DEFAULT_PRIORITY = 5


class ServiceOverloaded(ReproError):
    """Typed admission rejection with a retry-after hint.

    ``reason`` is one of ``"queue-full"`` (bounded depth reached),
    ``"quota"`` (the client's token bucket is empty), ``"shed"`` (the
    submission was admitted but later evicted for higher-priority
    work), or ``"shutting-down"`` (the daemon is draining).
    """

    def __init__(
        self,
        reason: str,
        retry_after_s: float,
        client: Optional[str] = None,
        message: Optional[str] = None,
    ) -> None:
        super().__init__(
            message
            or f"service overloaded ({reason}); retry in {retry_after_s:.2f}s",
            phase="admission",
            counters={"reason": reason, "retry_after_s": retry_after_s},
        )
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.client = client

    def to_dict(self) -> Dict[str, Any]:
        return {
            "error": "ServiceOverloaded",
            "reason": self.reason,
            "retry_after_s": round(self.retry_after_s, 3),
            "client": self.client,
        }


class TokenBucket:
    """A standard token bucket with an injectable clock."""

    def __init__(
        self,
        rate_per_s: Optional[float],
        burst: float = 8.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = rate_per_s
        self.burst = float(burst)
        self.tokens = float(burst)
        self._clock = clock
        self._last = clock()

    def _refill(self, now: float) -> None:
        if self.rate:
            self.tokens = min(
                self.burst, self.tokens + (now - self._last) * self.rate
            )
        self._last = now

    def try_take(self) -> Optional[float]:
        """Take one token; ``None`` on success, else seconds until the
        next token becomes available (the retry-after hint)."""
        if self.rate is None:
            return None
        now = self._clock()
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return None
        if self.rate <= 0:
            return math.inf
        return (1.0 - self.tokens) / self.rate


@dataclass
class Submission:
    """One admitted unit of work waiting for (or receiving) service."""

    client: str
    priority: int
    task: Task
    key: str
    seq: int
    enqueued_s: float
    cancelled: bool = field(default=False, compare=False)


class _ClientState:
    def __init__(
        self, client_id: str, weight: float, bucket: Optional[TokenBucket]
    ) -> None:
        self.id = client_id
        self.weight = max(0.001, float(weight))
        self.bucket = bucket
        #: stride-scheduling virtual time; smallest backlogged pass runs.
        self.pass_value = 0.0
        #: heap of (-priority, seq, Submission): high priority first,
        #: FIFO within a priority level.
        self.heap: List[Tuple[int, int, Submission]] = []
        self.counters: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "rejected_quota": 0,
            "rejected_full": 0,
            "shed": 0,
        }

    def backlog(self) -> int:
        return sum(1 for _, _, s in self.heap if not s.cancelled)

    def peek(self) -> Optional[Submission]:
        while self.heap and self.heap[0][2].cancelled:
            heapq.heappop(self.heap)
        return self.heap[0][2] if self.heap else None

    def pop(self) -> Submission:
        while True:
            _, _, sub = heapq.heappop(self.heap)
            if not sub.cancelled:
                return sub


class FairScheduler:
    """Bounded, quota-enforcing, weighted-fair admission queue."""

    def __init__(
        self,
        max_depth: int = 64,
        quota_rate: Optional[float] = None,
        quota_burst: float = 8.0,
        default_weight: float = 1.0,
        weights: Optional[Dict[str, float]] = None,
        workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.max_depth = max(1, int(max_depth))
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.default_weight = default_weight
        self.weights = dict(weights or {})
        self.workers = max(1, int(workers))
        self._clock = clock
        self._clients: Dict[str, _ClientState] = {}
        self._depth = 0
        self._seq = 0
        self._global_pass = 0.0
        #: EWMA of recent service times, feeding the retry-after hint.
        self._avg_service_s = 0.5
        self.counters: Dict[str, int] = {
            "admitted": 0,
            "dispatched": 0,
            "completed": 0,
            "rejected_full": 0,
            "rejected_quota": 0,
            "shed": 0,
        }

    # -- clients ---------------------------------------------------------

    def client(
        self, client_id: str, weight: Optional[float] = None
    ) -> _ClientState:
        state = self._clients.get(client_id)
        if state is None:
            w = (
                weight
                if weight is not None
                else self.weights.get(client_id, self.default_weight)
            )
            bucket = (
                TokenBucket(self.quota_rate, self.quota_burst, self._clock)
                if self.quota_rate is not None
                else None
            )
            state = _ClientState(client_id, w, bucket)
            # A newcomer (or returner) starts at the current virtual
            # time: no catching up on service it never requested.
            state.pass_value = self._global_pass
            self._clients[client_id] = state
        return state

    # -- admission -------------------------------------------------------

    def retry_after_s(self) -> float:
        """Backoff hint: roughly one queue's worth of service time."""
        est = (self._depth + 1) * self._avg_service_s / self.workers
        return min(60.0, max(0.1, est))

    def _lowest_priority_victim(self) -> Optional[Submission]:
        """The queued submission shed first: lowest priority, newest
        among ties (older work has waited longest and survives)."""
        victim: Optional[Submission] = None
        for state in self._clients.values():
            for _, _, sub in state.heap:
                if sub.cancelled:
                    continue
                if (
                    victim is None
                    or sub.priority < victim.priority
                    or (
                        sub.priority == victim.priority
                        and sub.seq > victim.seq
                    )
                ):
                    victim = sub
        return victim

    def submit(
        self,
        client_id: str,
        task: Task,
        priority: int = DEFAULT_PRIORITY,
        key: Optional[str] = None,
        weight: Optional[float] = None,
    ) -> Tuple[Submission, List[Submission]]:
        """Admit one task; returns ``(submission, shed)`` where ``shed``
        lists lower-priority submissions evicted to make room.

        Raises :class:`ServiceOverloaded` when the client's quota is
        exhausted or the queue is full of equal-or-higher-priority work.
        """
        priority = max(0, min(9, int(priority)))
        state = self.client(client_id, weight)
        state.counters["submitted"] += 1
        if faults.ARMED:
            try:
                faults.fire("queue-full")
            except faults.InjectedFault as e:
                self.counters["rejected_full"] += 1
                state.counters["rejected_full"] += 1
                raise ServiceOverloaded(
                    "queue-full",
                    self.retry_after_s(),
                    client=client_id,
                    message=f"service overloaded (injected): {e}",
                ) from e
        if state.bucket is not None:
            retry = state.bucket.try_take()
            if retry is not None:
                self.counters["rejected_quota"] += 1
                state.counters["rejected_quota"] += 1
                raise ServiceOverloaded(
                    "quota", retry, client=client_id
                )
        shed: List[Submission] = []
        if self._depth >= self.max_depth:
            victim = self._lowest_priority_victim()
            if victim is None or victim.priority >= priority:
                self.counters["rejected_full"] += 1
                state.counters["rejected_full"] += 1
                raise ServiceOverloaded(
                    "queue-full", self.retry_after_s(), client=client_id
                )
            victim.cancelled = True
            self._depth -= 1
            self.counters["shed"] += 1
            self._clients[victim.client].counters["shed"] += 1
            shed.append(victim)
        self._seq += 1
        sub = Submission(
            client=client_id,
            priority=priority,
            task=task,
            key=key if key is not None else task_key(task),
            seq=self._seq,
            enqueued_s=self._clock(),
        )
        heapq.heappush(state.heap, (-priority, sub.seq, sub))
        self._depth += 1
        self.counters["admitted"] += 1
        return sub, shed

    # -- dispatch --------------------------------------------------------

    def next_ready(self) -> Optional[Submission]:
        """Dequeue per stride scheduling: the backlogged client with the
        smallest pass value; ties break on client id for determinism."""
        best: Optional[_ClientState] = None
        for state in sorted(self._clients.values(), key=lambda s: s.id):
            if state.peek() is None:
                continue
            if best is None or state.pass_value < best.pass_value:
                best = state
        if best is None:
            return None
        sub = best.pop()
        self._depth -= 1
        self._global_pass = best.pass_value
        best.pass_value += 1.0 / best.weight
        self.counters["dispatched"] += 1
        return sub

    def task_done(self, client_id: str, elapsed_s: float) -> None:
        self.counters["completed"] += 1
        state = self._clients.get(client_id)
        if state is not None:
            state.counters["completed"] += 1
        self._avg_service_s = (
            0.8 * self._avg_service_s + 0.2 * max(0.001, elapsed_s)
        )

    def depth(self) -> int:
        return self._depth

    # -- observability ---------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        return {
            "depth": self._depth,
            "max_depth": self.max_depth,
            "avg_service_s": round(self._avg_service_s, 4),
            "retry_after_s": round(self.retry_after_s(), 3),
            "quota_rate": self.quota_rate,
            "quota_burst": self.quota_burst,
            "counters": dict(self.counters),
            "clients": {
                cid: {
                    "weight": state.weight,
                    "backlog": state.backlog(),
                    "pass": round(state.pass_value, 4),
                    "tokens": (
                        round(state.bucket.tokens, 3)
                        if state.bucket is not None
                        else None
                    ),
                    **state.counters,
                }
                for cid, state in sorted(self._clients.items())
            },
        }
