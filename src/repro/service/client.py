"""Synchronous client for the solve daemon.

One :class:`DaemonClient` owns one Unix-socket connection to a
:class:`~repro.service.daemon.SolveDaemon` and speaks the same
length-prefixed JSON framing as the worker protocol.  It is the
transport behind ``repro client`` and ``core.api``'s
``isolation="daemon"`` dispatch; use one instance per thread.

Admission rejections surface as the typed
:class:`~repro.service.scheduler.ServiceOverloaded` carrying the
daemon's retry-after hint; :meth:`DaemonClient.submit_task` can honor
that hint itself with ``retries=``.
"""

from __future__ import annotations

import socket
import time
from pathlib import Path
from typing import Any, Dict, Optional

from ..runtime.errors import ReproError
from .protocol import Task, read_frame, write_frame
from .scheduler import DEFAULT_PRIORITY, ServiceOverloaded

__all__ = ["DaemonClient", "DaemonError"]


class DaemonError(ReproError):
    """The daemon cannot start/serve, is unreachable, or answered with
    a non-overload error (the CLI maps this to exit code 2)."""


class DaemonClient:
    """Blocking length-prefixed-JSON client for one daemon socket."""

    def __init__(
        self,
        socket_path: Path,
        client_id: str = "anon",
        timeout_s: float = 300.0,
    ) -> None:
        self.socket_path = Path(socket_path)
        self.client_id = client_id
        self.timeout_s = timeout_s
        self._sock: Optional[socket.socket] = None
        self._fp = None

    # -- connection ------------------------------------------------------

    def _connect(self) -> None:
        if self._fp is not None:
            return
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout_s)
        try:
            sock.connect(str(self.socket_path))
        except OSError as e:
            sock.close()
            raise DaemonError(
                f"cannot reach daemon at {self.socket_path}: {e} "
                f"(is `repro serve` running?)"
            ) from e
        self._sock = sock
        self._fp = sock.makefile("rwb")

    def close(self) -> None:
        if self._fp is not None:
            try:
                self._fp.close()
            except OSError:  # pragma: no cover
                pass
            self._fp = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:  # pragma: no cover
                pass
            self._sock = None

    def __enter__(self) -> "DaemonClient":
        self._connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request/response ------------------------------------------------

    def request(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """One request frame, one response frame."""
        self._connect()
        try:
            write_frame(self._fp, frame)
            reply = read_frame(self._fp)
        except (OSError, ValueError) as e:
            self.close()
            raise DaemonError(f"daemon connection failed: {e}") from e
        if reply is None:
            self.close()
            raise DaemonError(
                "daemon closed the connection mid-request "
                "(crashed or draining?)"
            )
        return reply

    def ping(self) -> Dict[str, Any]:
        return self.request({"type": "ping"})

    def status(self) -> Dict[str, Any]:
        reply = self.request({"type": "status"})
        if reply.get("type") != "status":
            raise DaemonError(f"unexpected status reply: {reply}")
        return reply["status"]

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit 0 (what SIGTERM does)."""
        self.request({"type": "shutdown"})

    def submit_task(
        self,
        task: Task,
        priority: int = DEFAULT_PRIORITY,
        retries: int = 0,
        max_wait_s: float = 30.0,
    ) -> Dict[str, Any]:
        """Submit one task and wait for its result payload.

        On :class:`ServiceOverloaded`, retries up to ``retries`` times
        after sleeping the daemon's own retry-after hint (capped by
        ``max_wait_s``); exhausting the budget re-raises.
        """
        attempt = 0
        while True:
            reply = self.request(
                {
                    "type": "submit",
                    "client": self.client_id,
                    "priority": int(priority),
                    "task": task.to_dict(),
                }
            )
            rtype = reply.get("type")
            if rtype == "result":
                return reply
            if (
                rtype == "error"
                and reply.get("error") == "ServiceOverloaded"
            ):
                exc = ServiceOverloaded(
                    reply.get("reason", "queue-full"),
                    float(reply.get("retry_after_s") or 0.5),
                    client=self.client_id,
                )
                if attempt >= retries:
                    raise exc
                attempt += 1
                time.sleep(min(max_wait_s, max(0.05, exc.retry_after_s)))
                continue
            raise DaemonError(
                f"daemon rejected task: {reply.get('detail') or reply}"
            )
