"""Crash-isolated solver service (DESIGN.md §9).

The paper's evaluation runs each MONA query as an external, killable
process; this package gives the reproduction the same property.  In-
process execution (PR 2's :class:`~repro.runtime.ResourceGuard` and
degradation ladder) handles *cooperative* failure — a limit a running
solver can notice and report.  ``repro.service`` handles the *non-
cooperative* kind: runaway BDD growth that outruns every probe, C-level
recursion blowouts, or a fault-injected corruption that escapes the
ladder and takes the interpreter down with it.

Seven layers:

* :mod:`repro.service.protocol` — length-prefixed JSON framing, the
  serializable :class:`Task`/:class:`Limits` model, and content-hash
  task keys;
* :mod:`repro.service.worker` — one solve per sandboxed child process
  (``resource.setrlimit`` on CPU/address space, wall-clock kill from the
  parent); a dying child yields a structured :class:`WorkerOutcome`
  (signal, rss, phase from the last heartbeat) instead of tearing down
  the parent;
* :mod:`repro.service.supervisor` — a bounded worker pool with per-task
  retries (exponential backoff + deterministic jitter, retry budget,
  crash/resource/verdict outcome classes) and a circuit breaker that
  falls back to the bounded-only ladder rung when symbolic workers
  crash repeatedly;
* :mod:`repro.service.store` + :mod:`repro.service.batch` — a durable
  checksummed result store (atomic write-rename, corruption quarantine)
  and an append-only journal enabling ``repro batch --resume``: a run
  killed with SIGKILL mid-way restarts and recomputes only the verdicts
  that were never journaled;
* :mod:`repro.service.scheduler` — admission control for the daemon:
  bounded queue with typed :class:`ServiceOverloaded` rejections and
  retry-after hints, priority-aware load shedding, per-client
  token-bucket quotas, and stride-scheduled weighted fairness;
* :mod:`repro.service.sharedcache` — the shared cross-run sqlite cache
  tier (checksummed rows, corruption quarantine, WAL crash safety)
  that :class:`repro.engine.cache.ResultCache` uses as a backend;
* :mod:`repro.service.daemon` + :mod:`repro.service.client` — the
  long-lived multi-tenant solve daemon behind ``repro serve`` (DESIGN.md
  §11) and its blocking socket client (``repro client``,
  ``core.api``'s ``isolation="daemon"``).
"""

from .batch import BatchError, BatchReport, load_manifest, run_batch
from .client import DaemonClient
from .daemon import DaemonConfig, DaemonError, SolveDaemon, serve
from .protocol import Limits, Task, task_key
from .scheduler import FairScheduler, ServiceOverloaded, TokenBucket
from .sharedcache import SharedCache
from .store import Journal, ResultStore
from .supervisor import (
    CircuitBreaker,
    RetryPolicy,
    SupervisedResult,
    Supervisor,
)
from .worker import (
    WorkerOutcome,
    run_case_isolated,
    run_task,
    run_verification_isolated,
)

__all__ = [
    "Task",
    "Limits",
    "task_key",
    "WorkerOutcome",
    "run_task",
    "run_case_isolated",
    "run_verification_isolated",
    "Supervisor",
    "SupervisedResult",
    "RetryPolicy",
    "CircuitBreaker",
    "ResultStore",
    "Journal",
    "BatchError",
    "BatchReport",
    "load_manifest",
    "run_batch",
    "FairScheduler",
    "ServiceOverloaded",
    "TokenBucket",
    "SharedCache",
    "SolveDaemon",
    "DaemonConfig",
    "DaemonError",
    "DaemonClient",
    "serve",
]
