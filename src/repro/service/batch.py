"""Resumable batch runs: ``repro batch manifest.json``.

A **manifest** is a JSON file describing the tasks of one batch::

    {
      "defaults": {"options": {"max_internal": 3}, "limits": {"wall_s": 60}},
      "tasks": [
        {"name": "t1", "kind": "check-race", "source": "Main(n) {...}"},
        {"name": "t2", "kind": "check-race", "file": "prog.retreet"},
        {"name": "t3", "kind": "check-fusion",
         "file": "a.retreet", "file2": "b.retreet",
         "map_overrides": {"s1": ["s1", "s2"]}},
        {"name": "f1", "kind": "fuzz-case",
         "case": {"kind": "race", "source": "...", "max_internal": 2},
         "oracle": {"sym_deadline_s": 5}}
      ]
    }

``file``/``file2`` paths resolve relative to the manifest; sources are
inlined at load time so the *run directory* is self-contained.  Each
run directory holds the resolved manifest copy (plus its hash), the
checksummed result store, the journal, and two outputs:

* ``results.json`` — the **deterministic verdict set**: one record per
  task (name, kind, key, verdict, holds, ok), byte-identical between an
  uninterrupted run and a ``kill -9``'d run resumed with ``--resume``;
* ``report.json`` — timings, attempts, and worker diagnostics (not
  required to be reproducible).

``--resume RUN_DIR`` replays the journal, re-verifies each journaled
verdict against the checksummed store, and recomputes only what is
missing: completed work survives any crash of the *driver* as well as
of the workers.  Failed tasks (crashes that exhausted their retry
budget) are journaled as events but never marked done, so a resume
gives them a fresh chance.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field, replace as dc_replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .protocol import Limits, Task, canonical_json, task_key
from .store import Journal, ResultStore, payload_digest
from .supervisor import RetryPolicy, SupervisedResult, Supervisor
from .worker import task_for_case, task_for_fusion, task_for_race

__all__ = ["BatchError", "BatchReport", "load_manifest", "run_batch"]


class BatchError(ValueError):
    """A malformed manifest or an unusable run directory (a *usage*
    error — the CLI maps it to exit code 2)."""


# ----------------------------------------------------------------------
# Manifest loading


def _read_source(entry: Dict[str, Any], key: str, base: Path, name: str) -> str:
    fkey = "file" if key == "source" else "file2"
    inline = entry.get(key)
    if inline is not None:
        return inline
    fname = entry.get(fkey)
    if fname is None:
        raise BatchError(f"task {name!r} needs {key!r} or {fkey!r}")
    path = (base / fname).resolve()
    try:
        return path.read_text(encoding="utf-8")
    except OSError as e:
        raise BatchError(f"task {name!r}: cannot read {path}: {e}") from e


def _merged(defaults: Dict[str, Any], entry: Dict[str, Any], key: str) -> Dict[str, Any]:
    out = dict(defaults.get(key) or {})
    out.update(entry.get(key) or {})
    return out


def load_manifest(path: Path) -> List[Task]:
    """Parse a manifest into fully-resolved (source-inlined) tasks."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as e:
        raise BatchError(f"cannot read manifest {path}: {e}") from e
    except ValueError as e:
        raise BatchError(f"manifest {path} is not JSON: {e}") from e
    if not isinstance(data, dict) or not isinstance(data.get("tasks"), list):
        raise BatchError(f"manifest {path} needs a top-level 'tasks' list")
    defaults = data.get("defaults") or {}
    base = path.parent
    tasks: List[Task] = []
    seen_names = set()
    for i, entry in enumerate(data["tasks"]):
        name = entry.get("name") or f"task-{i}"
        if name in seen_names:
            raise BatchError(f"duplicate task name {name!r} in manifest")
        seen_names.add(name)
        kind = entry.get("kind")
        options = _merged(defaults, entry, "options")
        limits = Limits.from_dict(_merged(defaults, entry, "limits"))
        if kind == "check-race":
            tasks.append(task_for_race(
                source=_read_source(entry, "source", base, name),
                entry=entry.get("entry", "Main"),
                options=options,
                limits=limits,
                name=name,
            ))
        elif kind == "check-fusion":
            task = task_for_fusion(
                source=_read_source(entry, "source", base, name),
                source2=_read_source(entry, "source2", base, name),
                entry=entry.get("entry", "Main"),
                options=options,
                map_overrides=entry.get("map_overrides"),
                limits=limits,
                name=name,
                name2=entry.get("name2", f"{name}-fused"),
            )
            tasks.append(dc_replace(task, name=name))
        elif kind == "fuzz-case":
            case = dict(entry.get("case") or {})
            if "source" not in case and "kind" not in case:
                raise BatchError(f"task {name!r}: fuzz-case needs a 'case'")
            case.setdefault("name", name)
            payload: Dict[str, Any] = {"case": case}
            oracle = _merged(defaults, entry, "oracle")
            if oracle:
                payload["oracle"] = oracle
            tasks.append(Task(
                kind="fuzz-case", payload=payload, name=name, limits=limits,
            ))
        else:
            raise BatchError(
                f"task {name!r}: unknown kind {kind!r} "
                "(want check-race | check-fusion | fuzz-case)"
            )
    if not tasks:
        raise BatchError(f"manifest {path} has no tasks")
    return tasks


# ----------------------------------------------------------------------
# Result-cache plumbing


def _query_for_task(task: Task):
    """The Query-IR object behind a ``check-*`` task, or ``None``.

    Any parse/validation/mapping problem makes the task uncacheable (it
    is simply dispatched to a worker, which reports the real error);
    the cache must never turn a malformed task into a crash here.
    """
    if task.kind not in ("check-race", "check-fusion"):
        return None
    from ..engine import EquivalenceQuery, RaceQuery
    from ..lang.parser import parse_program
    from ..lang.validate import validate

    payload = task.payload
    opts = payload.get("options") or {}
    scope = opts.get("max_internal", 4)
    entry = payload.get("entry", "Main")
    try:
        if task.kind == "check-race":
            p = parse_program(
                payload["source"], name=payload.get("name", "program"),
                entry=entry,
            )
            validate(p)
            return RaceQuery(program=p, scope=scope)
        p = parse_program(
            payload["source"], name=payload.get("name", "original"),
            entry=entry,
        )
        q = parse_program(
            payload["source2"], name=payload.get("name2", "fused"),
            entry=entry,
        )
        validate(p)
        validate(q)
        if payload.get("mapping") is not None:
            mapping = {k: set(v) for k, v in payload["mapping"].items()}
        else:
            from ..core.transform import correspondence_by_key

            overrides = {
                k: set(v)
                for k, v in (payload.get("map_overrides") or {}).items()
            }
            mapping = correspondence_by_key(
                p, q, overrides=overrides, strict=True
            )
        return EquivalenceQuery(
            program=p, program2=q, mapping=mapping, scope=scope
        )
    except Exception:
        return None


# ----------------------------------------------------------------------
# Verdict extraction


def _task_verdict(res: SupervisedResult) -> Dict[str, Any]:
    """The deterministic per-task record that lands in results.json."""
    out: Dict[str, Any] = {
        "name": res.task.name,
        "kind": res.task.kind,
        "key": res.key,
    }
    if res.final.status == "ok":
        value = res.final.value or {}
        if res.task.kind == "fuzz-case":
            mismatches = value.get("mismatches") or []
            out["verdict"] = "conformant" if not mismatches else "mismatch"
            out["holds"] = not mismatches
            out["mismatch_kinds"] = sorted({m["kind"] for m in mismatches})
        else:
            out["verdict"] = value.get("verdict", "unknown")
            out["holds"] = bool(value.get("holds"))
        out["ok"] = True
    else:
        out["verdict"] = "unknown"
        out["holds"] = False
        out["ok"] = False
        out["outcome_class"] = res.final.outcome_class
    return out


# ----------------------------------------------------------------------
# The batch runner


@dataclass
class BatchReport:
    run_dir: Path
    total: int = 0
    resumed: int = 0
    ran: int = 0
    violations: int = 0
    unknown: int = 0
    failed: int = 0
    breaker_open: bool = False
    results: List[Dict[str, Any]] = field(default_factory=list)
    journal_skipped_lines: int = 0
    quarantined: int = 0
    cache_hits: int = 0
    cache: Dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def exit_code(self) -> int:
        """Uniform CLI codes: 0 ok / 1 violation / 2 error / 3 unknown."""
        if self.failed:
            return 2
        if self.violations:
            return 1
        if self.unknown:
            return 3
        return 0

    def summary(self) -> str:
        lines = [
            f"batch: {self.total} task(s) — {self.resumed} resumed from "
            f"journal, {self.ran} computed, in {self.elapsed:.1f}s"
        ]
        for r in self.results:
            lines.append(f"  {r['name']}: {r['verdict']}"
                         + ("" if r.get("ok") else " (worker failed)"))
        if self.failed:
            lines.append(f"  {self.failed} task(s) failed irrecoverably")
        if self.violations:
            lines.append(f"  {self.violations} violation(s) found")
        if self.unknown:
            lines.append(f"  {self.unknown} task(s) undecided")
        if self.breaker_open:
            lines.append(
                "  circuit breaker OPEN: symbolic workers crashed "
                "repeatedly; later tasks ran bounded-only"
            )
        if self.quarantined:
            lines.append(
                f"  {self.quarantined} corrupt store record(s) quarantined "
                "and recomputed"
            )
        if self.cache_hits:
            lines.append(
                f"  {self.cache_hits} verdict(s) reused from the result "
                "cache"
            )
        return "\n".join(lines)


def _atomic_write(path: Path, text: str) -> None:
    tmp = path.with_suffix(path.suffix + f".tmp.{os.getpid()}")
    tmp.write_text(text, encoding="utf-8")
    os.replace(tmp, path)


def _manifest_fingerprint(tasks: List[Task]) -> str:
    return payload_digest([t.to_dict() for t in tasks])


def run_batch(
    manifest_path: Path,
    run_dir: Path,
    jobs: int = 1,
    isolation: str = "process",
    resume: bool = False,
    policy: Optional[RetryPolicy] = None,
    log: Optional[Callable[[str], None]] = None,
) -> BatchReport:
    """Run (or resume) a batch; see the module docstring for layout."""
    t0 = time.perf_counter()
    say = log or (lambda _msg: None)
    tasks = load_manifest(manifest_path)
    fingerprint = _manifest_fingerprint(tasks)

    run_dir = Path(run_dir)
    meta_path = run_dir / "meta.json"
    if resume:
        if not meta_path.exists():
            raise BatchError(
                f"--resume: {run_dir} is not a batch run directory "
                "(no meta.json)"
            )
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
        if meta.get("manifest_sha256") != fingerprint:
            raise BatchError(
                "--resume: manifest does not match the one this run "
                "directory was created from"
            )
    else:
        run_dir.mkdir(parents=True, exist_ok=True)
        if meta_path.exists():
            raise BatchError(
                f"{run_dir} already holds a batch run; pass --resume to "
                "continue it or choose a fresh --run-dir"
            )
        _atomic_write(
            run_dir / "manifest.json",
            json.dumps(
                [t.to_dict() for t in tasks], sort_keys=True, indent=1
            ) + "\n",
        )
        _atomic_write(
            meta_path,
            canonical_json({"manifest_sha256": fingerprint, "version": 1})
            + "\n",
        )

    store = ResultStore(run_dir)
    journal = Journal(run_dir / "journal.jsonl")
    replayed = journal.replay()

    # A journal line is only a pointer; the checksummed store record is
    # the evidence.  Missing/corrupt records are recomputed.
    done: Dict[str, SupervisedResult] = {}
    journaled_keys = {
        rec["key"]
        for rec in replayed.records
        if rec.get("event") == "verdict" and "key" in rec
    }
    keys = {task_key(t): t for t in tasks}
    from .worker import WorkerOutcome

    for key, task in keys.items():
        if key not in journaled_keys:
            continue
        payload = store.get(key)
        if payload is None:
            say(f"journaled result for {task.name} missing or corrupt; "
                "recomputing")
            continue
        done[key] = SupervisedResult(
            task=task,
            key=key,
            final=WorkerOutcome(status="ok", value=payload),
            attempts=[],
        )

    pending = [t for t in tasks if task_key(t) not in done]
    say(
        f"batch: {len(tasks)} task(s), {len(done)} already journaled, "
        f"{len(pending)} to run (isolation={isolation}, jobs={jobs})"
    )

    # Content-addressed verdict cache: keyed by *query* hash (what is
    # asked), unlike the run's result store, which is keyed by task
    # hash.  Persisted inside the run directory so a rerun over the same
    # directory — and any other run pointed at it — reuses decided
    # verdicts whose deciding engine's capabilities allow it.
    from ..core.api import _decided_engine
    from ..engine import ResultCache, plan_for

    cache = ResultCache(run_dir / "cache")
    queries: Dict[str, tuple] = {}
    for t in pending:
        query = _query_for_task(t)
        if query is None:
            continue
        opts = t.payload.get("options") or {}
        try:
            plan = plan_for(opts.get("engine", "auto"))
        except ValueError:
            continue
        queries[task_key(t)] = (
            query, plan, bool(opts.get("check_bisim", True))
        )

    supervisor = Supervisor(policy=policy, isolation=isolation)
    computed: Dict[str, SupervisedResult] = {}
    cached: Dict[str, SupervisedResult] = {}

    def on_result(res: SupervisedResult) -> None:
        if res.ok:
            store.put(res.key, res.final.value or {})
            journal.append({
                "event": "verdict",
                "key": res.key,
                "name": res.task.name,
                "verdict": _task_verdict(res)["verdict"],
                "attempts": len(res.attempts),
            })
            info = queries.get(res.key)
            if info is not None and res.key not in cached:
                query, _plan, _allow = info
                value = res.final.value or {}
                details = value.get("details") or {}
                decided_by = details.get("decided_by")
                cache.store(
                    query,
                    value.get("verdict", "unknown"),
                    bool(value.get("holds")),
                    decided_by,
                    _decided_engine(
                        decided_by, details.get("attempts") or []
                    ),
                    value,
                )
        else:
            journal.append({
                "event": "failed",
                "key": res.key,
                "name": res.task.name,
                "outcome": res.final.outcome_class,
                "detail": res.final.describe(),
                "attempts": len(res.attempts),
            })
        computed[res.key] = res
        say(f"  {res.task.name}: "
            + (_task_verdict(res)["verdict"] if res.ok
               else f"FAILED ({res.final.describe()})"))

    for t in pending:
        key = task_key(t)
        info = queries.get(key)
        if info is None:
            continue
        query, plan, allow_bisim = info
        record = cache.lookup(query, plan, allow_bisim=allow_bisim)
        if record is None:
            continue
        res = SupervisedResult(
            task=t,
            key=key,
            final=WorkerOutcome(status="ok", value=record["result"]),
            attempts=[],
        )
        cached[key] = res
        on_result(res)
    pending = [t for t in pending if task_key(t) not in cached]

    supervisor.map(pending, jobs=jobs, on_result=on_result)

    report = BatchReport(run_dir=run_dir)
    report.total = len(tasks)
    report.resumed = len(done)
    report.ran = len(computed) - len(cached)
    report.cache_hits = len(cached)
    report.cache = cache.stats.as_dict()
    report.breaker_open = supervisor.breaker.open
    report.journal_skipped_lines = replayed.skipped_lines
    report.quarantined = len(store.quarantined)

    attempts_out: Dict[str, Any] = {}
    for task in tasks:
        key = task_key(task)
        res = done.get(key) or computed.get(key)
        assert res is not None
        verdict = _task_verdict(res)
        report.results.append(verdict)
        if not verdict["ok"]:
            report.failed += 1
        elif verdict["verdict"] == "unknown":
            report.unknown += 1
        elif not verdict["holds"]:
            report.violations += 1
        attempts_out[task.name] = {
            "resumed": key in done,
            "attempts": res.attempts,
            "retries": res.retries,
            "degraded": res.degraded,
            "elapsed": round(res.final.elapsed, 6),
            "status": res.final.status,
        }

    report.elapsed = time.perf_counter() - t0
    _atomic_write(
        run_dir / "results.json",
        json.dumps(report.results, sort_keys=True, indent=1) + "\n",
    )
    _atomic_write(
        run_dir / "report.json",
        json.dumps(
            {
                "total": report.total,
                "resumed": report.resumed,
                "ran": report.ran,
                "failed": report.failed,
                "violations": report.violations,
                "unknown": report.unknown,
                "breaker_open": report.breaker_open,
                "breaker": supervisor.breaker.as_dict(),
                "retry_budget": {
                    "per_task_max": supervisor.policy.max_attempts - 1,
                    "spent_total": sum(
                        r.retries for r in computed.values()
                    ),
                },
                "journal_skipped_lines": report.journal_skipped_lines,
                "quarantined": report.quarantined,
                "cache_hits": report.cache_hits,
                "cache": report.cache,
                "elapsed": round(report.elapsed, 3),
                "tasks": attempts_out,
            },
            sort_keys=True,
            indent=1,
        ) + "\n",
    )
    return report
