"""Bounded explicit checker: the paper's queries decided exactly on a finite
scope of tree shapes.

The MSO abstraction of §4 talks only about tree *shape* and condition
labels, so checking every shape up to a size bound is an exhaustive search
of the abstraction's models on that scope.  This engine serves as

* the reference implementation the symbolic (automata) engine is
  differentially tested against,
* the fallback when the symbolic engine exceeds its budget, and
* the baseline engine in the benchmarks.

Verdicts are definite for counterexamples ("found") and scope-bounded for
"not found" — the same asymmetry MONA-based verification has for its own
soundness direction (negative answers there can be spurious; positive
answers here are bounded).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..lang import ast as A
from ..runtime import ResourceGuard
from ..trees.generators import all_shapes
from ..trees.heap import Tree
from .configurations import (
    Configuration,
    ProgramModel,
    consistent_divergences,
    dependence_cells,
    enumerate_configurations,
    ordered,
    parallel,
)

__all__ = [
    "BoundedVerdict",
    "RaceWitness",
    "ConflictWitness",
    "default_scope",
    "check_data_race_bounded",
    "check_conflict_bounded",
    "dependent_ordered_endpoints",
]


@dataclass
class RaceWitness:
    tree: Tree
    c1: Configuration
    c2: Configuration
    cells: List[str]

    def __str__(self) -> str:
        return (
            f"race on {self.cells} between {self.c1} and {self.c2} "
            f"(tree size {self.tree.size})"
        )


@dataclass
class ConflictWitness:
    tree: Tree
    endpoints: Tuple[Tuple[str, str], Tuple[str, str]]  # ((q1,x1),(q2,x2))
    p_order: str
    p_prime_order: str

    def __str__(self) -> str:
        (q1, x1), (q2, x2) = self.endpoints
        return (
            f"dependence ({q1}@{x1 or 'root'}) -> ({q2}@{x2 or 'root'}) is "
            f"{self.p_order} in P but {self.p_prime_order} in P' "
            f"(tree size {self.tree.size})"
        )


@dataclass
class BoundedVerdict:
    query: str
    found: bool
    witness: Optional[object] = None
    trees_checked: int = 0
    max_configs: int = 0
    elapsed: float = 0.0

    @property
    def holds(self) -> bool:
        """True when the verified property (race-freeness / equivalence)
        holds on the checked scope."""
        return not self.found

    def __str__(self) -> str:
        status = "COUNTEREXAMPLE" if self.found else "holds on scope"
        return (
            f"[bounded] {self.query}: {status} "
            f"({self.trees_checked} trees, max {self.max_configs} configs, "
            f"{self.elapsed:.3f}s)"
        )


def default_scope(max_internal: int = 4) -> List[Tree]:
    """Every tree shape with up to ``max_internal`` internal nodes."""
    out: List[Tree] = []
    for n in range(max_internal + 1):
        out.extend(all_shapes(n))
    return out


def check_data_race_bounded(
    program: A.Program,
    scope: Optional[Iterable[Tree]] = None,
    max_internal: int = 4,
    guard: Optional[ResourceGuard] = None,
) -> BoundedVerdict:
    """Decide ``DataRace[[P]]`` on the scope (Thm 2 instantiated finitely).

    An optional :class:`~repro.runtime.ResourceGuard` cancels the search
    (``DeadlineExceeded``) so the degradation ladder can retry at a
    smaller scope; with no guard the search always runs to completion.
    """
    model = ProgramModel(program)
    t0 = time.perf_counter()
    verdict = BoundedVerdict(query=f"data-race({program.name})", found=False)
    for tree in scope if scope is not None else default_scope(max_internal):
        if guard is not None:
            guard.check_now("bounded")
        configs = enumerate_configurations(model, tree)
        verdict.trees_checked += 1
        verdict.max_configs = max(verdict.max_configs, len(configs))
        groups = _group_by_endpoint(configs)
        for (q1, x1), (q2, x2), _reqs, cells in _conflicting_endpoints(
            model, tree, groups
        ):
            for c1 in groups[(q1, x1)]:
                for c2 in groups[(q2, x2)]:
                    if c1 is c2:
                        continue
                    if guard is not None:
                        guard.tick("bounded")
                    if parallel(model, c1, c2) and dependence_cells(
                        model, tree, c1, c2
                    ):
                        verdict.found = True
                        verdict.witness = RaceWitness(tree, c1, c2, cells)
                        verdict.elapsed = time.perf_counter() - t0
                        return verdict
    verdict.elapsed = time.perf_counter() - t0
    return verdict


def _group_by_endpoint(
    configs: Sequence[Configuration],
) -> Dict[Tuple[str, str], List[Configuration]]:
    groups: Dict[Tuple[str, str], List[Configuration]] = {}
    for c in configs:
        groups.setdefault((c.last_sid, c.last_node), []).append(c)
    return groups


def cell_class(kind: str, name: str) -> Tuple:
    """Program-independent equivalence class of a cell.

    Field names survive transformations unchanged; return-value and local
    variable cells are renamed by fusion (functions merge), so they share a
    single "value" class — the correspondence mapping, not the name,
    identifies them across programs."""
    if kind == "field":
        return ("field", name)
    return ("value",)


def _conflicting_endpoints(
    model: ProgramModel,
    tree: Tree,
    groups: Mapping[Tuple[str, str], List[Configuration]],
):
    """Endpoint pairs whose blocks statically conflict at a shared cell.

    Yields ``(e1, e2, reqs, cells)`` where ``reqs`` is a set of access
    requirements ``(class, need1, need2)`` with need in {"w", "rw"} — the
    access each endpoint's block must perform for this conflict."""
    keys = list(groups)
    for i, (q1, x1) in enumerate(keys):
        b1 = model.table.block(q1)
        for q2, x2 in keys[i:]:
            b2 = model.table.block(q2)
            cells = []
            reqs = set()
            a1, a2 = model.rw.access(b1), model.rw.access(b2)
            for d1, d2, kind, name in model.rw.conflict_offsets(b1, b2):
                p1, p2 = x1 + d1, x2 + d2
                if p1 != p2 or p1 not in tree:
                    continue
                if kind == "field" and tree.node_at(p1).is_nil:
                    continue
                cells.append(f"{kind}:{name}@{p1 or 'root'}")
                clazz = cell_class(kind, name)
                w1 = any(
                    (c.kind, c.name) == (kind, name) and c.dirs == d1
                    for c in a1.writes
                )
                w2 = any(
                    (c.kind, c.name) == (kind, name) and c.dirs == d2
                    for c in a2.writes
                )
                if w2:
                    reqs.add((clazz, "rw", "w"))
                if w1:
                    reqs.add((clazz, "w", "rw"))
            if cells:
                yield (q1, x1), (q2, x2), reqs, cells


def dependent_ordered_endpoints(
    model: ProgramModel,
    tree: Tree,
    configs: Sequence[Configuration],
) -> Dict[
    Tuple[Tuple[str, str], Tuple[str, str]], Set[Tuple]
]:
    """All ``((q_first, x_first), (q_second, x_second))`` such that some
    dependent configuration pair ends there with the first strictly ordered
    before the second (the building block of ``Conflict[[P, P']]``).

    Maps each ordered pair to its access requirements (see
    :func:`_conflicting_endpoints`), oriented first→second."""
    out: Dict[Tuple[Tuple[str, str], Tuple[str, str]], Set[Tuple]] = {}
    groups = _group_by_endpoint(configs)
    for (q1, x1), (q2, x2), reqs, _cells in _conflicting_endpoints(
        model, tree, groups
    ):
        fwd = rev = False
        for c1 in groups[(q1, x1)]:
            for c2 in groups[(q2, x2)]:
                if c1 is c2:
                    continue
                if not dependence_cells(model, tree, c1, c2):
                    continue
                fwd = fwd or ordered(model, c1, c2)
                rev = rev or ordered(model, c2, c1)
                if fwd and rev:
                    break
            if fwd and rev:
                break
        if fwd:
            out.setdefault(((q1, x1), (q2, x2)), set()).update(reqs)
        if rev:
            swapped = {(clazz, n2, n1) for clazz, n1, n2 in reqs}
            out.setdefault(((q2, x2), (q1, x1)), set()).update(swapped)
    return out


def ordered_endpoint_pairs(
    model: ProgramModel,
    configs: Sequence[Configuration],
    of_interest: Optional[Set[Tuple[Tuple[str, str], Tuple[str, str]]]] = None,
) -> Set[Tuple[Tuple[str, str], Tuple[str, str]]]:
    """``((q_a, x_a), (q_b, x_b))`` pairs for which some coexisting
    configuration pair ends there with the first ordered before the second.

    ``of_interest`` restricts the search to the given endpoint pairs (both
    orders are still reported for each)."""
    out: Set[Tuple[Tuple[str, str], Tuple[str, str]]] = set()
    groups = _group_by_endpoint(configs)
    if of_interest is not None:
        wanted = of_interest | {(b, a) for a, b in of_interest}
        pairs = [
            (e1, e2) for e1, e2 in wanted if e1 in groups and e2 in groups
        ]
    else:
        keys = list(groups)
        pairs = [(e1, e2) for e1 in keys for e2 in keys]
    for e1, e2 in pairs:
        if (e1, e2) in out:
            continue
        for c1 in groups[e1]:
            if (e1, e2) in out:
                break
            for c2 in groups[e2]:
                if c1 is c2:
                    continue
                if ordered(model, c1, c2):
                    out.add((e1, e2))
                    break
    return out


def block_touches(model: ProgramModel, sid: str, clazz: Tuple, need: str) -> bool:
    """Does block ``sid`` perform the required access on the cell class?"""
    acc = model.rw.access(model.table.block(sid))
    cells = acc.writes if need == "w" else acc.readwrites
    for c in cells:
        if cell_class(c.kind, c.name) == clazz:
            return True
    return False


def map_endpoint_pairs(
    pairs: Mapping[Tuple[Tuple[str, str], Tuple[str, str]], Set[Tuple]],
    mapping: Mapping[str, Set[str]],
    model_q: ProgramModel,
) -> Dict[
    Tuple[Tuple[str, str], Tuple[str, str]],
    List[Tuple[Tuple[str, str], Tuple[str, str]]],
]:
    """Translate P endpoint pairs to their P' images under the block
    correspondence, keeping only images whose blocks actually perform the
    conflicting accesses (a split image block that only carries *other*
    roles of the original block is not this dependence's image)."""
    out = {}
    for ((q1, x1), (q2, x2)), reqs in pairs.items():
        images = []
        for q1m in mapping.get(q1, set()):
            for q2m in mapping.get(q2, set()):
                ok = any(
                    block_touches(model_q, q1m, clazz, n1)
                    and block_touches(model_q, q2m, clazz, n2)
                    for clazz, n1, n2 in reqs
                )
                if ok:
                    images.append(((q1m, x1), (q2m, x2)))
        out[((q1, x1), (q2, x2))] = images
    return out


def check_conflict_bounded(
    p: A.Program,
    p_prime: A.Program,
    mapping: Mapping[str, Set[str]],
    scope: Optional[Iterable[Tree]] = None,
    max_internal: int = 4,
    guard: Optional[ResourceGuard] = None,
) -> BoundedVerdict:
    """Decide ``Conflict[[P, P']]`` on the scope (Thm 3 instantiated
    finitely).

    Following the paper, the two programs are built on the same straight-line
    blocks, so dependences (which blocks touch which cells) are computed once
    on ``P``; only the *schedule* (the Ordered relation over configurations)
    is re-derived on ``P'``.  ``mapping`` sends each non-call sid of ``P`` to
    the non-call sid(s) of ``P'`` carrying that block's work (one-to-many
    when a transformation splits a block's roles).

    A conflict is a dependence ordered first→second in ``P`` whose image in
    ``P'`` can be scheduled second→first — exactly ``Conflict[[P, P']]``.
    """
    model_p = ProgramModel(p)
    model_q = ProgramModel(p_prime)
    t0 = time.perf_counter()
    verdict = BoundedVerdict(
        query=f"conflict({p.name} vs {p_prime.name})", found=False
    )
    for tree in scope if scope is not None else default_scope(max_internal):
        if guard is not None:
            guard.check_now("bounded")
        cp = enumerate_configurations(model_p, tree)
        cq = enumerate_configurations(model_q, tree)
        verdict.trees_checked += 1
        verdict.max_configs = max(verdict.max_configs, len(cp), len(cq))
        dep_p = dependent_ordered_endpoints(model_p, tree, cp)
        images = map_endpoint_pairs(dep_p, mapping, model_q)
        wanted: Set[Tuple[Tuple[str, str], Tuple[str, str]]] = set()
        for img_list in images.values():
            wanted.update(img_list)
        ord_q = ordered_endpoint_pairs(model_q, cq, of_interest=wanted)
        for (e1, e2), img_list in images.items():
            for e1m, e2m in img_list:
                if (e2m, e1m) in ord_q:
                    verdict.found = True
                    verdict.witness = ConflictWitness(
                        tree,
                        (e1, e2),
                        p_order="first -> second",
                        p_prime_order=(
                            f"second -> first via {e2m} before {e1m}"
                        ),
                    )
                    verdict.elapsed = time.perf_counter() - t0
                    return verdict
    verdict.elapsed = time.perf_counter() - t0
    return verdict
