"""Counterexample decoding and automatic replay.

The paper's evaluation "manually investigated" each MONA counterexample to
confirm it was a true positive.  We automate the investigation:

* an MSO witness (labelled tree) is decoded back into per-configuration
  label maps and matched against the bounded engine's configuration
  enumeration on the witness tree;
* a *race* witness is replayed on the concrete interpreter: the dynamic
  happens-before detector must report a race on the same field cell;
* a *conflict* witness is replayed by running both programs on seeded field
  assignments of the witness tree and comparing observable state — a
  difference confirms the transformation is genuinely wrong.

A replay that does not confirm marks the counterexample ``spurious``
(possible: the encoding is sound but incomplete, exactly as the paper
warns).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..automata.emptiness import Witness
from ..interp.races import find_races, program_races_on
from ..interp.interpreter import run
from ..lang import ast as A
from ..trees.generators import assign_fields
from ..trees.heap import Tree
from .configurations import Configuration, ProgramModel, enumerate_configurations
from .encode import ConfigTracks

__all__ = [
    "decode_labels",
    "match_configuration",
    "replay_race",
    "replay_conflict",
    "ReplayOutcome",
]


@dataclass
class ReplayOutcome:
    confirmed: bool
    detail: str


def decode_labels(
    witness: Witness, ct: ConfigTracks
) -> Dict[str, FrozenSet[str]]:
    """Extract one configuration family's L labels from a witness."""
    out: Dict[str, FrozenSet[str]] = {}
    prefix = f"{ct.prefix}.L."
    for track, nodes in witness.labels.items():
        if track.startswith(prefix) and nodes:
            out[track[len(prefix):]] = nodes
    return out


def match_configuration(
    model: ProgramModel, tree: Tree, labels: Dict[str, FrozenSet[str]]
) -> Optional[Configuration]:
    """Find a bounded-engine configuration with exactly these L labels —
    validating that the symbolic witness denotes a real Def. 2
    configuration."""
    want = {
        node: frozenset(
            sid for sid, nodes in labels.items() if node in nodes
        )
        for nodes in labels.values()
        for node in nodes
    }
    for c in enumerate_configurations(model, tree):
        if {k: v for k, v in c.labels.items() if v} == {
            k: v for k, v in want.items() if v
        }:
            return c
    return None


def replay_race(
    program: A.Program,
    tree: Tree,
    field_names: Sequence[str] = (),
    seed: int = 7,
) -> ReplayOutcome:
    """Run the program on the witness tree; confirm a dynamic race."""
    work = tree.clone()
    if field_names:
        assign_fields(work, field_names, seed=seed, value_range=(0, 5))
    try:
        races = program_races_on(program, work)
    except Exception as e:  # pragma: no cover - defensive
        return ReplayOutcome(False, f"replay failed: {e}")
    if races:
        return ReplayOutcome(
            True, f"dynamic race confirmed: {races[0]}"
        )
    return ReplayOutcome(False, "no dynamic race on the witness tree")


def replay_conflict(
    p: A.Program,
    p_prime: A.Program,
    tree: Tree,
    field_names: Sequence[str] = (),
    compare_fields: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (1, 2, 3, 5, 8),
) -> ReplayOutcome:
    """Run both programs on seeded variants of the witness tree (and, when
    the witness is too small to expose the reordering observably, on a few
    grown trees); an observable difference confirms non-equivalence."""
    from ..trees.generators import full_tree, random_tree

    candidates = [("witness", tree)]
    candidates += [(f"full({h})", full_tree(h)) for h in (2, 3)]
    candidates += [
        (f"random({s})", random_tree(7, seed=s)) for s in (11, 12)
    ]
    for label, base in candidates:
        for seed in seeds:
            work = base.clone()
            if field_names:
                assign_fields(work, field_names, seed=seed, value_range=(0, 5))
            try:
                ra = run(p, work)
                rb = run(p_prime, work)
            except Exception as e:  # pragma: no cover - defensive
                return ReplayOutcome(False, f"replay failed: {e}")
            if ra.returns != rb.returns:
                return ReplayOutcome(
                    True,
                    f"outputs differ on {label} tree (seed {seed}): "
                    f"{ra.returns} vs {rb.returns}",
                )
            fields = list(compare_fields or field_names)
            if fields and ra.field_snapshot(fields) != rb.field_snapshot(
                fields
            ):
                return ReplayOutcome(
                    True, f"heap states differ on {label} tree (seed {seed})"
                )
    return ReplayOutcome(
        False,
        "no observable difference on the witness tree or grown variants "
        "(the abstraction may be conservative)",
    )
