"""The Retreet reasoning framework (the paper's core contribution)."""

from .api import VerificationResult, check_data_race, check_equivalence
from .bisim import BisimResult, check_bisimulation
from .bounded import (
    BoundedVerdict,
    check_conflict_bounded,
    check_data_race_bounded,
    default_scope,
)
from .configurations import (
    Configuration,
    ProgramModel,
    Record,
    enumerate_configurations,
)
from .readwrite import AccessSets, Cell, ReadWriteAnalysis
from .symbolic import SymbolicVerdict, check_conflict_mso, check_data_race_mso
from .transform import (
    correspondence_by_key,
    parallelize_entry,
    sequentialize_entry,
)

__all__ = [
    "VerificationResult", "check_data_race", "check_equivalence",
    "BisimResult", "check_bisimulation",
    "BoundedVerdict", "check_conflict_bounded", "check_data_race_bounded",
    "default_scope",
    "Configuration", "ProgramModel", "Record", "enumerate_configurations",
    "AccessSets", "Cell", "ReadWriteAnalysis",
    "SymbolicVerdict", "check_conflict_mso", "check_data_race_mso",
    "correspondence_by_key", "parallelize_entry", "sequentialize_entry",
]
