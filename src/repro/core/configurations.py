"""Configurations (paper §3, Def. 2) and their relations (§4) on a concrete
tree.

A :class:`Configuration` is a call-stack snapshot: a chain of records
``(call block, node)`` starting from the pseudo-call ``main`` on the root and
ending at a non-call block.  We enumerate them directly from the
:func:`~repro.core.pathcond.transition_cases` — i.e., the same abstraction
the MSO encoding uses: per-record structural pins are checked against the
tree shape, arithmetic pins accumulate as per-node ``C_c`` label constraints,
and integer state is otherwise abstracted away.

The relation predicates (`consistent_divergences`, `ordered`, `parallel`,
`dependence`) evaluate the paper's MSO formulas on the concrete label maps,
making this module both the reference semantics for the symbolic engine and
the workhorse of the bounded checker.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from ..lang import ast as A
from ..lang.blocks import Block, BlockTable, Relation
from ..trees.heap import Tree, TreeNode
from .conditions import ConditionUniverse
from .pathcond import StructPin, TransitionCase, transition_cases
from .readwrite import ReadWriteAnalysis

__all__ = [
    "Record",
    "Configuration",
    "ProgramModel",
    "enumerate_configurations",
    "Divergence",
]

MAIN_SID = "main"


@dataclass(frozen=True)
class Record:
    """One stack record: block ``sid`` placed the callee at ``node``."""

    sid: str  # call-block sid, or "main" for the entry pseudo-call
    func: str  # the function running at ``node``
    node: str  # tree path

    def __str__(self) -> str:
        return f"({self.sid}, {self.node or 'root'})"


@dataclass
class Configuration:
    """A complete configuration with its MSO label maps."""

    records: Tuple[Record, ...]
    last_sid: str  # the final non-call block
    last_node: str
    # L: node path -> set of sids labelled there (call sids + final noncall).
    labels: Dict[str, FrozenSet[str]]
    # C pins: (node path, cid) -> bool for arithmetic conditions pinned by
    # the transitions of this configuration.
    cond_pins: Dict[Tuple[str, str], bool]

    def label_at(self, node: str) -> FrozenSet[str]:
        return self.labels.get(node, frozenset())

    def pins_at(self, node: str) -> Dict[str, bool]:
        return {
            cid: v for (n, cid), v in self.cond_pins.items() if n == node
        }

    def __str__(self) -> str:
        recs = " / ".join(str(r) for r in self.records)
        return f"[{recs} / ({self.last_sid}, {self.last_node or 'root'})]"


@dataclass(frozen=True)
class Divergence:
    """A diverging point per the ``Consistent`` predicate."""

    node: str  # z
    src_sid: str  # s — the shared record's call block
    t1: str  # next block in configuration 1
    t2: str  # next block in configuration 2


class ProgramModel:
    """Cached analyses of one program: transitions, conditions, accesses."""

    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.table = BlockTable(program)
        self.universe = ConditionUniverse(self.table)
        self.rw = ReadWriteAnalysis(self.table)
        self._cases: Dict[Tuple[str, str], List[TransitionCase]] = {}

    def cases(self, fname: str, t: Block) -> List[TransitionCase]:
        key = (fname, t.sid)
        if key not in self._cases:
            self._cases[key] = transition_cases(self.table, fname, t)
        return self._cases[key]

    def block_relation(self, a: str, b: str) -> str:
        return self.table.relation(self.table.block(a), self.table.block(b))


# ---------------------------------------------------------------------------
# Enumeration
# ---------------------------------------------------------------------------

def _resolve_shape(tree: Tree, node: str, dirs: str) -> Optional[bool]:
    """Is the node at ``node + dirs`` nil?  None if it cannot exist (below a
    nil frontier — treated as nil per the isNil closure)."""
    path = node
    cur = tree.node_at(node) if node in tree else None
    if cur is None:
        return True
    for d in dirs:
        if cur.is_nil:
            return True  # children of nil are nil
        cur = cur.child(d)
    return cur.is_nil


def _check_struct(tree: Tree, node: str, pins: Sequence[StructPin]) -> bool:
    for p in pins:
        actual = _resolve_shape(tree, node, p.dirs)
        if actual != p.is_nil:
            return False
    return True


def enumerate_configurations(
    model: ProgramModel,
    tree: Tree,
    max_configs: int = 2_000_000,
) -> List[Configuration]:
    """All valid configurations of the program on the given tree."""
    out: List[Configuration] = []
    table = model.table
    entry = model.program.entry

    def extend(
        records: List[Record],
        labels: Dict[str, FrozenSet[str]],
        pins: Dict[Tuple[str, str], bool],
    ) -> None:
        if len(out) >= max_configs:
            raise RuntimeError(f"more than {max_configs} configurations")
        rec = records[-1]
        for t in table.blocks_of(rec.func):
            for case in model.cases(rec.func, t):
                if not _check_struct(tree, rec.node, case.struct_pins):
                    continue
                new_pins = dict(pins)
                conflict = False
                for ap in case.arith_pins:
                    key = (rec.node, ap.cid)
                    if new_pins.get(key, ap.value) != ap.value:
                        conflict = True
                        break
                    new_pins[key] = ap.value
                if conflict:
                    continue
                # Per-node consistency check for the pinned node.
                node_pins = {
                    cid: v for (n, cid), v in new_pins.items() if n == rec.node
                }
                if not model.universe.compatible(node_pins):
                    continue
                if t.is_call:
                    child = rec.node + case.direction
                    # The callee runs at child; a record may sit on a nil
                    # node (its nil-branch blocks execute there) but not
                    # below the represented frontier.
                    if child not in tree:
                        continue
                    new_labels = dict(labels)
                    new_labels[child] = new_labels.get(child, frozenset()) | {
                        t.sid
                    }
                    records.append(Record(t.sid, t.callee, child))
                    extend(records, new_labels, new_pins)
                    records.pop()
                else:
                    new_labels = dict(labels)
                    new_labels[rec.node] = new_labels.get(
                        rec.node, frozenset()
                    ) | {t.sid}
                    out.append(
                        Configuration(
                            records=tuple(records),
                            last_sid=t.sid,
                            last_node=rec.node,
                            labels=new_labels,
                            cond_pins=new_pins,
                        )
                    )

    root_rec = Record(MAIN_SID, entry, "")
    extend([root_rec], {"": frozenset({MAIN_SID})}, {})
    return out


# ---------------------------------------------------------------------------
# Relations between configurations (paper Fig. 5 and the Consistent
# predicate), evaluated on concrete configurations.
# ---------------------------------------------------------------------------

def _ancestors(node: str) -> List[str]:
    """Strict ancestors of a tree path, root first."""
    return [node[:i] for i in range(len(node))]


def consistent_divergences(
    model: ProgramModel,
    c1: Configuration,
    c2: Configuration,
) -> List[Divergence]:
    """All divergences witnessing that ``c1`` and ``c2`` can coexist.

    Mirrors the MSO predicate: a node ``z`` where the records diverge after
    an identical shared prefix, with the two next-steps enabled under
    compatible condition labels.
    """
    r1, r2 = c1.records, c2.records
    k = 0
    while k < len(r1) and k < len(r2) and r1[k] == r2[k]:
        k += 1
    # Determine the diverging step of each chain, treating the final
    # non-call block as the last step.
    n1 = (
        Record(c1.last_sid, "", c1.last_node) if k == len(r1) else r1[k]
    )
    n2 = (
        Record(c2.last_sid, "", c2.last_node) if k == len(r2) else r2[k]
    )
    if k == len(r1) and k == len(r2):
        # Identical record chains: same configuration up to the last block.
        if c1.last_sid == c2.last_sid and c1.last_node == c2.last_node:
            return []  # the same configuration — no divergence
        t1_sid, t2_sid = c1.last_sid, c2.last_sid
        z = r1[-1].node
        shared_sid = r1[-1].sid
    else:
        if k == 0:
            return []  # different roots cannot happen (same program)
        t1_sid, t2_sid = n1.sid, n2.sid
        z = r1[k - 1].node
        shared_sid = r1[k - 1].sid
    if t1_sid == t2_sid:
        return []
    # The diverging blocks must belong to the shared record's function.
    b1, b2 = model.table.block(t1_sid), model.table.block(t2_sid)
    if b1.func != b2.func:
        return []
    # Condition-label compatibility on the shared prefix (ancestors of z
    # and z itself): merged pins must extend to a consistent set per node.
    for node in _ancestors(z) + [z]:
        merged = c1.pins_at(node)
        for cid, v in c2.pins_at(node).items():
            if merged.get(cid, v) != v:
                return []
            merged[cid] = v
        if not model.universe.compatible(merged):
            return []
    return [Divergence(z, shared_sid, t1_sid, t2_sid)]


def ordered(
    model: ProgramModel, c1: Configuration, c2: Configuration
) -> bool:
    """``Ordered(c1, c2)``: c1's iteration always precedes c2's."""
    return any(
        model.block_relation(d.t1, d.t2) == Relation.SEQ_BEFORE
        for d in consistent_divergences(model, c1, c2)
    )


def parallel(
    model: ProgramModel, c1: Configuration, c2: Configuration
) -> bool:
    """``Parallel(c1, c2)``: the iterations may occur in either order."""
    return any(
        model.block_relation(d.t1, d.t2) == Relation.PARALLEL
        for d in consistent_divergences(model, c1, c2)
    )


def dependence_cells(
    model: ProgramModel,
    tree: Tree,
    c1: Configuration,
    c2: Configuration,
) -> List[str]:
    """Concrete cells where the last blocks of ``c1``/``c2`` conflict."""
    q1 = model.table.block(c1.last_sid)
    q2 = model.table.block(c2.last_sid)
    out = []
    for d1, d2, kind, name in model.rw.conflict_offsets(q1, q2):
        p1, p2 = c1.last_node + d1, c2.last_node + d2
        if p1 != p2 or p1 not in tree:
            continue
        if kind == "field" and tree.node_at(p1).is_nil:
            continue  # fields live on internal nodes only
        out.append(f"{kind}:{name}@{p1 or 'root'}")
    return out
