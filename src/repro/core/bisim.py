"""Bisimulation between Retreet programs (paper Def. 3).

Two programs bisimulate when their call blocks can be related such that
related calls have equivalent path conditions to corresponding targets —
the structural precondition of the equivalence theorem (Thm 3).  The paper
enumerated candidate relations manually "following some automatable
heuristics"; we automate exactly that:

1. seed the relation from the non-call block correspondence (rule 1 of
   Def. 3), closed under the caller rule (rule 2);
2. check that every related pair of transitions agrees on direction and
   structural pins, and that arithmetic pins are consistent in multiplicity
   and polarity (condition *formulas* across programs are compared after
   normalizing variable names).

The check is a precondition filter: the decisive semantic gate is the
``Conflict`` query.  Soft mismatches (e.g. arithmetic conditions that moved
between blocks during fusion) are reported as warnings, not failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..lang import ast as A
from ..lang.blocks import Block, BlockTable
from .configurations import MAIN_SID, ProgramModel
from .pathcond import TransitionCase

__all__ = ["BisimResult", "check_bisimulation"]


@dataclass
class BisimResult:
    bisimilar: bool
    relation: Set[Tuple[str, str]] = field(default_factory=set)
    problems: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        status = "bisimilar" if self.bisimilar else "NOT bisimilar"
        return (
            f"{status} ({len(self.relation)} related call pairs, "
            f"{len(self.problems)} problems, {len(self.warnings)} warnings)"
        )


def _callers_of_func(table: BlockTable, entry: str, fname: str) -> List[str]:
    """Call sids (including the entry pseudo-call) into ``fname``."""
    out = [MAIN_SID] if fname == entry else []
    out += [b.sid for b in table.all_calls if b.callee == fname]
    return out


def check_bisimulation(
    p: A.Program,
    p_prime: A.Program,
    mapping: Mapping[str, Set[str]],
) -> BisimResult:
    """Construct and check the least relation of Def. 3."""
    mp, mq = ProgramModel(p), ProgramModel(p_prime)
    tp, tq = mp.table, mq.table
    res = BisimResult(bisimilar=True)

    # Candidate relation: rule-1 pairs (callers sharing a corresponding
    # non-call block), closed under rule 2 (caller rule) to a fixpoint.
    rel: Set[Tuple[str, str]] = {(MAIN_SID, MAIN_SID)}
    for q_sid, images in mapping.items():
        q = tp.block(q_sid)
        for q2_sid in images:
            q2 = tq.block(q2_sid)
            for s in _callers_of_func(tp, p.entry, q.func):
                for s2 in _callers_of_func(tq, p_prime.entry, q2.func):
                    rel.add((s, s2))
    changed = True
    while changed:
        changed = False
        for (t_sid, t2_sid) in list(rel):
            if t_sid == MAIN_SID or t2_sid == MAIN_SID:
                continue
            t, t2 = tp.block(t_sid), tq.block(t2_sid)
            if not (t.is_call and t2.is_call):
                continue
            for s in _callers_of_func(tp, p.entry, t.func):
                for s2 in _callers_of_func(tq, p_prime.entry, t2.func):
                    if (s, s2) not in rel:
                        rel.add((s, s2))
                        changed = True

    # Prune incompatible pairs until fixpoint — the automated version of
    # the paper's heuristic enumeration.  A pair (s, s2) is compatible when
    # every transition of callee(s) has a related, shape-matching
    # transition of callee(s2), and vice versa.
    def target_images(t: Block) -> List[str]:
        if t.is_call:
            return [b for (a, b) in rel if a == t.sid]
        return sorted(mapping.get(t.sid, set()))

    def target_preimages(t2_sid: str) -> List[str]:
        out = [a for (a, b) in rel if b == t2_sid]
        for q_sid, images in mapping.items():
            if t2_sid in images:
                out.append(q_sid)
        return out

    def compatible(s_sid: str, s2_sid: str) -> Optional[str]:
        f1 = _callee_of(mp, p, s_sid)
        f2 = _callee_of(mq, p_prime, s2_sid)
        if f1 is None or f2 is None:
            return None if f1 is None and f2 is None else "call/non-call"
        # Forward coverage per pair: every transition of callee(s) must have
        # a related, shape-matching transition of callee(s2).  (The reverse
        # direction is checked *globally* below: a fused function carries
        # blocks of several original traversals, so a single P-caller cannot
        # cover them all — but some related P-caller must.)
        for t in tp.blocks_of(f1):
            found = False
            for t2_sid in target_images(t):
                if t2_sid not in tq._by_sid:
                    continue
                t2 = tq.block(t2_sid)
                if t2.func != f2:
                    continue
                if _cases_match(mp.cases(f1, t), mq.cases(f2, t2)):
                    found = True
                    break
            if not found:
                return f"{t.sid} has no matching transition in {f2}"
        return None

    pruned = True
    while pruned:
        pruned = False
        for pair in sorted(rel):
            why = compatible(*pair)
            if why is not None:
                rel.discard(pair)
                res.warnings.append(f"pruned {pair}: {why}")
                pruned = True
    res.relation = rel

    # Coverage: the entry pair must survive; every call block of P must
    # retain a partner; and (globally) every call block of P' must be
    # related to some P call and every mapped non-call image must have a
    # shape-matching preimage via *some* surviving relation pair.
    if (MAIN_SID, MAIN_SID) not in rel:
        res.problems.append("entry functions are not bisimilar")
    for b in tp.all_calls:
        if not any(a == b.sid for a, _ in rel):
            res.problems.append(f"call block {b.sid} has no bisimilar partner")
    for b2 in tq.all_calls:
        if not any(b == b2.sid for _, b in rel):
            res.problems.append(
                f"P' call block {b2.sid} has no bisimilar partner"
            )
    mapped_images = {img for imgs in mapping.values() for img in imgs}
    for b2 in tq.all_noncalls:
        if b2.sid not in mapped_images:
            res.warnings.append(
                f"P' non-call block {b2.sid} is unmapped (plumbing block)"
            )
    res.bisimilar = not res.problems
    return res


def _cases_match(
    cases1: List[TransitionCase], cases2: List[TransitionCase]
) -> bool:
    """Shape equivalence of two transition-case sets.

    The sets match when, per call direction, they *cover the same set of
    local tree shapes* — fusion legitimately refines one case into several
    (e.g. a traversal's plain ``return`` fuses into a block guarded by
    child-nil tests whose branches jointly cover the original's shapes), so
    literal case-set equality would be too strict."""
    dirs1 = {c.direction for c in cases1}
    dirs2 = {c.direction for c in cases2}
    if dirs1 != dirs2:
        return False
    # Shapes are compared over the union of mentioned positions, so a
    # single unguarded case and its guarded refinement cover identically.
    positions = sorted(
        {p.dirs for c in cases1 + cases2 for p in c.struct_pins} | {""}
    )
    for d in dirs1:
        if _covered_shapes(
            [c for c in cases1 if c.direction == d], positions
        ) != _covered_shapes(
            [c for c in cases2 if c.direction == d], positions
        ):
            return False
    return True


def _covered_shapes(cases: List[TransitionCase], positions: List[str]) -> frozenset:
    """The set of local shape assignments some case admits.

    A shape assigns nil/non-nil to every listed node position, restricted
    to tree-consistent assignments (children of nil are nil)."""
    shapes = []

    def consistent(assign: Dict[str, bool]) -> bool:
        for pos, is_nil in assign.items():
            for k in range(len(pos)):
                if assign.get(pos[:k]) is True and not is_nil:
                    return False  # non-nil below a nil prefix
        return True

    import itertools

    covered = set()
    for values in itertools.product((True, False), repeat=len(positions)):
        assign = dict(zip(positions, values))
        if not consistent(assign):
            continue
        for c in cases:
            if all(assign.get(p.dirs) == p.is_nil for p in c.struct_pins):
                covered.add(tuple(sorted(assign.items())))
                break
    return frozenset(covered)


def _callee_of(model: ProgramModel, prog: A.Program, sid: str):
    if sid == MAIN_SID:
        return prog.entry
    b = model.table.block(sid)
    return b.callee if b.is_call else None



