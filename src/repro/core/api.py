"""Top-level verification API: the Fig. 1 pipeline as two calls.

``check_data_race`` (Thm 2) and ``check_equivalence`` (Thm 3) are thin
façades over :mod:`repro.engine`: each call builds a Query-IR object
(:class:`~repro.engine.query.RaceQuery` /
:class:`~repro.engine.query.EquivalenceQuery`), resolves the ``engine=``
spec to a declarative :class:`~repro.engine.plan.Plan` through the
engine registry, and hands both to the
:class:`~repro.engine.plan.PlanExecutor`:

* ``engine="mso"`` — the paper's MSO/automata pipeline, deciding over
  all trees;
* ``engine="bounded"`` — exhaustive on every tree shape up to a bound;
* ``engine="auto"`` — the **degradation ladder** (DESIGN.md §7/§10):
  the lazy symbolic engine under a :class:`~repro.runtime.
  ResourceGuard`, one retry with escalated budgets when only the state
  budget was exhausted (wall clock permitting), then the bounded
  checker, shrinking its scope whenever a rung overruns its own limits;
* any other registered engine name resolves through the registry; an
  unknown name raises ``ValueError`` listing the known ones.

Every rung attempted is recorded in ``details["attempts"]`` and
``details["decided_by"]`` names the rung whose answer is reported.  A
query no rung could decide returns ``verdict="unknown"`` with
``holds=False`` — never a silent ``race-free``/``equivalent``.
Counterexamples are automatically replayed against the concrete
interpreter (:mod:`repro.core.witness`), automating the paper's manual
true-positive check.

Passing ``cache=`` a :class:`~repro.engine.cache.ResultCache` makes the
call consult and feed the content-addressed verdict cache; reuse is
gated on the deciding engine's declared capabilities (see
:mod:`repro.engine.cache`), and cache traffic is surfaced in
``details["cache"]``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set

from ..engine import (
    EquivalenceQuery,
    Limits as QueryLimits,
    PlanExecutor,
    RaceQuery,
    plan_for,
    program_fields,
)
from ..engine.plan import (
    LADDER_ESCALATION,
    merge_verdicts,
    plan_for as _plan_for,
    run_scope_rungs,
    run_symbolic_rungs,
)
from ..lang import ast as A
from ..lang.validate import validate
from ..trees.heap import Tree
from .bisim import check_bisimulation
from .witness import ReplayOutcome, replay_conflict, replay_race

__all__ = [
    "VerificationResult",
    "check_data_race",
    "check_equivalence",
    "verification_to_dict",
    "verification_from_dict",
    "LADDER_ESCALATION",
]


@dataclass
class VerificationResult:
    """Uniform result of a verification query.

    ``details["attempts"]`` lists every ladder rung that ran (rung name,
    engine, limits, outcome, elapsed, and the rung's raw ``found``
    verdict — kept even when a later rung decides, so per-engine answers
    stay inspectable); ``details["decided_by"]`` names the rung whose
    verdict is reported (``None`` when ``unknown``).
    """

    query: str
    verdict: str  # "race-free"|"race"|"equivalent"|"not-equivalent"|"unknown"
    engine: str  # "mso" | "bounded" | "mso+bounded" | "bisim"
    elapsed: float
    holds: bool
    witness: Optional[object] = None
    witness_tree: Optional[Tree] = None
    replay: Optional[ReplayOutcome] = None
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = ""
        if self.replay is not None:
            extra = f"; replay: {'confirmed' if self.replay.confirmed else 'unconfirmed'}"
        decided_by = self.details.get("decided_by")
        if decided_by and decided_by != self.engine:
            extra += f"; decided by {decided_by}"
        return (
            f"{self.query}: {self.verdict} "
            f"[{self.engine}, {self.elapsed:.3f}s]{extra}"
        )


# ----------------------------------------------------------------------
# Wire format (shared by the worker protocol and the result cache)


def verification_to_dict(res: VerificationResult) -> Dict[str, object]:
    """JSON-plain rendering of a result (the worker wire format)."""
    from ..service.protocol import jsonable
    from ..trees.heap import tree_to_tuple

    return {
        "query": res.query,
        "verdict": res.verdict,
        "engine": res.engine,
        "elapsed": res.elapsed,
        "holds": res.holds,
        "witness": str(res.witness) if res.witness is not None else None,
        "witness_tree": (
            tree_to_tuple(res.witness_tree)
            if res.witness_tree is not None
            else None
        ),
        "replay": (
            {"confirmed": res.replay.confirmed, "detail": res.replay.detail}
            if res.replay is not None
            else None
        ),
        "details": jsonable(res.details),
    }


def verification_from_dict(
    value: Dict[str, object],
    default_query: str = "",
    default_engine: str = "process",
    elapsed: Optional[float] = None,
) -> VerificationResult:
    """Lift a wire-format result dict back into a
    :class:`VerificationResult` (witness becomes its string rendering;
    the witness tree is reconstructed)."""
    from ..trees.heap import tree_from_tuple

    replay_data = value.get("replay")
    return VerificationResult(
        query=value.get("query", default_query),
        verdict=value["verdict"],
        engine=value.get("engine", default_engine),
        elapsed=(
            elapsed if elapsed is not None else float(value.get("elapsed", 0.0))
        ),
        holds=bool(value["holds"]),
        witness=value.get("witness"),
        witness_tree=(
            tree_from_tuple(value["witness_tree"])
            if value.get("witness_tree") is not None
            else None
        ),
        replay=(
            ReplayOutcome(
                confirmed=bool(replay_data["confirmed"]),
                detail=replay_data["detail"],
            )
            if replay_data
            else None
        ),
        details=dict(value.get("details") or {}),
    )


# ----------------------------------------------------------------------
# Backwards-compatible ladder aliases (the implementations live in
# repro.engine.plan; these shims keep the historical core.api surface —
# used by older tests and external callers — importable).


_program_fields = program_fields
_merge_race = merge_verdicts


def _symbolic_ladder(
    run_sym, engine, det_budget, mso_deadline_s, node_ceiling, attempts,
    details,
):
    rungs = _plan_for(engine).symbolic_rungs()
    return run_symbolic_rungs(
        run_sym, rungs, det_budget, mso_deadline_s, node_ceiling, attempts,
        details,
    )


def _bounded_ladder(run_bnd, max_internal, bounded_deadline_s, attempts):
    rung = _plan_for("bounded").scope_rung()
    return run_scope_rungs(
        run_bnd, rung, max_internal, bounded_deadline_s, attempts
    )


# ----------------------------------------------------------------------
# Cache plumbing


def _decided_engine(decided_by, attempts) -> Optional[str]:
    """The engine name behind a ``decided_by`` rung (``"bisim"`` for the
    equivalence fast path, which records no attempt)."""
    if decided_by is None:
        return None
    if decided_by == "bisim":
        return "bisim"
    for a in attempts:
        if a.get("rung") == decided_by:
            return a.get("engine")
    return None


def _cache_lookup(cache, query, plan, t0, allow_bisim=True):
    record = cache.lookup(query, plan, allow_bisim=allow_bisim)
    if record is None:
        return None
    res = verification_from_dict(
        record["result"],
        default_query=query.display(),
        elapsed=time.perf_counter() - t0,
    )
    res.details["cache"] = {
        "hit": True,
        "key": record["key"],
        "stats": cache.stats.as_dict(),
    }
    return res


def _cache_store(cache, query, res: VerificationResult) -> None:
    decided_by = res.details.get("decided_by")
    attempts = res.details.get("attempts") or []
    wire = verification_to_dict(res)
    stored = cache.store(
        query,
        res.verdict,
        res.holds,
        decided_by,
        _decided_engine(decided_by, attempts),
        wire,
    )
    res.details["cache"] = {
        "hit": False,
        "key": query.key(),
        "stored": stored,
        "stats": cache.stats.as_dict(),
    }


# ----------------------------------------------------------------------
# Public entry points


def _build_task(
    kind: str,
    programs: Sequence[A.Program],
    options: Dict[str, object],
    mapping: Optional[Mapping[str, Set[str]]] = None,
):
    """The serializable worker :class:`~repro.service.protocol.Task`
    for a query (shared by process isolation and daemon dispatch).

    The program(s) are pretty-printed (:func:`repro.lang.printer.
    program_source` round-trips through the parser) so the task is
    plain data a child process — or a daemon on the far side of a
    socket — can solve without sharing any state with this caller.
    """
    from ..lang.printer import program_source
    from ..service import Limits
    from ..service.worker import task_for_fusion, task_for_race

    wall_s = options.pop("wall_s", None)
    cpu_s = options.pop("cpu_s", None)
    mem_bytes = options.pop("mem_bytes", None)
    limits = Limits(wall_s=wall_s, cpu_s=cpu_s, mem_bytes=mem_bytes)
    options = {k: v for k, v in options.items() if v is not None or k in (
        "mso_deadline_s", "bounded_deadline_s", "node_ceiling")}
    if kind == "check-race":
        return task_for_race(
            source=program_source(programs[0]),
            entry=programs[0].entry,
            options=options,
            limits=limits,
            name=programs[0].name,
        )
    return task_for_fusion(
        source=program_source(programs[0]),
        source2=program_source(programs[1]),
        entry=programs[0].entry,
        options=options,
        mapping={k: sorted(v) for k, v in (mapping or {}).items()},
        limits=limits,
        name=programs[0].name,
        name2=programs[1].name,
    )


def _isolated(
    kind: str,
    programs: Sequence[A.Program],
    options: Dict[str, object],
    mapping: Optional[Mapping[str, Set[str]]] = None,
) -> VerificationResult:
    """Route a query through a sandboxed worker (DESIGN.md §9).

    The query is solved in a child process under hard OS limits and the
    child's JSON result is lifted back into a
    :class:`VerificationResult`.  A child that dies without answering —
    crash, rlimit, wall-clock kill, even after the supervisor's retries
    — comes back as ``verdict="unknown"`` with the crashed attempts in
    ``details["attempts"]``, never as an exception and never as a
    silent wrong verdict.
    """
    from ..service import run_verification_isolated

    task = _build_task(kind, programs, options, mapping)
    return run_verification_isolated(task)


def _via_daemon(
    kind: str,
    programs: Sequence[A.Program],
    options: Dict[str, object],
    daemon_socket,
    mapping: Optional[Mapping[str, Set[str]]] = None,
    client_id: str = "api",
    priority: Optional[int] = None,
    retries: int = 0,
) -> VerificationResult:
    """Route a query through a running solve daemon (DESIGN.md §11).

    The daemon owns the supervisor pool and the shared cache tier, so
    concurrent callers across processes share verdicts, admission
    control, and crash isolation.  Admission rejections
    (:class:`~repro.service.scheduler.ServiceOverloaded`) propagate to
    the caller — by design, so backpressure is visible, not swallowed.
    """
    import time as _time

    from ..service.client import DaemonClient
    from ..service.scheduler import DEFAULT_PRIORITY

    t0 = _time.perf_counter()
    task = _build_task(kind, programs, options, mapping)
    with DaemonClient(daemon_socket, client_id=client_id) as client:
        reply = client.submit_task(
            task,
            priority=DEFAULT_PRIORITY if priority is None else priority,
            retries=retries,
        )
    if not reply.get("ok"):
        res = VerificationResult(
            query=task.name,
            verdict="unknown",
            engine="daemon",
            elapsed=_time.perf_counter() - t0,
            holds=False,
            details={
                "attempts": reply.get("attempts") or [],
                "decided_by": None,
                "daemon_failure": reply.get("detail"),
            },
        )
    else:
        res = verification_from_dict(
            reply["value"],
            default_query=task.name,
            default_engine="daemon",
            elapsed=_time.perf_counter() - t0,
        )
    res.details["isolation"] = "daemon"
    res.details["daemon"] = {
        "cached": bool(reply.get("cached")),
        "key": reply.get("key"),
    }
    return res


def check_data_race(
    program: A.Program,
    engine: str = "auto",
    max_internal: int = 4,
    det_budget: int = 50_000,
    mso_deadline_s: Optional[float] = 600.0,
    node_ceiling: Optional[int] = None,
    bounded_deadline_s: Optional[float] = None,
    replay: bool = True,
    isolation: str = "inline",
    wall_s: Optional[float] = None,
    cpu_s: Optional[float] = None,
    mem_bytes: Optional[int] = None,
    cache=None,
    daemon_socket=None,
) -> VerificationResult:
    """Is the program data-race-free (paper Thm 2)?

    ``isolation="process"`` runs the whole query in a sandboxed,
    supervised child process (``wall_s``/``cpu_s``/``mem_bytes`` become
    hard OS limits on it); ``isolation="daemon"`` submits it to the
    long-lived solve daemon at ``daemon_socket=`` (shared cache tier,
    admission control — may raise
    :class:`~repro.service.scheduler.ServiceOverloaded`); the default
    ``"inline"`` solves in-process.  ``cache=`` an optional
    :class:`~repro.engine.cache.ResultCache`.
    """
    validate(program)
    t0 = time.perf_counter()
    plan = plan_for(engine)
    query = RaceQuery(
        program=program,
        scope=max_internal,
        limits=QueryLimits(
            det_budget=det_budget,
            mso_deadline_s=mso_deadline_s,
            node_ceiling=node_ceiling,
            bounded_deadline_s=bounded_deadline_s,
        ),
    )
    if cache is not None:
        hit = _cache_lookup(cache, query, plan, t0)
        if hit is not None:
            return hit
    if isolation in ("process", "daemon"):
        opts = {
            "engine": engine,
            "max_internal": max_internal,
            "det_budget": det_budget,
            "mso_deadline_s": mso_deadline_s,
            "node_ceiling": node_ceiling,
            "bounded_deadline_s": bounded_deadline_s,
            "replay": replay,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "mem_bytes": mem_bytes,
        }
        if isolation == "daemon":
            if daemon_socket is None:
                raise ValueError(
                    "isolation='daemon' needs daemon_socket= "
                    "(the socket of a running `repro serve`)"
                )
            res = _via_daemon("check-race", (program,), opts, daemon_socket)
        else:
            res = _isolated("check-race", (program,), opts)
        if cache is not None:
            _cache_store(cache, query, res)
        return res
    if isolation != "inline":
        raise ValueError(f"unknown isolation mode {isolation!r}")

    outcome = PlanExecutor(cache=cache).execute(query, plan)
    verdict = "race" if outcome.found else "race-free"
    if outcome.undecided:
        verdict = "unknown"
    rep = None
    if replay and outcome.found and outcome.witness_tree is not None:
        rep = replay_race(
            program, outcome.witness_tree, program_fields(program)
        )
    res = VerificationResult(
        query=query.display(),
        verdict=verdict,
        engine=outcome.engine_label,
        elapsed=time.perf_counter() - t0,
        holds=not outcome.found and verdict != "unknown",
        witness=outcome.witness,
        witness_tree=outcome.witness_tree,
        replay=rep,
        details=outcome.details,
    )
    if cache is not None:
        _cache_store(cache, query, res)
    return res


def check_equivalence(
    p: A.Program,
    p_prime: A.Program,
    mapping: Mapping[str, Set[str]],
    engine: str = "auto",
    max_internal: int = 4,
    det_budget: int = 50_000,
    mso_deadline_s: Optional[float] = 600.0,
    node_ceiling: Optional[int] = None,
    bounded_deadline_s: Optional[float] = None,
    replay: bool = True,
    check_bisim: bool = True,
    isolation: str = "inline",
    wall_s: Optional[float] = None,
    cpu_s: Optional[float] = None,
    mem_bytes: Optional[int] = None,
    cache=None,
    daemon_socket=None,
) -> VerificationResult:
    """Are the two programs equivalent under the block correspondence
    (paper Thm 3: bisimilar and conflict-free)?

    Precondition per the paper: both programs are data-race-free (footnote
    7); check separately with :func:`check_data_race`.
    ``isolation="process"`` sandboxes the query and
    ``isolation="daemon"`` (+ ``daemon_socket=``) submits it to a
    running solve daemon, as in :func:`check_data_race`; ``cache=`` an
    optional :class:`~repro.engine.cache.ResultCache`.
    """
    validate(p)
    validate(p_prime)
    t0 = time.perf_counter()
    plan = plan_for(engine)
    query = EquivalenceQuery(
        program=p,
        program2=p_prime,
        mapping=mapping,
        scope=max_internal,
        limits=QueryLimits(
            det_budget=det_budget,
            mso_deadline_s=mso_deadline_s,
            node_ceiling=node_ceiling,
            bounded_deadline_s=bounded_deadline_s,
        ),
    )
    if cache is not None:
        hit = _cache_lookup(cache, query, plan, t0, allow_bisim=check_bisim)
        if hit is not None:
            return hit
    if isolation in ("process", "daemon"):
        opts = {
            "engine": engine,
            "max_internal": max_internal,
            "det_budget": det_budget,
            "mso_deadline_s": mso_deadline_s,
            "node_ceiling": node_ceiling,
            "bounded_deadline_s": bounded_deadline_s,
            "replay": replay,
            "check_bisim": check_bisim,
            "wall_s": wall_s,
            "cpu_s": cpu_s,
            "mem_bytes": mem_bytes,
        }
        if isolation == "daemon":
            if daemon_socket is None:
                raise ValueError(
                    "isolation='daemon' needs daemon_socket= "
                    "(the socket of a running `repro serve`)"
                )
            res = _via_daemon(
                "check-fusion", (p, p_prime), opts, daemon_socket,
                mapping=mapping,
            )
        else:
            res = _isolated("check-fusion", (p, p_prime), opts, mapping=mapping)
        if cache is not None:
            _cache_store(cache, query, res)
        return res
    if isolation != "inline":
        raise ValueError(f"unknown isolation mode {isolation!r}")

    if check_bisim:
        bis = check_bisimulation(p, p_prime, mapping)
        if not bis.bisimilar:
            details: Dict[str, object] = {
                "attempts": [],
                "bisimulation": str(bis),
                "decided_by": "bisim",
            }
            res = VerificationResult(
                query=query.display(),
                verdict="not-equivalent",
                engine="bisim",
                elapsed=time.perf_counter() - t0,
                holds=False,
                details=details,
            )
            if cache is not None:
                _cache_store(cache, query, res)
            return res

    outcome = PlanExecutor(cache=cache).execute(query, plan)
    if check_bisim:
        outcome.details["bisimulation"] = str(bis)
    verdict = "not-equivalent" if outcome.found else "equivalent"
    if outcome.undecided:
        verdict = "unknown"
    rep = None
    if replay and outcome.found and outcome.witness_tree is not None:
        rep = replay_conflict(
            p, p_prime, outcome.witness_tree, query.fields()
        )
    res = VerificationResult(
        query=query.display(),
        verdict=verdict,
        engine=outcome.engine_label,
        elapsed=time.perf_counter() - t0,
        holds=not outcome.found and verdict != "unknown",
        witness=outcome.witness,
        witness_tree=outcome.witness_tree,
        replay=rep,
        details=outcome.details,
    )
    if cache is not None:
        _cache_store(cache, query, res)
    return res
