"""Top-level verification API: the Fig. 1 pipeline as two calls.

``check_data_race`` (Thm 2) and ``check_equivalence`` (Thm 3) dispatch to:

* the **symbolic engine** (``engine="mso"``) — the paper's MSO/automata
  pipeline, deciding over all trees;
* the **bounded engine** (``engine="bounded"``) — exhaustive on every tree
  shape up to a bound;
* ``engine="auto"`` — symbolic with a state/time budget, falling back to
  bounded on exhaustion (the result records which engine decided).

Counterexamples are automatically replayed against the concrete interpreter
(:mod:`repro.core.witness`), automating the paper's manual true-positive
check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Set

from ..lang import ast as A
from ..lang.validate import validate
from ..trees.heap import Tree
from .bisim import check_bisimulation
from .bounded import BoundedVerdict, check_conflict_bounded, check_data_race_bounded
from .symbolic import SymbolicVerdict, check_conflict_mso, check_data_race_mso
from .witness import ReplayOutcome, replay_conflict, replay_race

__all__ = ["VerificationResult", "check_data_race", "check_equivalence"]


@dataclass
class VerificationResult:
    """Uniform result of a verification query."""

    query: str
    verdict: str  # "race-free"|"race"|"equivalent"|"not-equivalent"|"unknown"
    engine: str  # "mso" | "bounded" | "mso+bounded"
    elapsed: float
    holds: bool
    witness: Optional[object] = None
    witness_tree: Optional[Tree] = None
    replay: Optional[ReplayOutcome] = None
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = ""
        if self.replay is not None:
            extra = f"; replay: {'confirmed' if self.replay.confirmed else 'unconfirmed'}"
        return (
            f"{self.query}: {self.verdict} "
            f"[{self.engine}, {self.elapsed:.3f}s]{extra}"
        )


def _program_fields(program: A.Program) -> list:
    """All field names the program touches (for replay field seeding)."""
    from ..lang.blocks import BlockTable
    from .readwrite import ReadWriteAnalysis

    table = BlockTable(program)
    rw = ReadWriteAnalysis(table)
    fields = set()
    for b in table.all_noncalls:
        for c in rw.access(b).readwrites:
            if c.kind == "field":
                fields.add(c.name)
    return sorted(fields)


def check_data_race(
    program: A.Program,
    engine: str = "auto",
    max_internal: int = 4,
    det_budget: int = 50_000,
    mso_deadline_s: Optional[float] = 600.0,
    replay: bool = True,
) -> VerificationResult:
    """Is the program data-race-free (paper Thm 2)?"""
    validate(program)
    t0 = time.perf_counter()
    details: Dict[str, object] = {}
    used = engine
    sym: Optional[SymbolicVerdict] = None
    bnd: Optional[BoundedVerdict] = None

    if engine in ("mso", "auto"):
        deadline = (
            time.perf_counter() + mso_deadline_s if mso_deadline_s else None
        )
        sym = check_data_race_mso(
            program, det_budget=det_budget, deadline=deadline
        )
        details["mso"] = str(sym)
        details["mso_queries"] = sym.queries
        details["mso_reached_states"] = sym.max_states
        if sym.stats is not None:
            details["mso_stats"] = sym.stats
        if sym.status == "decided":
            used = "mso"
        elif engine == "mso":
            used = "mso"
        else:
            used = "mso+bounded"
    if engine in ("bounded",) or (engine == "auto" and used == "mso+bounded"):
        bnd = check_data_race_bounded(program, max_internal=max_internal)
        details["bounded"] = str(bnd)
        if engine == "bounded":
            used = "bounded"

    found, witness_tree, witness = _merge_race(sym, bnd)
    verdict = "race" if found else "race-free"
    if sym is not None and sym.status != "decided" and bnd is None:
        verdict = "unknown"
    rep = None
    if replay and found and witness_tree is not None:
        rep = replay_race(program, witness_tree, _program_fields(program))
    return VerificationResult(
        query=f"data-race({program.name})",
        verdict=verdict,
        engine=used,
        elapsed=time.perf_counter() - t0,
        holds=not found,
        witness=witness,
        witness_tree=witness_tree,
        replay=rep,
        details=details,
    )


def _merge_race(sym, bnd):
    if sym is not None and sym.status == "decided":
        tree = sym.witness.tree if (sym.found and sym.witness) else None
        return sym.found, tree, sym.witness
    if bnd is not None:
        tree = bnd.witness.tree if (bnd.found and bnd.witness) else None
        return bnd.found, tree, bnd.witness
    if sym is not None:
        tree = sym.witness.tree if (sym.found and sym.witness) else None
        return sym.found, tree, sym.witness
    return False, None, None


def check_equivalence(
    p: A.Program,
    p_prime: A.Program,
    mapping: Mapping[str, Set[str]],
    engine: str = "auto",
    max_internal: int = 4,
    det_budget: int = 50_000,
    mso_deadline_s: Optional[float] = 60.0,
    replay: bool = True,
    check_bisim: bool = True,
) -> VerificationResult:
    """Are the two programs equivalent under the block correspondence
    (paper Thm 3: bisimilar and conflict-free)?

    Precondition per the paper: both programs are data-race-free (footnote
    7); check separately with :func:`check_data_race`.
    """
    validate(p)
    validate(p_prime)
    t0 = time.perf_counter()
    details: Dict[str, object] = {}
    if check_bisim:
        bis = check_bisimulation(p, p_prime, mapping)
        details["bisimulation"] = str(bis)
        if not bis.bisimilar:
            return VerificationResult(
                query=f"equivalence({p.name} vs {p_prime.name})",
                verdict="not-equivalent",
                engine="bisim",
                elapsed=time.perf_counter() - t0,
                holds=False,
                details=details,
            )

    used = engine
    sym: Optional[SymbolicVerdict] = None
    bnd: Optional[BoundedVerdict] = None
    if engine in ("mso", "auto"):
        deadline = (
            time.perf_counter() + mso_deadline_s if mso_deadline_s else None
        )
        sym = check_conflict_mso(
            p, p_prime, mapping, det_budget=det_budget, deadline=deadline
        )
        details["mso"] = str(sym)
        details["mso_queries"] = sym.queries
        details["mso_reached_states"] = sym.max_states
        if sym.stats is not None:
            details["mso_stats"] = sym.stats
        if sym.status == "decided":
            used = "mso"
        elif engine == "mso":
            used = "mso"
        else:
            used = "mso+bounded"
    if engine == "bounded" or (engine == "auto" and used == "mso+bounded"):
        bnd = check_conflict_bounded(
            p, p_prime, mapping, max_internal=max_internal
        )
        details["bounded"] = str(bnd)
        if engine == "bounded":
            used = "bounded"

    found, witness_tree, witness = _merge_race(sym, bnd)
    verdict = "not-equivalent" if found else "equivalent"
    if sym is not None and sym.status != "decided" and bnd is None:
        verdict = "unknown"
    rep = None
    if replay and found and witness_tree is not None:
        fields = sorted(set(_program_fields(p)) | set(_program_fields(p_prime)))
        rep = replay_conflict(p, p_prime, witness_tree, fields)
    return VerificationResult(
        query=f"equivalence({p.name} vs {p_prime.name})",
        verdict=verdict,
        engine=used,
        elapsed=time.perf_counter() - t0,
        holds=not found,
        witness=witness,
        witness_tree=witness_tree,
        replay=rep,
        details=details,
    )
