"""Top-level verification API: the Fig. 1 pipeline as two calls.

``check_data_race`` (Thm 2) and ``check_equivalence`` (Thm 3) dispatch to:

* the **symbolic engine** (``engine="mso"``) — the paper's MSO/automata
  pipeline, deciding over all trees;
* the **bounded engine** (``engine="bounded"``) — exhaustive on every tree
  shape up to a bound;
* ``engine="auto"`` — a **degradation ladder** (DESIGN.md §7): the lazy
  symbolic engine under a :class:`~repro.runtime.ResourceGuard`, one
  retry with escalated budgets when only the state budget was exhausted
  (wall clock permitting), then the bounded checker, shrinking its scope
  whenever a rung overruns its own limits.  Every rung attempted is
  recorded in ``details["attempts"]`` and ``details["decided_by"]`` names
  the rung whose answer is reported.

A query no rung could decide returns ``verdict="unknown"`` with
``holds=False`` — never a silent ``race-free``/``equivalent``.
Counterexamples are automatically replayed against the concrete
interpreter (:mod:`repro.core.witness`), automating the paper's manual
true-positive check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..lang import ast as A
from ..lang.validate import validate
from ..runtime import (
    ResourceExhausted,
    ResourceGuard,
    SolverInternalError,
    exhaustion_status,
)
from ..solver.solver import MSOSolver
from ..trees.heap import Tree
from .bisim import check_bisimulation
from .bounded import BoundedVerdict, check_conflict_bounded, check_data_race_bounded
from .symbolic import SymbolicVerdict, check_conflict_mso, check_data_race_mso
from .witness import ReplayOutcome, replay_conflict, replay_race

__all__ = ["VerificationResult", "check_data_race", "check_equivalence"]

# One retry rung multiplies the symbolic budgets by this factor.
LADDER_ESCALATION = 4
# Skip the retry rung when less wall-clock than this remains; the
# escalated run would only burn the bounded engine's time.
_MIN_RETRY_S = 1.0


@dataclass
class VerificationResult:
    """Uniform result of a verification query.

    ``details["attempts"]`` lists every ladder rung that ran (rung name,
    engine, limits, outcome, elapsed, and the rung's raw ``found``
    verdict — kept even when a later rung decides, so per-engine answers
    stay inspectable); ``details["decided_by"]`` names the rung whose
    verdict is reported (``None`` when ``unknown``).
    """

    query: str
    verdict: str  # "race-free"|"race"|"equivalent"|"not-equivalent"|"unknown"
    engine: str  # "mso" | "bounded" | "mso+bounded" | "bisim"
    elapsed: float
    holds: bool
    witness: Optional[object] = None
    witness_tree: Optional[Tree] = None
    replay: Optional[ReplayOutcome] = None
    details: Dict[str, object] = field(default_factory=dict)

    def __str__(self) -> str:
        extra = ""
        if self.replay is not None:
            extra = f"; replay: {'confirmed' if self.replay.confirmed else 'unconfirmed'}"
        decided_by = self.details.get("decided_by")
        if decided_by and decided_by != self.engine:
            extra += f"; decided by {decided_by}"
        return (
            f"{self.query}: {self.verdict} "
            f"[{self.engine}, {self.elapsed:.3f}s]{extra}"
        )


def _program_fields(program: A.Program) -> list:
    """All field names the program touches (for replay field seeding)."""
    from ..lang.blocks import BlockTable
    from .readwrite import ReadWriteAnalysis

    table = BlockTable(program)
    rw = ReadWriteAnalysis(table)
    fields = set()
    for b in table.all_noncalls:
        for c in rw.access(b).readwrites:
            if c.kind == "field":
                fields.add(c.name)
    return sorted(fields)


# ----------------------------------------------------------------------
# Degradation ladder


def _record_attempt(
    attempts: List[Dict[str, object]],
    rung: str,
    engine: str,
    limits: Dict[str, object],
    outcome: str,
    t0: float,
    note: Optional[str] = None,
    found: Optional[bool] = None,
) -> None:
    """``found`` is the rung's *raw* verdict — True (counterexample),
    False (clean), or None (undecided/errored) — recorded for every rung
    even when a later rung ends up deciding the query, so differential
    oracles can cross-check the rungs against each other."""
    entry: Dict[str, object] = {
        "rung": rung,
        "engine": engine,
        "limits": limits,
        "outcome": outcome,
        "elapsed": round(time.perf_counter() - t0, 6),
        "found": found,
    }
    if note is not None:
        entry["note"] = note
    attempts.append(entry)


def _symbolic_ladder(
    run_sym: Callable[[MSOSolver, ResourceGuard], SymbolicVerdict],
    engine: str,
    det_budget: int,
    mso_deadline_s: Optional[float],
    node_ceiling: Optional[int],
    attempts: List[Dict[str, object]],
    details: Dict[str, object],
) -> Tuple[Optional[SymbolicVerdict], Optional[str]]:
    """Symbolic rungs: one guarded run, plus one escalated retry.

    The retry only fires under ``engine="auto"`` when the first run died
    on its *state budget* (a deadline or memory ceiling would just be hit
    again) and enough wall clock remains; it shares the first run's
    absolute deadline so the two rungs together never exceed
    ``mso_deadline_s``.  ``SolverInternalError`` propagates when the
    caller demanded ``engine="mso"``; under ``auto`` it is recorded and
    the ladder falls through to the bounded engine.
    """
    guard = ResourceGuard.start(
        deadline_s=mso_deadline_s, node_ceiling=node_ceiling
    )
    solver = MSOSolver(det_budget=det_budget)
    limits: Dict[str, object] = {
        "det_budget": det_budget,
        "product_budget": solver.product_budget,
        "deadline_s": mso_deadline_s,
        "node_ceiling": node_ceiling,
    }
    t0 = time.perf_counter()
    try:
        sym = run_sym(solver, guard)
    except SolverInternalError as e:
        _record_attempt(attempts, "mso", "mso", limits, "error", t0, note=str(e))
        details["mso_error"] = str(e)
        if engine == "mso":
            raise
        return None, None
    finally:
        guard.unbind_managers()
    _record_attempt(
        attempts,
        "mso",
        "mso",
        limits,
        sym.status,
        t0,
        note="counterexample" if sym.found else None,
        found=sym.found if sym.status == "decided" else None,
    )
    if sym.status != "budget" or engine != "auto":
        return sym, "mso"
    remaining = guard.remaining_s()
    if remaining is not None and remaining < _MIN_RETRY_S:
        return sym, "mso"

    solver2 = MSOSolver(
        det_budget=det_budget * LADDER_ESCALATION,
        product_budget=solver.product_budget * LADDER_ESCALATION,
    )
    guard2 = ResourceGuard(deadline=guard.deadline, node_ceiling=node_ceiling)
    limits2: Dict[str, object] = {
        "det_budget": solver2.compiler.det_budget,
        "product_budget": solver2.product_budget,
        "deadline_s": round(remaining, 3) if remaining is not None else None,
        "node_ceiling": node_ceiling,
    }
    t1 = time.perf_counter()
    try:
        sym2 = run_sym(solver2, guard2)
    except SolverInternalError as e:
        _record_attempt(
            attempts, "mso-retry", "mso", limits2, "error", t1, note=str(e)
        )
        details["mso_error"] = str(e)
        return sym, "mso"
    finally:
        guard2.unbind_managers()
    _record_attempt(
        attempts,
        "mso-retry",
        "mso",
        limits2,
        sym2.status,
        t1,
        note="counterexample" if sym2.found else None,
        found=sym2.found if sym2.status == "decided" else None,
    )
    if sym2.status == "decided":
        return sym2, "mso-retry"
    return sym, "mso"


def _bounded_ladder(
    run_bnd: Callable[[int, Optional[ResourceGuard]], BoundedVerdict],
    max_internal: int,
    bounded_deadline_s: Optional[float],
    attempts: List[Dict[str, object]],
) -> Tuple[Optional[BoundedVerdict], Optional[int]]:
    """Bounded rungs: shrink the scope until a run fits its limits.

    With no ``bounded_deadline_s`` the first (largest-scope) run always
    completes — the seed behaviour.  With one, each scope gets a fresh
    deadline; an overrun shrinks the scope instead of failing the query.
    """
    for scope in range(max_internal, 0, -1):
        rung = f"bounded@{scope}"
        guard = (
            ResourceGuard.start(deadline_s=bounded_deadline_s)
            if bounded_deadline_s is not None
            else None
        )
        limits: Dict[str, object] = {
            "max_internal": scope,
            "deadline_s": bounded_deadline_s,
        }
        t0 = time.perf_counter()
        try:
            bnd = run_bnd(scope, guard)
        except ResourceExhausted as e:
            _record_attempt(
                attempts, rung, "bounded", limits, exhaustion_status(e), t0
            )
            continue
        _record_attempt(
            attempts,
            rung,
            "bounded",
            limits,
            "decided",
            t0,
            note="counterexample" if bnd.found else None,
            found=bnd.found,
        )
        return bnd, scope
    return None, None


def _merge_race(
    sym: Optional[SymbolicVerdict], bnd: Optional[BoundedVerdict]
):
    """Pick the verdict source: a *decided* symbolic result wins, then a
    bounded result.  An undecided symbolic run never contributes a
    verdict or witness — its partial state is not evidence."""
    if sym is not None and sym.status == "decided":
        tree = sym.witness.tree if (sym.found and sym.witness) else None
        return sym.found, tree, sym.witness
    if bnd is not None:
        tree = bnd.witness.tree if (bnd.found and bnd.witness) else None
        return bnd.found, tree, bnd.witness
    return False, None, None


def _note_symbolic(details: Dict[str, object], sym: SymbolicVerdict) -> None:
    details["mso"] = str(sym)
    details["mso_status"] = sym.status
    details["mso_queries"] = sym.queries
    details["mso_reached_states"] = sym.max_states
    if sym.stats is not None:
        details["mso_stats"] = sym.stats


# ----------------------------------------------------------------------
# Public entry points


def _isolated(
    kind: str,
    programs: Sequence[A.Program],
    options: Dict[str, object],
    mapping: Optional[Mapping[str, Set[str]]] = None,
) -> VerificationResult:
    """Route a query through a sandboxed worker (DESIGN.md §9).

    The program(s) are pretty-printed (:func:`repro.lang.printer.
    program_source` round-trips through the parser), solved in a child
    process under hard OS limits, and the child's JSON result is lifted
    back into a :class:`VerificationResult`.  A child that dies without
    answering — crash, rlimit, wall-clock kill, even after the
    supervisor's retries — comes back as ``verdict="unknown"`` with the
    crashed attempts in ``details["attempts"]``, never as an exception
    and never as a silent wrong verdict.
    """
    from ..lang.printer import program_source
    from ..service import Limits, run_verification_isolated
    from ..service.worker import task_for_fusion, task_for_race

    wall_s = options.pop("wall_s", None)
    cpu_s = options.pop("cpu_s", None)
    mem_bytes = options.pop("mem_bytes", None)
    limits = Limits(wall_s=wall_s, cpu_s=cpu_s, mem_bytes=mem_bytes)
    options = {k: v for k, v in options.items() if v is not None or k in (
        "mso_deadline_s", "bounded_deadline_s", "node_ceiling")}
    if kind == "check-race":
        task = task_for_race(
            source=program_source(programs[0]),
            entry=programs[0].entry,
            options=options,
            limits=limits,
            name=programs[0].name,
        )
    else:
        task = task_for_fusion(
            source=program_source(programs[0]),
            source2=program_source(programs[1]),
            entry=programs[0].entry,
            options=options,
            mapping={k: sorted(v) for k, v in (mapping or {}).items()},
            limits=limits,
            name=programs[0].name,
            name2=programs[1].name,
        )
    return run_verification_isolated(task)


def check_data_race(
    program: A.Program,
    engine: str = "auto",
    max_internal: int = 4,
    det_budget: int = 50_000,
    mso_deadline_s: Optional[float] = 600.0,
    node_ceiling: Optional[int] = None,
    bounded_deadline_s: Optional[float] = None,
    replay: bool = True,
    isolation: str = "inline",
    wall_s: Optional[float] = None,
    cpu_s: Optional[float] = None,
    mem_bytes: Optional[int] = None,
) -> VerificationResult:
    """Is the program data-race-free (paper Thm 2)?

    ``isolation="process"`` runs the whole query in a sandboxed,
    supervised child process (``wall_s``/``cpu_s``/``mem_bytes`` become
    hard OS limits on it); the default ``"inline"`` solves in-process.
    """
    validate(program)
    if isolation == "process":
        return _isolated(
            "check-race",
            (program,),
            {
                "engine": engine,
                "max_internal": max_internal,
                "det_budget": det_budget,
                "mso_deadline_s": mso_deadline_s,
                "node_ceiling": node_ceiling,
                "bounded_deadline_s": bounded_deadline_s,
                "replay": replay,
                "wall_s": wall_s,
                "cpu_s": cpu_s,
                "mem_bytes": mem_bytes,
            },
        )
    if isolation != "inline":
        raise ValueError(f"unknown isolation mode {isolation!r}")
    t0 = time.perf_counter()
    attempts: List[Dict[str, object]] = []
    details: Dict[str, object] = {"attempts": attempts}
    used = engine
    sym: Optional[SymbolicVerdict] = None
    bnd: Optional[BoundedVerdict] = None
    sym_rung: Optional[str] = None
    bnd_scope: Optional[int] = None

    if engine in ("mso", "auto"):
        sym, sym_rung = _symbolic_ladder(
            lambda solver, guard: check_data_race_mso(
                program, solver=solver, guard=guard
            ),
            engine,
            det_budget,
            mso_deadline_s,
            node_ceiling,
            attempts,
            details,
        )
        if sym is not None:
            _note_symbolic(details, sym)
        if sym is not None and sym.status == "decided":
            used = "mso"
        elif engine == "mso":
            used = "mso"
        else:
            used = "mso+bounded"
    if engine == "bounded" or (engine == "auto" and used == "mso+bounded"):
        bnd, bnd_scope = _bounded_ladder(
            lambda scope, guard: check_data_race_bounded(
                program, max_internal=scope, guard=guard
            ),
            max_internal,
            bounded_deadline_s,
            attempts,
        )
        if bnd is not None:
            details["bounded"] = str(bnd)
        if engine == "bounded":
            used = "bounded"

    found, witness_tree, witness = _merge_race(sym, bnd)
    verdict = "race" if found else "race-free"
    sym_decided = sym is not None and sym.status == "decided"
    if not sym_decided and bnd is None:
        verdict = "unknown"
    details["decided_by"] = (
        None
        if verdict == "unknown"
        else (sym_rung if sym_decided else f"bounded@{bnd_scope}")
    )
    rep = None
    if replay and found and witness_tree is not None:
        rep = replay_race(program, witness_tree, _program_fields(program))
    return VerificationResult(
        query=f"data-race({program.name})",
        verdict=verdict,
        engine=used,
        elapsed=time.perf_counter() - t0,
        holds=not found and verdict != "unknown",
        witness=witness,
        witness_tree=witness_tree,
        replay=rep,
        details=details,
    )


def check_equivalence(
    p: A.Program,
    p_prime: A.Program,
    mapping: Mapping[str, Set[str]],
    engine: str = "auto",
    max_internal: int = 4,
    det_budget: int = 50_000,
    mso_deadline_s: Optional[float] = 60.0,
    node_ceiling: Optional[int] = None,
    bounded_deadline_s: Optional[float] = None,
    replay: bool = True,
    check_bisim: bool = True,
    isolation: str = "inline",
    wall_s: Optional[float] = None,
    cpu_s: Optional[float] = None,
    mem_bytes: Optional[int] = None,
) -> VerificationResult:
    """Are the two programs equivalent under the block correspondence
    (paper Thm 3: bisimilar and conflict-free)?

    Precondition per the paper: both programs are data-race-free (footnote
    7); check separately with :func:`check_data_race`.
    ``isolation="process"`` sandboxes the query as in
    :func:`check_data_race`.
    """
    validate(p)
    validate(p_prime)
    if isolation == "process":
        return _isolated(
            "check-fusion",
            (p, p_prime),
            {
                "engine": engine,
                "max_internal": max_internal,
                "det_budget": det_budget,
                "mso_deadline_s": mso_deadline_s,
                "node_ceiling": node_ceiling,
                "bounded_deadline_s": bounded_deadline_s,
                "replay": replay,
                "check_bisim": check_bisim,
                "wall_s": wall_s,
                "cpu_s": cpu_s,
                "mem_bytes": mem_bytes,
            },
            mapping=mapping,
        )
    if isolation != "inline":
        raise ValueError(f"unknown isolation mode {isolation!r}")
    t0 = time.perf_counter()
    attempts: List[Dict[str, object]] = []
    details: Dict[str, object] = {"attempts": attempts}
    if check_bisim:
        bis = check_bisimulation(p, p_prime, mapping)
        details["bisimulation"] = str(bis)
        if not bis.bisimilar:
            details["decided_by"] = "bisim"
            return VerificationResult(
                query=f"equivalence({p.name} vs {p_prime.name})",
                verdict="not-equivalent",
                engine="bisim",
                elapsed=time.perf_counter() - t0,
                holds=False,
                details=details,
            )

    used = engine
    sym: Optional[SymbolicVerdict] = None
    bnd: Optional[BoundedVerdict] = None
    sym_rung: Optional[str] = None
    bnd_scope: Optional[int] = None
    if engine in ("mso", "auto"):
        sym, sym_rung = _symbolic_ladder(
            lambda solver, guard: check_conflict_mso(
                p, p_prime, mapping, solver=solver, guard=guard
            ),
            engine,
            det_budget,
            mso_deadline_s,
            node_ceiling,
            attempts,
            details,
        )
        if sym is not None:
            _note_symbolic(details, sym)
        if sym is not None and sym.status == "decided":
            used = "mso"
        elif engine == "mso":
            used = "mso"
        else:
            used = "mso+bounded"
    if engine == "bounded" or (engine == "auto" and used == "mso+bounded"):
        bnd, bnd_scope = _bounded_ladder(
            lambda scope, guard: check_conflict_bounded(
                p, p_prime, mapping, max_internal=scope, guard=guard
            ),
            max_internal,
            bounded_deadline_s,
            attempts,
        )
        if bnd is not None:
            details["bounded"] = str(bnd)
        if engine == "bounded":
            used = "bounded"

    found, witness_tree, witness = _merge_race(sym, bnd)
    verdict = "not-equivalent" if found else "equivalent"
    sym_decided = sym is not None and sym.status == "decided"
    if not sym_decided and bnd is None:
        verdict = "unknown"
    details["decided_by"] = (
        None
        if verdict == "unknown"
        else (sym_rung if sym_decided else f"bounded@{bnd_scope}")
    )
    rep = None
    if replay and found and witness_tree is not None:
        fields = sorted(set(_program_fields(p)) | set(_program_fields(p_prime)))
        rep = replay_conflict(p, p_prime, witness_tree, fields)
    return VerificationResult(
        query=f"equivalence({p.name} vs {p_prime.name})",
        verdict=verdict,
        engine=used,
        elapsed=time.perf_counter() - t0,
        holds=not found and verdict != "unknown",
        witness=witness,
        witness_tree=witness_tree,
        replay=rep,
        details=details,
    )
