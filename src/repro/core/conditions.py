"""Branch-condition universe and ``ConsistentCondSet`` (paper §4).

Arithmetic branch conditions become uninterpreted per-node labels ``C_c`` in
the MSO encoding; the only arithmetic the abstraction keeps is *per-node
consistency*: which complete truth assignments over the condition labels are
jointly satisfiable.  The paper computes this set a priori with an SMT
solver; we use :mod:`repro.arith`.

Weakest preconditions ``WP(c, M)`` are computed by symbolic speculative
execution along the straight-line paths to each condition's ``if`` node
(Appendix C / Fig. 12).  Conditions from *different* functions are coupled
through shared ``@field::…`` variables — two traversals testing fields of
the same node constrain each other, exactly the coupling the CSS case study
needs.

Unknown satisfiability (branch-depth exhaustion in the LIA solver, or
expansion caps) is treated as *consistent* — a sound over-approximation that
can only add behaviours.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..arith import Constraint, check_sat
from ..lang import ast as A
from ..lang.blocks import BlockTable, CondInfo
from .pathcond import DNF, MixedConditionError, SymState, cond_is_structural

__all__ = ["ConditionUniverse"]

MAX_ENUM_CONDS = 14
MAX_DNF_EXPANSION = 4096


class ConditionUniverse:
    """All arithmetic conditions of a program and their consistent sets."""

    def __init__(self, table: BlockTable) -> None:
        self.table = table
        self.arith_conds: List[CondInfo] = []
        self.struct_conds: List[CondInfo] = []
        for c in table.conds:
            structural = cond_is_structural(c.cond)
            if structural is None:
                raise MixedConditionError(
                    f"{c.cid} mixes nil tests and arithmetic: {c.cond}"
                )
            (self.struct_conds if structural else self.arith_conds).append(c)
        self.wp: Dict[str, DNF] = {
            c.cid: self._wp_dnf(c) for c in self.arith_conds
        }
        self._consistent: Optional[List[FrozenSet[Tuple[str, bool]]]] = None

    # -- weakest preconditions ---------------------------------------------------
    def _wp_dnf(self, c: CondInfo) -> DNF:
        """WP of condition ``c`` (positively) as a constraint DNF, unioned
        over the straight-line paths reaching its ``if`` node."""
        func = self.table.program.funcs[c.func]
        out: DNF = []
        for path in self._paths_to_if(c):
            state = SymState(c.func, func.int_params)
            for item in path:
                if item.kind == "block" and item.block is not None:
                    state.exec_block(item.block)
            out.extend(state.eval_bexpr_dnf(c.cond, True))
        # Deduplicate identical disjuncts.
        seen = set()
        dedup: DNF = []
        for disj in out:
            key = tuple(sorted(str(x) for x in disj))
            if key not in seen:
                seen.add(key)
                dedup.append(disj)
        return dedup

    def _paths_to_if(self, c: CondInfo):
        """Straight-line paths from the function entry to the if node of c.

        Reuses the block-path machinery: the paths to ``c``'s then-branch
        blocks minus the final assume on ``c`` itself.  When the then branch
        is empty this falls back to the else branch.
        """
        # Find a block inside the if to anchor on.
        anchor = None
        for b in self.table.blocks_of(c.func):
            conds = self.table.path_conditions(b)
            if any(ci is c for ci, _ in conds):
                anchor = b
                break
        if anchor is None:
            return [()]  # empty if: condition unreachable by blocks
        paths = []
        for p in self.table.straightline_paths(anchor):
            # Truncate at the assume on c.
            cut = []
            for item in p:
                if item.kind == "assume" and item.cond is c:
                    break
                cut.append(item)
            paths.append(tuple(cut))
        # Dedup (different branch continuations share the same prefix).
        seen = set()
        out = []
        for p in paths:
            key = tuple(id(i.block) if i.block else (i.cond.cid, i.polarity) for i in p)
            if key not in seen:
                seen.add(key)
                out.append(p)
        return out

    # -- consistency -------------------------------------------------------------
    @property
    def consistent_sets(self) -> List[FrozenSet[Tuple[str, bool]]]:
        """All complete, satisfiable truth assignments over the arithmetic
        conditions — the paper's ``ConsistentCondSet``."""
        if self._consistent is None:
            self._consistent = self._compute_consistent()
        return self._consistent

    def _compute_consistent(self) -> List[FrozenSet[Tuple[str, bool]]]:
        cids = [c.cid for c in self.arith_conds]
        if len(cids) > MAX_ENUM_CONDS:
            # Sound fallback: treat every assignment as consistent (flag
            # checked by `compatible`/`completions`; never materialized).
            self.all_consistent = True
            return []
        self.all_consistent = False
        out = []
        for combo in itertools.product((True, False), repeat=len(cids)):
            assignment = dict(zip(cids, combo))
            if self._assignment_sat(assignment):
                out.append(frozenset(assignment.items()))
        return out

    def _assignment_sat(self, assignment: Mapping[str, bool]) -> bool:
        """Is ∧_{c true} WP(c) ∧ ∧_{c false} ¬WP(c) satisfiable?"""
        # Build alternative constraint sets by DFS over DNF choices.
        choice_sets: List[List[List[Constraint]]] = []
        for cid, value in assignment.items():
            dnf = self.wp[cid]
            if value:
                if not dnf:
                    return False  # WP is `false`, cannot be satisfied
                choice_sets.append([list(d) for d in dnf])
            else:
                neg = _negate_dnf(dnf)
                if neg is None:
                    return True  # too big to negate: sound over-approx
                if not neg:
                    return False  # WP is `true`, negation unsatisfiable
                choice_sets.append(neg)

        def dfs(i: int, acc: List[Constraint]) -> bool:
            if len(acc) > 0 and not check_sat(acc).possibly_sat:
                return False
            if i == len(choice_sets):
                return check_sat(acc).possibly_sat
            for choice in choice_sets[i]:
                if dfs(i + 1, acc + choice):
                    return True
            return False

        return dfs(0, [])

    def compatible(self, pins: Mapping[str, bool]) -> bool:
        """Can the partial assignment ``pins`` extend to a consistent set?"""
        if not pins:
            return True
        sets = self.consistent_sets
        if getattr(self, "all_consistent", False):
            return True
        for s in sets:
            d = dict(s)
            if all(d.get(cid) == v for cid, v in pins.items()):
                return True
        return False

    def completions(
        self, pins: Mapping[str, bool]
    ) -> List[FrozenSet[Tuple[str, bool]]]:
        """All consistent complete assignments extending ``pins``."""
        sets = self.consistent_sets
        if getattr(self, "all_consistent", False):
            free = [c.cid for c in self.arith_conds if c.cid not in pins]
            return [
                frozenset(list(pins.items()) + list(zip(free, combo)))
                for combo in itertools.product((True, False), repeat=len(free))
            ]
        out = []
        for s in sets:
            d = dict(s)
            if all(d.get(cid) == v for cid, v in pins.items()):
                out.append(s)
        return out


def _negate_dnf(dnf: DNF) -> Optional[List[List[Constraint]]]:
    """¬(D1 ∨ … ∨ Dk) as a list of alternative conjunctions (a DNF again),
    by distributing; returns None if the expansion exceeds the cap."""
    # ¬Di = ∨ over atoms a in Di of ¬a (each ¬a is a disjunction of 1-2 atoms).
    alternatives: List[List[Constraint]] = [[]]
    for disj in dnf:
        nxt: List[List[Constraint]] = []
        for acc in alternatives:
            for atom in disj:
                for neg in atom.negated():
                    nxt.append(acc + [neg])
        if len(nxt) > MAX_DNF_EXPANSION:
            return None
        alternatives = nxt
    return alternatives
