"""Path conditions via symbolic speculative execution (paper Def. 1, Lemma 1,
Appendix C).

``transition_cases(table, f, t)`` computes, for a function ``f`` and a block
``t ∈ Blocks(f)``, every way a speculative execution of ``f`` can reach
``t``.  Each :class:`TransitionCase` captures the MSO-visible abstraction of
``PathCond_{s,t}``:

* the *assumes* — branch conditions taken on the way, split into structural
  pins (nil tests, decided by tree shape) and arithmetic pins (``C_c``
  labels); and
* for the precise/bounded engines, the symbolic machinery: the weakest
  precondition of each assumed condition as a constraint DNF over a
  per-record variable namespace, and the callee-parameter bindings of
  ``Match_{s,t}`` when ``t`` is itself a call.

The variable namespace (shared with :mod:`repro.core.conditions`):

* ``{f}::{p}``       — Int parameter ``p`` of the record's function ``f``;
* ``{f}::{sid}::{k}``— speculative (ghost) return ``k`` of call block sid;
* ``@field::{dirs}::{name}`` — a field read of the record's node (or its
  descendants), *shared between records at the same node* — this sharing is
  what couples different traversals' conditions in ``ConsistentCondSet``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arith import Constraint, LinTerm
from ..lang import ast as A
from ..lang.blocks import Block, BlockTable, CondInfo, PathItem

__all__ = [
    "StructPin",
    "ArithPin",
    "TransitionCase",
    "transition_cases",
    "cond_is_structural",
    "struct_pin_of",
    "SymState",
    "MixedConditionError",
]

# A value under symbolic execution: disjoint cases of (linear term, side
# conditions).  Case lists are produced by Max/Min elimination.
CaseList = List[Tuple[LinTerm, List[Constraint]]]

# DNF over the record namespace.
DNF = List[List[Constraint]]


class MixedConditionError(ValueError):
    """A branch condition mixes nil tests with arithmetic (unsupported —
    rewrite as nested ifs)."""


@dataclass(frozen=True)
class StructPin:
    """Tree-shape requirement: node at ``dirs`` (from the record node) is
    nil (``is_nil=True``) or not."""

    dirs: str
    is_nil: bool

    def __str__(self) -> str:
        rel = "==" if self.is_nil else "!="
        return f"n{''.join('.' + d for d in self.dirs)} {rel} nil"


@dataclass(frozen=True)
class ArithPin:
    """Arithmetic condition label pin: ``C_c(u) == value``."""

    cid: str
    value: bool

    def __str__(self) -> str:
        return f"{'' if self.value else '!'}{self.cid}"


@dataclass
class TransitionCase:
    """One speculative path through ``func`` reaching block ``target``."""

    func: str
    target: Block
    struct_pins: Tuple[StructPin, ...]
    arith_pins: Tuple[ArithPin, ...]
    # Precise-engine payload: conjunction (over assumed conditions) of
    # constraint-DNFs in the record namespace.
    wp_dnfs: List[DNF] = field(default_factory=list)
    # When ``target`` is a call: child direction ('' same node, 'l'/'r')
    # and Match bindings: callee param -> symbolic value cases.
    direction: str = ""
    bindings: Dict[str, CaseList] = field(default_factory=dict)

    def __str__(self) -> str:
        pins = [str(p) for p in self.struct_pins] + [str(p) for p in self.arith_pins]
        return f"{self.func} --[{' & '.join(pins) or 'true'}]--> {self.target.sid}"


def cond_is_structural(cond: A.BExpr) -> Optional[bool]:
    """True = purely structural (nil tests), False = purely arithmetic,
    None = mixed."""

    def scan(b: A.BExpr) -> Tuple[bool, bool]:
        if isinstance(b, A.IsNil):
            return True, False
        if isinstance(b, (A.Gt, A.Eq0)):
            return False, True
        if isinstance(b, A.BTrue):
            return False, False
        if isinstance(b, A.Not):
            return scan(b.expr)
        if isinstance(b, (A.BAnd, A.BOr)):
            ls, la = scan(b.left)
            rs, ra = scan(b.right)
            return ls or rs, la or ra
        raise TypeError(f"unknown BExpr {b!r}")

    has_struct, has_arith = scan(cond)
    if has_struct and has_arith:
        return None
    return has_struct  # pure BTrue counts as arithmetic/trivial


def struct_pin_of(cond: A.BExpr, polarity: bool) -> List[List[StructPin]]:
    """DNF of structural pins for a purely structural condition."""
    if isinstance(cond, A.IsNil):
        return [[StructPin(cond.loc.directions(), polarity)]]
    if isinstance(cond, A.Not):
        return struct_pin_of(cond.expr, not polarity)
    if isinstance(cond, A.BAnd):
        if polarity:
            return [
                a + b
                for a in struct_pin_of(cond.left, True)
                for b in struct_pin_of(cond.right, True)
            ]
        return struct_pin_of(cond.left, False) + struct_pin_of(cond.right, False)
    if isinstance(cond, A.BOr):
        if not polarity:
            return [
                a + b
                for a in struct_pin_of(cond.left, False)
                for b in struct_pin_of(cond.right, False)
            ]
        return struct_pin_of(cond.left, True) + struct_pin_of(cond.right, True)
    if isinstance(cond, A.BTrue):
        return [[]] if polarity else []
    raise MixedConditionError(f"not structural: {cond}")


class SymState:
    """Symbolic state of a speculative execution (Def. 1)."""

    def __init__(self, func_name: str, params: Tuple[str, ...]) -> None:
        self.func = func_name
        self.env: Dict[str, CaseList] = {
            p: [(LinTerm.var(f"{func_name}::{p}"), [])] for p in params
        }
        self.fields: Dict[Tuple[str, str], CaseList] = {}

    # -- naming ---------------------------------------------------------------
    def ghost(self, sid: str, k: int) -> str:
        return f"{self.func}::{sid}::{k}"

    def field_var(self, dirs: str, name: str) -> str:
        return f"@field::{dirs}::{name}"

    # -- evaluation --------------------------------------------------------------
    def eval(self, e: A.AExpr) -> CaseList:
        if isinstance(e, A.Const):
            return [(LinTerm.constant(e.value), [])]
        if isinstance(e, A.Var):
            if e.name in self.env:
                return self.env[e.name]
            # Read of an unassigned local: a fresh symbolic value.
            return [(LinTerm.var(f"{self.func}::{e.name}"), [])]
        if isinstance(e, A.FieldRead):
            key = (e.loc.directions(), e.fieldname)
            if key in self.fields:
                return self.fields[key]
            return [(LinTerm.var(self.field_var(*key)), [])]
        if isinstance(e, (A.Add, A.Sub)):
            out: CaseList = []
            for lt, lc in self.eval(e.left):
                for rt, rc in self.eval(e.right):
                    t = lt + rt if isinstance(e, A.Add) else lt - rt
                    out.append((t, lc + rc))
            return out
        if isinstance(e, A.Neg):
            return [(t.scale(-1), c) for t, c in self.eval(e.expr)]
        if isinstance(e, (A.Max, A.Min)):
            arg_cases = [self.eval(a) for a in e.args]
            out = []
            for i in range(len(e.args)):
                for ti, ci in arg_cases[i]:
                    conds_list = [list(ci)]
                    for j in range(len(e.args)):
                        if j == i:
                            continue
                        nxt = []
                        for conds in conds_list:
                            for tj, cj in arg_cases[j]:
                                gap = ti - tj if isinstance(e, A.Max) else tj - ti
                                nxt.append(conds + cj + [Constraint(gap, ">=")])
                        conds_list = nxt
                    for conds in conds_list:
                        out.append((ti, conds))
            return out
        raise TypeError(f"unknown AExpr {e!r}")

    def eval_bexpr_dnf(self, b: A.BExpr, polarity: bool) -> DNF:
        """Constraint DNF of an arithmetic condition under this state."""
        from ..arith import GE, GT, EQ

        if isinstance(b, A.BTrue):
            return [[]] if polarity else []
        if isinstance(b, A.Gt):
            out: DNF = []
            for t, side in self.eval(b.expr):
                atom = Constraint(t, GT) if polarity else Constraint(t.scale(-1), GE)
                out.append(side + [atom])
            return out
        if isinstance(b, A.Eq0):
            out = []
            for t, side in self.eval(b.expr):
                if polarity:
                    out.append(side + [Constraint(t, EQ)])
                else:
                    out.append(side + [Constraint(t, GT)])
                    out.append(side + [Constraint(t.scale(-1), GT)])
            return out
        if isinstance(b, A.Not):
            return self.eval_bexpr_dnf(b.expr, not polarity)
        if isinstance(b, A.BAnd):
            if polarity:
                return [
                    x + y
                    for x in self.eval_bexpr_dnf(b.left, True)
                    for y in self.eval_bexpr_dnf(b.right, True)
                ]
            return self.eval_bexpr_dnf(b.left, False) + self.eval_bexpr_dnf(
                b.right, False
            )
        if isinstance(b, A.BOr):
            if polarity:
                return self.eval_bexpr_dnf(b.left, True) + self.eval_bexpr_dnf(
                    b.right, True
                )
            return [
                x + y
                for x in self.eval_bexpr_dnf(b.left, False)
                for y in self.eval_bexpr_dnf(b.right, False)
            ]
        raise MixedConditionError(f"cannot lower condition {b}")

    # -- transfer ----------------------------------------------------------------
    def exec_block(self, b: Block) -> None:
        if b.is_call:
            stmt = b.stmt
            assert isinstance(stmt, A.CallStmt)
            for k, tgt in enumerate(stmt.targets):
                self.env[tgt] = [(LinTerm.var(self.ghost(b.sid, k)), [])]
            return
        stmt2 = b.stmt
        assert isinstance(stmt2, A.AssignBlock)
        for a in stmt2.assigns:
            if isinstance(a, A.VarAssign):
                self.env[a.name] = self.eval(a.expr)
            elif isinstance(a, A.FieldAssign):
                self.fields[(a.loc.directions(), a.fieldname)] = self.eval(a.expr)
            # Return: terminal; paths to a later target never include it.


def transition_cases(table: BlockTable, fname: str, t: Block) -> List[TransitionCase]:
    """All speculative-execution cases of ``fname`` reaching block ``t``."""
    assert t.func == fname
    stmt_dir = ""
    if t.is_call:
        stmt = t.stmt
        assert isinstance(stmt, A.CallStmt)
        stmt_dir = stmt.loc.directions()
    func = table.program.funcs[fname]

    cases: List[TransitionCase] = []
    for path in table.straightline_paths(t):
        state = SymState(fname, func.int_params)
        struct_pins: List[StructPin] = []
        arith_pins: List[ArithPin] = []
        wp_dnfs: List[DNF] = []
        feasible_struct: List[List[List[StructPin]]] = []  # per-assume DNFs
        ok = True
        for item in path:
            if item.kind == "block":
                assert item.block is not None
                state.exec_block(item.block)
                continue
            cond = item.cond
            assert cond is not None
            structural = cond_is_structural(cond.cond)
            if structural is None:
                raise MixedConditionError(
                    f"{cond.cid} in {fname} mixes nil tests and arithmetic: "
                    f"{cond.cond}"
                )
            if structural:
                pin_dnf = struct_pin_of(cond.cond, item.polarity)
                if not pin_dnf:
                    ok = False
                    break
                feasible_struct.append(pin_dnf)
            else:
                arith_pins.append(ArithPin(cond.cid, item.polarity))
                wp_dnfs.append(state.eval_bexpr_dnf(cond.cond, item.polarity))
        if not ok:
            continue
        # Expand structural DNFs (they are tiny: usually one literal each).
        expansions: List[List[StructPin]] = [[]]
        for dnf in feasible_struct:
            expansions = [e + disj for e in expansions for disj in dnf]
        for struct_combo in expansions:
            combo = _dedupe_struct(struct_combo)
            if combo is None:
                continue  # contradictory pins along this path
            case = TransitionCase(
                func=fname,
                target=t,
                struct_pins=tuple(combo),
                arith_pins=tuple(arith_pins),
                wp_dnfs=[list(d) for d in wp_dnfs],
                direction=stmt_dir,
            )
            if t.is_call:
                stmt = t.stmt
                assert isinstance(stmt, A.CallStmt)
                callee = table.program.funcs[stmt.func]
                case.bindings = {
                    p: state.eval(arg)
                    for p, arg in zip(callee.int_params, stmt.args)
                }
            cases.append(case)
    return cases


def _dedupe_struct(pins: List[StructPin]) -> Optional[List[StructPin]]:
    seen: Dict[str, bool] = {}
    for p in pins:
        if p.dirs in seen and seen[p.dirs] != p.is_nil:
            return None
        seen[p.dirs] = p.is_nil
    # Propagate: nil(u.d) requires... (nil children of nil are implicit in
    # the tree model; contradictions like nil('') with !nil('l') are caught
    # by the concrete shape check downstream).
    return [StructPin(d, v) for d, v in sorted(seen.items())]
