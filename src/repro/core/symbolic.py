"""Symbolic (MSO/automata) engine for the data-race and conflict queries.

The MONA-style counterpart of :mod:`repro.core.bounded`: the queries of
Theorems 2 and 3 are discharged as satisfiability of the §4 encoding, over
*all* trees rather than a bounded scope.  One query is issued per
statically-conflicting endpoint pair, so the expensive q-independent
``Configuration`` conjuncts compile once and are shared via the compiler's
memo table.

Failure semantics (DESIGN.md §7): both checkers take a
:class:`~repro.runtime.ResourceGuard` (or a legacy ``deadline`` float);
resource exhaustion is reported as a distinct ``SymbolicVerdict.status``
(``"deadline"`` / ``"budget"`` / ``"memory"``), and any unexpected
exception escapes as a typed
:class:`~repro.runtime.SolverInternalError` — never as a silent
``race-free``/``equivalent`` verdict.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from ..automata.emptiness import Witness
from ..lang import ast as A
from ..mso import syntax as S
from ..runtime import (
    ReproError,
    ResourceExhausted,
    ResourceGuard,
    SolverInternalError,
    as_guard,
    exhaustion_status,
)
from ..solver.solver import MSOSolver
from .bounded import block_touches, cell_class
from .configurations import ProgramModel
from .encode import ConfigTracks, Encoder

__all__ = ["SymbolicVerdict", "check_data_race_mso", "check_conflict_mso"]

X1, X2 = "@x1", "@x2"


@dataclass
class SymbolicVerdict:
    query: str
    found: bool
    status: str  # "decided" | "budget" | "deadline" | "memory"
    witness: Optional[Witness] = None
    witness_info: Optional[str] = None
    queries: int = 0
    elapsed: float = 0.0
    max_states: int = 0
    # Snapshot of the solver's per-phase statistics (SolverStats.as_dict),
    # including BDD node/cache counters — filled in on every return path.
    stats: Optional[Dict[str, object]] = None

    @property
    def holds(self) -> bool:
        return self.status == "decided" and not self.found

    def __str__(self) -> str:
        status = (
            "COUNTEREXAMPLE"
            if self.found
            else (
                "holds (all trees)"
                if self.status == "decided"
                else self.status.upper()
            )
        )
        return (
            f"[mso] {self.query}: {status} ({self.queries} queries, "
            f"max {self.max_states} automaton states, {self.elapsed:.3f}s)"
        )


def _interface(side, keep):
    """Project a side automaton down to its interface tracks and reduce."""
    from ..automata.minimize import reduce_nfta

    out = side.projected([t for t in side.tracks if t not in keep])
    return reduce_nfta(out)


def _conflicting_block_pairs(model: ProgramModel):
    """Non-call block pairs with a statically conflicting cell.

    Field conflicts are yielded before pure value-cell (return/variable)
    conflicts: real races are usually field-level, so witness-bearing
    queries run before the budget is spent on ghost-cell pairs."""
    noncalls = model.table.all_noncalls
    pairs = []
    for i, q1 in enumerate(noncalls):
        for q2 in noncalls[i:]:
            offsets = model.rw.conflict_offsets(q1, q2)
            if offsets:
                has_field = any(kind == "field" for _, _, kind, _ in offsets)
                cross_func = q1.func != q2.func
                # (field cross-traversal) < (field same-traversal) < rest
                rank = (0 if has_field else 2) + (0 if cross_func else 1)
                pairs.append((rank, q1, q2))
    pairs.sort(key=lambda t: t[0])
    for _, q1, q2 in pairs:
        yield q1, q2


def _attach_guard(
    solver: MSOSolver,
    guard: Optional[ResourceGuard],
    deadline: Optional[float],
) -> Optional[ResourceGuard]:
    """Install guard/deadline on the solver and bind its BDD manager."""
    guard = as_guard(guard, deadline)
    solver.deadline = deadline
    solver.guard = guard
    if guard is not None:
        guard.bind_manager(solver.registry.manager)
    return guard


def _wrap_internal(e: Exception, guard: Optional[ResourceGuard]) -> SolverInternalError:
    return SolverInternalError(
        f"symbolic engine failed: {type(e).__name__}: {e}",
        phase=guard.last_phase if guard is not None else None,
    )


def check_data_race_mso(
    program: A.Program,
    solver: Optional[MSOSolver] = None,
    det_budget: int = 50_000,
    deadline: Optional[float] = None,
    guard: Optional[ResourceGuard] = None,
) -> SymbolicVerdict:
    """``DataRace[[P]]`` (Thm 2) by MSO satisfiability, over all trees."""
    model = ProgramModel(program)
    enc = Encoder(model, program.name.replace(" ", "_"))
    solver = solver or MSOSolver(det_budget=det_budget)
    ct1, ct2 = enc.tracks(1), enc.tracks(2)
    enc.preregister(solver.registry, (ct1, ct2))
    guard = _attach_guard(solver, guard, deadline)
    t0 = time.perf_counter()
    verdict = SymbolicVerdict(query=f"data-race({program.name})", found=False, status="decided")
    try:
        # The q-independent constraints compile once per configuration
        # family; the Parallel relation compiles once.  They are kept as
        # separate product factors so each query's cheap Current/geometry
        # constraints can prune the product early.
        core1 = solver.automaton_conj(
            enc.config_core_parts(ct1), cache_key=f"cfg-core:{ct1.prefix}"
        )
        core2 = solver.automaton_conj(
            enc.config_core_parts(ct2), cache_key=f"cfg-core:{ct2.prefix}"
        )
        par = solver.compile(enc.parallel(ct1, ct2))
        for q1, q2 in _conflicting_block_pairs(model):
            if guard is not None and guard.expired():
                verdict.status = "deadline"
                break
            parts: List[object] = [core1, core2, par]
            parts += enc.current_parts(ct1, q1, X1)
            parts += enc.current_parts(ct2, q2, X2)
            parts.append(enc.dependence_geometry(q1, q2, X1, X2))
            parts.append(S.Sing(X1))
            parts.append(S.Sing(X2))
            acc = solver.automaton_conj(parts)
            res = solver.sat_of(acc, exist_fo=(X1, X2))
            verdict.queries += 1
            verdict.max_states = max(verdict.max_states, res.automaton_states)
            if res.is_sat:
                verdict.found = True
                verdict.witness = res.witness
                verdict.witness_info = (
                    f"parallel dependent iterations ({q1.sid}, {q2.sid})"
                )
                break
    except ResourceExhausted as e:
        verdict.status = exhaustion_status(e)
    except ReproError:
        raise
    except Exception as e:
        raise _wrap_internal(e, guard) from e
    verdict.elapsed = time.perf_counter() - t0
    verdict.stats = solver.stats.as_dict(solver.registry.manager)
    return verdict


def check_conflict_mso(
    p: A.Program,
    p_prime: A.Program,
    mapping: Mapping[str, Set[str]],
    solver: Optional[MSOSolver] = None,
    det_budget: int = 50_000,
    deadline: Optional[float] = None,
    guard: Optional[ResourceGuard] = None,
) -> SymbolicVerdict:
    """``Conflict[[P, P']]`` (Thm 3) by MSO satisfiability.

    As in the bounded engine (and the paper's shared-blocks setup),
    dependences are identified on ``P``; ``P'`` contributes the reversed
    schedule.  One query per (dependence endpoints, access-compatible image)
    combination, in both orientations."""
    model_p = ProgramModel(p)
    model_q = ProgramModel(p_prime)
    enc_p = Encoder(model_p, "P")
    enc_q = Encoder(model_q, "Q")
    solver = solver or MSOSolver(det_budget=det_budget)
    ct1, ct2 = enc_p.tracks(1), enc_p.tracks(2)
    ct3, ct4 = enc_q.tracks(3), enc_q.tracks(4)
    enc_p.preregister(solver.registry, (ct1, ct2))
    enc_q.preregister(solver.registry, (ct3, ct4))
    guard = _attach_guard(solver, guard, deadline)
    t0 = time.perf_counter()
    verdict = SymbolicVerdict(
        query=f"conflict({p.name} vs {p_prime.name})", found=False, status="decided"
    )
    try:
        cores = [
            solver.automaton_conj(
                enc.config_core_parts(ct), cache_key=f"cfg-core:{ct.prefix}"
            )
            for enc, ct in (
                (enc_p, ct1), (enc_p, ct2), (enc_q, ct3), (enc_q, ct4)
            )
        ]
        ord_p = solver.compile(enc_p.ordered(ct1, ct2))
        ord_q_rev = solver.compile(enc_q.ordered(ct4, ct3))
        def p_side_parts(qa, qb):
            # Endpoint-specific conjuncts are grouped under their own
            # cache keys: each group depends on one block, so across the
            # pair sweep the groups — and the merged factors the lazy
            # product builds from them — are shared objects, and the
            # per-query factor-merge phase becomes cache hits.
            cur_a1 = solver.automaton_conj(
                enc_p.current_parts(ct1, qa, X1) + [S.Sing(X1)],
                cache_key=f"cur:{ct1.prefix}:{qa.sid}",
            )
            cur_b2 = solver.automaton_conj(
                enc_p.current_parts(ct2, qb, X2) + [S.Sing(X2)],
                cache_key=f"cur:{ct2.prefix}:{qb.sid}",
            )
            return [
                cores[0], cores[1], ord_p, cur_a1, cur_b2,
                enc_p.dependence_geometry(qa, qb, X1, X2),
            ]

        def q_side_parts(ams, bms):
            cur_a3 = solver.automaton_conj(
                [enc_q.current_any(
                    ct3, [model_q.table.block(a) for a in ams], X1
                )],
                cache_key=f"cur:{ct3.prefix}:{','.join(ams)}",
            )
            cur_b4 = solver.automaton_conj(
                [enc_q.current_any(
                    ct4, [model_q.table.block(b) for b in bms], X2
                )],
                cache_key=f"cur:{ct4.prefix}:{','.join(bms)}",
            )
            return [cores[2], cores[3], ord_q_rev, cur_a3, cur_b4]

        def localize(qa, qb, ams, bms):
            """A class query is SAT: find a witnessing image pair and a
            decodable witness from the joint product (the interface
            projection cannot be decoded back to labels)."""
            for qam in ams:
                for qbm in bms:
                    acc = solver.automaton_conj(
                        p_side_parts(qa, qb)
                        + q_side_parts((qam,), (qbm,))
                    )
                    res = solver.sat_of(acc, exist_fo=(X1, X2))
                    verdict.queries += 1
                    if res.is_sat:
                        return qam, qbm, res
            return None  # interface over-approximation never reaches here

        for q1, q2 in _conflicting_block_pairs(model_p):
            if verdict.found or verdict.status != "decided":
                break
            # Both orientations of the dependence.
            for qa, qb in ((q1, q2), (q2, q1)) if q1 is not q2 else ((q1, q2),):
                if verdict.found or verdict.status != "decided":
                    break
                reqs = set()
                for d1, d2, kind, name in model_p.rw.conflict_offsets(qa, qb):
                    clazz = cell_class(kind, name)
                    reqs.add((clazz, "rw", "w"))
                    reqs.add((clazz, "w", "rw"))
                # One query per conflict class, not per image pair: the
                # access-compatible images form a *product* set A1 × A2
                # per class, so ``Current`` generalizes to a disjunction
                # over each side's candidate set and the whole class is
                # one satisfiability question.  (SAT distributes over
                # the union, so the answer equals the OR of the old
                # per-pair queries; a SAT class is then localized.)
                seen_sets = set()
                for clazz, n1, n2 in sorted(reqs):
                    if verdict.found or verdict.status != "decided":
                        break
                    if guard is not None and guard.expired():
                        verdict.status = "deadline"
                        break
                    ams = tuple(
                        a for a in sorted(mapping.get(qa.sid, set()))
                        if block_touches(model_q, a, clazz, n1)
                    )
                    bms = tuple(
                        b for b in sorted(mapping.get(qb.sid, set()))
                        if block_touches(model_q, b, clazz, n2)
                    )
                    if not ams or not bms or (ams, bms) in seen_sets:
                        continue
                    seen_sets.add((ams, bms))
                    p_parts = p_side_parts(qa, qb)
                    if solver.lazy_products:
                        # An empty P-side interface (e.g. unsatisfiable
                        # dependence geometry) decides the combo before
                        # any P'-side automaton is even built.
                        iface_p = solver.interface_conj(
                            p_parts, (X1, X2),
                            cache_key=f"iface-P:{qa.sid}:{qb.sid}",
                        )
                        if not iface_p.accepting:
                            verdict.queries += 1
                            continue
                    q_parts = q_side_parts(ams, bms)
                    if solver.lazy_products:
                        # The two sides share only the tree shape and
                        # the endpoint markers (P*/Q* track prefixes are
                        # disjoint), so the joint conjunction is empty
                        # iff the sides' {x1, x2}-interface automata
                        # intersect empty — and each side depends on
                        # only its own loop variables, so saturations
                        # are shared across the sweep.
                        iface_q = solver.interface_conj(
                            q_parts, (X1, X2),
                            cache_key=(
                                f"iface-Q:{','.join(ams)}|{','.join(bms)}"
                            ),
                        )
                        acc = solver.automaton_conj([iface_p, iface_q])
                        res = solver.sat_of(
                            acc, exist_fo=(X1, X2), want_witness=False
                        )
                    else:
                        side_p = solver.automaton_conj(p_parts)
                        side_q = solver.automaton_conj(q_parts)
                        iface_p = _interface(side_p, (X1, X2))
                        iface_q = _interface(side_q, (X1, X2))
                        acc = solver.automaton_conj([iface_p, iface_q])
                        res = solver.sat_of(acc, exist_fo=(X1, X2))
                    verdict.queries += 1
                    verdict.max_states = max(
                        verdict.max_states, res.automaton_states
                    )
                    if res.is_sat:
                        hit = (
                            localize(qa, qb, ams, bms)
                            if solver.lazy_products
                            else (ams[0], bms[0], res)
                        )
                        if hit is None:
                            continue
                        qam, qbm, res = hit
                        verdict.found = True
                        verdict.witness = res.witness
                        verdict.max_states = max(
                            verdict.max_states, res.automaton_states
                        )
                        verdict.witness_info = (
                            f"dependence ({qa.sid}@x1 -> {qb.sid}@x2) ordered "
                            f"in P but reversed in P' via ({qam}, {qbm})"
                        )
                        break
    except ResourceExhausted as e:
        verdict.status = exhaustion_status(e)
    except ReproError:
        raise
    except Exception as e:
        raise _wrap_internal(e, guard) from e
    verdict.elapsed = time.perf_counter() - t0
    verdict.stats = solver.stats.as_dict(solver.registry.manager)
    return verdict
