"""Read & write analysis (paper Appendix B).

For every non-call block ``s`` we compute the read set ``Rs`` and write set
``Ws`` as sets of *access descriptors* — cells addressed relative to the node
the block runs on:

* ``Cell("field", dirs, name)`` — local Int field ``name`` of the node at
  child-directions ``dirs`` ('' = the node itself);
* ``Cell("var", func, name)`` — a local Int variable of the enclosing
  function's activation at the node;
* ``Cell("ret", func, k)`` — the k-th return value of a ``func`` activation.
  A ``return`` block *writes* ``ret(f,k)`` at its own node; a block reading a
  variable that was bound by a call ``x = g(n.l, …)`` *reads* ``ret(g,k)``
  at directions 'l'.

Return-value cells are how the framework sees the read-after-write
dependence between a child's return and its parent's use — the dependence
whose violation the paper's Fig. 6b counterexample exhibits.

Variable reads are classified by a per-function reaching-definitions pass:
a read of ``x`` in block ``q`` resolves to the cells of every definition of
``x`` that reaches ``q`` (call ghost → ``ret`` cell at the call's direction;
plain assignment → ``var`` cell; parameter → ``var`` cell).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..lang import ast as A
from ..lang.blocks import Block, BlockTable, PathItem
from ..lang.exprs import aexpr_field_reads, aexpr_vars, bexpr_field_reads, bexpr_vars

__all__ = ["Cell", "AccessSets", "ReadWriteAnalysis"]


@dataclass(frozen=True)
class Cell:
    """An abstract memory cell relative to a block's node.

    ``kind``: "field" | "var" | "ret".
    ``dirs``: child directions from the block's node ('' = self).
    ``name``: field name, ``func::var`` or ``func::k``.
    """

    kind: str
    dirs: str
    name: str

    def absolute(self, node_path: str) -> Tuple[str, str, str]:
        """The concrete cell when the block runs at ``node_path``."""
        return (self.kind, node_path + self.dirs, self.name)

    def __str__(self) -> str:
        at = "n" + "".join("." + d for d in self.dirs)
        return f"{self.kind}:{at}:{self.name}"


@dataclass(frozen=True)
class AccessSets:
    reads: FrozenSet[Cell]
    writes: FrozenSet[Cell]

    @property
    def readwrites(self) -> FrozenSet[Cell]:
        return self.reads | self.writes


class ReadWriteAnalysis:
    """Access sets for every non-call block of a program."""

    def __init__(
        self,
        table: BlockTable,
        include_guard_reads: bool = True,
    ) -> None:
        self.table = table
        self.include_guard_reads = include_guard_reads
        self._defs = self._reaching_definitions()
        self._sets: Dict[str, AccessSets] = {}
        for b in table.all_noncalls:
            self._sets[b.sid] = self._compute(b)

    def access(self, block: Block) -> AccessSets:
        return self._sets[block.sid]

    def reads(self, block: Block) -> FrozenSet[Cell]:
        return self._sets[block.sid].reads

    def writes(self, block: Block) -> FrozenSet[Cell]:
        return self._sets[block.sid].writes

    # -- reaching definitions ----------------------------------------------------
    def _reaching_definitions(self) -> Dict[Tuple[str, str], Set[Cell]]:
        """(sid, varname) -> cells a read of varname in block sid refers to.

        Walks every straight-line path to each block and takes the last
        definition of each variable on that path (union over paths)."""
        out: Dict[Tuple[str, str], Set[Cell]] = {}
        for b in self.table.blocks:
            fname = b.func
            func = self.table.program.funcs[fname]
            used = self._vars_read(b)
            if not used:
                continue
            for path in self.table.straightline_paths(b):
                last_def: Dict[str, Cell] = {
                    p: Cell("var", "", f"{fname}::{p}") for p in func.int_params
                }
                for item in path:
                    if item.kind != "block":
                        continue
                    pb = item.block
                    assert pb is not None
                    if pb.is_call:
                        stmt = pb.stmt
                        assert isinstance(stmt, A.CallStmt)
                        dirs = stmt.loc.directions()
                        for k, tgt in enumerate(stmt.targets):
                            last_def[tgt] = Cell(
                                "ret", dirs, f"{stmt.func}::{k}"
                            )
                    else:
                        stmt2 = pb.stmt
                        assert isinstance(stmt2, A.AssignBlock)
                        for a in stmt2.assigns:
                            if isinstance(a, A.VarAssign):
                                last_def[a.name] = Cell(
                                    "var", "", f"{fname}::{a.name}"
                                )
                for v in used:
                    cell = last_def.get(v, Cell("var", "", f"{fname}::{v}"))
                    out.setdefault((b.sid, v), set()).add(cell)
        return out

    def _vars_read(self, b: Block) -> Set[str]:
        read: Set[str] = set()
        if b.is_call:
            stmt = b.stmt
            assert isinstance(stmt, A.CallStmt)
            for a in stmt.args:
                read |= aexpr_vars(a)
            return read
        stmt2 = b.stmt
        assert isinstance(stmt2, A.AssignBlock)
        local_written: Set[str] = set()
        for a in stmt2.assigns:
            if isinstance(a, A.VarAssign):
                read |= aexpr_vars(a.expr) - local_written
                local_written.add(a.name)
            elif isinstance(a, A.FieldAssign):
                read |= aexpr_vars(a.expr) - local_written
            else:
                for e in a.exprs:
                    read |= aexpr_vars(e) - local_written
        return read

    # -- per-block access sets ------------------------------------------------------
    def _compute(self, b: Block) -> AccessSets:
        fname = b.func
        reads: Set[Cell] = set()
        writes: Set[Cell] = set()
        stmt = b.stmt
        assert isinstance(stmt, A.AssignBlock)

        def read_expr(e: A.AExpr) -> None:
            for dirs, f in aexpr_field_reads(e):
                reads.add(Cell("field", dirs, f))
            for v in aexpr_vars(e):
                for cell in self._defs.get((b.sid, v), {Cell("var", "", f"{fname}::{v}")}):
                    reads.add(cell)

        for a in stmt.assigns:
            if isinstance(a, A.VarAssign):
                read_expr(a.expr)
                writes.add(Cell("var", "", f"{fname}::{a.name}"))
            elif isinstance(a, A.FieldAssign):
                read_expr(a.expr)
                writes.add(Cell("field", a.loc.directions(), a.fieldname))
            else:  # Return
                for k, e in enumerate(a.exprs):
                    read_expr(e)
                    writes.add(Cell("ret", "", f"{fname}::{k}"))

        if self.include_guard_reads:
            # Condition reads guard the block: the paper's read sets include
            # "all data fields and local variables occurred in an if-condition".
            for cond, _pol in self.table.path_conditions(b):
                for dirs, f in bexpr_field_reads(cond.cond):
                    reads.add(Cell("field", dirs, f))
                for v in bexpr_vars(cond.cond):
                    for cell in self._defs.get(
                        (b.sid, v), {Cell("var", "", f"{fname}::{v}")}
                    ):
                        reads.add(cell)
        return AccessSets(frozenset(reads), frozenset(writes))

    # -- dependence geometry -----------------------------------------------------
    def conflict_offsets(
        self, q1: Block, q2: Block
    ) -> List[Tuple[str, str, str, str]]:
        """Static cell conflicts between two non-call blocks.

        Returns tuples ``(dirs1, dirs2, kind, name)``: running ``q1`` at
        node ``x1`` and ``q2`` at ``x2`` touch a common cell (with at least
        one write) iff ``x1 + dirs1 == x2 + dirs2`` for some returned tuple.
        This is the static core of the paper's ``Dependence`` predicate.
        ``field`` cells exist only on internal nodes; ``ret``/``var`` cells
        exist on nil nodes too (a callee invoked on nil still returns).
        """
        a1, a2 = self.access(q1), self.access(q2)
        out: List[Tuple[str, str, str, str]] = []
        for c1 in a1.readwrites:
            for c2 in a2.writes:
                if (c1.kind, c1.name) == (c2.kind, c2.name):
                    out.append((c1.dirs, c2.dirs, c1.kind, c1.name))
        for c1 in a1.writes:
            for c2 in a2.reads:
                if (c1.kind, c1.name) == (c2.kind, c2.name):
                    t = (c1.dirs, c2.dirs, c1.kind, c1.name)
                    if t not in out:
                        out.append(t)
        return out
