"""The Retreet → MSO encoder (paper §4).

Implements every predicate of the paper's encoding as MSO formulas over the
label tracks of one or more *configuration families*:

* ``L{i}_{sid}`` — second-order label "a record (sid, u, …) is in
  configuration i" (including the pseudo-call ``main``);
* ``C{i}_{cid}`` — second-order label "arithmetic branch condition cid's
  weakest precondition holds at u in configuration i".

Key deviations from a naive transcription, all semantics-preserving and all
in the spirit of hand-optimized MONA encodings:

* ``Current`` uses ``Sing``/``Empty`` atoms instead of a ∀-quantifier;
* ``Next`` uses child-term atoms (``u.l ∈ L_t``), ``Prev`` uses the
  parent-relative atoms, so neither introduces quantifiers;
* the prefix-agreement inside ``Consistent`` is the single ``AgreeUpTo``
  atom instead of ``∃z ∀v (reach(v,z) → …)``;
* dependence is *field-sensitive* and covers return-value cells (see
  :mod:`repro.core.readwrite`), matching the bounded reference engine.

Free second-order tracks are implicitly existential in a satisfiability
query, so ``DataRace``/``Conflict`` need no outer second-order quantifiers —
witnesses directly expose the two configurations' labels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..lang.blocks import Block, Relation
from ..mso import ordering
from ..mso import syntax as S
from .configurations import MAIN_SID, ProgramModel
from .pathcond import TransitionCase

__all__ = ["ConfigTracks", "Encoder"]


@dataclass(frozen=True)
class ConfigTracks:
    """Track naming for one configuration family."""

    prefix: str  # e.g. "P1"

    def L(self, sid: str) -> str:
        return f"{self.prefix}.L.{sid}"

    def C(self, cid: str) -> str:
        return f"{self.prefix}.C.{cid}"


class Encoder:
    """Builds the §4 formulas for one program."""

    def __init__(self, model: ProgramModel, prefix: str) -> None:
        self.model = model
        self.prefix = prefix
        self.table = model.table

    def tracks(self, i: int) -> ConfigTracks:
        return ConfigTracks(f"{self.prefix}{i}")

    def preregister(self, registry, track_families: Sequence[ConfigTracks]) -> None:
        """Assign BDD levels from program structure (see mso.ordering).

        Columns (labels) are seriated so co-occurring ones sit on nearby
        levels — a function's blocks, its call sites, and the conditions
        its paths pin all appear together in ``Next``/``Prev`` guards.
        Families are interleaved per column: the ``AgreeUpTo`` guards are
        conjunctions of pairwise equivalences between families' tracks,
        exponential under a blocked order and linear interleaved — the
        classic vector-equality ordering lesson, applied here before
        anything else registers tracks."""
        namers = []
        for ct in track_families:
            namers.append(
                lambda col, _ct=ct: _ct.L(col[1]) if col[0] == "L" else _ct.C(col[1])
            )
        for track in ordering.interleave(self.column_order(), namers):
            registry.level(track)

    def column_order(self) -> List[Tuple[str, str]]:
        """Seriated ``("L", sid)`` / ``("C", cid)`` columns, main first."""
        cached = getattr(self, "_col_order", None)
        if cached is None:
            cols, edges = self.ordering_affinity()
            cached = ordering.seriate(cols, edges, start=("L", MAIN_SID))
            self._col_order = cached
        return cached

    def ordering_affinity(self):
        """Column affinity graph for the variable-ordering heuristic.

        Weights reflect how often two labels share a guard conjunct:
        arithmetic pins sit inside the very disjunct naming their block
        (heaviest); a call site's label co-occurs with every callee block
        in successor/predecessor uniqueness; consecutive blocks of one
        function appear together in the mutual-exclusion choices."""
        cols: List[Tuple[str, str]] = [("L", s) for s in self.all_sids()]
        cols += [("C", c) for c in self.all_cids()]
        edges: Dict[Tuple[Tuple[str, str], Tuple[str, str]], float] = {}

        def bump(a: Tuple[str, str], b: Tuple[str, str], w: float) -> None:
            if a == b:
                return
            k = (a, b) if a <= b else (b, a)
            edges[k] = edges.get(k, 0.0) + w

        for s_sid, fname in self._call_sites():
            blocks = self.table.blocks_of(fname)
            for t in blocks:
                bump(("L", s_sid), ("L", t.sid), 2.0)
                for case in self.model.cases(fname, t):
                    for ap in case.arith_pins:
                        bump(("L", t.sid), ("C", ap.cid), 4.0)
                        bump(("L", s_sid), ("C", ap.cid), 1.0)
            for t1, t2 in zip(blocks, blocks[1:]):
                bump(("L", t1.sid), ("L", t2.sid), 3.0)
        return cols, edges

    # -- label inventory -----------------------------------------------------
    def all_sids(self) -> List[str]:
        return [MAIN_SID] + [b.sid for b in self.table.blocks]

    def all_cids(self) -> List[str]:
        return [c.cid for c in self.model.universe.arith_conds]

    # -- Next (Lemma 1's PathCond, abstracted) ---------------------------------
    def next_formula(
        self, ct: ConfigTracks, u: str, fname: str, t: Block
    ) -> S.Formula:
        """``Next(L, C, u, s, t)`` for any call s into ``fname``: some
        speculative path of ``fname`` reaches ``t`` with the target record's
        label present and the path pins satisfied at ``u``."""
        cases = self.model.cases(fname, t)
        disjuncts: List[S.Formula] = []
        for case in cases:
            parts: List[S.Formula] = []
            # Target label: non-call blocks run at u itself; call blocks
            # place the callee at u or a child of u.
            target_dirs = case.direction if t.is_call else ""
            parts.append(S.In(S.NodeTerm(u, target_dirs), ct.L(t.sid)))
            for sp in case.struct_pins:
                atom = S.IsNilT(S.NodeTerm(u, sp.dirs))
                parts.append(atom if sp.is_nil else S.Not(atom))
            for ap in case.arith_pins:
                atom = S.In(S.NodeTerm(u), ct.C(ap.cid))
                parts.append(atom if ap.value else S.Not(atom))
            disjuncts.append(S.And(tuple(parts)) if len(parts) > 1 else parts[0])
        if not disjuncts:
            return S.FalseF()
        if len(disjuncts) == 1:
            return disjuncts[0]
        return S.Or(tuple(disjuncts))

    # -- Prev (the dual constraint, via parent-relative atoms) ------------------
    def prev_via(
        self, ct: ConfigTracks, u: str, s_sid: str, fname: str, t: Block
    ) -> S.Formula:
        """Record (t, u) is justified by a parent record (s, v) — v is u's
        parent (descending call) or u itself (same-node call)."""
        cases = self.model.cases(fname, t)
        disjuncts: List[S.Formula] = []
        for case in cases:
            d = case.direction if t.is_call else ""
            parts: List[S.Formula] = []
            if d == "":
                parts.append(S.In(S.NodeTerm(u), ct.L(s_sid)))
                for sp in case.struct_pins:
                    atom = S.IsNilT(S.NodeTerm(u, sp.dirs))
                    parts.append(atom if sp.is_nil else S.Not(atom))
                for ap in case.arith_pins:
                    atom = S.In(S.NodeTerm(u), ct.C(ap.cid))
                    parts.append(atom if ap.value else S.Not(atom))
            else:
                parts.append(S.ParentRelIn(u, d, "", ct.L(s_sid)))
                for sp in case.struct_pins:
                    atom = S.ParentRelNil(u, d, sp.dirs)
                    parts.append(atom if sp.is_nil else S.Not(atom))
                for ap in case.arith_pins:
                    atom = S.ParentRelIn(u, d, "", ct.C(ap.cid))
                    parts.append(atom if ap.value else S.Not(atom))
            disjuncts.append(S.And(tuple(parts)) if len(parts) > 1 else parts[0])
        if not disjuncts:
            return S.FalseF()
        if len(disjuncts) == 1:
            return disjuncts[0]
        return S.Or(tuple(disjuncts))

    # -- Configuration (Def. 2 as labels) -----------------------------------------
    def configuration_parts(
        self, ct: ConfigTracks, q: Block, x: str
    ) -> List[S.Formula]:
        """The conjuncts of ``Configuration(L, C, q, x)``."""
        return self.current_parts(ct, q, x) + self.config_core_parts(ct)

    def current_parts(
        self, ct: ConfigTracks, q: Block, x: str
    ) -> List[S.Formula]:
        """The query-dependent ``Current`` conjuncts: L_q = {x}; every other
        non-call label empty."""
        parts: List[S.Formula] = [
            S.In(S.NodeTerm(x), ct.L(q.sid)),
            S.Sing(ct.L(q.sid)),
        ]
        for q2 in self.table.all_noncalls:
            if q2 is not q:
                parts.append(S.Empty(ct.L(q2.sid)))
        return parts

    def current_any(
        self, ct: ConfigTracks, blocks: Sequence[Block], x: str
    ) -> S.Formula:
        """``Current`` for *some* block of a candidate set at ``x``.

        One disjunct per block; lets a query sweep over an image set ask
        a single satisfiability question instead of one per block — the
        conjunction with the rest of the query distributes over the
        union, so the answer is SAT iff some per-block query is."""
        opts = [
            S.And(tuple(self.current_parts(ct, b, x))) for b in blocks
        ]
        return opts[0] if len(opts) == 1 else S.Or(tuple(opts))

    def config_core_parts(self, ct: ConfigTracks) -> List[S.Formula]:
        """The query-independent conjuncts of ``Configuration``: root/main,
        successor and predecessor uniqueness, condition consistency.  These
        compile once per configuration family and are shared by every
        endpoint query."""
        parts: List[S.Formula] = []
        u = f"@u.{ct.prefix}"

        # (1) main labels exactly the root.
        parts.append(
            S.Forall1(
                (u,),
                S.Iff(S.In(S.NodeTerm(u), ct.L(MAIN_SID)), S.RootT(S.NodeTerm(u))),
            )
        )

        # (3) every call record has exactly one successor.
        for s_sid, fname in self._call_sites():
            body = S.Implies(
                S.In(S.NodeTerm(u), ct.L(s_sid)),
                self._succ_choice(ct, u, fname),
            )
            parts.append(S.Forall1((u,), body))

        # (4) every record has a justified, unique predecessor.
        for t in self.table.blocks:
            parents = self._parents_of(t)
            body_parts: List[S.Formula] = []
            choice = []
            for s_sid, fname in parents:
                via = self.prev_via(ct, u, s_sid, fname, t)
                others = [
                    S.Not(self.prev_via(ct, u, s2, f2, t))
                    for s2, f2 in parents
                    if s2 != s_sid
                ]
                choice.append(
                    S.And(tuple([via] + others)) if others else via
                )
            prev = S.Or(tuple(choice)) if len(choice) > 1 else (
                choice[0] if choice else S.FalseF()
            )
            parts.append(
                S.Forall1(
                    (u,), S.Implies(S.In(S.NodeTerm(u), ct.L(t.sid)), prev)
                )
            )

        # (5) per-node condition-set consistency.
        cids = self.all_cids()
        universe = self.model.universe
        if cids and not getattr(universe, "all_consistent", False):
            sets = universe.consistent_sets
            options: List[S.Formula] = []
            for sset in sets:
                lits = []
                for cid, val in sorted(sset):
                    atom = S.In(S.NodeTerm(u), ct.C(cid))
                    lits.append(atom if val else S.Not(atom))
                options.append(S.And(tuple(lits)) if len(lits) > 1 else lits[0])
            if not options:
                parts.append(S.FalseF())
            else:
                parts.append(
                    S.Forall1(
                        (u,),
                        S.Or(tuple(options)) if len(options) > 1 else options[0],
                    )
                )
        return parts

    def _call_sites(self) -> List[Tuple[str, str]]:
        """(call sid, callee function) pairs, including the entry pseudo-call."""
        out = [(MAIN_SID, self.model.program.entry)]
        for b in self.table.all_calls:
            out.append((b.sid, b.callee))
        return out

    def _parents_of(self, t: Block) -> List[Tuple[str, str]]:
        """Call sites s with s ◁ t."""
        out = []
        for s_sid, fname in self._call_sites():
            if t.func == fname:
                out.append((s_sid, fname))
        return out

    def _succ_choice(self, ct: ConfigTracks, u: str, fname: str) -> S.Formula:
        blocks = self.table.blocks_of(fname)
        options: List[S.Formula] = []
        for t in blocks:
            here = self.next_formula(ct, u, fname, t)
            others = [
                S.Not(self.next_formula(ct, u, fname, t2))
                for t2 in blocks
                if t2 is not t
            ]
            options.append(S.And(tuple([here] + others)) if others else here)
        if not options:
            return S.FalseF()
        return S.Or(tuple(options)) if len(options) > 1 else options[0]

    # -- Consistent / Ordered / Parallel (Fig. 5) -----------------------------------
    def _same_node_closure(self, t: Block) -> Set[str]:
        """Block sids whose records can sit on the *same node* as ``t``'s
        record, at or after it: ``t`` itself plus everything reachable
        through direction-'' (same-node) transitions."""
        out: Set[str] = set()
        work = [t]
        while work:
            b = work.pop()
            if b.sid in out:
                continue
            out.add(b.sid)
            if not b.is_call:
                continue
            for t2 in self.table.blocks_of(b.callee):
                for case in self.model.cases(b.callee, t2):
                    d = case.direction if t2.is_call else ""
                    if d == "" and t2.sid not in out:
                        work.append(t2)
        return out

    def _agree_pairs(
        self, a: ConfigTracks, b: ConfigTracks, t1: Block, t2: Block
    ) -> Tuple[Tuple[Tuple[str, str], ...], Tuple[Tuple[str, str], ...]]:
        """(inclusive pairs, strict pairs) for ``AgreeUpTo``.

        Condition labels must agree at the diverging node too (the two
        next-steps fire "at the same time").  Record labels agree at z as
        well — except those of blocks in the same-node closures of the
        diverging steps ``t1``/``t2``: exactly the records a real
        coexisting pair may legitimately place on z after the divergence.
        This per-triple refinement is sound (shared-prefix records appear
        identically in both families) and keeps the automata small."""
        incl = [(a.C(cid), b.C(cid)) for cid in self.all_cids()]
        excluded = self._same_node_closure(t1) | self._same_node_closure(t2)
        strict = []
        for sid in self.all_sids():
            pair = (a.L(sid), b.L(sid))
            if sid in excluded:
                strict.append(pair)
            else:
                incl.append(pair)
        return tuple(incl), tuple(strict)

    def consistent(
        self,
        a: ConfigTracks,
        b: ConfigTracks,
        s_sid: str,
        fname: str,
        t1: Block,
        t2: Block,
    ) -> S.Formula:
        z = f"@z.{a.prefix}.{b.prefix}"
        incl, strict = self._agree_pairs(a, b, t1, t2)
        return S.Exists1(
            (z,),
            S.And(
                (
                    S.AgreeUpTo(z, incl, strict),
                    S.In(S.NodeTerm(z), a.L(s_sid)),
                    S.In(S.NodeTerm(z), b.L(s_sid)),
                    self.next_formula(a, z, fname, t1),
                    self.next_formula(b, z, fname, t2),
                )
            ),
        )

    def _diverging_triples(self, relation: str) -> List[Tuple[str, str, Block, Block]]:
        """(s sid, callee, t1, t2) with s ◁ t1, s ◁ t2 and t1 <relation> t2."""
        out = []
        for s_sid, fname in self._call_sites():
            blocks = self.table.blocks_of(fname)
            for t1 in blocks:
                for t2 in blocks:
                    if t1 is t2:
                        continue
                    if self.table.relation(t1, t2) == relation:
                        out.append((s_sid, fname, t1, t2))
        return out

    def ordered(self, a: ConfigTracks, b: ConfigTracks) -> S.Formula:
        """Configuration family ``a`` strictly precedes ``b``."""
        opts = [
            self.consistent(a, b, s, f, t1, t2)
            for s, f, t1, t2 in self._diverging_triples(Relation.SEQ_BEFORE)
        ]
        if not opts:
            return S.FalseF()
        return S.Or(tuple(opts)) if len(opts) > 1 else opts[0]

    def parallel(self, a: ConfigTracks, b: ConfigTracks) -> S.Formula:
        opts = [
            self.consistent(a, b, s, f, t1, t2)
            for s, f, t1, t2 in self._diverging_triples(Relation.PARALLEL)
        ]
        if not opts:
            return S.FalseF()
        return S.Or(tuple(opts)) if len(opts) > 1 else opts[0]

    # -- Dependence geometry -----------------------------------------------------------
    def dependence_geometry(
        self, q1: Block, q2: Block, x1: str, x2: str
    ) -> S.Formula:
        """The two last iterations touch a common cell (≥1 write)."""
        opts: List[S.Formula] = []
        for d1, d2, kind, _name in self.model.rw.conflict_offsets(q1, q2):
            parts: List[S.Formula] = [
                S.EqT(S.NodeTerm(x1, d1), S.NodeTerm(x2, d2))
            ]
            if kind == "field":
                parts.append(S.Not(S.IsNilT(S.NodeTerm(x1, d1))))
            opts.append(S.And(tuple(parts)) if len(parts) > 1 else parts[0])
        if not opts:
            return S.FalseF()
        return S.Or(tuple(opts)) if len(opts) > 1 else opts[0]
