"""Program transformations and correspondence helpers.

The framework *verifies* transformations; this module *performs* the
mechanical ones (parallelize/sequentialize a program's top-level phases)
and derives non-call block correspondences for hand-fused programs:

* :func:`parallelize_entry` / :func:`sequentialize_entry` — rewrite the
  entry function's top-level ``;``/``||`` composition (the transformation
  behind T1.3 and T1.7);
* :func:`correspondence_by_key` — match non-call blocks across programs by
  canonical structural key (identical straight-line code), with an explicit
  override map for blocks that fusion renamed, merged or split.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Set

from ..lang import ast as A
from ..lang.blocks import BlockTable
from ..lang.printer import block_key

__all__ = [
    "parallelize_entry",
    "sequentialize_entry",
    "correspondence_by_key",
    "invert_correspondence",
]


def _clone_program(prog: A.Program, name: str) -> A.Program:
    """Re-parse via the printer for a deep, independent copy."""
    from ..lang.parser import parse_program
    from ..lang.printer import program_source

    return parse_program(program_source(prog), name=name, entry=prog.entry)


def parallelize_entry(prog: A.Program, name: Optional[str] = None) -> A.Program:
    """Turn the entry function's top-level sequence of calls into a
    parallel composition (trailing non-call blocks stay sequential)."""
    out = _clone_program(prog, name or f"{prog.name}-par")
    entry = out.main
    body = entry.body
    stmts = list(body.stmts) if isinstance(body, A.Seq) else [body]
    calls = [s for s in stmts if isinstance(s, A.CallStmt)]
    rest = [s for s in stmts if not isinstance(s, A.CallStmt)]
    if len(calls) < 2:
        raise ValueError("entry has fewer than two top-level calls")
    entry.body = A.Seq(tuple([A.Par(tuple(calls))] + rest))
    return out


def sequentialize_entry(prog: A.Program, name: Optional[str] = None) -> A.Program:
    """Inverse of :func:`parallelize_entry`: flatten top-level parallel
    compositions of the entry function into left-to-right sequence."""
    out = _clone_program(prog, name or f"{prog.name}-seq")
    entry = out.main

    def flatten(stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.Par):
            return A.Seq(tuple(flatten(s) for s in stmt.stmts))
        if isinstance(stmt, A.Seq):
            return A.Seq(tuple(flatten(s) for s in stmt.stmts))
        return stmt

    from ..lang.parser import normalize_program

    entry.body = flatten(entry.body)
    return normalize_program(out)


def correspondence_by_key(
    p: A.Program,
    p_prime: A.Program,
    overrides: Optional[Mapping[str, Set[str]]] = None,
    strict: bool = True,
) -> Dict[str, Set[str]]:
    """Derive the non-call correspondence by canonical block key.

    Blocks whose straight-line code is textually identical (after printing)
    are matched automatically; ``overrides`` supplies the fusion-renamed /
    merged / split cases.  With ``strict``, every non-call block of ``p``
    must end up mapped.
    """
    tp, tq = BlockTable(p), BlockTable(p_prime)
    by_key: Dict[str, Set[str]] = {}
    for b in tq.all_noncalls:
        by_key.setdefault(block_key(b.stmt), set()).add(b.sid)
    mapping: Dict[str, Set[str]] = {}
    for b in tp.all_noncalls:
        if overrides and b.sid in overrides:
            mapping[b.sid] = set(overrides[b.sid])
            continue
        hit = by_key.get(block_key(b.stmt))
        if hit:
            mapping[b.sid] = set(hit)
        elif strict:
            raise ValueError(
                f"no correspondence for block {b.sid} ({b.stmt}); "
                "supply an override"
            )
    return mapping


def invert_correspondence(
    mapping: Mapping[str, Set[str]]
) -> Dict[str, Set[str]]:
    out: Dict[str, Set[str]] = {}
    for k, vs in mapping.items():
        for v in vs:
            out.setdefault(v, set()).add(k)
    return out
