from setuptools import setup

# Kept for legacy editable installs on environments without the `wheel`
# package (PEP 660 builds need bdist_wheel). All metadata lives in
# pyproject.toml.
setup()
