"""Tests for speculative execution, transition cases and conditions."""

import pytest

from repro.arith import check_sat
from repro.core.conditions import ConditionUniverse
from repro.core.pathcond import (
    ArithPin,
    MixedConditionError,
    StructPin,
    SymState,
    cond_is_structural,
    struct_pin_of,
    transition_cases,
)
from repro.lang import BlockTable, parse_program
from repro.lang import ast as A


class TestCondClassification:
    def test_structural(self):
        assert cond_is_structural(A.IsNil(A.LocVar())) is True

    def test_arith(self):
        assert cond_is_structural(A.Gt(A.Var("k"))) is False

    def test_negated_structural(self):
        assert cond_is_structural(A.Not(A.IsNil(A.LocVar()))) is True

    def test_mixed_is_none(self):
        mixed = A.BAnd(A.IsNil(A.LocVar()), A.Gt(A.Var("k")))
        assert cond_is_structural(mixed) is None

    def test_true_counts_arith(self):
        assert cond_is_structural(A.BTrue()) is False


class TestStructPins:
    def test_positive(self):
        pins = struct_pin_of(A.IsNil(A.LocField(A.LocVar(), "l")), True)
        assert pins == [[StructPin("l", True)]]

    def test_negated(self):
        pins = struct_pin_of(A.Not(A.IsNil(A.LocVar())), True)
        assert pins == [[StructPin("", False)]]

    def test_conjunction(self):
        c = A.BAnd(A.IsNil(A.LocField(A.LocVar(), "l")),
                    A.IsNil(A.LocField(A.LocVar(), "r")))
        pins = struct_pin_of(c, True)
        assert len(pins) == 1 and len(pins[0]) == 2

    def test_disjunction_splits(self):
        c = A.BOr(A.IsNil(A.LocField(A.LocVar(), "l")),
                   A.IsNil(A.LocField(A.LocVar(), "r")))
        assert len(struct_pin_of(c, True)) == 2


class TestSymState:
    def test_param_naming(self):
        st = SymState("F", ("k",))
        (term, side), = st.eval(A.Var("k"))
        assert term.variables == ("F::k",) and side == []

    def test_ghost_after_call(self, sizecount_par):
        t = BlockTable(sizecount_par)
        st = SymState("Odd", ())
        st.exec_block(t.block("s1"))  # ls = Even(n.l)
        (term, _), = st.eval(A.Var("ls"))
        assert term.variables == ("Odd::s1::0",)

    def test_field_read_fresh(self):
        st = SymState("F", ())
        (term, _), = st.eval(A.FieldRead(A.LocVar(), "v"))
        assert term.variables == ("@field::::v",)

    def test_field_write_then_read(self):
        st = SymState("F", ("k",))
        p = parse_program("F(n, k) { n.v = k + 1; return n.v }")
        t = BlockTable(p)
        st.exec_block(t.blocks[0])
        (term, _), = st.eval(A.FieldRead(A.LocVar(), "v"))
        assert term.coeff("F::k") == 1 and term.const == 1

    def test_max_splits_cases(self):
        st = SymState("F", ("a", "b"))
        cases = st.eval(A.Max((A.Var("a"), A.Var("b"))))
        assert len(cases) == 2


class TestTransitionCases:
    def test_sizecount_call_case(self, sizecount_par):
        t = BlockTable(sizecount_par)
        cases = transition_cases(t, "Odd", t.block("s1"))
        assert len(cases) == 1
        c = cases[0]
        assert c.direction == "l"
        assert c.struct_pins == (StructPin("", False),)
        assert c.arith_pins == ()

    def test_sizecount_nil_case(self, sizecount_par):
        t = BlockTable(sizecount_par)
        cases = transition_cases(t, "Odd", t.block("s0"))
        assert cases[0].struct_pins == (StructPin("", True),)

    def test_bindings(self, cycletree_seq):
        t = BlockTable(cycletree_seq)
        # s2: a = PreMode(n.l, number + 1) inside RootMode.
        cases = transition_cases(t, "RootMode", t.block("s2"))
        (case,) = cases
        (term, _), = case.bindings["number"]
        assert term.coeff("RootMode::number") == 1 and term.const == 1

    def test_arith_pin(self, treemutation_orig):
        t = BlockTable(treemutation_orig)
        cases = transition_cases(t, "IncrmLeft", t.block("s7"))
        (case,) = cases
        assert ArithPin("c2", True) in case.arith_pins
        assert StructPin("r", True) in case.struct_pins

    def test_contradictory_struct_path_dropped(self):
        p = parse_program(
            "F(n) { if (n == nil) { if (n != nil) { n.v = 1 } "
            "else { return 0 } } else { return 1 } }"
        )
        t = BlockTable(p)
        dead = [b for b in t.all_noncalls if "n.v" in str(b.stmt)][0]
        assert transition_cases(t, "F", dead) == []

    def test_routing_guard_cases(self, cycletree_seq):
        t = BlockTable(cycletree_seq)
        # The min/max+return block of ComputeRouting is reached along 4
        # paths (l nil?, r nil?).
        cases = transition_cases(t, "ComputeRouting", t.block("s26"))
        assert len(cases) == 4
        shapes = {c.struct_pins for c in cases}
        assert len(shapes) == 4


class TestConditionUniverse:
    def test_sizecount_all_structural(self, sizecount_par):
        u = ConditionUniverse(BlockTable(sizecount_par))
        assert u.arith_conds == []
        assert len(u.struct_conds) == 2
        assert u.consistent_sets == [frozenset()]

    def test_css_independent_conditions(self, css_orig):
        u = ConditionUniverse(BlockTable(css_orig))
        cids = [c.cid for c in u.arith_conds]
        assert len(cids) == 3
        # All 8 truth assignments are consistent (distinct fields).
        assert len(u.consistent_sets) == 8

    def test_contradictory_conditions_pruned(self):
        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else {"
            " if (n.v > 0) { n.a = 1 }; if (n.v < 0) { n.b = 1 }; return 0 } }"
        )
        u = ConditionUniverse(BlockTable(p))
        assert len(u.arith_conds) == 2
        # v>0 and v<0 cannot both hold: 3 of 4 assignments survive.
        assert len(u.consistent_sets) == 3

    def test_equal_conditions_locked_together(self):
        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else {"
            " if (n.v > 0) { n.a = 1 }; if (n.v > 0) { n.b = 1 }; return 0 } }"
        )
        u = ConditionUniverse(BlockTable(p))
        # Identical conditions: only TT and FF are consistent.
        assert len(u.consistent_sets) == 2

    def test_compatible(self, css_orig):
        u = ConditionUniverse(BlockTable(css_orig))
        cid = u.arith_conds[0].cid
        assert u.compatible({cid: True})
        assert u.compatible({})

    def test_completions_extend_pins(self, css_orig):
        u = ConditionUniverse(BlockTable(css_orig))
        cid = u.arith_conds[0].cid
        comps = u.completions({cid: True})
        assert len(comps) == 4
        assert all(dict(c)[cid] is True for c in comps)

    def test_mixed_condition_raises(self):
        p = parse_program(
            "F(n, k) { if (n == nil && k > 0) { return 0 } else { return 1 } }"
        )
        with pytest.raises(MixedConditionError):
            ConditionUniverse(BlockTable(p))
