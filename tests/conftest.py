"""Shared fixtures: case-study programs and small tree scopes."""

import pytest

from repro.casestudies import css, cycletree, sizecount, treemutation
from repro.trees.generators import all_shapes


@pytest.fixture(scope="session")
def small_trees():
    """Every tree shape with up to 3 internal nodes (9 trees)."""
    return [t for n in range(4) for t in all_shapes(n)]


@pytest.fixture(scope="session")
def tiny_trees():
    """Every tree shape with up to 2 internal nodes (4 trees)."""
    return [t for n in range(3) for t in all_shapes(n)]


@pytest.fixture(scope="session")
def sizecount_par():
    return sizecount.parallel_program()


@pytest.fixture(scope="session")
def sizecount_seq():
    return sizecount.sequential_program()


@pytest.fixture(scope="session")
def sizecount_fused():
    return sizecount.fused_valid()


@pytest.fixture(scope="session")
def sizecount_fused_bad():
    return sizecount.fused_invalid()


@pytest.fixture(scope="session")
def treemutation_orig():
    return treemutation.original_program()


@pytest.fixture(scope="session")
def treemutation_fused():
    return treemutation.fused_program()


@pytest.fixture(scope="session")
def css_orig():
    return css.original_program()


@pytest.fixture(scope="session")
def css_fused():
    return css.fused_program()


@pytest.fixture(scope="session")
def cycletree_seq():
    return cycletree.sequential_program()


@pytest.fixture(scope="session")
def cycletree_par():
    return cycletree.parallel_program()


@pytest.fixture(scope="session")
def cycletree_fused():
    return cycletree.fused_program()
