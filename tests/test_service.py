"""The crash-isolated solver service (DESIGN.md §9).

Covers the worker wire protocol, the sandboxed child (including real
SIGSEGV crashes injected with ``REPRO_FAULT=worker-abort``), the
supervisor's retry/circuit-breaker policy, the checksummed store and
journal, and the resumable batch layer.  Everything that spawns a child
uses the bounded engine on tiny programs so a full run stays in seconds.
"""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.api import check_data_race
from repro.conformance.oracle import Case, OracleConfig
from repro.service import (
    CircuitBreaker,
    Journal,
    Limits,
    ResultStore,
    RetryPolicy,
    Supervisor,
    Task,
    run_batch,
    run_case_isolated,
    run_task,
    task_key,
)
from repro.service.batch import BatchError, load_manifest
from repro.service.protocol import FrameError, jsonable, read_frame, write_frame
from repro.service.supervisor import _degrade_task, _task_is_symbolic
from repro.service.worker import task_for_case, task_for_race

RACY = """
F(n) { if (n == nil) { return 0 } else { n.v = 1; a = F(n.l); b = F(n.r); return a + b } }
Main(n) { { x = F(n) || y = F(n) }; return x }
"""

RACEFREE = """
F(n) { if (n == nil) { return 0 } else { a = F(n.l); b = F(n.r); return a + b + n.v } }
Main(n) { { x = F(n.l) || y = F(n.r) }; return x + y }
"""

BOUNDED = {"engine": "bounded", "max_internal": 2}


def crash_env(tmp_path, once=True):
    """A child environment where the first symbolic solve SIGSEGVs."""
    env = dict(os.environ)
    env["REPRO_FAULT"] = "worker-abort:1"
    if once:
        env["REPRO_FAULT_ONCE"] = str(tmp_path / "crash-sentinel")
    else:
        env.pop("REPRO_FAULT_ONCE", None)
    return env


# ----------------------------------------------------------------------
# Protocol


def test_frame_roundtrip():
    buf = io.BytesIO()
    write_frame(buf, {"type": "phase", "phase": "solve", "n": [1, 2]})
    write_frame(buf, {"type": "result", "ok": True})
    buf.seek(0)
    assert read_frame(buf)["phase"] == "solve"
    assert read_frame(buf)["ok"] is True
    assert read_frame(buf) is None  # clean EOF


def test_torn_frames_raise():
    buf = io.BytesIO()
    write_frame(buf, {"big": "x" * 100})
    whole = buf.getvalue()
    with pytest.raises(FrameError):  # torn inside the length prefix
        read_frame(io.BytesIO(whole[:2]))
    with pytest.raises(FrameError):  # torn inside the payload
        read_frame(io.BytesIO(whole[:20]))
    with pytest.raises(FrameError):  # absurd length prefix
        read_frame(io.BytesIO(b"\xff\xff\xff\xff" + b"junk"))


def test_task_key_is_content_only():
    t1 = task_for_race(RACY, options=BOUNDED, name="a")
    t2 = task_for_race(RACY, options=BOUNDED, name="a",
                       limits=Limits(wall_s=5.0, cpu_s=1.0))
    t3 = task_for_race(RACEFREE, options=BOUNDED, name="a")
    assert task_key(t1) == task_key(t2)  # limits excluded by design
    assert task_key(t1) != task_key(t3)
    rt = Task.from_dict(t2.to_dict())
    assert rt == t2


def test_jsonable_sanitizes():
    class Odd:
        def __str__(self):
            return "odd"

    out = jsonable({"t": (1, 2), "o": Odd(), 3: None})
    assert out == {"t": [1, 2], "o": "odd", "3": None}


# ----------------------------------------------------------------------
# Worker children


def test_worker_ok_roundtrip():
    out = run_task(task_for_race(RACY, options=BOUNDED))
    assert out.status == "ok" and out.outcome_class == "ok"
    assert out.value["verdict"] == "race"
    assert out.value["holds"] is False


def test_worker_crash_is_structured(tmp_path):
    task = task_for_race(RACY, options={"max_internal": 2})
    out = run_task(task, env=crash_env(tmp_path, once=False))
    assert out.status == "crashed" and out.outcome_class == "crashed"
    assert out.signal == 11  # SIGSEGV
    assert out.phase == "solve"
    assert "crashed" in out.describe()


def test_worker_abort_skips_bounded_tasks(tmp_path):
    """The crash hook models a symbolic blow-up; a bounded-only task
    must sail through even with the fault armed."""
    out = run_task(
        task_for_race(RACY, options=BOUNDED), env=crash_env(tmp_path, once=False)
    )
    assert out.status == "ok"


def test_worker_wall_clock_kill():
    task = task_for_race(RACY, options=BOUNDED, limits=Limits(wall_s=0.05))
    out = run_task(task)
    assert out.status == "timeout"
    assert out.outcome_class == "resource"


def test_worker_cpu_rlimit_never_crashes_parent():
    # The corpus crash-reproducer's query: the oracle's bounded phase at
    # max_internal=4 costs several CPU seconds, so cpu_s=1 guarantees the
    # child dies (SIGXCPU, then the kernel's hard SIGKILL) mid-solve.
    entry = json.loads(
        (Path(__file__).parent / "corpus" / "rlimit-crash-reproducer.json")
        .read_text()
    )
    case = Case(
        kind="race", source=entry["source"],
        max_internal=entry["max_internal"], name="rlimit",
    )
    task = task_for_case(
        case, OracleConfig(run_symbolic=False),
        limits=Limits(wall_s=60.0, cpu_s=1.0),
    )
    out = run_task(task)
    assert out.status in ("failed", "crashed")
    assert out.outcome_class in ("resource", "crashed")
    assert out.phase == "solve"


# ----------------------------------------------------------------------
# Supervisor


def test_retry_policy_deterministic_backoff():
    pol = RetryPolicy()
    assert pol.should_retry(1, "crashed")
    assert not pol.should_retry(1, "resource")  # deterministic under limits
    assert not pol.should_retry(1, "error")
    assert not pol.should_retry(pol.max_attempts, "crashed")
    b1 = pol.backoff_s(1, "key")
    assert b1 == pol.backoff_s(1, "key")  # same task+attempt → same jitter
    assert b1 != pol.backoff_s(2, "key")
    assert 0 < b1 <= pol.backoff_max_s * (1 + pol.jitter_frac)


def test_circuit_breaker_trips_and_degrades():
    br = CircuitBreaker(threshold=2)
    br.record("crashed", symbolic=True)
    assert not br.open
    br.record("crashed", symbolic=False)  # non-symbolic crashes don't count
    br.record("crashed", symbolic=True)
    assert br.open

    sym = task_for_race(RACY, options={"max_internal": 2})
    assert _task_is_symbolic(sym)
    deg = _degrade_task(sym)
    assert deg.payload["options"]["engine"] == "bounded"
    assert not _task_is_symbolic(deg)
    fz = task_for_case(Case(kind="race", source=RACY), OracleConfig())
    assert _task_is_symbolic(fz)
    assert not _task_is_symbolic(_degrade_task(fz))


def test_supervisor_retries_transient_crash(tmp_path):
    sup = Supervisor(
        policy=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
        env=crash_env(tmp_path, once=True),
    )
    res = sup.run_one(task_for_race(RACY, options={"max_internal": 2}))
    assert [a["outcome"] for a in res.attempts] == ["crashed", "ok"]
    assert res.ok and res.final.value["verdict"] == "race"


def test_supervisor_breaker_degrades_to_bounded(tmp_path):
    """A persistently-crashing symbolic worker trips the breaker; the
    bounded-only rerun then succeeds — process-level PR 2 ladder."""
    sup = Supervisor(
        policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
        breaker=CircuitBreaker(threshold=1),
        env=crash_env(tmp_path, once=False),
    )
    res = sup.run_one(task_for_race(RACY, options={"max_internal": 2}))
    assert res.ok and res.degraded
    assert res.attempts[0]["outcome"] == "crashed"
    assert res.attempts[1].get("degraded") is True
    assert res.final.value["verdict"] == "race"


def test_supervisor_inline_mode_matches():
    res = Supervisor(isolation="inline").run_one(
        task_for_race(RACY, options=BOUNDED)
    )
    assert res.ok and res.final.value["verdict"] == "race"
    with pytest.raises(ValueError):
        Supervisor(isolation="carrier-pigeon")


def test_inline_runners_fusion_and_fuzz():
    from repro.service.worker import execute_payload, task_for_fusion

    sup = Supervisor(isolation="inline")
    fusion = sup.run_one(
        task_for_fusion(RACEFREE, RACEFREE, options=BOUNDED)
    )
    assert fusion.ok and fusion.final.value["verdict"] == "equivalent"
    case = task_for_case(
        Case(kind="race", source=RACY, max_internal=2, name="inline"),
        OracleConfig(run_symbolic=False),
    )
    res = sup.run_one(case)
    assert res.ok and res.final.value["mismatches"] == []
    with pytest.raises(ValueError):
        execute_payload("levitate", {})
    bad = sup.run_one(
        task_for_race(RACY, options={"engine": "bounded", "warp": 9})
    )
    assert bad.final.status == "failed"
    assert bad.final.outcome_class == "error"
    assert "unknown task options" in bad.final.describe()


def test_supervisor_map_parallel():
    tasks = [
        task_for_race(RACY, options=BOUNDED, name="racy"),
        task_for_race(RACEFREE, options=BOUNDED, name="clean"),
    ]
    results = Supervisor().map(tasks, jobs=2)
    assert [r.task.name for r in results] == ["racy", "clean"]
    assert [r.final.value["holds"] for r in results] == [False, True]


# ----------------------------------------------------------------------
# Store + journal


def test_store_roundtrip_and_quarantine(tmp_path):
    store = ResultStore(tmp_path)
    store.put("k1", {"verdict": "race-free"})
    assert store.get("k1") == {"verdict": "race-free"}
    # Corrupt the record on disk: it must be quarantined, not believed.
    path = store.path_for("k1")
    rec = json.loads(path.read_text())
    rec["payload"]["verdict"] = "race"
    path.write_text(json.dumps(rec))
    assert store.get("k1") is None
    assert store.quarantined == ["k1"]
    assert not path.exists()
    assert (tmp_path / "quarantine" / "k1.json").exists()
    # Unparseable garbage quarantines too.
    store.path_for("k2").write_text("{nope")
    assert store.get("k2") is None
    assert store.get("missing") is None


def test_journal_replay_skips_torn_tail(tmp_path):
    j = Journal(tmp_path / "journal.jsonl")
    j.append({"event": "verdict", "key": "a"})
    j.append({"event": "verdict", "key": "b"})
    with open(j.path, "a") as fp:
        fp.write('{"event": "verdict", "key": "c"')  # kill -9 mid-append
    replay = j.replay()
    assert [r["key"] for r in replay.records] == ["a", "b"]
    assert replay.skipped_lines == 1
    assert Journal(tmp_path / "absent.jsonl").replay().records == []


# ----------------------------------------------------------------------
# High-level isolated entry points


def test_api_isolation_process():
    from repro.lang.parser import parse_program

    program = parse_program(RACY, name="racy")
    res = check_data_race(
        program, engine="bounded", max_internal=2, isolation="process",
        wall_s=60.0,
    )
    assert res.verdict == "race" and not res.holds
    assert res.details["isolation"] == "process"
    with pytest.raises(ValueError):
        check_data_race(program, isolation="osmosis")


def test_api_isolation_surfaces_dead_worker(tmp_path):
    # A worker that dies past its retry budget must yield unknown/False,
    # with the crash recorded in the attempts trail.
    from repro.service.worker import run_verification_isolated

    sup = Supervisor(
        policy=RetryPolicy(max_attempts=1), env=crash_env(tmp_path, once=False)
    )
    res = run_verification_isolated(
        task_for_race(RACY, options={"max_internal": 2}), supervisor=sup
    )
    assert res.verdict == "unknown" and res.holds is False
    assert res.engine == "process"
    assert res.details["worker"]["outcome_class"] == "crashed"
    assert res.details["attempts"][0]["outcome"] == "crashed"


def test_fuzz_case_isolated_engine_error(tmp_path):
    case = Case(kind="race", source=RACY, max_internal=2, name="iso")
    sup = Supervisor(
        policy=RetryPolicy(max_attempts=1), env=crash_env(tmp_path, once=False)
    )
    result = run_case_isolated(case, OracleConfig(), supervisor=sup)
    assert [m.kind for m in result.mismatches] == ["engine-error"]
    assert result.engines["worker"]["status"] == "crashed"


def test_fuzz_loop_survives_crashing_engine(tmp_path):
    """With isolation, a crashing symbolic engine becomes per-case
    engine-error mismatches instead of aborting the fuzz run."""
    from repro.conformance.fuzz import run_fuzz

    env = crash_env(tmp_path, once=False)
    old = {k: os.environ.get(k) for k in ("REPRO_FAULT", "REPRO_FAULT_ONCE")}
    os.environ["REPRO_FAULT"] = env["REPRO_FAULT"]
    os.environ.pop("REPRO_FAULT_ONCE", None)
    try:
        report = run_fuzz(
            seed=3, budget_s=60.0, max_cases=2, shrink=False,
            isolation="process", worker_limits=Limits(wall_s=60.0),
        )
    finally:
        for k, v in old.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v
    assert report.cases == 2
    assert report.mismatches  # surfaced, not aborted
    assert all(
        m.kind == "engine-error" for _c, mms in report.mismatches for m in mms
    )


# ----------------------------------------------------------------------
# Batch layer


def write_manifest(path: Path, tasks=None) -> Path:
    data = {
        "defaults": {"options": BOUNDED, "limits": {"wall_s": 60.0}},
        "tasks": tasks or [
            {"name": "racy", "kind": "check-race", "source": RACY},
            {"name": "clean", "kind": "check-race", "source": RACEFREE},
        ],
    }
    path.write_text(json.dumps(data))
    return path


def test_load_manifest_validates(tmp_path):
    m = write_manifest(tmp_path / "m.json")
    tasks = load_manifest(m)
    assert [t.name for t in tasks] == ["racy", "clean"]
    assert tasks[0].limits.wall_s == 60.0
    with pytest.raises(BatchError):
        load_manifest(tmp_path / "absent.json")
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"tasks": [{"name": "x", "kind": "levitate"}]}))
    with pytest.raises(BatchError):
        load_manifest(bad)
    dup = tmp_path / "dup.json"
    dup.write_text(json.dumps({"tasks": [
        {"name": "x", "kind": "check-race", "source": RACY},
        {"name": "x", "kind": "check-race", "source": RACY},
    ]}))
    with pytest.raises(BatchError):
        load_manifest(dup)


def test_batch_run_and_full_resume(tmp_path):
    m = write_manifest(tmp_path / "m.json")
    run = tmp_path / "run"
    report = run_batch(m, run, jobs=2)
    assert report.exit_code == 1  # racy task found a violation
    assert report.ran == 2 and report.resumed == 0
    results_1 = (run / "results.json").read_bytes()
    by_name = {r["name"]: r for r in report.results}
    assert by_name["racy"]["verdict"] == "race"
    assert by_name["clean"]["verdict"] == "race-free"

    # Resuming a complete run recomputes nothing and is byte-identical.
    report2 = run_batch(m, run, resume=True)
    assert report2.resumed == 2 and report2.ran == 0
    assert (run / "results.json").read_bytes() == results_1

    # Guard rails.
    with pytest.raises(BatchError):
        run_batch(m, run)  # fresh run into a used dir
    with pytest.raises(BatchError):
        run_batch(m, tmp_path / "virgin", resume=True)  # resume of nothing
    other = write_manifest(tmp_path / "other.json", tasks=[
        {"name": "only", "kind": "check-race", "source": RACY},
    ])
    with pytest.raises(BatchError):
        run_batch(other, run, resume=True)  # manifest mismatch


def test_batch_resume_after_torn_journal(tmp_path):
    """Simulated kill -9: keep one journaled verdict, tear the journal
    tail, drop the other store record — resume recomputes exactly the
    missing task and results.json is byte-identical."""
    m = write_manifest(tmp_path / "m.json")
    run_a = tmp_path / "run-a"
    run_batch(m, run_a, jobs=1)
    golden = (run_a / "results.json").read_bytes()

    run_b = tmp_path / "run-b"
    run_batch(m, run_b, jobs=1)
    journal = run_b / "journal.jsonl"
    lines = journal.read_text().splitlines()
    keep, drop = lines[0], json.loads(lines[1])
    journal.write_text(keep + "\n" + '{"event": "verdict", "key": "to')
    (run_b / "store" / f"{drop['key']}.json").unlink()
    (run_b / "results.json").unlink()

    report = run_batch(m, run_b, resume=True)
    # The missing task is recomputed — served from the run directory's
    # content-addressed verdict cache, which survived the torn journal.
    assert report.resumed == 1
    assert report.ran + report.cache_hits == 1
    assert report.journal_skipped_lines == 1
    assert (run_b / "results.json").read_bytes() == golden


def test_batch_corrupt_store_record_recomputed(tmp_path):
    m = write_manifest(tmp_path / "m.json")
    run = tmp_path / "run"
    run_batch(m, run)
    golden = (run / "results.json").read_bytes()
    victim = next((run / "store").glob("*.json"))
    victim.write_text(victim.read_text().replace("race", "rice", 1))
    report = run_batch(m, run, resume=True)
    assert report.quarantined == 1
    assert report.ran + report.cache_hits == 1
    assert (run / "results.json").read_bytes() == golden


def test_batch_failed_task_retried_on_resume(tmp_path):
    """A worker that dies past its retry budget journals a 'failed'
    event, exits 2, and gets a fresh chance on --resume."""
    # NOTE: engine "auto" (symbolic-capable) — the crash hook only fires
    # for tasks that would run the symbolic engine.
    m = write_manifest(tmp_path / "m.json", tasks=[
        {"name": "sym", "kind": "check-race", "source": RACY,
         "options": {"engine": "auto", "max_internal": 2}},
    ])
    run = tmp_path / "run"
    env = crash_env(tmp_path, once=False)
    old = os.environ.get("REPRO_FAULT")
    os.environ["REPRO_FAULT"] = env["REPRO_FAULT"]
    try:
        report = run_batch(
            m, run, policy=RetryPolicy(max_attempts=1),
        )
    finally:
        if old is None:
            os.environ.pop("REPRO_FAULT", None)
        else:
            os.environ["REPRO_FAULT"] = old
    assert report.exit_code == 2 and report.failed == 1
    events = [r["event"] for r in Journal(run / "journal.jsonl").replay().records]
    assert events == ["failed"]
    assert json.loads((run / "results.json").read_text())[0]["verdict"] == "unknown"

    report2 = run_batch(m, run, resume=True)
    assert report2.exit_code == 1  # RACY: violation found this time
    assert report2.ran == 1 and report2.failed == 0


def test_batch_cli_end_to_end(tmp_path):
    """The `repro batch` subcommand: run, then resume, uniform exit codes."""
    m = write_manifest(tmp_path / "m.json")
    run = tmp_path / "run"
    env = dict(os.environ)
    src_root = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    cmd = [sys.executable, "-m", "repro.cli", "batch", str(m),
           "--run-dir", str(run), "--jobs", "2"]
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    assert proc.returncode == 1, proc.stderr  # violation in RACY
    assert "2 task(s)" in proc.stdout
    golden = (run / "results.json").read_bytes()
    proc2 = subprocess.run(
        [sys.executable, "-m", "repro.cli", "batch", str(m), "--resume", str(run)],
        env=env, capture_output=True, text=True,
    )
    assert proc2.returncode == 1, proc2.stderr
    assert "2 resumed" in proc2.stdout
    assert (run / "results.json").read_bytes() == golden
    # Usage errors exit 2.
    proc3 = subprocess.run(
        [sys.executable, "-m", "repro.cli", "batch", str(tmp_path / "no.json")],
        env=env, capture_output=True, text=True,
    )
    assert proc3.returncode == 2
    assert "error:" in proc3.stderr


def test_report_json_surfaces_breaker_and_retry_budget(tmp_path):
    """report.json carries the circuit breaker's full state and each
    task's retry/degradation spend — observability, not just a bool."""
    m = write_manifest(tmp_path / "m.json")
    run = tmp_path / "run"
    run_batch(m, run)
    report = json.loads((run / "report.json").read_text())
    assert report["breaker"] == {
        "open": False, "threshold": 3,
        "consecutive_crashes": 0, "trips": 0,
    }
    assert report["retry_budget"]["per_task_max"] == 2
    assert report["retry_budget"]["spent_total"] == 0
    for name in ("racy", "clean"):
        assert report["tasks"][name]["retries"] == 0
        assert report["tasks"][name]["degraded"] is False


def test_breaker_as_dict_counts_trips(tmp_path):
    br = CircuitBreaker(threshold=1)
    sup = Supervisor(
        policy=RetryPolicy(max_attempts=2, backoff_base_s=0.01),
        breaker=br,
        env=crash_env(tmp_path, once=False),
    )
    res = sup.run_one(task_for_race(RACY, options={"max_internal": 2}))
    assert res.ok and res.retries == 1
    state = br.as_dict()
    assert state["open"] is True and state["trips"] == 1
    # The clean degraded retry reset the consecutive-crash streak, but
    # the breaker stays open and the trip stays counted.
    assert state["consecutive_crashes"] == 0
    assert state["threshold"] == 1


def test_fault_once_sentinel_fires_exactly_once_pool_wide(tmp_path):
    """Four symbolic tasks race through four concurrent children with
    REPRO_FAULT=worker-abort armed and a shared REPRO_FAULT_ONCE
    sentinel: exactly ONE child may crash.  The sentinel claim is an
    atomic O_CREAT|O_EXCL open, so concurrently-starting children
    cannot both win the race (the old exists()-then-touch pattern
    could crash several)."""
    sup = Supervisor(
        policy=RetryPolicy(max_attempts=3, backoff_base_s=0.01),
        breaker=CircuitBreaker(threshold=100),  # stay closed: no degrade
        env=crash_env(tmp_path, once=True),
    )
    tasks = []
    for i in range(4):
        src = RACY.replace("return a + b", f"return a + b + {i}")
        tasks.append(task_for_race(src, options={"max_internal": 2},
                                   name=f"t{i}"))
    results = sup.map(tasks, jobs=4)
    assert len(results) == 4
    crashes = sum(
        1 for r in results for a in r.attempts if a["outcome"] == "crashed"
    )
    assert crashes == 1, f"sentinel fired {crashes}× (want exactly 1)"
    assert all(r.ok for r in results)  # the crashed task retried clean
