"""Tests for the QF_LIA mini-solver and case-split lowering."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arith import (
    EQ,
    GE,
    GT,
    Constraint,
    LinTerm,
    bexpr_to_dnf,
    check_sat,
    is_satisfiable,
    linearize_aexpr,
)
from repro.lang import ast as A
from repro.lang.exprs import eval_aexpr, eval_bexpr
from repro.lang.parser import parse_expr

x, y, z = LinTerm.var("x"), LinTerm.var("y"), LinTerm.var("z")
one = LinTerm.constant(1)


class TestLinTerm:
    def test_add_sub(self):
        t = (x + y) - x
        assert t.coeff("x") == 0 and t.coeff("y") == 1

    def test_scale(self):
        t = x.scale(3) + LinTerm.constant(2)
        assert t.coeff("x") == 3 and t.const == 2

    def test_zero_coeffs_dropped(self):
        t = x - x
        assert t.is_constant

    def test_substitute(self):
        t = x.scale(2) + y
        s = t.substitute("x", y + one)
        assert s.coeff("y") == 3 and s.const == 2

    def test_evaluate(self):
        t = x.scale(2) - y + LinTerm.constant(5)
        assert t.evaluate({"x": 3, "y": 1}) == 10


class TestConstraintNegation:
    def test_negate_ge(self):
        (c,) = Constraint(x, GE).negated()
        assert c.op == GT and c.term.coeff("x") == -1

    def test_negate_eq_two_cases(self):
        cases = Constraint(x, EQ).negated()
        assert len(cases) == 2

    def test_holds(self):
        assert Constraint(x - one, GE).holds({"x": 1})
        assert not Constraint(x - one, GT).holds({"x": 1})


class TestSat:
    def test_trivial_sat(self):
        assert check_sat([]).status == "sat"

    def test_simple_unsat(self):
        r = check_sat([Constraint(x, GT), Constraint(x.scale(-1), GE)])
        assert r.status == "unsat"

    def test_model_satisfies(self):
        cons = [
            Constraint(x - LinTerm.constant(3), GE),
            Constraint(LinTerm.constant(7) - x, GE),
            Constraint(x - y - one, EQ),
        ]
        r = check_sat(cons)
        assert r.status == "sat"
        assert all(c.holds(r.model) for c in cons)

    def test_integer_infeasible_bounded(self):
        # 2x == 1
        r = check_sat([Constraint(x.scale(2) - one, EQ)])
        assert r.status == "unsat"

    def test_integer_gap(self):
        # 1 < 2x < 3 has no integer solution (x must be 1 -> 2x = 2 ok!)
        # use 2 < 2x < 4 -> x ∈ (1,2): empty over Z.
        r = check_sat(
            [
                Constraint(x.scale(2) - LinTerm.constant(2) - one, GE),
                Constraint(LinTerm.constant(4) - x.scale(2) - one, GE),
            ]
        )
        assert r.status == "unsat"

    def test_unbounded_parity_unknown_is_possibly_sat(self):
        # 2x - 2y == 1: rationally feasible, integrally infeasible and
        # unbounded; the solver may return unknown, which must read as
        # "possibly sat" (sound over-approximation).
        r = check_sat([Constraint(x.scale(2) - y.scale(2) - one, EQ)])
        assert r.status in ("unsat", "unknown")
        if r.status == "unknown":
            assert r.possibly_sat

    def test_fractional_coefficients(self):
        t = LinTerm.of({"x": Fraction(1, 2)}, Fraction(-1, 2))
        r = check_sat([Constraint(t, GE)])  # x/2 - 1/2 >= 0 -> x >= 1
        assert r.status == "sat" and r.model["x"] >= 1

    @given(
        st.lists(
            st.tuples(
                st.integers(-3, 3), st.integers(-3, 3), st.integers(-4, 4),
                st.sampled_from([GE, GT, EQ]),
            ),
            min_size=1,
            max_size=4,
        )
    )
    @settings(max_examples=120, deadline=None)
    def test_agrees_with_brute_force(self, rows):
        """On a small integer box, solver-sat implies a model exists and
        brute-force-sat implies the solver does not claim unsat."""
        cons = [
            Constraint(
                LinTerm.of({"x": a, "y": b}, c), op
            )
            for a, b, c, op in rows
        ]
        brute = any(
            all(c.holds({"x": vx, "y": vy}) for c in cons)
            for vx in range(-8, 9)
            for vy in range(-8, 9)
        )
        r = check_sat(cons)
        if brute:
            assert r.status != "unsat"
        if r.status == "sat":
            assert all(c.holds(r.model) for c in cons)

    def test_is_satisfiable_wrapper(self):
        assert is_satisfiable([Constraint(x, GE)])


class TestLinearize:
    def _name(self, key):
        return key if isinstance(key, str) else "@" + "_".join(map(str, key))

    def test_plain_expr_single_case(self):
        cases = linearize_aexpr(parse_expr("a + 2 - b"), self._name)
        assert len(cases) == 1
        term, side = cases[0]
        assert side == [] and term.const == 2

    def test_max_two_cases(self):
        cases = linearize_aexpr(parse_expr("max(a, b)"), self._name)
        assert len(cases) == 2

    def test_nested_max_min(self):
        cases = linearize_aexpr(parse_expr("max(a, min(b, c))"), self._name)
        assert len(cases) == 4  # a vs each min-case, plus the 2 min-cases

    @given(st.integers(-9, 9), st.integers(-9, 9), st.integers(-9, 9))
    @settings(max_examples=60, deadline=None)
    def test_cases_cover_and_agree(self, a, b, c):
        """For every input, exactly the case whose side conditions hold
        evaluates to the expression's true value."""
        e = parse_expr("max(a, b, c) - min(a, b)")
        env = {"a": a, "b": b, "c": c}
        want = eval_aexpr(e, env, lambda *_: 0)
        cases = linearize_aexpr(e, self._name)
        hits = [
            term.evaluate(env)
            for term, side in cases
            if all(cc.holds(env) for cc in side)
        ]
        assert hits and all(h == want for h in hits)


class TestBexprToDnf:
    def _name(self, key):
        return key if isinstance(key, str) else "@" + "_".join(map(str, key))

    @given(st.integers(-6, 6), st.integers(-6, 6))
    @settings(max_examples=80, deadline=None)
    def test_dnf_semantics(self, a, b):
        bx = A.BOr(
            A.BAnd(A.Gt(A.Var("a")), A.Not(A.Eq0(A.Var("b")))),
            A.Eq0(A.Sub(A.Var("a"), A.Var("b"))),
        )
        env = {"a": a, "b": b}
        want = eval_bexpr(bx, env, lambda *_: 0, lambda l: False)
        for polarity in (True, False):
            dnf = bexpr_to_dnf(bx, polarity, self._name)
            got = any(all(c.holds(env) for c in conj) for conj in dnf)
            assert got == (want == polarity)

    def test_nil_unresolved_raises(self):
        from repro.arith import NonLinearError

        with pytest.raises(NonLinearError):
            bexpr_to_dnf(A.IsNil(A.LocVar()), True, self._name)

    def test_nil_resolved(self):
        dnf = bexpr_to_dnf(
            A.IsNil(A.LocVar()), True, self._name, resolve_nil=lambda l: True
        )
        assert dnf == [[]]
