"""Tests for the lexer, parser, printer and normalization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.lexer import LexError, Token, tokenize
from repro.lang.parser import ParseError, parse_expr, parse_program
from repro.lang.printer import block_key, program_source


class TestLexer:
    def test_keywords_vs_idents(self):
        toks = tokenize("if return nil foo max")
        assert [t.kind for t in toks[:-1]] == ["kw", "kw", "kw", "id", "kw"]

    def test_maximal_munch(self):
        toks = tokenize("a || b && c == d != e >= f <= g")
        syms = [t.text for t in toks if t.kind == "sym"]
        assert syms == ["||", "&&", "==", "!=", ">=", "<="]

    def test_comments(self):
        toks = tokenize("a // comment ; {\nb # another\nc")
        assert [t.text for t in toks if t.kind == "id"] == ["a", "b", "c"]

    def test_line_numbers(self):
        toks = tokenize("a\nb")
        assert toks[0].line == 1 and toks[1].line == 2

    def test_bad_char(self):
        with pytest.raises(LexError):
            tokenize("a $ b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"


class TestExprParsing:
    def test_precedence_left_assoc(self):
        e = parse_expr("1 - 2 - 3")
        assert isinstance(e, A.Sub) and isinstance(e.left, A.Sub)

    def test_parens(self):
        e = parse_expr("1 - (2 - 3)")
        assert isinstance(e.right, A.Sub)

    def test_max_min(self):
        e = parse_expr("max(a, b, 3)")
        assert isinstance(e, A.Max) and len(e.args) == 3

    def test_unary_minus(self):
        assert isinstance(parse_expr("-x"), A.Neg)

    def test_field_read(self):
        e = parse_expr("n.l.v")
        assert isinstance(e, A.FieldRead)
        assert e.loc.directions() == "l" and e.fieldname == "v"

    def test_deep_field_read(self):
        e = parse_expr("n.l.r.w")
        assert e.loc.directions() == "lr"


SIZECOUNT = """
Odd(n) {
  if (n == nil) { return 0 }
  else { ls = Even(n.l); rs = Even(n.r); return ls + rs + 1 }
}
Even(n) {
  if (n == nil) { return 0 }
  else { ls = Odd(n.l); rs = Odd(n.r); return ls + rs }
}
Main(n) {
  { o = Odd(n) || e = Even(n) };
  return o, e
}
"""


class TestProgramParsing:
    def test_function_count(self):
        p = parse_program(SIZECOUNT)
        assert set(p.funcs) == {"Odd", "Even", "Main"}

    def test_entry_default(self):
        p = parse_program(SIZECOUNT)
        assert p.entry == "Main"

    def test_entry_fallback_first_function(self):
        p = parse_program("F(n) { return 0 }")
        assert p.entry == "F"

    def test_parallel_parsed(self):
        p = parse_program(SIZECOUNT)
        body = p.funcs["Main"].body
        assert isinstance(body, A.Seq)
        assert isinstance(body.stmts[0], A.Par)

    def test_return_arity_inferred(self):
        p = parse_program(SIZECOUNT)
        assert p.funcs["Main"].n_returns == 2
        assert p.funcs["Odd"].n_returns == 1

    def test_inconsistent_return_arity(self):
        with pytest.raises(ParseError):
            parse_program("F(n) { if (n == nil) { return 0 } else { return 0, 1 } }")

    def test_duplicate_function(self):
        with pytest.raises(ParseError):
            parse_program("F(n) { return 0 }\nF(n) { return 1 }")

    def test_empty_program(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_mutation_rejected(self):
        with pytest.raises(ParseError, match="mutation"):
            parse_program("F(n) { n.l = n.r; return 0 }")

    def test_int_params(self):
        p = parse_program("F(n, k, j) { return k + j }")
        assert p.funcs["F"].int_params == ("k", "j")

    def test_tuple_targets(self):
        p = parse_program("F(n) { return 0, 1 }\nMain(n) { a, b = F(n); return a }")
        call = p.funcs["Main"].body.stmts[0]
        assert isinstance(call, A.CallStmt) and call.targets == ("a", "b")

    def test_parenthesized_targets(self):
        p = parse_program("F(n) { return 0, 1 }\nMain(n) { (a, b) = F(n); return a }")
        call = p.funcs["Main"].body.stmts[0]
        assert call.targets == ("a", "b")

    def test_multi_assign_sugar(self):
        p = parse_program("F(n) { a, b = 1, 2; return a + b }")
        blk = p.funcs["F"].body
        assert isinstance(blk, A.AssignBlock)
        assert len(blk.assigns) == 3  # a=1; b=2; return

    def test_multi_assign_arity_mismatch(self):
        with pytest.raises(ParseError):
            parse_program("F(n) { a, b = 1; return a }")

    def test_nil_comparisons(self):
        p = parse_program("F(n) { if (n.l != nil) { return 1 } else { return 0 } }")
        cond = p.funcs["F"].body.cond
        assert isinstance(cond, A.Not) and isinstance(cond.expr, A.IsNil)

    def test_comparison_sugar(self):
        p = parse_program("F(n, k) { if (k < 3) { return 0 } else { return 1 } }")
        cond = p.funcs["F"].body.cond
        assert isinstance(cond, A.Gt)  # k < 3 -> 3 - k > 0

    def test_geq_sugar(self):
        p = parse_program("F(n, k) { if (k >= 3) { return 0 } else { return 1 } }")
        assert isinstance(p.funcs["F"].body.cond, A.Not)

    def test_else_if_chain(self):
        p = parse_program(
            "F(n, k) { if (k > 0) { return 1 } else if (k < 0) { return 2 } "
            "else { return 0 } }"
        )
        f = p.funcs["F"]
        assert isinstance(f.body.els, A.If)

    def test_boolean_connectives(self):
        p = parse_program(
            "F(n, k) { if (k > 0 && k < 9 || k == 5) { return 1 } "
            "else { return 0 } }"
        )
        assert isinstance(p.funcs["F"].body.cond, A.BOr)


class TestNormalization:
    def test_adjacent_assigns_coalesce(self):
        p = parse_program("F(n) { a = 1; b = 2; n.v = a + b; return 0 }")
        body = p.funcs["F"].body
        assert isinstance(body, A.AssignBlock)
        assert len(body.assigns) == 4

    def test_call_splits_blocks(self):
        p = parse_program(
            "G(n) { return 0 }\n"
            "F(n) { a = 1; x = G(n.l); b = 2; return b }"
        )
        body = p.funcs["F"].body
        assert isinstance(body, A.Seq) and len(body.stmts) == 3

    def test_if_splits_blocks(self):
        p = parse_program(
            "F(n) { a = 1; if (a > 0) { n.v = 1 }; b = 2; return b }"
        )
        body = p.funcs["F"].body
        kinds = [type(s).__name__ for s in body.stmts]
        assert kinds == ["AssignBlock", "If", "AssignBlock"]


class TestRoundTrip:
    def test_sizecount_round_trip(self):
        p = parse_program(SIZECOUNT)
        src = program_source(p)
        p2 = parse_program(src)
        assert program_source(p2) == src

    @pytest.mark.parametrize(
        "mod", ["sizecount", "treemutation", "css", "cycletree"]
    )
    def test_case_studies_round_trip(self, mod):
        import importlib

        m = importlib.import_module(f"repro.casestudies.{mod}")
        progs = []
        for name in dir(m):
            if name.endswith("_program") or name.startswith("fused"):
                fn = getattr(m, name)
                if callable(fn):
                    try:
                        progs.append(fn())
                    except TypeError:
                        pass
        assert progs
        for p in progs:
            src = program_source(p)
            assert program_source(parse_program(src, entry=p.entry)) == src


class TestBlockKey:
    def test_same_code_same_key(self):
        p1 = parse_program("F(n) { return 0 }")
        p2 = parse_program("G(n) { return 0 }")
        assert block_key(p1.funcs["F"].body) == block_key(p2.funcs["G"].body)

    def test_different_code_different_key(self):
        p1 = parse_program("F(n) { return 0 }")
        p2 = parse_program("F(n) { return 1 }")
        assert block_key(p1.funcs["F"].body) != block_key(p2.funcs["F"].body)
