"""Differential tests: MSO compiler vs the reference semantics."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mso import syntax as S
from repro.mso.compile import Compiler, freshen
from repro.mso.semantics import evaluate
from repro.trees.generators import all_shapes

x, y, z = "x", "y", "z"
X, Y = "X", "Y"

CLOSED_FORMULAS = [
    # (formula, description)
    (S.Exists1((x,), S.RootT(S.NodeTerm(x))), "a root exists"),
    (S.Forall1((x,), S.Exists2((X,), S.In(S.NodeTerm(x), X))), "every node in some set"),
    (S.Exists1((x,), S.And((S.RootT(S.NodeTerm(x)), S.IsNilT(S.NodeTerm(x))))), "tree empty"),
    (S.Exists1((x, y), S.LeftOf(x, y)), "some left edge"),
    (S.Exists1((x, y), S.Reach(x, y)), "some proper ancestry"),
    (S.Forall1((x, y), S.Implies(S.LeftOf(x, y), S.Reach(x, y))), "left implies reach"),
    (S.Forall1((x, y), S.Implies(S.RightOf(x, y), S.Reach(x, y))), "right implies reach"),
    (S.Exists1((x, y), S.And((S.Reach(x, y), S.Reach(y, x)))), "cyclic reach (false)"),
    (
        S.Exists1((x,), S.And((S.RootT(S.NodeTerm(x)), S.IsNilT(S.NodeTerm(x, "l"))))),
        "root's left child nil",
    ),
    (
        S.Exists1((x,), S.Not(S.IsNilT(S.NodeTerm(x, "lr")))),
        "some x with x.l.r internal",
    ),
    (
        S.Exists1((x, y), S.EqT(S.NodeTerm(x, "l"), S.NodeTerm(y, "r"))),
        "x.l == y.r",
    ),
    (
        S.Forall1((x,), S.Or((S.IsNilT(S.NodeTerm(x)), S.Exists1((y,), S.LeftOf(x, y))))),
        "internal nodes have left children",
    ),
    (
        S.Exists2((X,), S.And((S.Sing(X), S.Forall1((x,), S.Implies(
            S.In(S.NodeTerm(x), X), S.RootT(S.NodeTerm(x))))))),
        "a singleton containing only the root",
    ),
    (
        S.Forall2((X,), S.Exists2((Y,), S.Subset(X, Y))),
        "every set has a superset",
    ),
    (
        S.Forall1((x, y, z), S.Implies(S.And((S.Reach(x, y), S.Reach(y, z))),
                                        S.Reach(x, z))),
        "reach transitive",
    ),
]


@pytest.fixture(scope="module")
def trees():
    return [t for n in range(4) for t in all_shapes(n)]


@pytest.fixture(scope="module")
def compiler():
    return Compiler()


class TestClosedFormulas:
    @pytest.mark.parametrize(
        "formula,desc", CLOSED_FORMULAS, ids=[d for _, d in CLOSED_FORMULAS]
    )
    def test_compiler_matches_semantics(self, compiler, trees, formula, desc):
        a = compiler.compile(formula)
        for t in trees:
            assert a.run(t, {}) == evaluate(formula, t), (
                f"{desc} on tree {t.paths(True)}"
            )


OPEN_ATOMS = [
    (S.ParentRelIn("u", "l", "", "X"), ("u",), ("X",)),
    (S.ParentRelIn("u", "r", "l", "X"), ("u",), ("X",)),
    (S.ParentRelNil("u", "l", "r"), ("u",), ()),
    (S.ParentRelNil("u", "r", ""), ("u",), ()),
    (S.AgreeUpTo("z", (("A", "B"),)), ("z",), ("A", "B")),
    (S.AgreeUpTo("z", (("A", "B"), ("C", "D"))), ("z",), ("A", "B", "C", "D")),
    (S.In(S.NodeTerm("x", "l"), "X"), ("x",), ("X",)),
    (S.In(S.NodeTerm("x", "rl"), "X"), ("x",), ("X",)),
    (S.IsNilT(S.NodeTerm("x", "r")), ("x",), ()),
    (S.ChildIs("x", "l", "z"), ("x", "z"), ()),
    (S.ChildIs("x", "lr", "z"), ("x", "z"), ()),
]


class TestOpenAtoms:
    @pytest.mark.parametrize("formula,fo,so", OPEN_ATOMS, ids=[str(f) for f, _, _ in OPEN_ATOMS])
    def test_atom_matches_semantics(self, compiler, trees, formula, fo, so):
        rng = random.Random(0)
        a = compiler.compile(formula, already_fresh=True)
        for t in trees:
            paths = t.paths(include_nil=True)
            for _ in range(25):
                env = {}
                labels = {}
                for v in fo:
                    env[v] = rng.choice(paths)
                    labels[v] = frozenset({env[v]})
                for v in so:
                    s = frozenset(p for p in paths if rng.random() < 0.4)
                    env[v] = s
                    labels[v] = s
                assert a.run(t, labels) == evaluate(formula, t, env), (
                    str(formula), t.paths(True), env,
                )


class TestFreshen:
    def test_bound_names_unique(self):
        f = S.And(
            (
                S.Exists1((x,), S.RootT(S.NodeTerm(x))),
                S.Exists1((x,), S.IsNilT(S.NodeTerm(x))),
            )
        )
        g = freshen(f)
        names = []

        def collect(h):
            if isinstance(h, S.Exists1):
                names.extend(h.names)
                collect(h.body)
            elif isinstance(h, S.And):
                for p in h.parts:
                    collect(p)

        collect(g)
        assert len(names) == len(set(names)) == 2

    def test_free_vars_preserved(self):
        f = S.Exists1((x,), S.In(S.NodeTerm(x), X))
        assert S.free_vars(freshen(f)) == {X}

    def test_deterministic(self):
        f = S.Exists1((x,), S.RootT(S.NodeTerm(x)))
        assert str(freshen(f)) == str(freshen(f))


class TestRenameFormula:
    def test_rename_free(self):
        f = S.In(S.NodeTerm(x), X)
        g = S.rename_formula(f, {x: "w", X: "W"})
        assert S.free_vars(g) == {"w", "W"}

    def test_rename_skips_bound(self):
        f = S.Exists1((x,), S.In(S.NodeTerm(x), X))
        g = S.rename_formula(f, {x: "w"})
        assert S.free_vars(g) == {X}


class TestCompilerInternals:
    def test_memoization(self):
        c = Compiler()
        f = S.Sing(X)
        a1 = c.compile(f)
        a2 = c.compile(f)
        assert a1 is a2

    def test_stats_accumulate(self):
        c = Compiler()
        c.compile(S.Not(S.Sing(X)))
        assert c.stats.complements >= 1

    def test_iff_and_implies_sugar(self, trees):
        c = Compiler()
        f = S.Forall1((x,), S.Iff(S.IsNilT(S.NodeTerm(x)), S.IsNilT(S.NodeTerm(x))))
        a = c.compile(f)
        for t in trees[:4]:
            assert a.run(t, {})
