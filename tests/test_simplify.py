"""Tests for formula simplification and miniscoping."""

import pytest

from repro.mso import syntax as S
from repro.mso.compile import Compiler
from repro.mso.semantics import evaluate
from repro.mso.simplify import miniscope, nnf, simplify
from repro.trees.generators import all_shapes

x, y = "x", "y"
X = "X"


def _equiv(f, g, trees):
    for t in trees:
        assert evaluate(f, t) == evaluate(g, t), (str(f), str(g), t.paths(True))


@pytest.fixture(scope="module")
def trees():
    return [t for n in range(4) for t in all_shapes(n)]


class TestFlatten:
    def test_nested_and(self):
        f = S.And((S.And((S.Sing(X), S.TrueF())), S.Sing(X)))
        s = simplify(f)
        assert str(s) == "sing(X)"

    def test_false_kills_and(self):
        f = S.And((S.Sing(X), S.FalseF()))
        assert isinstance(simplify(f), S.FalseF)

    def test_true_kills_or(self):
        f = S.Or((S.Sing(X), S.TrueF()))
        assert isinstance(simplify(f), S.TrueF)

    def test_double_negation(self):
        f = S.Not(S.Not(S.Sing(X)))
        assert isinstance(simplify(f), S.Sing)

    def test_unused_quantifier_dropped(self):
        f = S.Exists1((x,), S.Sing(X))
        assert isinstance(simplify(f), S.Sing)


class TestNnf:
    def test_pushes_through_and(self):
        f = S.Not(S.And((S.Sing(X), S.Empty(X))))
        g = nnf(f)
        assert isinstance(g, S.Or)
        assert all(isinstance(p, S.Not) for p in g.parts)

    def test_dualizes_quantifiers(self):
        f = S.Not(S.Forall1((x,), S.IsNilT(S.NodeTerm(x))))
        g = nnf(f)
        assert isinstance(g, S.Exists1)

    def test_semantics_preserved(self, trees):
        f = S.Not(
            S.Forall1(
                (x,),
                S.Or((S.IsNilT(S.NodeTerm(x)), S.Not(S.RootT(S.NodeTerm(x))))),
            )
        )
        _equiv(f, nnf(f), trees)


class TestMiniscope:
    def test_forall_splits_and(self):
        f = S.Forall1(
            (x,),
            S.And(
                (S.IsNilT(S.NodeTerm(x)), S.Not(S.RootT(S.NodeTerm(x))))
            ),
        )
        g = miniscope(f)
        assert isinstance(g, S.And)
        assert all(isinstance(p, S.Forall1) for p in g.parts)

    def test_exists_splits_or(self):
        f = S.Exists1(
            (x,),
            S.Or((S.IsNilT(S.NodeTerm(x)), S.RootT(S.NodeTerm(x)))),
        )
        g = miniscope(f)
        assert isinstance(g, S.Or)

    def test_independent_conjunct_extracted(self):
        f = S.Exists1((x,), S.And((S.RootT(S.NodeTerm(x)), S.Sing(X))))
        g = miniscope(f)
        assert isinstance(g, S.And)
        # Sing(X) must sit outside the quantifier now.
        outer = {str(p) for p in g.parts}
        assert "sing(X)" in outer

    def test_semantics_preserved(self, trees):
        formulas = [
            S.Forall1(
                (x,),
                S.And(
                    (
                        S.Or((S.IsNilT(S.NodeTerm(x)), S.TrueF())),
                        S.Not(S.And((S.RootT(S.NodeTerm(x)), S.IsNilT(S.NodeTerm(x))))),
                    )
                ),
            ),
            S.Exists1(
                (x, y),
                S.Or(
                    (
                        S.Reach(x, y),
                        S.And((S.RootT(S.NodeTerm(x)), S.RootT(S.NodeTerm(y)))),
                    )
                ),
            ),
        ]
        for f in formulas:
            _equiv(f, simplify(f), trees)

    def test_compiled_equivalence(self, trees):
        """simplify() must preserve the compiled language too."""
        f = S.Forall1(
            (x,),
            S.And(
                (
                    S.Or((S.IsNilT(S.NodeTerm(x)), S.Not(S.IsNilT(S.NodeTerm(x))))),
                    S.Not(S.And((S.RootT(S.NodeTerm(x)), S.IsNilT(S.NodeTerm(x, "l"))))),
                )
            ),
        )
        c = Compiler()
        a1, a2 = c.compile(f), c.compile(simplify(f))
        for t in trees:
            assert a1.run(t, {}) == a2.run(t, {})
