"""Tests for the block model: numbering, relations (Fig. 11), paths."""

import pytest

from repro.lang import BlockTable, Relation, parse_program
from repro.lang.parser import parse_program


class TestNumberingMatchesPaper:
    """The running example must reproduce the paper's s0..s10 numbering."""

    def test_sizecount_blocks(self, sizecount_par):
        t = BlockTable(sizecount_par)
        expect = {
            "s0": "return 0",
            "s3": "return ((ls + rs) + 1)",
            "s4": "return 0",
            "s7": "return (ls + rs)",
            "s10": "return o, e",
        }
        for sid, text in expect.items():
            assert str(t.block(sid).stmt) == text

    def test_sizecount_call_noncall_split(self, sizecount_par):
        t = BlockTable(sizecount_par)
        calls = {b.sid for b in t.all_calls}
        noncalls = {b.sid for b in t.all_noncalls}
        assert calls == {"s1", "s2", "s5", "s6", "s8", "s9"}
        assert noncalls == {"s0", "s3", "s4", "s7", "s10"}

    def test_sizecount_conditions(self, sizecount_par):
        t = BlockTable(sizecount_par)
        assert [c.cid for c in t.conds] == ["c0", "c1"]
        assert [c.func for c in t.conds] == ["Odd", "Even"]


class TestRelations:
    """Example 1 of the paper, Appendix B."""

    @pytest.fixture
    def table(self, sizecount_par):
        return BlockTable(sizecount_par)

    def test_calls_into(self, table):
        # s2 ◁ s7: s2 calls Even and s7 ∈ Blocks(Even).
        assert table.calls_into(table.block("s2"), table.block("s7"))

    def test_calls_into_negative(self, table):
        assert not table.calls_into(table.block("s2"), table.block("s3"))

    def test_precedes(self, table):
        # s5 ≺ s7.
        assert table.precedes(table.block("s5"), table.block("s7"))
        assert table.relation(table.block("s7"), table.block("s5")) == Relation.SEQ_AFTER

    def test_conditional(self, table):
        # s0 ↑ s1.
        assert table.conditional(table.block("s0"), table.block("s1"))

    def test_parallel(self, table):
        # s8 ‖ s9.
        assert table.parallel(table.block("s8"), table.block("s9"))

    def test_unrelated_across_functions(self, table):
        assert (
            table.relation(table.block("s0"), table.block("s4"))
            == Relation.UNRELATED
        )

    def test_relation_of_self_raises(self, table):
        with pytest.raises(ValueError):
            table.relation(table.block("s0"), table.block("s0"))

    def test_exactly_one_relation(self, table):
        """Lemma 2: same-function blocks satisfy exactly one of ≺, ↑, ‖."""
        for a in table.blocks:
            for b in table.blocks:
                if a is b or a.func != b.func:
                    continue
                rel = table.relation(a, b)
                assert rel in (
                    Relation.SEQ_BEFORE,
                    Relation.SEQ_AFTER,
                    Relation.CONDITIONAL,
                    Relation.PARALLEL,
                )


class TestPaths:
    def test_path_conditions_else_branch(self, sizecount_par):
        t = BlockTable(sizecount_par)
        # Path(s6) goes through !c1 (per the paper's Example 1).
        path = t.path_conditions(t.block("s6"))
        assert [(c.cid, pol) for c, pol in path] == [("c1", False)]

    def test_path_conditions_then_branch(self, sizecount_par):
        t = BlockTable(sizecount_par)
        path = t.path_conditions(t.block("s0"))
        assert [(c.cid, pol) for c, pol in path] == [("c0", True)]

    def test_path_conditions_unguarded(self, sizecount_par):
        t = BlockTable(sizecount_par)
        assert t.path_conditions(t.block("s10")) == ()

    def test_straightline_path_to_s3(self, sizecount_par):
        t = BlockTable(sizecount_par)
        paths = t.straightline_paths(t.block("s3"))
        assert len(paths) == 1
        kinds = [
            (i.kind, i.block.sid if i.block else (i.cond.cid, i.polarity))
            for i in paths[0]
        ]
        assert kinds == [
            ("assume", ("c0", False)),
            ("block", "s1"),
            ("block", "s2"),
        ]

    def test_straightline_path_stops_at_return(self):
        # A block after a returning block is unreachable through it.
        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else { n.v = 1 }; return 2 }"
        )
        t = BlockTable(p)
        final = [b for b in t.all_noncalls if "return 2" in str(b.stmt)][0]
        paths = t.straightline_paths(final)
        # Only the else path (which doesn't return) reaches the final block.
        assert len(paths) == 1
        assert paths[0][0].polarity is False

    def test_nested_if_paths(self, treemutation_orig):
        t = BlockTable(treemutation_orig)
        # n.v = n.r.v + 1 sits under !c1, c2, !c3.
        blocks = [b for b in t.all_noncalls if "n.r.v" in str(b.stmt)]
        assert len(blocks) == 1
        conds = [(c.cid, pol) for c, pol in t.path_conditions(blocks[0])]
        assert conds == [("c1", False), ("c2", True), ("c3", False)]

    def test_multiple_paths_through_branching_sibling(self):
        p = parse_program(
            "F(n, k) { if (k > 0) { n.a = 1 } else { n.a = 2 }; n.b = 3; "
            "return 0 }"
        )
        t = BlockTable(p)
        final = [b for b in t.all_noncalls if "n.b" in str(b.stmt)][0]
        assert len(t.straightline_paths(final)) == 2

    def test_par_branch_excludes_sibling(self, sizecount_par):
        t = BlockTable(sizecount_par)
        # Path to s9 must not execute s8 (they are parallel siblings).
        paths = t.straightline_paths(t.block("s9"))
        for p in paths:
            assert all(
                i.block is None or i.block.sid != "s8" for i in p
            )

    def test_summary_lists_all(self, sizecount_par):
        out = BlockTable(sizecount_par).summary()
        for sid in ("s0", "s10", "c0", "c1"):
            assert sid in out


class TestBlockProperties:
    def test_has_return(self, sizecount_par):
        t = BlockTable(sizecount_par)
        assert t.block("s0").has_return
        assert not t.block("s1").has_return

    def test_callee(self, sizecount_par):
        t = BlockTable(sizecount_par)
        assert t.block("s1").callee == "Even"
        assert t.block("s8").callee == "Odd"

    def test_blocks_of(self, sizecount_par):
        t = BlockTable(sizecount_par)
        assert [b.sid for b in t.blocks_of("Odd")] == ["s0", "s1", "s2", "s3"]

    def test_params(self, cycletree_seq):
        t = BlockTable(cycletree_seq)
        assert t.params("RootMode") == ("number",)
        assert t.params("ComputeRouting") == ()

    def test_of_stmt_identity(self, sizecount_par):
        t = BlockTable(sizecount_par)
        b = t.block("s3")
        assert t.of_stmt(b.stmt) is b
