"""The seeded generator library behind the conformance fuzzer."""

import pytest

from repro.gen import (
    GenConfig,
    RandomSource,
    gen_equivalence_query,
    gen_program,
    gen_program_source,
    gen_race_query,
)
from repro.gen.source import ChoiceSource
from repro.gen.strategies import HAVE_HYPOTHESIS
from repro.lang import parse_program, validate


class ScriptedSource(ChoiceSource):
    """Replays a fixed decision stream (always the low bound when it
    runs out) — for exercising the derived choice helpers."""

    def __init__(self, script):
        self.script = list(script)

    def randint(self, lo, hi):
        v = self.script.pop(0) if self.script else lo
        assert lo <= v <= hi, (lo, v, hi)
        return v


def test_choice_source_derived_helpers():
    src = ScriptedSource([2, 1, 0, 2, 0, 1])
    assert src.choice(["x", "y", "z"]) == "z"
    assert src.boolean() is True
    assert src.boolean() is False
    assert src.sublist(["a", "b"], 1, 3) == ["a", "b"]


def test_choice_from_empty_sequence_raises():
    with pytest.raises(ValueError):
        ScriptedSource([]).choice([])


def test_generated_programs_are_valid():
    for seed in range(30):
        prog = gen_program(seed)  # parses + validates or raises
        assert prog.entry in prog.funcs


def test_seed_determinism():
    for seed in (0, 7, 12345):
        assert gen_program_source(RandomSource(seed)) == gen_program_source(
            RandomSource(seed)
        )
    assert gen_program_source(RandomSource(1)) != gen_program_source(
        RandomSource(2)
    )


def test_race_queries_biased_toward_parallel_main():
    """3/4 of seeds force a parallel Main; the stream must actually
    deliver a strong majority of parallel compositions."""
    parallel = sum(
        1 for seed in range(40) if "||" in gen_race_query(seed).source
    )
    assert parallel >= 28, parallel


def test_race_query_validates_and_is_deterministic():
    q1 = gen_race_query(9)
    q2 = gen_race_query(9)
    assert q1.source == q2.source
    validate(q1.program())


def test_equivalence_pair_kinds():
    even = gen_equivalence_query(4)
    odd = gen_equivalence_query(5)
    assert even.pair_kind == "identity" and even.source == even.source2
    assert odd.pair_kind == "independent"
    p, q = odd.programs()
    validate(p)
    validate(q)


def test_parallel_main_forced_and_forbidden():
    for seed in range(10):
        par = gen_program_source(
            RandomSource(seed), GenConfig(parallel_main=True)
        )
        seq = gen_program_source(
            RandomSource(seed), GenConfig(parallel_main=False)
        )
        assert "||" in par
        assert "||" not in seq
        validate(parse_program(par, name="p"))
        validate(parse_program(seq, name="q"))


def test_hypothesis_backend_available_in_test_env():
    assert HAVE_HYPOTHESIS
