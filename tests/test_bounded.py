"""The paper's evaluation verdicts (T1.1–T1.7), decided by the bounded
engine — the headline correctness tests of the reproduction."""

import pytest

from repro.casestudies import css, cycletree, sizecount, treemutation
from repro.core.bounded import (
    check_conflict_bounded,
    check_data_race_bounded,
    default_scope,
)


@pytest.fixture(scope="module")
def scope():
    return default_scope(3)


class TestPaperVerdicts:
    def test_t11_sizecount_fusion_valid(self, scope):
        v = check_conflict_bounded(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
            scope,
        )
        assert v.holds, str(v.witness)

    def test_t12_sizecount_fusion_invalid(self, scope):
        v = check_conflict_bounded(
            sizecount.sequential_program(),
            sizecount.fused_invalid(),
            sizecount.invalid_fusion_correspondence(),
            scope,
        )
        assert v.found
        # The violated dependence is the child->parent return flow.
        assert "ret" in str(v.witness) or "s" in str(v.witness)

    def test_t13_sizecount_race_free(self, scope):
        v = check_data_race_bounded(sizecount.parallel_program(), scope)
        assert v.holds

    def test_t14_treemutation_fusion(self, scope):
        v = check_conflict_bounded(
            treemutation.original_program(),
            treemutation.fused_program(),
            treemutation.fusion_correspondence(),
            scope,
        )
        assert v.holds, str(v.witness)

    def test_t15_css_fusion(self, scope):
        v = check_conflict_bounded(
            css.original_program(),
            css.fused_program(),
            css.fusion_correspondence(),
            scope,
        )
        assert v.holds, str(v.witness)

    def test_t16_cycletree_fusion(self, scope):
        v = check_conflict_bounded(
            cycletree.sequential_program(),
            cycletree.fused_program(),
            cycletree.fusion_correspondence(),
            scope,
        )
        assert v.holds, str(v.witness)

    def test_t17_cycletree_parallel_race(self, scope):
        v = check_data_race_bounded(cycletree.parallel_program(), scope)
        assert v.found
        assert "num" in str(v.witness)


class TestRaceDetectionSoundness:
    def test_sequential_cycletree_race_free(self, scope):
        v = check_data_race_bounded(cycletree.sequential_program(), scope)
        assert v.holds

    def test_obvious_race_found(self, scope):
        from repro.lang import parse_program

        p = parse_program(
            "A(n) { if (n == nil) { return 0 } else { n.v = 1; return 0 } }\n"
            "Main(n) { { a = A(n) || b = A(n) }; return 0 }"
        )
        v = check_data_race_bounded(p, scope)
        assert v.found
        # The earliest witness is the W/W aliasing of the two parallel
        # same-node activations' return cells (empty tree); the field race
        # on n.v is found on internal trees.
        assert "ret:A::0" in str(v.witness) or "field:v" in str(v.witness)

    def test_disjoint_fields_race_free(self, scope):
        from repro.lang import parse_program

        p = parse_program(
            "A(n) { if (n == nil) { return 0 } else { n.a = 1; return 0 } }\n"
            "B(n) { if (n == nil) { return 0 } else { n.b = 1; return 0 } }\n"
            "Main(n) { { x = A(n) || y = B(n) }; return 0 }"
        )
        assert check_data_race_bounded(p, scope).holds

    def test_parallel_disjoint_subtrees_race_free(self, scope):
        from repro.lang import parse_program

        # A classic: parallel recursion on the two children of one walker.
        p = parse_program(
            "W(n) { if (n == nil) { return 0 } else {"
            " { a = W(n.l) || b = W(n.r) }; n.v = a + b + 1; return n.v } }\n"
            "Main(n) { t = W(n); return t }"
        )
        v = check_data_race_bounded(p, scope)
        assert v.holds, str(v.witness)

    def test_parallel_overlapping_subtree_races(self, scope):
        from repro.lang import parse_program

        p = parse_program(
            "W(n) { if (n == nil) { return 0 } else {"
            " { a = W(n.l) || b = W(n.l) }; n.v = a + b; return n.v } }\n"
            "Main(n) { t = W(n); return t }"
        )
        v = check_data_race_bounded(p, scope)
        assert v.found


class TestConflictMechanics:
    def test_sequentialized_program_equivalent_to_itself(self, scope):
        p = sizecount.sequential_program()
        q = sizecount.sequential_program()
        mapping = {b: {b} for b in ("s0", "s3", "s4", "s7", "s10")}
        v = check_conflict_bounded(p, q, mapping, scope)
        assert v.holds

    def test_reordered_independent_phases_equivalent(self, scope):
        """Swapping two traversals that touch disjoint fields is legal."""
        from repro.lang import parse_program

        src_a = (
            "A(n) { if (n == nil) { return 0 } else { x = A(n.l); "
            "y = A(n.r); n.a = 1; return 0 } }\n"
            "B(n) { if (n == nil) { return 0 } else { x = B(n.l); "
            "y = B(n.r); n.b = 1; return 0 } }\n"
        )
        p = parse_program(src_a + "Main(n) { u = A(n); v = B(n); return 0 }",
                          name="ab")
        q = parse_program(src_a + "Main(n) { v = B(n); u = A(n); return 0 }",
                          name="ba")
        mapping = {s: {s} for s in ("s0", "s3", "s4", "s7", "s10")}
        v = check_conflict_bounded(p, q, mapping, scope)
        assert v.holds, str(v.witness)

    def test_reordered_dependent_phases_conflict(self, scope):
        """Swapping write-then-read traversals on the same field is not."""
        from repro.lang import parse_program

        src = (
            "W(n) { if (n == nil) { return 0 } else { x = W(n.l); "
            "y = W(n.r); n.a = 1; return 0 } }\n"
            "R(n) { if (n == nil) { return 0 } else { x = R(n.l); "
            "y = R(n.r); n.b = n.a + 1; return 0 } }\n"
        )
        p = parse_program(src + "Main(n) { u = W(n); v = R(n); return 0 }",
                          name="wr")
        q = parse_program(src + "Main(n) { v = R(n); u = W(n); return 0 }",
                          name="rw")
        mapping = {s: {s} for s in ("s0", "s3", "s4", "s7", "s10")}
        v = check_conflict_bounded(p, q, mapping, scope)
        assert v.found


class TestScope:
    def test_default_scope_counts(self):
        assert len(default_scope(0)) == 1
        assert len(default_scope(3)) == 1 + 1 + 2 + 5
        assert len(default_scope(4)) == 23

    def test_verdict_str(self, scope):
        v = check_data_race_bounded(sizecount.parallel_program(), scope)
        assert "holds on scope" in str(v)
        assert v.trees_checked == len(scope)
