"""Tests for the top-level verification API (engines, replay, fallback)."""

import pytest

from repro import check_data_race, check_equivalence
from repro.casestudies import cycletree, sizecount, treemutation


class TestDataRaceApi:
    def test_bounded_race_free(self, sizecount_par):
        r = check_data_race(sizecount_par, engine="bounded")
        assert r.verdict == "race-free" and r.holds
        assert r.engine == "bounded"

    def test_bounded_race_found_and_replayed(self, cycletree_par):
        r = check_data_race(cycletree_par, engine="bounded")
        assert r.verdict == "race" and not r.holds
        assert r.replay is not None and r.replay.confirmed
        assert "race" in r.replay.detail

    def test_invalid_program_rejected(self):
        from repro.lang import ValidationError, parse_program

        p = parse_program("F(n) { x = F(n); return x }")
        with pytest.raises(ValidationError):
            check_data_race(p, engine="bounded")

    def test_result_str(self, sizecount_par):
        r = check_data_race(sizecount_par, engine="bounded")
        assert "race-free" in str(r) and "bounded" in str(r)


class TestEquivalenceApi:
    def test_valid_fusion(self, sizecount_seq, sizecount_fused):
        r = check_equivalence(
            sizecount_seq,
            sizecount_fused,
            sizecount.fusion_correspondence(),
            engine="bounded",
        )
        assert r.verdict == "equivalent" and r.holds
        assert "bisimulation" in r.details

    def test_invalid_fusion_replay_confirms(
        self, sizecount_seq, sizecount_fused_bad
    ):
        r = check_equivalence(
            sizecount_seq,
            sizecount_fused_bad,
            sizecount.invalid_fusion_correspondence(),
            engine="bounded",
        )
        assert r.verdict == "not-equivalent"
        assert r.replay is not None and r.replay.confirmed
        assert "differ" in r.replay.detail

    def test_bisim_gate(self):
        """Programs failing bisimulation are rejected before the conflict
        query runs."""
        from repro.core.transform import correspondence_by_key
        from repro.lang import parse_program

        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else { a = F(n.l); "
            "return a + 1 } }\nMain(n) { x = F(n); return x }",
            name="left",
        )
        q = parse_program(
            "F(n) { if (n == nil) { return 0 } else { a = F(n.r); "
            "return a + 1 } }\nMain(n) { x = F(n); return x }",
            name="right",
        )
        r = check_equivalence(
            p, q, correspondence_by_key(p, q), engine="bounded"
        )
        assert r.verdict == "not-equivalent" and r.engine == "bisim"

    def test_bisim_gate_can_be_skipped(self, sizecount_seq, sizecount_fused):
        r = check_equivalence(
            sizecount_seq,
            sizecount_fused,
            sizecount.fusion_correspondence(),
            engine="bounded",
            check_bisim=False,
        )
        assert "bisimulation" not in r.details

    def test_treemutation_equivalent(
        self, treemutation_orig, treemutation_fused
    ):
        r = check_equivalence(
            treemutation_orig,
            treemutation_fused,
            treemutation.fusion_correspondence(),
            engine="bounded",
        )
        assert r.verdict == "equivalent"


class TestDegradationLadder:
    def test_unknown_verdict_does_not_hold(self, sizecount_par):
        """An exhausted mso-only run is ``unknown`` with holds=False —
        never silently ``race-free``."""
        r = check_data_race(
            sizecount_par, engine="mso", mso_deadline_s=0.05, replay=False
        )
        assert r.verdict == "unknown"
        assert not r.holds
        assert r.details["mso_status"] == "deadline"
        assert r.details["decided_by"] is None
        assert r.details["attempts"][0]["rung"] == "mso"
        assert r.details["attempts"][0]["outcome"] == "deadline"

    def test_auto_degrades_to_bounded(self, sizecount_par):
        r = check_data_race(
            sizecount_par,
            engine="auto",
            mso_deadline_s=0.05,
            max_internal=2,
            replay=False,
        )
        assert r.verdict == "race-free" and r.holds
        assert r.engine == "mso+bounded"
        assert r.details["decided_by"] == "bounded@2"
        rungs = [a["rung"] for a in r.details["attempts"]]
        assert rungs == ["mso", "bounded@2"]

    def test_attempts_record_decided_rung(self, sizecount_par):
        r = check_data_race(sizecount_par, engine="auto", replay=False)
        assert r.verdict == "race-free"
        assert r.details["decided_by"] == "mso"
        (attempt,) = r.details["attempts"]
        assert attempt["outcome"] == "decided"
        assert attempt["limits"]["det_budget"] == 50_000
        assert attempt["elapsed"] > 0

    def test_bounded_scope_shrinks_on_overrun(self, sizecount_par):
        """A bounded deadline too tight for the big scopes shrinks until a
        scope fits; the result names the scope that decided."""
        r = check_data_race(
            sizecount_par,
            engine="bounded",
            max_internal=4,
            bounded_deadline_s=0.15,
            replay=False,
        )
        assert r.verdict in ("race-free", "unknown")
        if r.verdict == "race-free":
            assert r.details["decided_by"].startswith("bounded@")
        else:
            assert not r.holds and r.details["decided_by"] is None

    def test_merge_race_ignores_undecided_symbolic_witness(self):
        """Regression: an undecided symbolic verdict carrying stale witness
        state must never out-vote a completed bounded verdict."""
        from repro.core.api import _merge_race
        from repro.core.bounded import BoundedVerdict
        from repro.core.symbolic import SymbolicVerdict

        stale = SymbolicVerdict(query="q", found=True, status="budget")
        stale.witness = object()
        clean = BoundedVerdict(query="q", found=False)
        found, tree, witness = _merge_race(stale, clean)
        assert found is False and tree is None and witness is None
        # And with no bounded verdict at all, nothing is reported.
        found, tree, witness = _merge_race(stale, None)
        assert found is False and tree is None and witness is None

    def test_symbolic_retry_rung_escalates_budgets(self):
        """Stubbed ladder: budget exhaustion triggers exactly one retry
        with LADDER_ESCALATION'd budgets sharing the remaining deadline."""
        from repro.core.api import LADDER_ESCALATION, _symbolic_ladder
        from repro.core.symbolic import SymbolicVerdict

        calls = []

        def run_sym(solver, guard):
            calls.append((solver.compiler.det_budget, solver.product_budget))
            status = "budget" if len(calls) == 1 else "decided"
            return SymbolicVerdict(query="q", found=False, status=status)

        attempts, details = [], {}
        sym, rung = _symbolic_ladder(
            run_sym, "auto", 1000, 60.0, None, attempts, details
        )
        assert sym.status == "decided" and rung == "mso-retry"
        assert calls == [
            (1000, calls[0][1]),
            (1000 * LADDER_ESCALATION, calls[0][1] * LADDER_ESCALATION),
        ]
        assert [a["outcome"] for a in attempts] == ["budget", "decided"]

    def test_symbolic_retry_skipped_when_no_time_left(self):
        from repro.core.api import _symbolic_ladder
        from repro.core.symbolic import SymbolicVerdict

        calls = []

        def run_sym(solver, guard):
            calls.append(1)
            return SymbolicVerdict(query="q", found=False, status="budget")

        attempts, details = [], {}
        sym, rung = _symbolic_ladder(
            run_sym, "auto", 1000, 0.2, None, attempts, details
        )
        assert len(calls) == 1 and rung == "mso"
        assert sym.status == "budget"

    def test_internal_error_recorded_and_falls_back(self, sizecount_par):
        from repro.runtime import SolverInternalError
        from repro.runtime import faults

        faults.disarm_all()
        faults.arm("emptiness.fixpoint", hit=1, action="raise")
        try:
            r = check_data_race(
                sizecount_par, engine="auto", max_internal=2, replay=False
            )
        finally:
            faults.disarm_all()
        assert r.verdict == "race-free"
        assert "mso_error" in r.details
        assert r.details["decided_by"] == "bounded@2"
