"""Tests for the top-level verification API (engines, replay, fallback)."""

import pytest

from repro import check_data_race, check_equivalence
from repro.casestudies import cycletree, sizecount, treemutation


class TestDataRaceApi:
    def test_bounded_race_free(self, sizecount_par):
        r = check_data_race(sizecount_par, engine="bounded")
        assert r.verdict == "race-free" and r.holds
        assert r.engine == "bounded"

    def test_bounded_race_found_and_replayed(self, cycletree_par):
        r = check_data_race(cycletree_par, engine="bounded")
        assert r.verdict == "race" and not r.holds
        assert r.replay is not None and r.replay.confirmed
        assert "race" in r.replay.detail

    def test_invalid_program_rejected(self):
        from repro.lang import ValidationError, parse_program

        p = parse_program("F(n) { x = F(n); return x }")
        with pytest.raises(ValidationError):
            check_data_race(p, engine="bounded")

    def test_result_str(self, sizecount_par):
        r = check_data_race(sizecount_par, engine="bounded")
        assert "race-free" in str(r) and "bounded" in str(r)


class TestEquivalenceApi:
    def test_valid_fusion(self, sizecount_seq, sizecount_fused):
        r = check_equivalence(
            sizecount_seq,
            sizecount_fused,
            sizecount.fusion_correspondence(),
            engine="bounded",
        )
        assert r.verdict == "equivalent" and r.holds
        assert "bisimulation" in r.details

    def test_invalid_fusion_replay_confirms(
        self, sizecount_seq, sizecount_fused_bad
    ):
        r = check_equivalence(
            sizecount_seq,
            sizecount_fused_bad,
            sizecount.invalid_fusion_correspondence(),
            engine="bounded",
        )
        assert r.verdict == "not-equivalent"
        assert r.replay is not None and r.replay.confirmed
        assert "differ" in r.replay.detail

    def test_bisim_gate(self):
        """Programs failing bisimulation are rejected before the conflict
        query runs."""
        from repro.core.transform import correspondence_by_key
        from repro.lang import parse_program

        p = parse_program(
            "F(n) { if (n == nil) { return 0 } else { a = F(n.l); "
            "return a + 1 } }\nMain(n) { x = F(n); return x }",
            name="left",
        )
        q = parse_program(
            "F(n) { if (n == nil) { return 0 } else { a = F(n.r); "
            "return a + 1 } }\nMain(n) { x = F(n); return x }",
            name="right",
        )
        r = check_equivalence(
            p, q, correspondence_by_key(p, q), engine="bounded"
        )
        assert r.verdict == "not-equivalent" and r.engine == "bisim"

    def test_bisim_gate_can_be_skipped(self, sizecount_seq, sizecount_fused):
        r = check_equivalence(
            sizecount_seq,
            sizecount_fused,
            sizecount.fusion_correspondence(),
            engine="bounded",
            check_bisim=False,
        )
        assert "bisimulation" not in r.details

    def test_treemutation_equivalent(
        self, treemutation_orig, treemutation_fused
    ):
        r = check_equivalence(
            treemutation_orig,
            treemutation_fused,
            treemutation.fusion_correspondence(),
            engine="bounded",
        )
        assert r.verdict == "equivalent"
