"""The differential conformance oracle, shrinker, and corpus."""

from types import SimpleNamespace

import pytest

from repro.conformance import (
    Case,
    OracleConfig,
    case_size,
    load_corpus,
    run_case,
    run_entry,
    run_fuzz,
    save_entry,
    shrink_case,
)
from repro.conformance import oracle as oracle_mod
from repro.core.bounded import check_data_race_bounded
from repro.lang import parse_program

RACY = """\
F0(n) {
  if (n == nil) { return 0 }
  else { n.a = 1; return 0 }
}
Main(n) {
  { x0 = F0(n) || x1 = F0(n) };
  return x0
}
"""

CLEAN = """\
F0(n) {
  if (n == nil) { return 0 }
  else {
    v0 = F0(n.l);
    return (n.a + v0)
  }
}
Main(n) {
  x0 = F0(n);
  return x0
}
"""

# RACY plus a dead helper function and dead statements; the shrinker
# should strip all of it while the bounded race persists.
RACY_BLOATED = """\
F0(n) {
  if (n == nil) { return 0 }
  else {
    n.b = (n.c + 2);
    n.a = 1;
    if (n.c > 1) { n.c = 7 };
    return (n.a + n.b)
  }
}
F1(n) {
  if (n == nil) { return 0 }
  else {
    v0 = F1(n.l);
    return v0
  }
}
Main(n) {
  { x0 = F0(n) || x1 = F0(n) };
  return x0
}
"""


def racy_case(**kw):
    return Case(kind="race", source=RACY, name="racy", **kw)


# ----------------------------------------------------------------------
# Oracle


def test_oracle_racy_case_all_engines_agree():
    res = run_case(racy_case())
    assert res.ok, [str(m) for m in res.mismatches]
    assert res.engines["interp_race"] is not None
    assert res.engines["bounded_found"] is True
    assert res.engines["symbolic_status"] == "decided"
    assert res.engines["symbolic_found"] is True


def test_oracle_clean_case():
    res = run_case(Case(kind="race", source=CLEAN, name="clean"))
    assert res.ok
    assert res.engines["interp_race"] is None
    assert res.engines["bounded_found"] is False


def test_oracle_identity_equivalence():
    res = run_case(Case(
        kind="equiv", source=CLEAN, source2=CLEAN, name="ident",
    ))
    assert res.ok, [str(m) for m in res.mismatches]
    assert res.engines["bounded"] == "equivalent"
    assert res.engines["precondition_racefree"] is True


def test_oracle_skips_symbolic_when_disabled():
    res = run_case(racy_case(), OracleConfig(run_symbolic=False))
    assert res.ok
    assert "symbolic" not in res.engines


def _stub_symbolic(monkeypatch, **attrs):
    # The oracle dispatches through the engine registry, whose symbolic
    # engine resolves check_data_race_mso lazily — patch it at the
    # source module.
    import repro.core.symbolic as symbolic_mod

    base = {"status": "decided", "found": False, "witness": None}
    base.update(attrs)
    verdict = SimpleNamespace(**base)
    monkeypatch.setattr(
        symbolic_mod, "check_data_race_mso",
        lambda program, solver=None, guard=None: verdict,
    )
    return verdict


def test_oracle_flags_unsound_symbolic_racefree(monkeypatch):
    """A symbolic race-free verdict against a bounded+dynamic race is
    the core lattice violation, reported on both edges."""
    _stub_symbolic(monkeypatch, status="decided", found=False)
    res = run_case(racy_case())
    kinds = {m.kind for m in res.mismatches}
    assert "bounded-vs-symbolic" in kinds
    assert "interp-vs-symbolic" in kinds


def test_oracle_flags_stale_witness(monkeypatch):
    _stub_symbolic(monkeypatch, status="budget", witness=object())
    res = run_case(racy_case())
    assert {m.kind for m in res.mismatches} == {"stale-witness"}


def test_oracle_flags_missing_witness(monkeypatch):
    _stub_symbolic(monkeypatch, status="decided", found=True, witness=None)
    res = run_case(racy_case())
    assert {m.kind for m in res.mismatches} == {"missing-witness"}


def test_oracle_catches_injected_corrupt_fault():
    """The acceptance gate: a corrupted BDD apply inside the symbolic
    engine must surface as an ``engine-error`` mismatch."""
    cfg = OracleConfig(fault=("bdd.apply", 1, "corrupt"))
    res = run_case(racy_case(), cfg)
    assert not res.ok
    assert {m.kind for m in res.mismatches} == {"engine-error"}


def test_oracle_fault_rearmed_per_evaluation():
    """FaultSpec fires once; the oracle must re-arm it each run so
    shrinker re-evaluations keep failing deterministically."""
    cfg = OracleConfig(fault=("bdd.apply", 1, "corrupt"))
    for _ in range(2):
        res = run_case(racy_case(), cfg)
        assert {m.kind for m in res.mismatches} == {"engine-error"}
    # and a fresh config without the fault is unaffected
    assert run_case(racy_case(), OracleConfig()).ok


# ----------------------------------------------------------------------
# Shrinker


def test_shrinker_strips_bloat_keeps_race():
    case = Case(kind="race", source=RACY_BLOATED, name="bloat")

    def still_fails(cand):
        prog = parse_program(cand.source, name="cand")
        return check_data_race_bounded(
            prog, max_internal=cand.max_internal
        ).found

    assert still_fails(case)
    shrunk = shrink_case(case, still_fails, budget_s=30.0)
    assert case_size(shrunk) < case_size(case)
    assert still_fails(shrunk)
    assert "F1" not in shrunk.source  # dead helper dropped
    assert shrunk.max_internal == 1  # scope shrunk too


def test_shrinker_returns_original_when_nothing_reduces():
    case = Case(kind="race", source=RACY, name="racy", max_internal=1)
    shrunk = shrink_case(case, lambda cand: False, budget_s=5.0)
    assert shrunk == case


# ----------------------------------------------------------------------
# Corpus


def test_corpus_round_trip(tmp_path):
    case = racy_case()
    path = save_entry(
        tmp_path, case, [], origin="hand", description="round-trip",
        oracle_overrides={"run_symbolic": False},
    )
    entries = load_corpus(tmp_path)
    assert [e.path for e in entries] == [path]
    entry = entries[0]
    assert entry.case.source == RACY
    assert entry.case.kind == "race"
    assert entry.config().run_symbolic is False
    assert run_entry(entry).ok


def test_corpus_names_deduplicate(tmp_path):
    case = racy_case()
    p1 = save_entry(tmp_path, case, [], origin="hand")
    p2 = save_entry(tmp_path, case, [], origin="hand")
    assert p1 != p2 and p1.parent == p2.parent


def test_load_corpus_missing_dir(tmp_path):
    assert load_corpus(tmp_path / "nope") == []


# ----------------------------------------------------------------------
# Fuzz loop


def test_run_fuzz_clean_stream():
    rep = run_fuzz(seed=0, budget_s=25.0, max_cases=4)
    assert rep.ok
    assert rep.cases == 4
    assert rep.race_cases == 3 and rep.equiv_cases == 1
    assert "no mismatches" in rep.summary()


def test_run_fuzz_with_fault_shrinks_and_persists(tmp_path):
    cfg = OracleConfig(fault=("bdd.apply", 1, "corrupt"))
    rep = run_fuzz(
        seed=0, budget_s=30.0, max_cases=1, cfg=cfg, corpus_dir=tmp_path,
    )
    assert not rep.ok
    assert len(rep.corpus_paths) == 1
    shrunk_case_, mismatches = rep.mismatches[0]
    assert {m.kind for m in mismatches} == {"engine-error"}
    # the reproducer was shrunk hard: the fault fires on any symbolic
    # run, so the minimum is a trivial program at scope 1
    assert shrunk_case_.max_internal == 1
    entries = load_corpus(tmp_path)
    assert len(entries) == 1
    # without the fault armed, the persisted reproducer is clean — the
    # corpus regression loop would go green once the bug is fixed
    assert run_entry(entries[0]).ok
