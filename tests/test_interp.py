"""Tests for the concrete interpreter, schedules and dynamic races."""

import pytest

from repro.interp import (
    ExecutionError,
    LeftFirst,
    RandomScheduler,
    RoundRobin,
    all_schedules,
    concurrent,
    distinct_outcomes,
    find_races,
    program_races_on,
    run,
)
from repro.lang.parser import parse_program
from repro.trees.generators import full_tree, random_tree
from repro.trees.heap import Tree, node


class TestSizecountSemantics:
    def test_single_node(self, sizecount_par):
        r = run(sizecount_par, Tree(node()))
        assert r.returns == (1, 0)

    def test_full_trees(self, sizecount_par):
        # Perfect tree of height h: odd layers hold 1+4+16+... nodes.
        expected = {1: (1, 0), 2: (1, 2), 3: (5, 2), 4: (5, 10)}
        for h, (odd, even) in expected.items():
            r = run(sizecount_par, full_tree(h))
            assert r.returns == (odd, even)

    def test_odd_plus_even_is_size(self, sizecount_par):
        for seed in range(5):
            t = random_tree(11, seed=seed)
            o, e = run(sizecount_par, t).returns
            assert o + e == t.size

    def test_paper_iteration_sequence_single_node(self, sizecount_par):
        """§3's example: on a single node the iterations are (s0/s4 on the
        nil children, then the parent returns), each appearing once."""
        r = run(sizecount_par, Tree(node()))
        pairs = r.trace.iteration_pairs()
        assert len(pairs) == len(set(pairs))  # every iteration unique
        assert ("s3", "") in pairs and ("s7", "") in pairs
        assert ("s0", "l") in pairs and ("s4", "r") in pairs

    def test_iterations_bounded_by_program_and_height(self, sizecount_par):
        # O(|P| * h(T)) iterations — each block runs ≤ once per node.
        t = full_tree(4)
        r = run(sizecount_par, t)
        pairs = r.trace.iteration_pairs()
        assert len(pairs) == len(set(pairs))


class TestSemanticsDetails:
    def test_call_by_value(self):
        p = parse_program(
            "G(n, k) { k = k + 1; return k }\n"
            "Main(n, k) { x = G(n, k); return k, x }"
        )
        r = run(p, Tree(node()), args=[5])
        assert r.returns == (5, 6)  # caller's k unchanged

    def test_uninitialized_var_defaults_zero(self):
        p = parse_program("Main(n) { return ghost + 1 }")
        assert run(p, Tree(node())).returns == (1,)

    def test_strict_vars_raises(self):
        p = parse_program("Main(n) { return ghost }")
        with pytest.raises(ExecutionError):
            run(p, Tree(node()), strict_vars=True)

    def test_field_mutation_visible(self):
        p = parse_program(
            "Main(n) { if (n == nil) { return 0 } else { n.v = 7; return n.v } }"
        )
        r = run(p, Tree(node()))
        assert r.returns == (7,)
        assert r.tree.root.get("v") == 7

    def test_inplace_flag(self):
        p = parse_program(
            "Main(n) { if (n == nil) { return 0 } else { n.v = 7; return 0 } }"
        )
        t = Tree(node())
        run(p, t, inplace=False)
        assert t.root.get("v") == 0
        run(p, t, inplace=True)
        assert t.root.get("v") == 7

    def test_nil_deref_raises(self):
        from repro.trees.heap import NilAccessError

        p = parse_program("Main(n) { n.v = n.l.v; return 0 }")
        with pytest.raises(NilAccessError):
            run(p, Tree(node()))

    def test_wrong_arg_count(self):
        p = parse_program("Main(n, k) { return k }")
        with pytest.raises(ExecutionError):
            run(p, Tree(node()), args=[])

    def test_max_steps(self, sizecount_par):
        with pytest.raises(ExecutionError):
            run(sizecount_par, full_tree(4), max_steps=5)

    def test_returns_recorded_in_trace(self, sizecount_par):
        r = run(sizecount_par, full_tree(2))
        assert r.trace.returns == r.returns


class TestSchedulers:
    def test_all_schedulers_same_result_when_race_free(self, sizecount_par):
        t = full_tree(3)
        base = run(sizecount_par, t, scheduler=LeftFirst()).returns
        assert run(sizecount_par, t, scheduler=RoundRobin()).returns == base
        for seed in range(4):
            assert (
                run(sizecount_par, t, scheduler=RandomScheduler(seed)).returns
                == base
            )

    def test_enumerate_all_schedules_single_node(self, sizecount_par):
        t = Tree(node())
        outs = distinct_outcomes(
            lambda sch: run(sizecount_par, t, scheduler=sch).returns
        )
        assert outs == [(1, 0)]

    def test_schedule_count_single_node(self, sizecount_par):
        t = Tree(node())
        n = sum(
            1
            for _ in all_schedules(
                lambda sch: run(sizecount_par, t, scheduler=sch).returns
            )
        )
        # Each parallel branch has 4 scheduler decision points (3 atomic
        # blocks + the exhaustion step): C(8,4) = 70 interleavings.
        assert n == 70

    def test_racy_program_has_divergent_outcomes(self):
        p = parse_program(
            "A(n) { if (n == nil) { return 0 } else { n.v = 1; return 0 } }\n"
            "B(n) { if (n == nil) { return 0 } else { n.v = 2; return 0 } }\n"
            "Main(n) { { a = A(n) || b = B(n) }; return n.v }"
        )
        outs = distinct_outcomes(
            lambda sch: run(p, Tree(node()), scheduler=sch).returns
        )
        assert set(outs) == {(1,), (2,)}


class TestConcurrency:
    def test_concurrent_contexts(self):
        a = (("call", "main", ""), ("par", 1, 0), ("call", "s8", ""))
        b = (("call", "main", ""), ("par", 1, 1), ("call", "s9", ""))
        assert concurrent(a, b)

    def test_sequential_contexts(self):
        a = (("call", "main", ""), ("call", "s8", ""))
        b = (("call", "main", ""), ("call", "s9", ""))
        assert not concurrent(a, b)

    def test_nested_par_same_branch(self):
        a = (("par", 1, 0), ("par", 2, 0))
        b = (("par", 1, 0), ("par", 2, 1))
        assert concurrent(a, b)

    def test_prefix_not_concurrent(self):
        a = (("par", 1, 0),)
        b = (("par", 1, 0), ("call", "s1", "l"))
        assert not concurrent(a, b)


class TestDynamicRaces:
    def test_sizecount_race_free(self, sizecount_par):
        for seed in range(3):
            assert program_races_on(sizecount_par, random_tree(9, seed=seed)) == []

    def test_cycletree_parallel_races(self, cycletree_par):
        races = program_races_on(cycletree_par, full_tree(2))
        assert races
        assert any(r.field == "num" for r in races)

    def test_cycletree_sequential_race_free(self, cycletree_seq):
        assert program_races_on(cycletree_seq, full_tree(2)) == []

    def test_write_write_race(self):
        p = parse_program(
            "A(n) { if (n == nil) { return 0 } else { n.v = 1; return 0 } }\n"
            "Main(n) { { a = A(n) || b = A(n) }; return 0 }"
        )
        races = program_races_on(p, Tree(node()))
        assert races and races[0].field == "v"

    def test_read_read_not_a_race(self):
        p = parse_program(
            "A(n) { if (n == nil) { return 0 } else { return n.v } }\n"
            "Main(n) { { a = A(n) || b = A(n) }; return a + b }"
        )
        assert program_races_on(p, Tree(node())) == []

    def test_race_str_mentions_cell(self):
        p = parse_program(
            "A(n) { if (n == nil) { return 0 } else { n.v = 1; return 0 } }\n"
            "Main(n) { { a = A(n) || b = A(n) }; return 0 }"
        )
        races = program_races_on(p, Tree(node()))
        assert "v" in str(races[0])
