"""Tests for counterexample decoding and replay."""

import pytest

from repro.core.bounded import check_data_race_bounded, default_scope
from repro.core.witness import (
    ReplayOutcome,
    decode_labels,
    match_configuration,
    replay_conflict,
    replay_race,
)
from repro.casestudies import cycletree, sizecount
from repro.trees.generators import full_tree
from repro.trees.heap import Tree, node


class TestReplayRace:
    def test_cycletree_race_confirmed(self):
        out = replay_race(
            cycletree.parallel_program(), full_tree(2), cycletree.FIELDS
        )
        assert out.confirmed
        assert "num" in out.detail or "race" in out.detail

    def test_race_free_program_unconfirmed(self):
        out = replay_race(sizecount.parallel_program(), full_tree(2))
        assert not out.confirmed


class TestReplayConflict:
    def test_invalid_fusion_confirmed(self):
        out = replay_conflict(
            sizecount.sequential_program(),
            sizecount.fused_invalid(),
            Tree(node()),
        )
        assert out.confirmed
        assert "differ" in out.detail

    def test_valid_fusion_unconfirmed(self):
        out = replay_conflict(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            Tree(node()),
        )
        assert not out.confirmed


class TestDecoding:
    def test_decode_and_match_mso_witness(self):
        """An MSO race witness decodes to a label map that matches a real
        bounded-engine configuration (automating the paper's manual
        counterexample inspection)."""
        from repro.core.configurations import ProgramModel
        from repro.core.encode import Encoder
        from repro.core.symbolic import check_data_race_mso

        import time

        prog = cycletree.parallel_program()
        v = check_data_race_mso(
            prog, det_budget=20_000, deadline=time.perf_counter() + 60
        )
        if v.status != "decided":  # budget-dependent; skip if exceeded
            pytest.skip("symbolic engine exceeded budget on this host")
        assert v.found and v.witness is not None
        model = ProgramModel(prog)
        enc = Encoder(model, prog.name.replace(" ", "_"))
        labels = decode_labels(v.witness, enc.tracks(1))
        assert labels  # at least the main label present
        cfg = match_configuration(model, v.witness.tree, labels)
        assert cfg is not None
