"""Tests for expression evaluation, substitution and analysis helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lang import ast as A
from repro.lang.exprs import (
    aexpr_field_reads,
    aexpr_vars,
    bexpr_field_reads,
    bexpr_vars,
    eval_aexpr,
    eval_bexpr,
    subst_aexpr,
    subst_bexpr,
)
from repro.lang.parser import parse_expr


def _no_fields(loc, name):
    raise AssertionError("no field reads expected")


class TestEval:
    def test_arith(self):
        e = parse_expr("1 + 2 - 3 + x")
        assert eval_aexpr(e, {"x": 10}, _no_fields) == 10

    def test_neg(self):
        assert eval_aexpr(parse_expr("-x"), {"x": 4}, _no_fields) == -4

    def test_max_min(self):
        e = parse_expr("max(a, b, 0) - min(a, b, 0)")
        assert eval_aexpr(e, {"a": 3, "b": -2}, _no_fields) == 5

    def test_field_read_callback(self):
        e = parse_expr("n.l.v + 1")
        val = eval_aexpr(e, {}, lambda loc, f: 41 if (loc.directions(), f) == ("l", "v") else 0)
        assert val == 42

    def test_unbound_var_raises(self):
        from repro.lang.exprs import SymbolicValueError

        with pytest.raises(SymbolicValueError):
            eval_aexpr(parse_expr("x"), {}, _no_fields)

    def test_bexpr_ops(self):
        b = A.BAnd(A.Gt(A.Var("x")), A.Not(A.Eq0(A.Var("y"))))
        assert eval_bexpr(b, {"x": 1, "y": 2}, _no_fields, lambda l: False)
        assert not eval_bexpr(b, {"x": 1, "y": 0}, _no_fields, lambda l: False)

    def test_bexpr_nil(self):
        b = A.IsNil(A.LocField(A.LocVar(), "l"))
        assert eval_bexpr(b, {}, _no_fields, lambda loc: loc.directions() == "l")


class TestAnalysis:
    def test_vars(self):
        assert aexpr_vars(parse_expr("a + b - a + max(c, 1)")) == {"a", "b", "c"}

    def test_field_reads(self):
        e = parse_expr("n.v + n.l.w - n.l.w")
        assert aexpr_field_reads(e) == {("", "v"), ("l", "w")}

    def test_bexpr_vars(self):
        b = A.BOr(A.Gt(A.Var("x")), A.Eq0(A.Sub(A.Var("y"), A.Var("z"))))
        assert bexpr_vars(b) == {"x", "y", "z"}

    def test_bexpr_field_reads_through_not(self):
        b = A.Not(A.Gt(A.FieldRead(A.LocVar(), "f")))
        assert bexpr_field_reads(b) == {("", "f")}


class TestSubstitution:
    def test_var_subst(self):
        e = subst_aexpr(parse_expr("x + y"), {"x": A.Const(5)})
        assert eval_aexpr(e, {"y": 1}, _no_fields) == 6

    def test_field_subst(self):
        e = subst_aexpr(parse_expr("n.v + 1"), {("", "v"): A.Var("g")})
        assert aexpr_vars(e) == {"g"}

    def test_subst_in_max(self):
        e = subst_aexpr(parse_expr("max(x, 0)"), {"x": A.Const(-3)})
        assert eval_aexpr(e, {}, _no_fields) == 0

    def test_bexpr_subst(self):
        b = subst_bexpr(A.Gt(A.Var("x")), {"x": A.Const(1)})
        assert eval_bexpr(b, {}, _no_fields, lambda l: False)

    @given(
        st.integers(-20, 20), st.integers(-20, 20), st.integers(-20, 20)
    )
    @settings(max_examples=40, deadline=None)
    def test_subst_then_eval_commutes(self, a, b, c):
        """eval(e[x:=v]) == eval with x bound to eval(v)."""
        e = parse_expr("x + y - max(x, y, z)")
        sub = {"x": A.Add(A.Var("y"), A.Const(c))}
        env = {"y": a, "z": b}
        lhs = eval_aexpr(subst_aexpr(e, sub), env, _no_fields)
        rhs = eval_aexpr(e, {**env, "x": a + c}, _no_fields)
        assert lhs == rhs
