"""Tests for the read/write (access-set) analysis."""

import pytest

from repro.core.readwrite import Cell, ReadWriteAnalysis
from repro.lang import BlockTable, parse_program


def _rw(program):
    table = BlockTable(program)
    return table, ReadWriteAnalysis(table)


class TestCells:
    def test_absolute(self):
        c = Cell("field", "lr", "v")
        assert c.absolute("l") == ("field", "llr", "v")

    def test_str(self):
        assert "field" in str(Cell("field", "", "v"))


class TestFieldAccesses:
    def test_write_and_read_fields(self):
        t, rw = _rw(
            parse_program(
                "F(n) { if (n == nil) { return 0 } else "
                "{ n.v = n.l.w + 1; return 0 } }"
            )
        )
        b = [x for x in t.all_noncalls if "n.v" in str(x.stmt)][0]
        acc = rw.access(b)
        assert Cell("field", "", "v") in acc.writes
        assert Cell("field", "l", "w") in acc.reads

    def test_guard_reads_included(self, treemutation_orig):
        t, rw = _rw(treemutation_orig)
        # `n.v = 1` under `if (n.lr > 0)` reads field lr via the guard.
        b = t.block("s7")
        assert Cell("field", "", "lr") in rw.access(b).reads

    def test_guard_reads_excluded_when_off(self, treemutation_orig):
        t = BlockTable(treemutation_orig)
        rw = ReadWriteAnalysis(t, include_guard_reads=False)
        b = t.block("s7")
        assert Cell("field", "", "lr") not in rw.access(b).reads


class TestReturnCells:
    def test_return_block_writes_ret_cell(self, sizecount_seq):
        t, rw = _rw(sizecount_seq)
        # s3 (Odd's return) writes ret:Odd::0 at its own node.
        acc = rw.access(t.block("s3"))
        assert Cell("ret", "", "Odd::0") in acc.writes

    def test_call_bound_var_reads_child_ret(self, sizecount_seq):
        t, rw = _rw(sizecount_seq)
        # s3 reads ls/rs, defined by calls to Even on n.l / n.r.
        acc = rw.access(t.block("s3"))
        assert Cell("ret", "l", "Even::0") in acc.reads
        assert Cell("ret", "r", "Even::0") in acc.reads

    def test_uninitialized_var_is_local(self, sizecount_fused_bad):
        t, rw = _rw(sizecount_fused_bad)
        # s1 computes from lo/le/ro/re BEFORE the calls: plain local vars.
        acc = rw.access(t.block("s1"))
        assert Cell("var", "", "Fused::lo") in acc.reads

    def test_multi_return_indices(self, sizecount_fused):
        t, rw = _rw(sizecount_fused)
        acc = rw.access(t.block("s3"))
        assert Cell("ret", "", "Fused::0") in acc.writes
        assert Cell("ret", "", "Fused::1") in acc.writes


class TestReachingDefs:
    def test_assignment_then_read_is_var_cell(self):
        t, rw = _rw(
            parse_program("F(n) { a = 1; n.v = a; return 0 }")
        )
        b = t.all_noncalls[0]
        acc = rw.access(b)
        assert Cell("var", "", "F::a") in acc.reads

    def test_param_read_is_var_cell(self, cycletree_seq):
        t, rw = _rw(cycletree_seq)
        b = t.block("s1")  # RootMode: n.num = number
        assert Cell("var", "", "RootMode::number") in rw.access(b).reads

    def test_branch_merges_definitions(self):
        t, rw = _rw(
            parse_program(
                "G(n) { return 5 }\n"
                "F(n, k) { if (k > 0) { a = 1 } else { a = G(n.l) }; "
                "return a }"
            )
        )
        ret = [b for b in t.all_noncalls if "return a" in str(b.stmt)][0]
        acc = rw.access(ret)
        assert Cell("var", "", "F::a") in acc.reads
        assert Cell("ret", "l", "G::0") in acc.reads


class TestConflictOffsets:
    def test_child_parent_field_dep(self, treemutation_orig):
        t, rw = _rw(treemutation_orig)
        # s8 (n.v = n.r.v + 1) conflicts with itself: write v@self vs
        # read v@r -> offsets ('', 'r') and ('r', '').
        b = t.block("s8")
        offs = rw.conflict_offsets(b, b)
        pairs = {(d1, d2) for d1, d2, k, nm in offs if nm == "v"}
        assert ("", "r") in pairs and ("r", "") in pairs

    def test_ret_cell_dep(self, sizecount_seq):
        t, rw = _rw(sizecount_seq)
        offs = rw.conflict_offsets(t.block("s7"), t.block("s3"))
        kinds = {(k, nm) for _, _, k, nm in offs}
        assert ("ret", "Even::0") in kinds

    def test_no_conflict_disjoint_fields(self):
        t, rw = _rw(
            parse_program(
                "F(n) { if (n == nil) { return 0 } else "
                "{ n.a = 1; return 0 } }\n"
                "G(n) { if (n == nil) { return 0 } else "
                "{ n.b = 2; return 0 } }\n"
                "Main(n) { x = F(n); y = G(n); return 0 }"
            )
        )
        fa = [b for b in t.all_noncalls if "n.a" in str(b.stmt)][0]
        gb = [b for b in t.all_noncalls if "n.b" in str(b.stmt)][0]
        assert not [
            o for o in rw.conflict_offsets(fa, gb) if o[2] == "field"
        ]

    def test_var_cells_scoped_by_function(self, sizecount_seq):
        t, rw = _rw(sizecount_seq)
        # Odd::ls and Even::ls must not alias... both resolve to ret cells
        # here, but their *names* embed the defining call's function.
        a3 = rw.access(t.block("s3"))
        a7 = rw.access(t.block("s7"))
        read_names_3 = {c.name for c in a3.reads}
        read_names_7 = {c.name for c in a7.reads}
        assert "Even::0" in read_names_3 and "Odd::0" in read_names_7
