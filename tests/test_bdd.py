"""Tests for the ROBDD library, incl. brute-force equivalence properties."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bdd import BDDManager

N_VARS = 4


def _truth_table(mgr, u):
    rows = []
    for bits in itertools.product((False, True), repeat=N_VARS):
        rows.append(mgr.evaluate(u, lambda lvl: bits[lvl]))
    return tuple(rows)


@st.composite
def bdd_exprs(draw, depth=4):
    """Random boolean expression trees as (op, args) tuples."""
    if depth == 0:
        return draw(
            st.sampled_from(
                [("var", i) for i in range(N_VARS)] + [("const", 0), ("const", 1)]
            )
        )
    op = draw(st.sampled_from(["var", "not", "and", "or"]))
    if op == "var":
        return ("var", draw(st.integers(0, N_VARS - 1)))
    if op == "not":
        return ("not", draw(bdd_exprs(depth=depth - 1)))
    return (op, draw(bdd_exprs(depth=depth - 1)), draw(bdd_exprs(depth=depth - 1)))


def _build(mgr, e):
    if e[0] == "var":
        return mgr.var(e[1])
    if e[0] == "const":
        return mgr.true if e[1] else mgr.false
    if e[0] == "not":
        return mgr.apply_not(_build(mgr, e[1]))
    a, b = _build(mgr, e[1]), _build(mgr, e[2])
    return mgr.apply_and(a, b) if e[0] == "and" else mgr.apply_or(a, b)


def _eval_expr(e, bits):
    if e[0] == "var":
        return bits[e[1]]
    if e[0] == "const":
        return bool(e[1])
    if e[0] == "not":
        return not _eval_expr(e[1], bits)
    a, b = _eval_expr(e[1], bits), _eval_expr(e[2], bits)
    return (a and b) if e[0] == "and" else (a or b)


class TestBasics:
    def test_terminals(self):
        mgr = BDDManager()
        assert mgr.true == 1 and mgr.false == 0

    def test_var_nvar(self):
        mgr = BDDManager()
        v = mgr.var(0)
        assert mgr.evaluate(v, lambda l: True)
        assert not mgr.evaluate(mgr.nvar(0), lambda l: True)

    def test_hash_consing(self):
        mgr = BDDManager()
        a = mgr.apply_and(mgr.var(0), mgr.var(1))
        b = mgr.apply_and(mgr.var(1), mgr.var(0))
        assert a == b  # canonical

    def test_idempotence(self):
        mgr = BDDManager()
        v = mgr.var(2)
        assert mgr.apply_and(v, v) == v
        assert mgr.apply_or(v, v) == v

    def test_complement_involution(self):
        mgr = BDDManager()
        u = mgr.apply_or(mgr.var(0), mgr.nvar(1))
        assert mgr.apply_not(mgr.apply_not(u)) == u

    def test_excluded_middle(self):
        mgr = BDDManager()
        v = mgr.var(0)
        assert mgr.apply_or(v, mgr.apply_not(v)) == mgr.true
        assert mgr.apply_and(v, mgr.apply_not(v)) == mgr.false

    def test_conj_disj_helpers(self):
        mgr = BDDManager()
        vs = [mgr.var(i) for i in range(3)]
        assert mgr.evaluate(mgr.conj(vs), lambda l: True)
        assert not mgr.evaluate(mgr.disj(vs), lambda l: False)

    def test_ite(self):
        mgr = BDDManager()
        f = mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2))
        assert mgr.evaluate(f, lambda l: l in (0, 1))
        assert mgr.evaluate(f, lambda l: l == 2)


class TestCofactorQuantify:
    def test_restrict(self):
        mgr = BDDManager()
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.restrict(f, 0, True) == mgr.var(1)
        assert mgr.restrict(f, 0, False) == mgr.false

    def test_exists(self):
        mgr = BDDManager()
        f = mgr.apply_and(mgr.var(0), mgr.var(1))
        assert mgr.exists(f, frozenset({0})) == mgr.var(1)

    def test_exists_removes_support(self):
        mgr = BDDManager()
        f = mgr.apply_or(mgr.var(0), mgr.var(2))
        g = mgr.exists(f, frozenset({0}))
        assert 0 not in mgr.support(g)

    def test_support(self):
        mgr = BDDManager()
        f = mgr.apply_and(mgr.var(1), mgr.apply_or(mgr.var(3), mgr.nvar(1)))
        assert mgr.support(f) <= {1, 3}


class TestModels:
    def test_pick_cube_satisfies(self):
        mgr = BDDManager()
        f = mgr.apply_and(mgr.nvar(0), mgr.var(2))
        cube = mgr.pick_cube(f)
        assert mgr.evaluate(f, lambda l: cube.get(l, False))

    def test_pick_cube_none_for_false(self):
        mgr = BDDManager()
        assert mgr.pick_cube(mgr.false) is None

    def test_iter_cubes_disjoint_cover(self):
        mgr = BDDManager()
        f = mgr.apply_or(mgr.var(0), mgr.var(1))
        sat_count = 0
        for cube in mgr.iter_cubes(f):
            free = N_VARS - len(cube)
            sat_count += 2**free
        # f has 3 satisfying rows over vars {0,1}, times 2^2 for the rest.
        assert sat_count == 12


class TestBruteForceEquivalence:
    @given(bdd_exprs(), bdd_exprs())
    @settings(max_examples=120, deadline=None)
    def test_ops_match_semantics(self, e1, e2):
        mgr = BDDManager()
        u1, u2 = _build(mgr, e1), _build(mgr, e2)
        for bits in itertools.product((False, True), repeat=N_VARS):
            env = lambda lvl: bits[lvl]
            assert mgr.evaluate(u1, env) == _eval_expr(e1, bits)
            assert mgr.evaluate(
                mgr.apply_and(u1, u2), env
            ) == (_eval_expr(e1, bits) and _eval_expr(e2, bits))
            assert mgr.evaluate(
                mgr.apply_diff(u1, u2), env
            ) == (_eval_expr(e1, bits) and not _eval_expr(e2, bits))

    @given(bdd_exprs())
    @settings(max_examples=60, deadline=None)
    def test_canonicity(self, e):
        """Semantically equal expressions build the identical node."""
        mgr = BDDManager()
        u = _build(mgr, e)
        v = _build(mgr, ("not", ("not", e)))
        assert u == v

    @given(bdd_exprs(), st.integers(0, N_VARS - 1))
    @settings(max_examples=60, deadline=None)
    def test_exists_is_or_of_cofactors(self, e, lvl):
        mgr = BDDManager()
        u = _build(mgr, e)
        ex = mgr.exists(u, frozenset({lvl}))
        both = mgr.apply_or(
            mgr.restrict(u, lvl, False), mgr.restrict(u, lvl, True)
        )
        assert ex == both
