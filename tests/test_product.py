"""Tests for the lazy product-emptiness engine.

Differential core: on randomized small automata, emptiness of the
implicit N-way :class:`ProductAutomaton` must coincide with emptiness of
the eagerly materialized pairwise product — the two pipelines share no
product-construction code, so agreement exercises dead-state pruning,
factor merging, and the tuple-space fixpoint against the seed's
reference semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    ProductAutomaton,
    TrackRegistry,
    TreeAutomaton,
    find_witness,
    is_empty,
)
from repro.automata.determinize import StateBudgetExceeded
from repro.trees.generators import all_shapes

TRACKS = ("A", "B")


@st.composite
def automaton(draw, registry):
    """A small random NFTA over tracks {A, B} (possibly empty-language)."""
    mgr = registry.manager
    guards = [
        mgr.true,
        registry.bit("A"),
        registry.bit("A", False),
        registry.bit("B"),
        mgr.apply_and(registry.bit("A"), registry.bit("B", False)),
    ]
    n = draw(st.integers(min_value=1, max_value=3))
    leaf = []
    for q in range(n):
        if draw(st.booleans()):
            leaf.append((draw(st.sampled_from(guards)), q))
    delta = {}
    for ql in range(n):
        for qr in range(n):
            entries = []
            for q in range(n):
                if draw(st.integers(0, 3)) == 0:
                    entries.append((draw(st.sampled_from(guards)), q))
            if entries:
                delta[(ql, qr)] = entries
    accepting = frozenset(
        q for q in range(n) if draw(st.booleans())
    ) or frozenset([draw(st.integers(0, n - 1))])
    return TreeAutomaton(
        registry=registry,
        tracks=frozenset(TRACKS),
        n_states=n,
        leaf=leaf,
        delta=delta,
        accepting=accepting,
        deterministic=False,
        complete=False,
    )


def _eager_product(autos):
    acc = autos[0]
    for nxt in autos[1:]:
        acc = acc.product(nxt, lambda x, y: x and y)
    return acc


@st.composite
def factor_list(draw):
    registry = TrackRegistry()
    k = draw(st.integers(min_value=2, max_value=4))
    return [draw(automaton(registry)) for _ in range(k)]


class TestDifferential:
    @settings(max_examples=60, deadline=None)
    @given(factor_list())
    def test_lazy_emptiness_matches_materialized(self, autos):
        lazy = ProductAutomaton(autos)
        eager = _eager_product(autos)
        assert lazy.explore().empty == is_empty(eager)

    @settings(max_examples=30, deadline=None)
    @given(factor_list())
    def test_lazy_witness_is_accepted_by_all_factors(self, autos):
        lazy = ProductAutomaton(autos)
        exp = lazy.explore()
        if exp.empty:
            return
        from repro.automata.emptiness import witness_from_exploration

        w = witness_from_exploration(lazy, exp)
        labels = {t: w.labels.get(t, frozenset()) for t in TRACKS}
        for a in autos:
            assert a.run(w.tree, labels)

    @settings(max_examples=30, deadline=None)
    @given(factor_list())
    def test_run_agrees_with_factor_conjunction(self, autos):
        lazy = ProductAutomaton(autos)
        trees = [t for n in range(3) for t in all_shapes(n)]
        for t in trees:
            labels = {tr: frozenset() for tr in TRACKS}
            want = all(a.run(t, labels) for a in autos)
            assert lazy.run(t, labels) == want


class TestBudget:
    def test_budget_counts_reached_states(self):
        registry = TrackRegistry()
        mgr = registry.manager
        # A k-state automaton accepting nothing before depth k; three of
        # them give a tuple space large enough to trip a tiny budget.
        def chain(k):
            return TreeAutomaton(
                registry=registry,
                tracks=frozenset(TRACKS),
                n_states=k,
                leaf=[(mgr.true, 0)],
                delta={
                    (i, j): [(mgr.true, min(max(i, j) + 1, k - 1))]
                    for i in range(k)
                    for j in range(k)
                },
                accepting=frozenset([k - 1]),
                deterministic=False,
                complete=False,
            )

        big = ProductAutomaton(
            [chain(5), chain(6), chain(7)], merge_limit=1
        )
        with pytest.raises(StateBudgetExceeded):
            big.explore(max_states=3, stop_on_accepting=False)
        exp = big.explore(stop_on_accepting=False)
        assert not exp.empty
        assert exp.reached > 3


class TestRegressionT13:
    def test_sizecount_parallel_decided_under_default_budget(self):
        from repro.casestudies import sizecount
        from repro.core.symbolic import check_data_race_mso
        from repro.solver import MSOSolver

        solver = MSOSolver()
        v = check_data_race_mso(sizecount.parallel_program(), solver=solver)
        assert v.status == "decided"
        assert not v.found
        assert v.queries > 0
        assert v.max_states <= solver.product_budget
