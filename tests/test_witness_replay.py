"""Witness hygiene on the four case studies (PR 2 invariants).

Every ``race`` verdict from :func:`check_data_race` must carry a witness
that replays to a real dynamic conflict; every ``race-free`` or
``unknown`` verdict must carry no witness at all — an undecided engine
has nothing to point at, and a stale witness left over from an
exhausted rung is exactly the bug the conformance oracle's
``stale-witness`` mismatch kind exists to catch.
"""

import pytest

from repro.core.api import check_data_race

CASE_STUDIES = [
    "sizecount_par",
    "cycletree_par",
    "css_orig",
    "treemutation_orig",
]


@pytest.fixture(params=CASE_STUDIES)
def case_study(request):
    return request.param, request.getfixturevalue(request.param)


def test_witness_iff_race(case_study):
    name, prog = case_study
    res = check_data_race(prog)
    if res.verdict == "race":
        assert res.witness is not None, name
        assert res.witness_tree is not None, name
        assert res.replay is not None and res.replay.confirmed, (
            name,
            res.replay.detail if res.replay else None,
        )
    else:
        assert res.verdict in ("race-free", "unknown"), (name, res.verdict)
        assert res.witness is None, name
        assert res.witness_tree is None, name
        assert res.replay is None, name


def test_cycletree_parallel_witness_replays(cycletree_par):
    res = check_data_race(cycletree_par)
    assert res.verdict == "race"
    assert res.replay is not None and res.replay.confirmed


def test_sizecount_parallel_race_free(sizecount_par):
    res = check_data_race(sizecount_par)
    assert res.verdict == "race-free"
    assert res.witness is None and res.replay is None


def test_undecided_never_carries_witness(cycletree_par):
    """Starve the symbolic engine (mso only, tiny limits): the verdict
    must be ``unknown`` with no witness, and the attempt record must
    keep the rung's raw (absent) verdict."""
    res = check_data_race(
        cycletree_par, engine="mso", det_budget=1, mso_deadline_s=2.0
    )
    assert res.verdict == "unknown"
    assert res.witness is None
    assert res.witness_tree is None
    assert res.replay is None
    attempts = res.details["attempts"]
    assert attempts and all("found" in a for a in attempts)
    assert all(a["found"] is None for a in attempts)


def test_attempts_record_raw_found_when_later_rung_decides(cycletree_par):
    """Degradation ladder: the starved mso rung records ``found=None``
    while the bounded rung that decided records its raw True."""
    res = check_data_race(
        cycletree_par, engine="auto", det_budget=1, mso_deadline_s=2.0,
        max_internal=2,
    )
    attempts = res.details["attempts"]
    by_rung = {a["rung"]: a for a in attempts}
    assert "found" in by_rung["mso"] and by_rung["mso"]["found"] is None
    bounded = [a for r, a in by_rung.items() if r.startswith("bounded")]
    assert bounded and bounded[0]["found"] is True
    assert res.verdict == "race"
    assert res.details["decided_by"].startswith("bounded")
