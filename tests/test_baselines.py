"""Tests for the baseline analyses (and the precision story they tell)."""

import pytest

from repro.baselines import (
    CoarseAnalysis,
    fields_mentioned,
    syntactic_parallel_ok,
)
from repro.casestudies import css, cycletree, sizecount, treemutation


class TestCoarseSummaries:
    def test_closure_mutual_recursion(self, sizecount_par):
        ca = CoarseAnalysis(sizecount_par)
        assert ca.closure("Odd") == {"Odd", "Even"}

    def test_closure_self_recursion(self, css_orig):
        ca = CoarseAnalysis(css_orig)
        assert ca.closure("ConvertValues") == {"ConvertValues"}

    def test_summary_fields(self, css_orig):
        ca = CoarseAnalysis(css_orig)
        s = ca.summary("MinifyFont")
        assert "value" in s.writes and "prop" in s.reads

    def test_self_dependent(self, cycletree_seq):
        ca = CoarseAnalysis(cycletree_seq)
        assert ca.summary("ComputeRouting").self_dependent


class TestPrecisionStory:
    """The paper's claim: prior coarse analyses cannot justify these
    transformations; Retreet can (see test_bounded.py for the proofs)."""

    def test_coarse_rejects_sizecount_fusion(self, sizecount_seq):
        ca = CoarseAnalysis(sizecount_seq)
        ok, reasons = ca.can_fuse("Odd", "Even")
        assert not ok
        assert any("mutually recursive" in r for r in reasons)

    def test_coarse_rejects_css_fusion(self, css_orig):
        ca = CoarseAnalysis(css_orig)
        ok, reasons = ca.can_fuse("ConvertValues", "MinifyFont")
        assert not ok
        assert any("value" in r for r in reasons)

    def test_coarse_rejects_cycletree_fusion(self, cycletree_seq):
        ca = CoarseAnalysis(cycletree_seq)
        ok, _ = ca.can_fuse("RootMode", "ComputeRouting")
        assert not ok

    def test_coarse_rejects_cycletree_parallel(self, cycletree_seq):
        """Here coarse agrees with Retreet: the parallelization races."""
        ca = CoarseAnalysis(cycletree_seq)
        ok, reasons = ca.can_parallelize("RootMode", "ComputeRouting")
        assert not ok
        assert any("num" in r for r in reasons)

    def test_coarse_accepts_disjoint_parallel(self):
        from repro.lang import parse_program

        p = parse_program(
            "A(n) { if (n == nil) { return 0 } else { n.a = 1; return 0 } }\n"
            "B(n) { if (n == nil) { return 0 } else { n.b = 1; return 0 } }\n"
            "Main(n) { x = A(n); y = B(n); return 0 }"
        )
        assert CoarseAnalysis(p).can_parallelize("A", "B")[0]


class TestSyntactic:
    def test_fields_mentioned(self, treemutation_orig):
        fields = fields_mentioned(treemutation_orig, "IncrmLeft")
        assert "v" in fields and "lr" in fields

    def test_parallel_shared_field_rejected(self, cycletree_par):
        ok, reasons = syntactic_parallel_ok(
            cycletree_par, "RootMode", "ComputeRouting"
        )
        assert not ok and any("num" in r for r in reasons)

    def test_parallel_disjoint_ok(self, sizecount_par):
        ok, _ = syntactic_parallel_ok(sizecount_par, "Odd", "Even")
        assert ok  # no fields at all — syntactically clean
