"""Regression pins: the flagship Table-1 tasks decide *symbolically*.

Before the int-table BDD core, the structure-driven variable order, the
antichain-pruned fixpoint, and the interface decomposition, T1.4 and
T1.6 burned their symbolic budget and fell back to the bounded engine
("budget → bounded" in EXPERIMENTS.md).  These tests pin the recovery:
under the *default* auto-plan budgets the first "mso" rung must decide,
i.e. ``details["decided_by"] == "mso"`` with a matching attempt record —
any re-regression shows up as a fallback entry in ``attempts``.
"""

import pytest

from repro.casestudies import cycletree, sizecount, treemutation
from repro.core.api import check_equivalence


def _assert_decided_by_mso(res, verdict="equivalent"):
    assert res.details["decided_by"] == "mso", res.details.get("attempts")
    attempts = res.details["attempts"]
    assert attempts, "no attempts recorded"
    assert attempts[0]["rung"] == "mso"
    assert attempts[0]["outcome"] == "decided"
    # Symbolic decision on the first rung means no retry escalation and
    # no bounded fallback ever ran.
    assert all(a["engine"] == "mso" for a in attempts), attempts
    assert res.verdict == verdict
    assert res.holds is (verdict == "equivalent")


@pytest.mark.slow
class TestDecidedByMSO:
    def test_t11_sizecount_fusion_decides_symbolically(self):
        res = check_equivalence(
            sizecount.sequential_program(),
            sizecount.fused_valid(),
            sizecount.fusion_correspondence(),
        )
        _assert_decided_by_mso(res)

    def test_t14_treemutation_fusion_decides_symbolically(self):
        res = check_equivalence(
            treemutation.original_program(),
            treemutation.fused_program(),
            treemutation.fusion_correspondence(),
        )
        _assert_decided_by_mso(res)

    def test_t16_cycletree_fusion_decides_symbolically(self):
        res = check_equivalence(
            cycletree.sequential_program(),
            cycletree.fused_program(),
            cycletree.fusion_correspondence(),
        )
        _assert_decided_by_mso(res)
