"""Tests for the concrete cycletree substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.cycletree import (
    CycletreeRouter,
    compute_routing,
    cycle_edges,
    cycle_order,
    is_hamiltonian_cycle,
    number_cyclic,
)
from repro.trees.generators import full_tree, left_chain, random_tree
from repro.trees.heap import Tree, node


def _built(tree):
    number_cyclic(tree)
    compute_routing(tree)
    return tree


class TestNumbering:
    @given(st.integers(1, 20), st.integers(0, 99))
    @settings(max_examples=40, deadline=None)
    def test_permutation(self, n, seed):
        t = _built(random_tree(n, seed=seed))
        nums = sorted(x.get("num") for x in t.nodes())
        assert nums == list(range(t.size))

    def test_root_is_zero(self):
        t = _built(full_tree(3))
        assert t.root.get("num") == 0

    def test_single_node(self):
        t = _built(Tree(node()))
        assert t.root.get("num") == 0

    def test_chain(self):
        t = _built(left_chain(5))
        nums = [t.node_at("l" * i).get("num") for i in range(5)]
        assert sorted(nums) == list(range(5))


class TestRoutingIntervals:
    @given(st.integers(1, 15), st.integers(0, 50))
    @settings(max_examples=30, deadline=None)
    def test_intervals_bound_subtrees(self, n, seed):
        t = _built(random_tree(n, seed=seed))
        for x in t.nodes():
            nums = [
                y.get("num") for y in t.nodes() if y.path.startswith(x.path)
            ]
            assert x.get("min") == min(nums)
            assert x.get("max") == max(nums)

    def test_leaf_intervals_self(self):
        t = _built(Tree(node()))
        r = t.root
        assert r.get("lmin") == r.get("lmax") == r.get("num")
        assert r.get("min") == r.get("max") == r.get("num")


class TestRouting:
    @given(st.integers(2, 14), st.integers(0, 30))
    @settings(max_examples=25, deadline=None)
    def test_routes_arrive(self, n, seed):
        t = _built(random_tree(n, seed=seed))
        router = CycletreeRouter(t)
        for s in range(0, t.size, 2):
            for d in range(t.size - 1, -1, -3):
                steps = router.route(s, d)
                assert steps[-1].direction == "arrived"
                assert steps[-1].node == router.node_of(d)

    def test_route_to_self(self):
        t = _built(full_tree(2))
        router = CycletreeRouter(t)
        steps = router.route(1, 1)
        assert len(steps) == 1 and steps[0].direction == "arrived"

    def test_hops_bounded_by_tree_size(self):
        t = _built(full_tree(4))
        router = CycletreeRouter(t)
        for s, d in ((0, 14), (7, 3), (12, 12)):
            assert len(router.route(s, d)) <= 2 * t.size


class TestCycle:
    def test_cycle_order_sorted(self):
        t = _built(full_tree(3))
        order = cycle_order(t)
        assert [n.get("num") for n in order] == list(range(t.size))

    def test_cycle_edges_close(self):
        t = _built(full_tree(2))
        edges = cycle_edges(t)
        assert len(edges) == t.size
        assert edges[-1][1] == t.root.path  # closes back to num 0

    @given(st.integers(1, 15), st.integers(0, 40))
    @settings(max_examples=25, deadline=None)
    def test_few_non_tree_edges(self, n, seed):
        """Cycletrees complement the tree with a bounded number of extra
        edges (Veanes & Barklund's economy property)."""
        t = _built(random_tree(n, seed=seed))
        assert is_hamiltonian_cycle(t)

    def test_empty_tree(self):
        from repro.trees.heap import nil

        t = Tree(nil())
        assert cycle_edges(t) == [] and is_hamiltonian_cycle(t)
