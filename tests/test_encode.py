"""Tests for the Retreet → MSO encoder: the Configuration automaton must
accept exactly the label maps the bounded engine enumerates."""

import pytest

from repro.core.configurations import ProgramModel, enumerate_configurations
from repro.core.encode import Encoder
from repro.mso import syntax as S
from repro.solver import MSOSolver
from repro.trees.generators import all_shapes


def _labels_of(config, ct):
    labels = {}
    for node, sids in config.labels.items():
        for sid in sids:
            labels.setdefault(ct.L(sid), set()).add(node)
    for (node, cid), val in config.cond_pins.items():
        if val:
            labels.setdefault(ct.C(cid), set()).add(node)
    return {k: frozenset(v) for k, v in labels.items()}


@pytest.fixture(scope="module")
def trees():
    return [t for n in range(3) for t in all_shapes(n)]


def _config_automaton(program, q_sid):
    model = ProgramModel(program)
    enc = Encoder(model, "T")
    ct = enc.tracks(1)
    solver = MSOSolver()
    enc.preregister(solver.registry, (ct,))
    x = "@x"
    parts = (
        enc.current_parts(ct, model.table.block(q_sid), x)
        + enc.config_core_parts(ct)
        + [S.Sing(x)]
    )
    acc = solver.automaton_conj(parts)
    from repro.automata.minimize import prune_unreachable

    return model, enc, ct, prune_unreachable(acc.projected([x]))


class TestConfigurationAutomaton:
    @pytest.mark.parametrize("q", ["s3", "s0"])
    def test_accepts_all_valid_configs_fused(self, trees, sizecount_fused, q):
        model, enc, ct, a = _config_automaton(sizecount_fused, q)
        total = 0
        for t in trees:
            for c in enumerate_configurations(model, t):
                if c.last_sid != q:
                    continue
                total += 1
                assert a.run(t, _labels_of(c, ct)), (str(c), t.paths(True))
        assert total > 0

    def test_rejects_perturbed_labelings(self, trees, sizecount_fused):
        """Dropping or adding a label to a valid configuration must be
        rejected (exactness, not just soundness)."""
        model, enc, ct, a = _config_automaton(sizecount_fused, "s3")
        checked = rejected = 0
        for t in trees:
            paths = t.paths(include_nil=True)
            for c in enumerate_configurations(model, t):
                if c.last_sid != "s3":
                    continue
                labels = _labels_of(c, ct)
                # Perturbation 1: drop the main label.
                bad1 = dict(labels)
                bad1[ct.L("main")] = frozenset()
                assert not a.run(t, bad1)
                # Perturbation 2: add a stray call label at a random node.
                bad2 = dict(labels)
                key = ct.L("s1")
                for p in paths:
                    cand = bad2.get(key, frozenset()) | {p}
                    if cand != labels.get(key, frozenset()):
                        bad2[key] = cand
                        break
                if bad2 != labels and not a.run(t, bad2):
                    rejected += 1
                checked += 1
        assert checked > 0 and rejected > 0

    def test_exact_count_on_single_node(self, sizecount_fused):
        """On one internal node the accepted labelings are exactly the
        enumerated configurations ending at s3."""
        import itertools

        from repro.trees.heap import Tree, node

        model, enc, ct, a = _config_automaton(sizecount_fused, "s3")
        t = Tree(node())
        valid = {
            tuple(sorted((k, tuple(sorted(v))) for k, v in _labels_of(c, ct).items() if v))
            for c in enumerate_configurations(model, t)
            if c.last_sid == "s3"
        }
        # Exhaustively enumerate labelings over the tracks that matter.
        tracks = sorted(a.tracks)
        paths = t.paths(include_nil=True)
        accepted = set()
        subsets = list(
            itertools.chain.from_iterable(
                itertools.combinations(paths, r) for r in range(len(paths) + 1)
            )
        )
        # Too many combos for all tracks; restrict to reachable small sets:
        # each track carries at most 2 nodes in practice on a 1-node tree.
        small = [s for s in subsets if len(s) <= 2]
        import random

        rng = random.Random(0)
        trials = 0
        for _ in range(4000):
            lab = {
                tr: frozenset(rng.choice(small)) for tr in tracks
            }
            trials += 1
            if a.run(t, lab):
                accepted.add(
                    tuple(
                        sorted(
                            (k, tuple(sorted(v))) for k, v in lab.items() if v
                        )
                    )
                )
        # Sampled accepted labelings must all be valid configurations.
        assert accepted <= valid


class TestGeometry:
    def test_dependence_geometry_same_node(self, sizecount_fused):
        model = ProgramModel(sizecount_fused)
        enc = Encoder(model, "G")
        q3 = model.table.block("s3")
        f = enc.dependence_geometry(q3, q3, "a", "b")
        from repro.mso.semantics import evaluate
        from repro.trees.generators import full_tree

        t = full_tree(2)
        # s3 writes ret@self and reads ret@l / ret@r: geometry holds when
        # b == a.l (among others).
        assert evaluate(f, t, {"a": "", "b": "l"})
        assert evaluate(f, t, {"a": "", "b": "rr"}) is False

    def test_parallel_relation_false_for_sequential(self, sizecount_seq):
        model = ProgramModel(sizecount_seq)
        enc = Encoder(model, "G2")
        f = enc.parallel(enc.tracks(1), enc.tracks(2))
        assert isinstance(f, S.FalseF)
