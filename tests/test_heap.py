"""Tests for the binary tree heap substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trees.heap import (
    NilAccessError,
    Tree,
    TreeNode,
    nil,
    node,
    tree_from_tuple,
    tree_to_tuple,
)


# -- construction ------------------------------------------------------------

class TestConstruction:
    def test_nil_is_nil(self):
        assert nil().is_nil

    def test_node_defaults_to_nil_children(self):
        n = node()
        assert n.left.is_nil and n.right.is_nil

    def test_node_with_fields(self):
        n = node(v=3, w=-1)
        assert n.get("v") == 3 and n.get("w") == -1

    def test_missing_field_reads_zero(self):
        assert node().get("anything") == 0

    def test_nil_rejects_children(self):
        with pytest.raises(ValueError):
            TreeNode(node(), None, is_nil=True)

    def test_nil_rejects_fields(self):
        with pytest.raises(ValueError):
            TreeNode(fields={"v": 1}, is_nil=True)

    def test_nil_field_read_raises(self):
        with pytest.raises(NilAccessError):
            nil().get("v")

    def test_nil_field_write_raises(self):
        with pytest.raises(NilAccessError):
            nil().set("v", 1)

    def test_nil_child_raises(self):
        with pytest.raises(NilAccessError):
            nil().child("l")

    def test_bad_direction_raises(self):
        with pytest.raises(ValueError):
            node().child("x")

    def test_set_coerces_to_int(self):
        n = node()
        n.set("v", True)
        assert n.get("v") == 1 and isinstance(n.get("v"), int)


# -- indexing -----------------------------------------------------------------

class TestIndexing:
    def test_root_path_empty(self):
        t = Tree(node())
        assert t.root.path == ""

    def test_paths_cover_nil_leaves(self):
        t = Tree(node(node(), nil()))
        assert set(t.paths(include_nil=True)) == {"", "l", "r", "ll", "lr"}

    def test_internal_paths_only(self):
        t = Tree(node(node(), nil()))
        assert set(t.paths()) == {"", "l"}

    def test_node_at(self):
        t = Tree(node(node(v=5), nil()))
        assert t.node_at("l").get("v") == 5

    def test_node_at_missing_raises(self):
        t = Tree(node())
        with pytest.raises(KeyError):
            t.node_at("lll")

    def test_contains(self):
        t = Tree(node())
        assert "" in t and "l" in t and "ll" not in t

    def test_reindex_after_edit(self):
        t = Tree(node())
        t.root.left = node(node(), nil())
        t.reindex()
        assert "ll" in t


# -- measurements --------------------------------------------------------------

class TestMeasure:
    def test_empty_tree(self):
        t = Tree(nil())
        assert t.size == 0 and t.height == 0

    def test_single_node(self):
        t = Tree(node())
        assert t.size == 1 and t.height == 1

    def test_chain_height(self):
        t = Tree(node(node(node(), nil()), nil()))
        assert t.size == 3 and t.height == 3

    def test_preorder_order(self):
        t = Tree(node(node(v=1), node(v=2), v=0))
        assert [n.get("v") for n in t.nodes()] == [0, 1, 2]


# -- clone / compare --------------------------------------------------------------

class TestCloneCompare:
    def test_clone_is_deep(self):
        t = Tree(node(v=1))
        c = t.clone()
        c.root.set("v", 99)
        assert t.root.get("v") == 1

    def test_same_shape(self):
        a = Tree(node(node(), nil()))
        b = Tree(node(node(v=7), nil()))
        assert a.same_shape(b)

    def test_different_shape(self):
        a = Tree(node(node(), nil()))
        b = Tree(node(nil(), node()))
        assert not a.same_shape(b)

    def test_fields_equal(self):
        a = Tree(node(v=1))
        b = Tree(node(v=1))
        assert a.fields_equal(b)

    def test_fields_differ(self):
        a = Tree(node(v=1))
        b = Tree(node(v=2))
        assert not a.fields_equal(b)

    def test_fields_equal_restricted(self):
        a = Tree(node(v=1, scratch=5))
        b = Tree(node(v=1, scratch=9))
        assert a.fields_equal(b, fields=["v"])
        assert not a.fields_equal(b)

    def test_map_fields(self):
        t = Tree(node(node(), nil()))
        t.map_fields(lambda n: n.set("d", len(n.path)))
        assert t.node_at("l").get("d") == 1


# -- serialization ------------------------------------------------------------------

@st.composite
def tree_tuples(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        return None
    fields = draw(
        st.lists(
            st.tuples(st.sampled_from(["v", "w"]), st.integers(-5, 5)),
            max_size=2,
            unique_by=lambda kv: kv[0],
        )
    )
    left = draw(tree_tuples(depth=depth - 1))
    right = draw(tree_tuples(depth=depth - 1))
    return (tuple(sorted(fields)), left, right)


class TestSerialize:
    def test_round_trip_simple(self):
        t = Tree(node(node(v=1), nil(), w=2))
        assert tree_to_tuple(tree_from_tuple(tree_to_tuple(t))) == tree_to_tuple(t)

    @given(tree_tuples())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_property(self, obj):
        assert tree_to_tuple(tree_from_tuple(obj)) == obj

    def test_render_mentions_nil(self):
        out = Tree(node()).render()
        assert "nil" in out and "node" in out
