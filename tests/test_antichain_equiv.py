"""Antichain pruning must never change a verdict — only its cost.

Subsumption pruning (``explore(antichain=...)``) drops product tuples
that an upward-simulation-larger tuple dominates.  That preserves
*emptiness* (the antichain invariant, DESIGN.md §12) but not the full
reached language, so the only observable allowed to move is the
tuple/edge accounting.  These tests pin the invariant three ways:

* seeded fuzz over random small factor lists — on/off emptiness must
  coincide, with and without early accept-stop;
* the committed corpus programs end to end through the symbolic race
  engine with the class default forced both ways;
* counter sanity — ``pruned``/``superseded`` are non-negative, zero
  when pruning is off, and accumulate monotonically in ``SolverStats``.
"""

import json
import random
from pathlib import Path

import pytest

from repro.automata import ProductAutomaton, TrackRegistry, TreeAutomaton
from repro.solver.stats import SolverStats

CORPUS = Path(__file__).parent / "corpus"
TRACKS = ("A", "B")


def _random_automaton(rng, registry):
    mgr = registry.manager
    guards = [
        mgr.true,
        registry.bit("A"),
        registry.bit("A", False),
        registry.bit("B"),
        mgr.apply_and(registry.bit("A"), registry.bit("B", False)),
    ]
    n = rng.randint(1, 4)
    leaf = []
    for q in range(n):
        if rng.random() < 0.6:
            leaf.append((rng.choice(guards), q))
    delta = {}
    for ql in range(n):
        for qr in range(n):
            entries = []
            for q in range(n):
                if rng.random() < 0.35:
                    entries.append((rng.choice(guards), q))
            if entries:
                delta[(ql, qr)] = entries
    accepting = frozenset(q for q in range(n) if rng.random() < 0.5) or frozenset(
        [rng.randrange(n)]
    )
    return TreeAutomaton(
        registry=registry,
        tracks=frozenset(TRACKS),
        n_states=n,
        leaf=leaf,
        delta=delta,
        accepting=accepting,
        deterministic=False,
        complete=False,
    )


@pytest.mark.parametrize("base", range(0, 120, 30))
def test_fuzz_on_off_emptiness_agrees(base):
    for seed in range(base, base + 30):
        rng = random.Random(seed)
        registry = TrackRegistry()
        factors = [_random_automaton(rng, registry) for _ in range(rng.randint(2, 4))]
        prod = ProductAutomaton(factors)
        on = prod.explore(stop_on_accepting=False, antichain=True)
        off = ProductAutomaton(factors).explore(
            stop_on_accepting=False, antichain=False
        )
        assert on.empty == off.empty, f"seed {seed}: emptiness diverged"
        # Early-stop path must agree with the saturating one too.
        fast = ProductAutomaton(factors).explore(antichain=True)
        assert fast.empty == off.empty, f"seed {seed}: early-stop diverged"
        # Counter sanity.
        assert on.pruned >= 0 and on.superseded >= 0
        assert off.pruned == 0 and off.superseded == 0
        # Pruning only ever shrinks the saturated table.
        assert on.reached <= off.reached + on.pruned + on.superseded


def _corpus_sources():
    out = []
    for path in sorted(CORPUS.glob("*.json")):
        data = json.loads(path.read_text())
        src = data.get("source")
        if src:
            out.append(pytest.param(src, id=path.stem))
    return out


@pytest.mark.parametrize("src", _corpus_sources())
def test_corpus_verdicts_invariant_under_antichain(src, monkeypatch):
    from repro.core.symbolic import check_data_race_mso
    from repro.lang import parse_program

    program = parse_program(src, name="corpus")
    monkeypatch.setattr(ProductAutomaton, "ANTICHAIN", True)
    on = check_data_race_mso(program)
    monkeypatch.setattr(ProductAutomaton, "ANTICHAIN", False)
    off = check_data_race_mso(program)
    assert on.status == off.status
    if on.status == "decided":
        assert on.found == off.found


def test_stats_counters_accumulate_monotonically():
    stats = SolverStats()
    totals = []
    for pruned, superseded in ((3, 1), (0, 0), (5, 2)):
        stats.note_exploration(10, pruned=pruned, superseded=superseded)
        totals.append((stats.pruned_tuples, stats.superseded_tuples))
    assert totals == [(3, 1), (3, 1), (8, 3)]
    assert stats.last_pruned == 5
    snap = stats.as_dict()
    assert snap["pruned_tuples"] == 8
    assert snap["superseded_tuples"] == 3
